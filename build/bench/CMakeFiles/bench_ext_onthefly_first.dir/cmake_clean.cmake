file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_onthefly_first.dir/bench_ext_onthefly_first.cc.o"
  "CMakeFiles/bench_ext_onthefly_first.dir/bench_ext_onthefly_first.cc.o.d"
  "bench_ext_onthefly_first"
  "bench_ext_onthefly_first.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_onthefly_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
