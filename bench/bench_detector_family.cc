/**
 * @file
 * Throughput of the detector-engine family (src/engines/): events/s
 * of each chain engine — hb1 (the wrapped canonical pipeline), shb
 * and wcp (the single-pass clock engines) — and of the full family
 * run that feeds all three from ONE pass of the stream, over
 * synthetic traces of two conflict densities.  Every family run's
 * containment summary is re-checked here: a nonzero violation count
 * turns the reproduction table into a failure marker the smoke
 * CTest entry greps for.
 *
 * A machine-readable JSON block follows the table; the committed
 * baseline is BENCH_detector_family.json (tools/bench_baselines.sh).
 * WMR_BENCH_SMOKE=1 shrinks the traces so the binary doubles as a
 * fast CTest smoke entry.
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "engines/family.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

SyntheticTraceOptions
workload(std::uint64_t totalEvents, bool dense, std::uint64_t seed)
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc =
        static_cast<std::uint32_t>(totalEvents / o.procs);
    o.memWords = 4096;
    o.syncWords = 16;
    o.syncFraction = 0.2;
    // "dense" raises cross-processor conflicts but spreads them over
    // a wide hot set: the race count stays linear-ish in the trace,
    // so hb1's partitioning (superlinear in races) stays feasible at
    // baseline sizes.
    o.hotFraction = dense ? 0.25 : 0.0;
    o.hotWords = 128;
    o.seed = seed;
    return o;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Row
{
    std::string shape;
    std::string engine;
    std::uint64_t events = 0;
    double seconds = 0;
    std::uint64_t races = 0;
    std::size_t violations = 0;
};

Row
runSelection(const ExecutionTrace &trace, const char *shape,
             const char *engine)
{
    const auto kinds = engines::parseEngineSelection(engine);
    if (!kinds)
        fatal("bench_detector_family: unknown engine %s", engine);
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = 1;

    const auto t = std::chrono::steady_clock::now();
    const engines::EngineFamilyResult fam =
        engines::runEngineFamily(trace, fopts);
    Row row;
    row.shape = shape;
    row.engine = engine;
    row.events = trace.events().size();
    row.seconds = secondsSince(t);
    for (const auto &v : fam.verdicts) {
        if (!v.opLevel)
            row.races += v.races.size();
    }
    row.violations = fam.containment.violations;
    return row;
}

void
reproduce()
{
    const std::uint64_t totalEvents =
        smokeMode() ? 8'000 : 100'000;

    section("detector-family throughput (events/s per engine)" +
            std::string(smokeMode() ? " (smoke mode)" : ""));
    note("'all' runs hb1+shb+wcp from ONE pass of the stream and "
         "cross-checks the containment chain.");

    std::printf("  %-8s %-6s %10s %10s %12s %10s\n", "shape",
                "engine", "events", "seconds", "events/s",
                "races");
    std::vector<Row> rows;
    std::size_t violations = 0;
    for (const bool dense : {false, true}) {
        const char *shape = dense ? "dense" : "sparse";
        const ExecutionTrace trace = makeSyntheticTrace(
            workload(totalEvents, dense, dense ? 23 : 17));
        for (const char *engine : {"hb1", "shb", "wcp", "all"}) {
            const Row row = runSelection(trace, shape, engine);
            std::printf("  %-8s %-6s %10llu %10.3f %12.0f %10llu\n",
                        row.shape.c_str(), row.engine.c_str(),
                        static_cast<unsigned long long>(row.events),
                        row.seconds,
                        static_cast<double>(row.events) /
                            row.seconds,
                        static_cast<unsigned long long>(row.races));
            violations += row.violations;
            rows.push_back(row);
        }
    }
    note(violations == 0
             ? "containment chain verified: 0 violations across "
               "every family run."
             : "!! CONTAINMENT VIOLATION — an engine disagrees "
               "with the chain (regression).");

    // Machine-readable block for plotting/regression tooling.
    std::printf("{\n  \"schema\": \"wmrace-detector-family\",\n");
    std::printf("  \"containment_violations\": %llu,\n",
                static_cast<unsigned long long>(violations));
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"shape\": \"%s\", \"engine\": \"%s\", "
            "\"events\": %llu, \"seconds\": %.4f, "
            "\"events_per_second\": %.1f, \"races\": %llu}%s\n",
            r.shape.c_str(), r.engine.c_str(),
            static_cast<unsigned long long>(r.events), r.seconds,
            static_cast<double>(r.events) / r.seconds,
            static_cast<unsigned long long>(r.races),
            i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
BM_EngineFamily(benchmark::State &state)
{
    const char *engines[] = {"hb1", "shb", "wcp", "all"};
    const char *engine = engines[state.range(0)];
    const ExecutionTrace trace =
        makeSyntheticTrace(workload(20'000, true, 23));
    const auto kinds = wmr::engines::parseEngineSelection(engine);
    wmr::engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = 1;
    for (auto _ : state) {
        const auto fam = wmr::engines::runEngineFamily(trace, fopts);
        benchmark::DoNotOptimize(fam.anyDataRace);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.events().size()));
    state.SetLabel(engine);
}
BENCHMARK(BM_EngineFamily)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

WMR_BENCH_MAIN(reproduce)
