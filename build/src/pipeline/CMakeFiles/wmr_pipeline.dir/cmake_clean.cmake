file(REMOVE_RECURSE
  "CMakeFiles/wmr_pipeline.dir/aggregate_report.cc.o"
  "CMakeFiles/wmr_pipeline.dir/aggregate_report.cc.o.d"
  "CMakeFiles/wmr_pipeline.dir/batch_runner.cc.o"
  "CMakeFiles/wmr_pipeline.dir/batch_runner.cc.o.d"
  "CMakeFiles/wmr_pipeline.dir/metrics.cc.o"
  "CMakeFiles/wmr_pipeline.dir/metrics.cc.o.d"
  "CMakeFiles/wmr_pipeline.dir/trace_corpus.cc.o"
  "CMakeFiles/wmr_pipeline.dir/trace_corpus.cc.o.d"
  "libwmr_pipeline.a"
  "libwmr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
