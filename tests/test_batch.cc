/**
 * @file
 * Tests of the batch analysis pipeline (src/pipeline) and the
 * recoverable trace_io error path it depends on:
 *
 *  - CorruptTrace.*:        truncated/bit-flipped trace bytes come
 *                           back as errors, never aborts or OOB reads;
 *  - CorpusScanner.*:       directory and manifest discovery;
 *  - BatchPipeline.*:       graceful degradation, fail-fast, metrics;
 *  - BatchDeterminism.*:    text and JSON reports are byte-identical
 *                           for 1 and 8 worker threads (this suite is
 *                           also the ThreadSanitizer CTest entry);
 *  - AnalysisReentrancy.*:  analyzeTrace() is state-free across
 *                           threads.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "detect/report.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/work_queue.hh"
#include "sim/executor.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

/** A fresh temp directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                (tag + "." + std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** Produce one serialized trace from a seeded random program. */
std::vector<std::uint8_t>
makeTraceBytes(std::uint64_t seed, bool racy = true)
{
    const Program prog =
        racy ? randomRacyProgram(seed) : randomRaceFreeProgram(seed);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    const auto res = runProgram(prog, opts);
    return serializeTrace(buildTrace(res, {.keepMemberOps = true}));
}

void
writeBytes(const fs::path &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    ASSERT_TRUE(out.good());
}

std::string
traceName(std::size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%03zu.trace", i);
    return buf;
}

/**
 * Write a mixed corpus: @p good traces (racy and race-free), one
 * truncated trace and one bad-magic file.  @return total file count.
 */
std::size_t
writeMixedCorpus(const fs::path &dir, std::size_t good)
{
    for (std::size_t i = 0; i < good; ++i) {
        const auto bytes = makeTraceBytes(1000 + i, i % 2 == 0);
        writeBytes(dir / traceName(i), bytes);
    }
    const auto donor = makeTraceBytes(42);
    std::vector<std::uint8_t> truncated(
        donor.begin(), donor.begin() + donor.size() / 2);
    writeBytes(dir / "x_truncated.trace", truncated);
    std::ofstream bad(dir / "y_garbage.trace");
    bad << "this is not a trace";
    bad.close();
    return good + 2;
}

// ---------------------------------------------------------------
// CorruptTrace: the recoverable trace_io parse path.
// ---------------------------------------------------------------

TEST(CorruptTrace, RoundTripStillWorks)
{
    const auto bytes = makeTraceBytes(7);
    const auto res = tryDeserializeTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GT(res.trace.events().size(), 0u);
    // The fatal() wrapper path parses the same bytes.
    const auto trace = deserializeTrace(bytes);
    EXPECT_EQ(trace.events().size(), res.trace.events().size());
}

TEST(CorruptTrace, EveryStrictTruncationIsAnError)
{
    const auto bytes = makeTraceBytes(11);
    ASSERT_GT(bytes.size(), 32u);
    const std::size_t step =
        std::max<std::size_t>(1, bytes.size() / 64);
    for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);
        const auto res = tryDeserializeTrace(prefix);
        EXPECT_FALSE(res.ok()) << "cut at " << cut << " parsed OK";
        EXPECT_EQ(res.status, TraceIoStatus::FormatError);
        EXPECT_FALSE(res.error.empty());
    }
}

TEST(CorruptTrace, BitFlipsNeverAbort)
{
    const auto bytes = makeTraceBytes(13);
    for (std::size_t pos = 0; pos < bytes.size();
         pos += std::max<std::size_t>(1, bytes.size() / 97)) {
        auto flipped = bytes;
        flipped[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
        // Must return — ok or error — never exit/abort/overrun.
        const auto res = tryDeserializeTrace(flipped);
        if (!res.ok()) {
            EXPECT_FALSE(res.error.empty());
        }
    }
}

TEST(CorruptTrace, BadMagicAndTrailingBytes)
{
    auto bytes = makeTraceBytes(17);
    auto badMagic = bytes;
    badMagic[0] ^= 0xff;
    const auto r1 = tryDeserializeTrace(badMagic);
    ASSERT_FALSE(r1.ok());
    EXPECT_NE(r1.error.find("bad magic"), std::string::npos);

    auto trailing = bytes;
    trailing.push_back(0);
    const auto r2 = tryDeserializeTrace(trailing);
    ASSERT_FALSE(r2.ok());
    EXPECT_NE(r2.error.find("trailing"), std::string::npos);
}

TEST(CorruptTrace, OversizedHeaderCountsAreErrorsNotOom)
{
    // Hand-build a header claiming 2^60 processors: must be a
    // recoverable error, not an allocation attempt.
    std::vector<std::uint8_t> bytes = {'W', 'M', 'R', 'T',
                                       'R', 'C', '0', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0x80 | 0x7f); // huge varint...
    bytes.push_back(0x0f);            // ...terminated (procs)
    bytes.push_back(0x01);            // memWords
    const auto res = tryDeserializeTrace(bytes);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error.find("too large"), std::string::npos);
}

TEST(CorruptTrace, MissingFileIsIoError)
{
    const auto res =
        tryReadTraceFile("/nonexistent/dir/nothing.trace");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status, TraceIoStatus::IoError);
}

// ---------------------------------------------------------------
// CorruptFullOps: the FULL-OP format through the same recoverable
// read path (truncation, bit flips, magic confusion, bad counts).
// ---------------------------------------------------------------

/** Produce ops + their full-op serialization from a seeded run. */
std::vector<MemOp>
makeFullOps(std::uint64_t seed)
{
    const Program prog = randomRacyProgram(seed);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    return runProgram(prog, opts).ops;
}

TEST(CorruptFullOps, RoundTripPreservesEveryField)
{
    const auto ops = makeFullOps(7);
    ASSERT_GT(ops.size(), 0u);
    const auto res = tryDeserializeFullOps(serializeFullOps(ops));
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_EQ(res.ops.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(res.ops[i].id, ops[i].id);
        EXPECT_EQ(res.ops[i].proc, ops[i].proc);
        EXPECT_EQ(res.ops[i].poIndex, ops[i].poIndex);
        EXPECT_EQ(res.ops[i].kind, ops[i].kind);
        EXPECT_EQ(res.ops[i].sync, ops[i].sync);
        EXPECT_EQ(res.ops[i].acquire, ops[i].acquire);
        EXPECT_EQ(res.ops[i].release, ops[i].release);
        EXPECT_EQ(res.ops[i].addr, ops[i].addr);
        EXPECT_EQ(res.ops[i].value, ops[i].value);
        EXPECT_EQ(res.ops[i].observedWrite, ops[i].observedWrite);
        EXPECT_EQ(res.ops[i].tick, ops[i].tick);
    }
}

TEST(CorruptFullOps, EveryStrictTruncationIsAnError)
{
    const auto bytes = serializeFullOps(makeFullOps(11));
    ASSERT_GT(bytes.size(), 32u);
    const std::size_t step =
        std::max<std::size_t>(1, bytes.size() / 64);
    for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);
        const auto res = tryDeserializeFullOps(prefix);
        EXPECT_FALSE(res.ok()) << "cut at " << cut << " parsed OK";
        EXPECT_EQ(res.status, TraceIoStatus::FormatError);
        EXPECT_FALSE(res.error.empty());
    }
}

TEST(CorruptFullOps, BitFlipsNeverAbort)
{
    const auto bytes = serializeFullOps(makeFullOps(13));
    for (std::size_t pos = 0; pos < bytes.size();
         pos += std::max<std::size_t>(1, bytes.size() / 97)) {
        auto flipped = bytes;
        flipped[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
        // Must return — ok or error — never exit/abort/overrun.
        const auto res = tryDeserializeFullOps(flipped);
        if (!res.ok()) {
            EXPECT_FALSE(res.error.empty());
        }
    }
}

TEST(CorruptFullOps, FormatsRejectEachOther)
{
    // Distinct magics: the event reader must refuse a full-op file
    // and vice versa, each with a telling error.
    const auto fullBytes = serializeFullOps(makeFullOps(17));
    const auto evRes = tryDeserializeTrace(fullBytes);
    ASSERT_FALSE(evRes.ok());
    EXPECT_NE(evRes.error.find("bad magic"), std::string::npos);

    const auto evBytes = makeTraceBytes(17);
    const auto fullRes = tryDeserializeFullOps(evBytes);
    ASSERT_FALSE(fullRes.ok());
    EXPECT_NE(fullRes.error.find("event-format"), std::string::npos);
}

TEST(CorruptFullOps, OversizedCountAndBadFieldsAreErrorsNotOom)
{
    // Header claiming ~2^60 ops must be an error, not an allocation.
    std::vector<std::uint8_t> bytes = {'W', 'M', 'R', 'F',
                                       'O', 'P', '0', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0x80 | 0x7f);
    bytes.push_back(0x0f);
    const auto big = tryDeserializeFullOps(bytes);
    ASSERT_FALSE(big.ok());
    EXPECT_FALSE(big.error.empty());

    // One op whose processor id exceeds ProcId range: the narrowing
    // cast must be rejected, not silently truncated.
    std::vector<std::uint8_t> badProc = {'W', 'M', 'R', 'F',
                                         'O', 'P', '0', '1'};
    badProc.push_back(1); // count = 1
    badProc.push_back(0); // id = 0
    for (int i = 0; i < 4; ++i)
        badProc.push_back(0x80 | 0x7f); // proc = huge varint...
    badProc.push_back(0x0f);            // ...terminated
    const auto bp = tryDeserializeFullOps(badProc);
    ASSERT_FALSE(bp.ok());
    EXPECT_NE(bp.error.find("processor"), std::string::npos);
}

TEST(CorruptFullOps, TrailingBytesAndMissingFile)
{
    auto bytes = serializeFullOps(makeFullOps(19));
    bytes.push_back(0);
    const auto r1 = tryDeserializeFullOps(bytes);
    ASSERT_FALSE(r1.ok());
    EXPECT_NE(r1.error.find("trailing"), std::string::npos);

    const auto r2 =
        tryReadFullOpsFile("/nonexistent/dir/nothing.fullops");
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status, TraceIoStatus::IoError);
}

// ---------------------------------------------------------------
// CorpusScanner
// ---------------------------------------------------------------

TEST(CorpusScanner, DirectoryScanIsSortedAndFiltered)
{
    TempDir dir("wmr_corpus_scan");
    writeBytes(dir.path() / "b.trace", makeTraceBytes(2));
    writeBytes(dir.path() / "a.trace", makeTraceBytes(1));
    writeBytes(dir.path() / "c.bin", makeTraceBytes(3));
    std::ofstream(dir.path() / "notes.txt") << "ignored";

    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    ASSERT_EQ(scan.files.size(), 3u);
    EXPECT_FALSE(scan.fromManifest);
    // Sorted by path: a.trace < b.trace < c.bin.
    EXPECT_NE(scan.files[0].find("a.trace"), std::string::npos);
    EXPECT_NE(scan.files[1].find("b.trace"), std::string::npos);
    EXPECT_NE(scan.files[2].find("c.bin"), std::string::npos);
}

TEST(CorpusScanner, ManifestKeepsOrderAndResolvesRelative)
{
    TempDir dir("wmr_corpus_manifest");
    writeBytes(dir.path() / "one.trace", makeTraceBytes(1));
    writeBytes(dir.path() / "two.trace", makeTraceBytes(2));
    std::ofstream mf(dir.path() / "corpus.txt");
    mf << "# comment line\n"
       << "two.trace\n"
       << "\n"
       << "one.trace\n";
    mf.close();

    const auto scan =
        scanCorpus((dir.path() / "corpus.txt").string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    EXPECT_TRUE(scan.fromManifest);
    ASSERT_EQ(scan.files.size(), 2u);
    EXPECT_NE(scan.files[0].find("two.trace"), std::string::npos);
    EXPECT_NE(scan.files[1].find("one.trace"), std::string::npos);
}

TEST(CorpusScanner, MissingAndEmptyCorpusAreErrors)
{
    EXPECT_FALSE(scanCorpus("/no/such/path/anywhere").ok());
    TempDir dir("wmr_corpus_empty");
    EXPECT_FALSE(scanCorpus(dir.path().string()).ok());
}

// ---------------------------------------------------------------
// BatchPipeline: graceful degradation and engine behavior.
// ---------------------------------------------------------------

TEST(BatchPipeline, CorruptTracesBecomePerTraceFailures)
{
    TempDir dir("wmr_batch_degrade");
    const std::size_t total = writeMixedCorpus(dir.path(), 6);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    ASSERT_EQ(scan.files.size(), total);

    BatchOptions opts;
    opts.jobs = 4;
    const auto batch = runBatch(scan, opts);
    ASSERT_EQ(batch.traces.size(), total);
    EXPECT_EQ(batch.numFailed(), 2u);
    EXPECT_EQ(batch.metrics.analyzed, 6u);
    EXPECT_EQ(batch.metrics.failed, 2u);
    EXPECT_EQ(batch.metrics.skipped, 0u);

    // The corrupt entries carry their reasons; the good ones their
    // summaries.
    for (const auto &tr : batch.traces) {
        if (tr.path.find("x_truncated") != std::string::npos) {
            EXPECT_EQ(tr.status, TraceRunStatus::FormatError);
            EXPECT_FALSE(tr.error.empty());
        } else if (tr.path.find("y_garbage") != std::string::npos) {
            EXPECT_EQ(tr.status, TraceRunStatus::FormatError);
            EXPECT_NE(tr.error.find("bad magic"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(tr.ok()) << tr.path << ": " << tr.error;
            EXPECT_GT(tr.events, 0u);
        }
    }
}

TEST(BatchPipeline, FailFastSkipsAfterFirstFailure)
{
    TempDir dir("wmr_batch_failfast");
    // Name the corrupt file so it sorts FIRST: with --jobs 1 every
    // later trace must then be skipped deterministically.
    std::ofstream(dir.path() / "000_bad.trace") << "garbage";
    for (std::size_t i = 0; i < 5; ++i)
        writeBytes(dir.path() / traceName(i),
                   makeTraceBytes(50 + i));

    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok());
    BatchOptions opts;
    opts.jobs = 1;
    opts.failFast = true;
    const auto batch = runBatch(scan, opts);
    EXPECT_EQ(batch.metrics.failed, 1u);
    EXPECT_EQ(batch.metrics.analyzed, 0u);
    EXPECT_EQ(batch.metrics.skipped, 5u);
    for (std::size_t i = 1; i < batch.traces.size(); ++i)
        EXPECT_EQ(batch.traces[i].status, TraceRunStatus::Skipped);
}

TEST(BatchPipeline, MetricsCountWork)
{
    TempDir dir("wmr_batch_metrics");
    writeMixedCorpus(dir.path(), 4);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok());
    BatchOptions opts;
    opts.jobs = 2;
    const auto batch = runBatch(scan, opts);
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_EQ(batch.metrics.corpusTraces, 6u);
    EXPECT_GT(batch.metrics.bytesRead, 0u);
    EXPECT_GT(batch.metrics.wallSeconds, 0.0);
    EXPECT_GE(batch.metrics.peakQueueDepth, 1u);
    // JSON renderings exist and carry the schema tags.
    EXPECT_NE(metricsJson(batch.metrics)
                  .find("wmrace-batch-metrics"),
              std::string::npos);
    EXPECT_NE(batchReportJson(batch).find("wmrace-batch-report"),
              std::string::npos);
}

TEST(BatchPipeline, WorkQueueTracksPeakDepthAndDrains)
{
    WorkQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.peakDepth(), 8u);
    q.close();
    EXPECT_FALSE(q.push(99));
    int v = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

// ---------------------------------------------------------------
// BatchDeterminism: the --jobs invariance contract.  This suite is
// what the batch_determinism_tsan CTest entry runs under TSan.
// ---------------------------------------------------------------

TEST(BatchDeterminism, ReportsAreByteIdenticalAcrossJobCounts)
{
    TempDir dir("wmr_batch_determinism");
    // >= 20 traces incl. corrupt ones, per the pipeline contract.
    const std::size_t total = writeMixedCorpus(dir.path(), 22);
    ASSERT_GE(total, 20u);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    BatchOptions serial;
    serial.jobs = 1;
    BatchOptions parallel;
    parallel.jobs = 8;
    const auto a = runBatch(scan, serial);
    const auto b = runBatch(scan, parallel);

    EXPECT_EQ(a.metrics.jobs, 1u);
    EXPECT_EQ(b.metrics.jobs, 8u);
    EXPECT_EQ(formatBatchReport(a), formatBatchReport(b));
    EXPECT_EQ(batchReportJson(a), batchReportJson(b));
    // And the failure really is in there.
    EXPECT_EQ(a.numFailed(), 2u);
    EXPECT_NE(formatBatchReport(a).find("FAILED"),
              std::string::npos);
}

// ---------------------------------------------------------------
// AnalysisReentrancy: analyzeTrace() across threads.
// ---------------------------------------------------------------

TEST(AnalysisReentrancy, ConcurrentAnalyzeTraceAgreesWithSerial)
{
    const auto bytes = makeTraceBytes(99);
    const auto serial = formatReport(
        analyzeTrace(deserializeTrace(bytes)), nullptr);

    constexpr unsigned kThreads = 8;
    std::vector<std::string> reports(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto res = tryDeserializeTrace(bytes);
            ASSERT_TRUE(res.ok());
            reports[t] = formatReport(
                analyzeTrace(std::move(res.trace)), nullptr);
        });
    }
    for (auto &th : threads)
        th.join();
    for (const auto &r : reports)
        EXPECT_EQ(r, serial);
}

} // namespace
} // namespace wmr
