/**
 * @file
 * Full vector-clock on-the-fly data race detector.
 *
 * The hb1 relation is maintained incrementally:
 *  - each processor p carries a clock C_p; every event ticks C_p[p];
 *  - a release write at location l publishes a copy of C_p keyed by
 *    the write's operation id;
 *  - an acquire read that returned release w's value joins w's
 *    published clock into C_p — exact so1 pairing (Def. 2.2), made
 *    possible because the simulated hardware reports which write a
 *    read observed (a cache-coherence-visible fact).
 *
 * Each shared word keeps the clock of its last writer and, when
 * trackAllReaders is on, a last-read timestamp per processor.  A data
 * access races with a recorded access iff the recorded access's
 * timestamp is not ≤ the current clock.
 *
 * Bounded-history modes reproduce the accuracy loss Section 5
 * attributes to on-the-fly methods:
 *  - trackAllReaders=false keeps only the most recent reader, missing
 *    read-write races against earlier readers;
 *  - maxPublishedClocks bounds the release-clock table (FIFO
 *    eviction); an acquire whose release clock was evicted falls back
 *    to a conservative per-location clock that over-orders the
 *    execution and so can hide races.
 */

#ifndef WMR_ONTHEFLY_VC_DETECTOR_HH
#define WMR_ONTHEFLY_VC_DETECTOR_HH

#include "onthefly/clock_base.hh"

namespace wmr {

/** Configuration of the vector-clock detector. */
struct VcDetectorOptions
{
    /** Keep a read timestamp per processor (precise). */
    bool trackAllReaders = true;

    /** Max published release clocks kept (0 = unlimited). */
    std::size_t maxPublishedClocks = 0;
};

/** Precise (unbounded) or bounded vector-clock race detector. */
class VcDetector : public ClockedDetectorBase
{
  public:
    VcDetector(ProcId nprocs, Addr words,
               const VcDetectorOptions &opts = {});

    void onOp(const MemOp &op) override;

  private:
    /** Per-location access metadata. */
    struct LocState
    {
        VectorClock lastWrite;      ///< clock of the last writer
        ProcId lastWriterProc = kNoProc;
        std::uint32_t lastWriterPc = 0;
        bool written = false;

        /** Last-read timestamp per processor (precise mode). */
        std::vector<std::uint64_t> readTs;
        std::vector<std::uint32_t> readPc;

        /** Most recent reader only (bounded mode). */
        ProcId lastReaderProc = kNoProc;
        std::uint64_t lastReaderTs = 0;
        std::uint32_t lastReaderPc = 0;

        /** Conservative per-location sync clock (eviction fallback). */
        VectorClock syncFallback;
    };

    LocState &loc(Addr addr);
    void dataRead(const MemOp &op);
    void dataWrite(const MemOp &op);

    VcDetectorOptions opts_;
    std::vector<LocState> locs_;
};

} // namespace wmr

#endif // WMR_ONTHEFLY_VC_DETECTOR_HH
