#include "engines/family.hh"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.hh"
#include "engines/hb1_engine.hh"
#include "engines/otf_engine.hh"
#include "engines/shb_engine.hh"
#include "engines/wcp_engine.hh"
#include "obs/obs.hh"

namespace wmr::engines {

namespace {

std::uint64_t
pairKey(EventId a, EventId b)
{
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/** Index a verdict's races by canonical pair. */
std::unordered_map<std::uint64_t, std::uint32_t>
indexRaces(const EngineVerdict &v)
{
    std::unordered_map<std::uint64_t, std::uint32_t> out;
    out.reserve(v.races.size());
    for (std::uint32_t i = 0; i < v.races.size(); ++i)
        out.emplace(pairKey(v.races[i].a, v.races[i].b), i);
    return out;
}

std::string
raceStr(const EngineRace &r)
{
    std::string addrs;
    for (std::size_t i = 0; i < r.addrs.size() && i < 8; ++i) {
        if (i)
            addrs += ",";
        addrs += std::to_string(r.addrs[i]);
    }
    if (r.addrs.size() > 8)
        addrs += ",...";
    return strformat("events %u <-> %u on words [%s] (%s)", r.a,
                     r.b, addrs.c_str(),
                     r.isDataRace ? "data" : "general");
}

/**
 * Check "every race of @p sub appears in @p super with the same
 * address list"; violations are counted and noted (first few).
 */
bool
subsetOf(const EngineVerdict &sub, const EngineVerdict &super,
         const char *relation, ContainmentSummary &sum)
{
    const auto superIdx = indexRaces(super);
    bool ok = true;
    for (const EngineRace &r : sub.races) {
        const auto it = superIdx.find(pairKey(r.a, r.b));
        bool bad = it == superIdx.end();
        if (!bad) {
            const EngineRace &s = super.races[it->second];
            bad = s.addrs != r.addrs ||
                  s.isDataRace != r.isDataRace;
        }
        if (bad) {
            ok = false;
            ++sum.violations;
            if (sum.notes.size() < 8) {
                sum.notes.push_back(strformat(
                    "%s violated by %s", relation,
                    raceStr(r).c_str()));
            }
        }
    }
    return ok;
}

const EngineVerdict *
findVerdict(const std::vector<EngineVerdict> &verdicts,
            const char *name)
{
    for (const auto &v : verdicts) {
        if (v.engine == name)
            return &v;
    }
    return nullptr;
}

} // namespace

const EngineVerdict *
EngineFamilyResult::verdict(const char *name) const
{
    return findVerdict(verdicts, name);
}

std::unique_ptr<DetectorEngine>
makeEngine(EngineKind kind, unsigned threads)
{
    switch (kind) {
    case EngineKind::Hb1:
        return std::make_unique<Hb1Engine>(threads);
    case EngineKind::Shb:
        return std::make_unique<ShbEngine>();
    case EngineKind::Wcp:
        return std::make_unique<WcpEngine>();
    case EngineKind::Vc:
        return std::make_unique<OtfEngine>(OtfKind::Vc);
    case EngineKind::Epoch:
        return std::make_unique<OtfEngine>(OtfKind::Epoch);
    case EngineKind::Lockset:
        return std::make_unique<OtfEngine>(OtfKind::Lockset);
    }
    return nullptr;
}

EngineFamilyResult
runEngineFamily(const ExecutionTrace &trace,
                const EngineFamilyOptions &opts)
{
    static obs::Counter runs = obs::counter("engine.family.runs");
    static obs::Counter violations =
        obs::counter("engine.family.containment_violations");
    runs.inc();
    obs::Span span("engine.family");

    EngineFamilyResult out;
    out.info.procs = trace.numProcs();
    out.info.memWords = trace.memWords();
    out.info.numEvents = trace.events().size();
    out.info.numSyncEvents = trace.numSyncEvents();
    out.info.totalOps = trace.totalOps();
    out.info.firstStaleRead = trace.firstStaleRead();

    // Canonical engine order, deduplicated.
    std::vector<EngineKind> kinds = opts.kinds;
    std::sort(kinds.begin(), kinds.end());
    kinds.erase(std::unique(kinds.begin(), kinds.end()),
                kinds.end());

    std::vector<std::unique_ptr<DetectorEngine>> engines;
    for (const EngineKind k : kinds)
        engines.push_back(makeEngine(k, opts.threads));

    // ONE pass over the stream feeds every engine.
    for (auto &e : engines)
        e->begin(out.info);
    for (const Event &ev : trace.events()) {
        for (auto &e : engines)
            e->feed(ev);
    }
    for (auto &e : engines) {
        out.verdicts.push_back(e->finish());
        if (auto *hb1 = dynamic_cast<Hb1Engine *>(e.get()))
            out.hb1CanonicalReport = hb1->canonicalReport();
    }

    for (const auto &v : out.verdicts)
        out.anyDataRace = out.anyDataRace || v.anyDataRace;

    // Pairwise containment over whichever chain engines ran.
    ContainmentSummary &sum = out.containment;
    const EngineVerdict *hb1 = findVerdict(out.verdicts, "hb1");
    const EngineVerdict *shb = findVerdict(out.verdicts, "shb");
    const EngineVerdict *wcp = findVerdict(out.verdicts, "wcp");

    if (hb1 && shb) {
        sum.checkedReportedInShb = true;
        EngineVerdict reportedOnly;
        for (const std::uint32_t i : hb1->reported)
            reportedOnly.races.push_back(hb1->races[i]);
        sum.reportedInShb = subsetOf(reportedOnly, *shb,
                                     "reported(hb1) in races(shb)",
                                     sum);

        sum.checkedShbMatchesHb1 = true;
        sum.shbMatchesHb1 =
            subsetOf(*shb, *hb1, "races(shb) in races(hb1)", sum) &&
            subsetOf(*hb1, *shb, "races(hb1) in races(shb)", sum);
    }
    if (shb && wcp) {
        sum.checkedShbInWcp = true;
        sum.shbInWcp = subsetOf(*shb, *wcp,
                                "races(shb) in races(wcp)", sum);
    }
    violations.add(sum.violations);
    return out;
}

std::string
familyAgreementJson(const EngineFamilyResult &r)
{
    std::string names, races, data;
    for (const auto &v : r.verdicts) {
        if (!names.empty()) {
            names += ",";
            races += ",";
            data += ",";
        }
        names += "\"" + v.engine + "\"";
        const std::uint64_t n =
            v.opLevel ? v.opRacesDistinct : v.races.size();
        races += strformat("\"%s\":%llu", v.engine.c_str(),
                           static_cast<unsigned long long>(n));
        data += strformat(
            "\"%s\":%llu", v.engine.c_str(),
            static_cast<unsigned long long>(v.numDataRaces));
    }

    std::string cont;
    const auto flag = [&](const char *key, bool checked, bool ok) {
        if (!checked)
            return;
        if (!cont.empty())
            cont += ",";
        cont += strformat("\"%s\":%s", key, ok ? "true" : "false");
    };
    const ContainmentSummary &s = r.containment;
    flag("reported_hb1_in_shb", s.checkedReportedInShb,
         s.reportedInShb);
    flag("shb_eq_hb1", s.checkedShbMatchesHb1, s.shbMatchesHb1);
    flag("shb_in_wcp", s.checkedShbInWcp, s.shbInWcp);

    std::string reported;
    if (const EngineVerdict *hb1 = r.verdict("hb1")) {
        reported = strformat(
            ",\"reported\":{\"hb1\":%llu}",
            static_cast<unsigned long long>(hb1->reported.size()));
    }

    return strformat(
        "{\"schema\":\"wmrace-engine-agreement\",\"events\":%llu,"
        "\"syncEvents\":%llu,\"ops\":%llu,\"engines\":[%s],"
        "\"races\":{%s},\"dataRaces\":{%s}%s,"
        "\"containment\":{%s},\"violations\":%llu}",
        static_cast<unsigned long long>(r.info.numEvents),
        static_cast<unsigned long long>(r.info.numSyncEvents),
        static_cast<unsigned long long>(r.info.totalOps),
        names.c_str(), races.c_str(), data.c_str(),
        reported.c_str(), cont.c_str(),
        static_cast<unsigned long long>(s.violations));
}

std::string
formatFamilyReport(const EngineFamilyResult &r)
{
    std::string out;
    out += "=== wmrace detector family report ===\n";
    out += strformat(
        "events: %zu (%u sync), operations: %llu\n",
        r.info.numEvents, r.info.numSyncEvents,
        static_cast<unsigned long long>(r.info.totalOps));
    std::string names;
    for (const auto &v : r.verdicts) {
        if (!names.empty())
            names += ", ";
        names += v.engine;
    }
    out += "engines: " + names + "\n";

    const EngineVerdict *shb = r.verdict("shb");

    for (const auto &v : r.verdicts) {
        out += strformat("\n--- engine %s ---\n", v.engine.c_str());
        out += "semantics: " + v.semantics + "\n";
        if (v.opLevel) {
            out += strformat(
                "op races: %llu reported (%llu distinct)\n",
                static_cast<unsigned long long>(v.opRacesReported),
                static_cast<unsigned long long>(v.opRacesDistinct));
            out += "note: op-level approximation; outside the "
                   "containment chain\n";
        } else if (v.hasPartitions) {
            out += strformat(
                "races: %zu (%zu data races) in %zu partitions\n",
                v.races.size(), v.numDataRaces, v.partitions);
            out += strformat(
                "reported: %zu race(s) in %zu FIRST partition(s)\n",
                v.reported.size(), v.firstPartitions);
        } else {
            out += strformat("races: %zu (%zu data races)\n",
                             v.races.size(), v.numDataRaces);
            if (v.engine == "shb") {
                out += strformat(
                    "first races: %zu variable(s)\n",
                    v.firstRacePerVar.size());
                std::size_t shown = 0;
                for (const auto &[addr, idx] : v.firstRacePerVar) {
                    if (shown++ >= 4) {
                        out += strformat(
                            "  ... and %zu more\n",
                            v.firstRacePerVar.size() - 4);
                        break;
                    }
                    out += strformat(
                        "  first race on word %llu: %s\n",
                        static_cast<unsigned long long>(addr),
                        raceStr(v.races[idx]).c_str());
                }
            }
            if (v.engine == "wcp" && shb != nullptr) {
                const auto shbIdx = indexRaces(*shb);
                std::vector<const EngineRace *> beyond;
                for (const EngineRace &race : v.races) {
                    if (!shbIdx.count(pairKey(race.a, race.b)))
                        beyond.push_back(&race);
                }
                out += strformat("predicted beyond hb1: %zu\n",
                                 beyond.size());
                for (std::size_t i = 0;
                     i < beyond.size() && i < 4; ++i) {
                    out += "  predicted: " + raceStr(*beyond[i]) +
                           "\n";
                }
                if (beyond.size() > 4) {
                    out += strformat("  ... and %zu more\n",
                                     beyond.size() - 4);
                }
            }
        }
        out += std::string("verdict: ") +
               (v.anyDataRace ? "DATA RACES detected"
                              : "no data races detected") +
               "\n";
    }

    const ContainmentSummary &s = r.containment;
    if (s.checkedReportedInShb || s.checkedShbInWcp) {
        out += "\n--- containment ---\n";
        const EngineVerdict *hb1 = r.verdict("hb1");
        const EngineVerdict *wcp = r.verdict("wcp");
        if (s.checkedReportedInShb && hb1 && shb) {
            out += strformat(
                "reported(hb1) (%zu) in races(shb) (%zu): %s\n",
                hb1->reported.size(), shb->races.size(),
                s.reportedInShb ? "yes" : "NO");
        }
        if (s.checkedShbMatchesHb1 && hb1 && shb) {
            out += strformat(
                "races(shb) (%zu) == races(hb1) (%zu): %s\n",
                shb->races.size(), hb1->races.size(),
                s.shbMatchesHb1 ? "yes" : "NO");
        }
        if (s.checkedShbInWcp && shb && wcp) {
            out += strformat(
                "races(shb) (%zu) in races(wcp) (%zu): %s\n",
                shb->races.size(), wcp->races.size(),
                s.shbInWcp ? "yes" : "NO");
        }
        for (const std::string &note : s.notes)
            out += "  violation: " + note + "\n";
        out += "agreement: " + familyAgreementJson(r) + "\n";
    }
    return out;
}

} // namespace wmr::engines
