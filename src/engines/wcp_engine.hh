/**
 * @file
 * WCP engine: weak-causal precedence, single pass, linear time.
 *
 * Motivated by "Dynamic Race Prediction in Linear Time" (PAPERS.md):
 * an order strictly weaker than happens-before whose unordered
 * conflicting pairs are PREDICTED races — pairs some other feasible
 * interleaving can make simultaneous even when this execution's
 * sync pairing ordered them.
 *
 * Adaptation to the Section-4.1 event model (no lock regions, only
 * individual acquire/release sync operations): sync addresses play
 * the role of locks, and the "critical region" of a sync event is
 * the run of computation events since its processor's previous sync
 * event.  The order is po plus a CONDITIONAL so1 edge — a paired
 * release→acquire edge is honored only against the acquirer's
 * region accesses that CONFLICT with the releaser's region
 * footprint (WCP rule (a): release-join over conflicting critical
 * sections).  Operationally: a paired acquire does not join; it
 * parks the release's clock + data footprint as the processor's
 * pending join, and the first subsequent computation event that
 * conflicts with the footprint performs the join (later region
 * events inherit it by po); the pending join expires at the
 * processor's next sync event.
 *
 * Every WCP edge is an hb1 edge, so C_wcp ≤ C_hb1 componentwise and
 * races(wcp) ⊇ races(hb1) by construction — the containment the
 * family asserts and tests/test_race_oracle.cc's brute-force WCP
 * closure oracle verifies.  See docs/DETECTORS.md.
 */

#ifndef WMR_ENGINES_WCP_ENGINE_HH
#define WMR_ENGINES_WCP_ENGINE_HH

#include <unordered_map>
#include <unordered_set>

#include "engines/clock_hist.hh"
#include "engines/engine.hh"
#include "hb/vector_clock.hh"

namespace wmr::engines {

/** Single-pass WCP detector over the Section-4.1 event stream. */
class WcpEngine : public DetectorEngine
{
  public:
    const char *name() const override { return "wcp"; }

    void begin(const EngineTraceInfo &info) override;
    void feed(const Event &ev) override;
    EngineVerdict finish() override;

  private:
    /** A release's published state: its wcp clock and the data
     *  footprint of the region it closed. */
    struct ReleaseSnap
    {
        VectorClock clock;
        std::unordered_set<Addr> reads;
        std::unordered_set<Addr> writes;
    };

    /** Per-processor stream state. */
    struct ProcState
    {
        VectorClock clock;
        std::uint64_t epoch = 0;

        /** Data footprint since the previous sync event. */
        std::unordered_set<Addr> regionReads;
        std::unordered_set<Addr> regionWrites;

        /** Parked release join (set at a paired acquire, consumed
         *  by the first conflicting region access, expired at the
         *  next sync event). */
        bool pending = false;
        const ReleaseSnap *pendingRel = nullptr;
    };

    bool conflicts(const ReleaseSnap &rel,
                   const std::vector<Addr> &writes,
                   const std::vector<Addr> &reads) const;

    ProcId procs_ = 0;
    std::vector<ProcState> proc_;

    /** Snapshots of sync events (join sources for pairings). */
    std::unordered_map<EventId, ReleaseSnap> syncSnap_;

    std::unordered_map<Addr, detail::AddrHist> hist_;
    detail::RaceTable table_;

    std::vector<Addr> writes_, reads_; // scratch
};

} // namespace wmr::engines

#endif // WMR_ENGINES_WCP_ENGINE_HH
