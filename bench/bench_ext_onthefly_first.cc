/**
 * @file
 * Extension study (the paper's Section 5/6 future work): locating
 * FIRST races on the fly.
 *
 * The FirstRaceFilter tracks Def. 3.3's affects relation forward
 * through po and so1 and demotes races an earlier race affects.  The
 * table compares its verdicts against the post-mortem first
 * partitions on the same executions:
 *
 *   - recall: of the post-mortem first partitions, how many contain
 *     a race the online filter also classified first?
 *   - volume: how many races each method asks the programmer to
 *     inspect.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "mc/explorer.hh"
#include "onthefly/first_race_filter.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/** Static pairs of the races in one post-mortem partition. */
StaticRaceSet
partitionPairs(const DetectionResult &det, const RacePartition &part,
               const std::vector<MemOp> &ops)
{
    return staticPairsOfRaces(det, part.races, ops);
}

/** Static pair of one on-the-fly race. */
StaticRace
pairOf(const OtfRace &r)
{
    return StaticRace::make({r.proc1, r.pc1}, {r.proc2, r.pc2});
}

void
reproduce()
{
    section("online first-race filter vs post-mortem first "
            "partitions");
    std::printf("  %-10s %12s %14s %14s %12s\n", "programs",
                "first parts", "recalled", "otf first", "otf all");

    std::size_t parts = 0, recalled = 0, otfFirst = 0, otfAll = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Program p = randomRacyProgram(seed);
        FirstRaceFilter filter(p.numProcs(), p.memWords());
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.sink = &filter;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);

        StaticRaceSet online;
        for (const auto &r : filter.firstRaces())
            online.insert(pairOf(r));
        otfFirst += filter.firstRaces().size();
        otfAll += filter.detector().distinctRaces().size();

        for (const auto pi : det.partitions().firstPartitions) {
            ++parts;
            const auto pairs = partitionPairs(
                det, det.partitions().partitions[pi], res.ops);
            bool hit = false;
            for (const auto &pr : pairs)
                hit |= online.count(pr) > 0;
            recalled += hit;
        }
    }
    std::printf("  %-10s %12zu %14zu %14zu %12zu\n", "40 racy",
                parts, recalled, otfFirst, otfAll);
    std::printf("  recall: %.1f%%; volume cut vs all on-the-fly "
                "races: %.1fx\n",
                100.0 * static_cast<double>(recalled) /
                    static_cast<double>(parts ? parts : 1),
                static_cast<double>(otfAll) /
                    static_cast<double>(otfFirst ? otfFirst : 1));
    note("shape: the online approximation recovers (nearly) every "
         "post-mortem first");
    note("partition while suppressing the affected bulk — without "
         "trace files.");
}

void
BM_FirstRaceFilter(benchmark::State &state)
{
    const Program p = randomRacyProgram(5);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 5;
    const auto res = runProgram(p, opts);
    for (auto _ : state) {
        FirstRaceFilter filter(p.numProcs(), p.memWords());
        for (const auto &op : res.ops)
            filter.onOp(op);
        benchmark::DoNotOptimize(filter.classified().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_FirstRaceFilter);

} // namespace

WMR_BENCH_MAIN(reproduce)
