/**
 * @file
 * The race record shared by the detection pipeline.
 */

#ifndef WMR_DETECT_RACE_HH
#define WMR_DETECT_RACE_HH

#include <vector>

#include "common/types.hh"

namespace wmr {

/** Index of a race within a detection result. */
using RaceId = std::uint32_t;

/**
 * A higher-level race 〈a,b〉 between two events (Sec. 4.1): the
 * events conflict on at least one location and are unordered by hb1.
 * When at least one of the two events is a computation event the pair
 * contains a data operation, making it a DATA race (Def. 2.4); a
 * sync-sync pair is a general race only.
 */
struct DataRace
{
    EventId a = kNoEvent;   ///< smaller event id of the pair
    EventId b = kNoEvent;   ///< larger event id of the pair

    /** Locations on which the events conflict. */
    std::vector<Addr> addrs;

    /** At least one side contains a data operation. */
    bool isDataRace = true;
};

} // namespace wmr

#endif // WMR_DETECT_RACE_HH
