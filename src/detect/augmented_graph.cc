#include "detect/augmented_graph.hh"

namespace wmr {

namespace {

AdjList
augment(const HbGraph &hb, const std::vector<DataRace> &races)
{
    AdjList adj = hb.adjacency();
    for (const auto &r : races) {
        adj[r.a].push_back(r.b);
        adj[r.b].push_back(r.a);
    }
    return adj;
}

std::vector<ProcId>
procsOf(const ExecutionTrace &trace)
{
    std::vector<ProcId> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.proc;
    return out;
}

std::vector<std::uint32_t>
indicesOf(const ExecutionTrace &trace)
{
    std::vector<std::uint32_t> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.indexInProc;
    return out;
}

} // namespace

AugmentedGraph::AugmentedGraph(const HbGraph &hb,
                               const std::vector<DataRace> &races,
                               const ExecutionTrace &trace,
                               unsigned threads)
    : adj_(augment(hb, races)),
      reach_(adj_, procsOf(trace), indicesOf(trace), trace.numProcs(),
             threads)
{
}

bool
AugmentedGraph::raceAffectsEvent(const DataRace &r, EventId z) const
{
    // The race edge makes a and b mutually reachable, so reachability
    // from either endpoint is reachability from both.
    return reach_.reaches(r.a, z);
}

bool
AugmentedGraph::raceAffectsRace(const DataRace &r,
                                const DataRace &s) const
{
    if (r.a == s.a && r.b == s.b)
        return false; // a race does not "affect" itself (Def. 3.3)
    return raceAffectsEvent(r, s.a) || raceAffectsEvent(r, s.b);
}

} // namespace wmr
