file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_realizations.dir/bench_ablation_realizations.cc.o"
  "CMakeFiles/bench_ablation_realizations.dir/bench_ablation_realizations.cc.o.d"
  "bench_ablation_realizations"
  "bench_ablation_realizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_realizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
