#!/usr/bin/env bash
# Chaos soak harness: replay the golden corpus through the six
# analysis paths (serve/submit, check --stream, batch, record, the
# detector family via check --engine all, and the weak-model
# simulator via run --model/--robustness) under
# seeded random fault schedules (docs/FAULTS.md) and check the one
# invariant on every run:
#
#   the command either produces the byte-identical golden report, or
#   fails with a clean typed error (exit status, not signal) — never
#   a crash, a hang (per-run timeout), or a wrong report.
#
# Damage-class schedules (bit flips, torn tails) may legitimately
# yield a salvage-marked report instead; byte-comparison is then
# skipped but the exit must still be clean.  Every failing run prints
# the WMR_FAULT schedule and WMR_FAULT_SEED that reproduce it.
#
# Usage:
#   tools/chaos.sh WMRACE_BIN [GOLDEN_DIR] [--smoke] [--runs N] [--seed S]
#
#   --smoke   fixed seed, 16 runs — the chaos_smoke CTest entry
#   --runs N  number of soak runs (default 200)
#   --seed S  master seed (default: current epoch, always printed)
set -u

die() { echo "chaos: $*" >&2; exit 2; }

[ $# -ge 1 ] || die "usage: chaos.sh WMRACE_BIN [GOLDEN_DIR] [--smoke] [--runs N] [--seed S]"
WMRACE=$1; shift
[ -x "$WMRACE" ] || die "not executable: $WMRACE"

GOLDEN="$(dirname "$0")/../tests/data/golden"
RUNS=200
SEED=$(date +%s)
SMOKE=0
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) SMOKE=1; RUNS=16; SEED=1; shift ;;
        --runs) RUNS=$2; shift 2 ;;
        --seed) SEED=$2; shift 2 ;;
        *) GOLDEN=$1; shift ;;
    esac
done
[ -d "$GOLDEN" ] || die "no golden dir: $GOLDEN"

DEMO="$(dirname "$WMRACE")/../examples/rt_demo_racy"
[ -x "$DEMO" ] || DEMO=""

WORK=$(mktemp -d /tmp/wmrchaos.XXXXXX) || die "mktemp failed"
trap 'rm -rf "$WORK"' EXIT

# --- deterministic PRNG (64-bit LCG, same constants as PCG's state
# --- step) so --seed replays the exact mode + schedule sequence.
RNG=0
srand() { RNG=$1; }
rand() { # rand BOUND -> 0..BOUND-1
    RNG=$(( (RNG * 6364136223846793005 + 1442695040888963407) & 0x7FFFFFFFFFFFFFFF ))
    echo $(( (RNG >> 17) % $1 ))
}

# Fault pools per path.  Field 2 is the outcome class:
#   benign    degradation must be invisible: byte-identical report
#   transport the client may see a typed error (exit 2) instead
#   damage    a salvage-marked report or typed refusal is also legal
SERVE_POOL=(
    "serve.io.eintr|benign"
    "serve.read.short|benign"
    "serve.spool.enospc|benign"
    "serve.cache.torn|benign"
    "pipeline.checkpoint.fail|benign"
    "serve.accept.fail|transport"
    "serve.conn.reset|transport"
    "serve.resp.truncate|transport"
    "serve.client.truncate|transport"
)
# check --stream goes through the tail reader, so only the tail
# sites are reachable here; trace.read.* lands on the whole-file
# loaders batch uses.
STREAM_POOL=(
    "stream.tail.stall|benign"
    "stream.tail.damage|damage"
)
BATCH_POOL=(
    "pipeline.checkpoint.fail|benign"
    "trace.read.short|damage"
    "trace.read.bitflip|damage"
)
# The detector family (`check --engine all`) loads through the same
# whole-file readers batch uses; its blessed reports are the
# *.engines.expected.txt twins.
ENGINE_POOL=(
    "trace.read.short|damage"
    "trace.read.bitflip|damage"
)
# The model replay re-simulates a blessed (program, model, seed)
# fixture with --robustness and re-checks the written trace: the
# write-side faults must be invisible (simulation is a pure function
# of its seed), the read-side damage may surface as a typed error or
# salvage — never as a silently different report.
MODEL_POOL=(
    "trace.seg.write.eintr|benign"
    "trace.seg.write.short|benign"
    "trace.read.short|damage"
    "trace.read.bitflip|damage"
)
RECORD_POOL=(
    "trace.seg.write.eintr|benign"
    "trace.seg.write.short|benign"
    "trace.seg.write.enospc|crash"
    "rt.crash-in-drain|crash"
    "rt.crash-mid-segment|crash"
    "rt.slow-child|crash"
)

# randomTrigger SITE -> echoes "@..." (or "" = fire on every hit).
# rt.* sites keep the legacy one-param spelling; a bare trigger-less
# stream.tail.stall would starve the tail reader forever, so it always
# gets a bounded trigger.
randomTrigger() {
    local site=$1
    case "$site" in
        rt.crash-in-drain)    echo "@$(( 10 + $(rand 80) ))"; return ;;
        rt.crash-mid-segment) echo "@$(( 1 + $(rand 2) ))"; return ;;
        rt.slow-child)        echo "@1"; return ;;
        trace.read.bitflip)
            # trigger on an early hit, flip a byte past the magic
            echo "@n$(( 1 + $(rand 2) )):$(( 9 + $(rand 400) ))"; return ;;
        stream.tail.stall)    echo "@n$(( 1 + $(rand 3) ))"; return ;;
    esac
    case "$(rand 4)" in
        0) echo "@once" ;;
        1) echo "@n$(( 1 + $(rand 4) ))" ;;
        2) echo "@p0.$(( 2 + $(rand 5) ))" ;;
        3) echo "" ;;
    esac
}

# buildSchedule POOLNAME[@] -> sets SCHED and CLASS ("benign" unless
# any picked entry escalates it).
buildSchedule() {
    local -n pool=$1
    local count=$(( 1 + $(rand 2) ))
    SCHED=""
    CLASS="benign"
    local i pick site cls
    for (( i = 0; i < count; i++ )); do
        pick=${pool[$(rand ${#pool[@]})]}
        site=${pick%%|*}
        cls=${pick##*|}
        case "$SCHED" in *"$site"*) continue ;; esac
        SCHED="${SCHED:+$SCHED,}$site$(randomTrigger "$site")"
        [ "$cls" != "benign" ] && CLASS=$cls
    done
}

FAILS=0
declare -A MODE_RUNS=([serve]=0 [stream]=0 [batch]=0 [record]=0
                      [engine]=0 [model]=0)

fail() { # fail RUN MODE MSG [LOGFILE...]
    local run=$1 mode=$2 msg=$3; shift 3
    echo "chaos: FAIL run=$run mode=$mode: $msg" >&2
    echo "chaos:   repro: WMR_FAULT='$SCHED' WMR_FAULT_SEED=$RUNSEED" >&2
    local f
    for f in "$@"; do
        [ -s "$f" ] && { echo "chaos:   --- $f"; tail -10 "$f"; } >&2
    done
    FAILS=$(( FAILS + 1 ))
}

# crashed STATUS -> 0 (true) when the status means signal/core/hang.
crashed() { [ "$1" -ge 124 ]; }

# typedError OUTFILE ERRFILE — fatal() exits 1 just like a race
# report does, so "typed refusal" is recognized by an EMPTY stdout
# plus the fatal/error marker on stderr.
typedError() { [ ! -s "$1" ] && grep -q "fatal:\|error:" "$2"; }

TRACES=("$GOLDEN"/*.trace)
[ -e "${TRACES[0]}" ] || die "no traces in $GOLDEN"

# Pre-flight canary: prove env-driven injection is ALIVE before
# soaking — a schedule that never fires soaks nothing and proves
# nothing.  A giant injected short read must make the strict check
# refuse the trace.
if [ -f "$GOLDEN/synth_seg.trace" ]; then
    WMR_FAULT=trace.read.short@n1:100000000 timeout 20 \
        "$WMRACE" check "$GOLDEN/synth_seg.trace" \
        > "$WORK/canary.out" 2> "$WORK/canary.err"
    [ -s "$WORK/canary.out" ] &&
        die "canary: WMR_FAULT did not fire — env injection is dead, soaking would prove nothing"
else
    echo "chaos: note: no synth_seg.trace in corpus; env canary skipped" >&2
fi

runServe() {
    local run=$1
    local sdir="$WORK/r$run"
    mkdir -p "$sdir/spool" "$sdir/cache"
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        "$WMRACE" serve --socket "$sdir/serve.sock" --jobs 2 \
        --spool-dir "$sdir/spool" --cache-dir "$sdir/cache" \
        > "$sdir/addr.txt" 2> "$sdir/serve.log" &
    local spid=$! addr="" _
    for _ in $(seq 1 100); do
        addr=$(cat "$sdir/addr.txt" 2>/dev/null)
        [ -n "$addr" ] && break
        kill -0 "$spid" 2>/dev/null || break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        fail "$run" serve "server never came up" "$sdir/serve.log"
        kill -KILL "$spid" 2>/dev/null; wait "$spid" 2>/dev/null
        return
    fi

    # submit a random sample of the corpus through the faulty server
    local n=$(( 2 + $(rand 3) )) i t base expected salvage got status
    for (( i = 0; i < n; i++ )); do
        t=${TRACES[$(rand ${#TRACES[@]})]}
        base=$(basename "$t" .trace)
        expected="$GOLDEN/$base.expected.txt"
        salvage=""
        case "$base" in *damaged*) salvage="--salvage" ;; esac
        got="$sdir/$base.out"
        WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
            timeout 30 "$WMRACE" submit "$t" --server "$addr" $salvage \
            > "$got" 2> "$sdir/$base.err"
        status=$?
        if crashed "$status"; then
            fail "$run" serve "submit $base: status $status (hang/signal)" \
                "$sdir/$base.err" "$sdir/serve.log"
        elif [ $status -eq 2 ] ||
             { [ $status -le 1 ] && typedError "$got" "$sdir/$base.err"; }; then
            # typed transport refusal — legal only when the schedule
            # contains a fault that may surface to the client
            [ "$CLASS" = "benign" ] &&
                fail "$run" serve "submit $base: typed error under a benign-only schedule" \
                    "$sdir/$base.err"
        elif [ $status -le 1 ]; then
            # successful analysis must be the byte-identical report —
            # no serve-pool fault is allowed to corrupt a result
            cmp -s "$expected" "$got" ||
                fail "$run" serve "submit $base: report differs" "$got"
        else
            fail "$run" serve "submit $base: unexpected exit $status" \
                "$sdir/$base.err"
        fi
    done

    # shutdown fault-free; a stubborn server gets TERM, never lingers
    timeout 10 "$WMRACE" submit --server "$addr" --shutdown >/dev/null 2>&1
    local waited=0
    while kill -0 "$spid" 2>/dev/null; do
        if [ $waited -eq 40 ]; then kill -TERM "$spid" 2>/dev/null; fi
        if [ $waited -ge 80 ]; then kill -KILL "$spid" 2>/dev/null; break; fi
        sleep 0.05; waited=$(( waited + 1 ))
    done
    wait "$spid" 2>/dev/null
    status=$?
    case "$status" in
        0|143) : ;;  # clean exit or answered our SIGTERM
        *) fail "$run" serve "server exited $status" "$sdir/serve.log" ;;
    esac
    rm -rf "$sdir"
}

runStream() {
    local run=$1 t base salvage got status
    # stream mode only speaks the segmented container
    case "$(rand 2)" in
        0) t="$GOLDEN/synth_seg.trace"; salvage="" ;;
        1) t="$GOLDEN/synth_seg_damaged.trace"; salvage="--salvage" ;;
    esac
    base=$(basename "$t" .trace)
    got="$WORK/stream.$run.out"
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        timeout 30 "$WMRACE" check "$t" --stream $salvage \
        > "$got" 2> "$WORK/stream.$run.err"
    status=$?
    if crashed "$status"; then
        fail "$run" stream "check --stream $base: status $status (hang/signal)" \
            "$WORK/stream.$run.err"
    elif [ $status -gt 1 ] ||
         { [ $status -le 1 ] && typedError "$got" "$WORK/stream.$run.err"; }; then
        [ "$CLASS" = "benign" ] &&
            fail "$run" stream "check --stream $base: typed error under a benign-only schedule" \
                "$WORK/stream.$run.err"
    elif ! cmp -s "$GOLDEN/$base.expected.txt" "$got"; then
        # a damaged read may legally shrink to a salvage-marked
        # prefix — but never to a silently different full report
        if [ "$CLASS" = "benign" ] || ! grep -q "^SALVAGED trace:" "$got"; then
            fail "$run" stream "check --stream $base: report differs, not salvage-marked" "$got"
        fi
    fi
    rm -f "$got" "$WORK/stream.$run.err"
}

runBatch() {
    local run=$1 status
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        timeout 60 "$WMRACE" batch "$GOLDEN" --jobs 2 --salvage \
        --checkpoint "$WORK/batch.$run.ck" \
        > "$WORK/batch.$run.out" 2> "$WORK/batch.$run.err"
    status=$?
    if crashed "$status"; then
        fail "$run" batch "status $status (hang/signal)" "$WORK/batch.$run.err"
    elif [ $status -gt 2 ]; then
        fail "$run" batch "unexpected exit $status" "$WORK/batch.$run.err"
    elif ! grep -q "^totals:" "$WORK/batch.$run.out"; then
        fail "$run" batch "no totals line — batch did not complete" \
            "$WORK/batch.$run.out" "$WORK/batch.$run.err"
    fi
    rm -f "$WORK/batch.$run".*
}

runRecord() {
    local run=$1 status
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        timeout 60 "$WMRACE" record --out "$WORK/rec.$run.trace" --timeout 5 \
        "$DEMO" > "$WORK/rec.$run.out" 2> "$WORK/rec.$run.err"
    status=$?
    if crashed "$status"; then
        fail "$run" record "status $status (hang/signal)" "$WORK/rec.$run.err"
    elif [ $status -eq 2 ]; then
        fail "$run" record "usage error" "$WORK/rec.$run.err"
    elif [ $status -eq 3 ] && [ "$CLASS" = "benign" ]; then
        fail "$run" record "no analyzable trace under a benign-only schedule" \
            "$WORK/rec.$run.err"
    fi  # 0/1 = analysis (possibly of a salvaged prefix) — the goal
    rm -f "$WORK/rec.$run."*
}

runEngine() {
    local run=$1 t base salvage got status
    t=${TRACES[$(rand ${#TRACES[@]})]}
    base=$(basename "$t" .trace)
    salvage=""
    case "$base" in *damaged*) salvage="--salvage" ;; esac
    got="$WORK/engine.$run.out"
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        timeout 30 "$WMRACE" check "$t" --engine all $salvage \
        > "$got" 2> "$WORK/engine.$run.err"
    status=$?
    if crashed "$status"; then
        fail "$run" engine "check --engine all $base: status $status (hang/signal)" \
            "$WORK/engine.$run.err"
    elif [ $status -gt 1 ] ||
         { [ $status -le 1 ] && typedError "$got" "$WORK/engine.$run.err"; }; then
        [ "$CLASS" = "benign" ] &&
            fail "$run" engine "check --engine all $base: typed error under a benign-only schedule" \
                "$WORK/engine.$run.err"
    elif ! cmp -s "$GOLDEN/$base.engines.expected.txt" "$got"; then
        # a damaged read may shrink to a salvage-marked prefix, but
        # the containment summary must never report a violation
        if [ "$CLASS" = "benign" ] || ! grep -q "^SALVAGED trace:" "$got"; then
            fail "$run" engine "check --engine all $base: report differs, not salvage-marked" "$got"
        elif grep -q '"violations":[1-9]' "$got"; then
            fail "$run" engine "check --engine all $base: containment violation under faults" "$got"
        fi
    fi
    rm -f "$got" "$WORK/engine.$run.err"
}

# The committed TSO/PSO sim fixtures: base / program / model / seed
# (regen.sh is the source of truth for these tuples).
MODEL_FIXTURES=(
    "tso_fig1a_s7 figure1a TSO 7"
    "tso_dekker_s2 dekker TSO 2"
    "pso_fig1b_s3 figure1b PSO 3"
    "pso_queue_s5 queue_buggy PSO 5"
)
PROGRAMS="$(dirname "$0")/../programs"

runModel() {
    local run=$1 pick base prog model seed status
    pick=${MODEL_FIXTURES[$(rand ${#MODEL_FIXTURES[@]})]}
    read -r base prog model seed <<< "$pick"
    local got="$WORK/model.$run"

    # Re-simulate the fixture under faults, robustness check inline.
    WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
        timeout 30 "$WMRACE" run "$PROGRAMS/$prog.wm" \
        --model "$model" --seed "$seed" --robustness \
        --trace "$got.trace" > "$got.out" 2> "$got.err"
    status=$?
    if crashed "$status"; then
        fail "$run" model "run $base: status $status (hang/signal)" "$got.err"
    elif [ $status -gt 1 ] ||
         { [ $status -le 1 ] && typedError "$got.out" "$got.err"; }; then
        [ "$CLASS" = "benign" ] &&
            fail "$run" model "run $base: typed error under a benign-only schedule" \
                "$got.err"
    else
        # The simulation is a pure function of (program, model,
        # seed): no injected I/O fault may perturb the verdict or
        # the recorded trace.
        grep -q "^robustness: " "$got.out" ||
            fail "$run" model "run $base: no robustness verdict in output" "$got.out"
        cmp -s "$GOLDEN/$base.trace" "$got.trace" ||
            fail "$run" model "run $base: written trace differs from golden" "$got.err"

        # Re-check the freshly written trace under the same schedule:
        # byte-identical blessed report or a clean typed error.
        WMR_FAULT="$SCHED" WMR_FAULT_SEED=$RUNSEED \
            timeout 30 "$WMRACE" check "$got.trace" \
            > "$got.check.out" 2> "$got.check.err"
        status=$?
        if crashed "$status"; then
            fail "$run" model "check $base: status $status (hang/signal)" "$got.check.err"
        elif [ $status -gt 1 ] ||
             { [ $status -le 1 ] && typedError "$got.check.out" "$got.check.err"; }; then
            [ "$CLASS" = "benign" ] &&
                fail "$run" model "check $base: typed error under a benign-only schedule" \
                    "$got.check.err"
        elif ! cmp -s "$GOLDEN/$base.expected.txt" "$got.check.out"; then
            if [ "$CLASS" = "benign" ] ||
               ! grep -q "^SALVAGED trace:" "$got.check.out"; then
                fail "$run" model "check $base: report differs, not salvage-marked" \
                    "$got.check.out"
            fi
        fi
    fi
    rm -f "$got".*
}

echo "chaos: $RUNS run(s), master seed $SEED$( [ $SMOKE -eq 1 ] && echo ' (smoke)')"
for (( run = 0; run < RUNS; run++ )); do
    RUNSEED=$(( (SEED + run * 2654435761) & 0x7FFFFFFFFFFFFFFF ))
    srand "$RUNSEED"
    case "$(rand 6)" in
        0) MODE=serve ;;
        1) MODE=stream ;;
        2) MODE=batch ;;
        3) MODE=record ;;
        4) MODE=engine ;;
        5) MODE=model ;;
    esac
    [ "$MODE" = record ] && [ -z "$DEMO" ] && MODE=batch
    case "$MODE" in
        serve)  buildSchedule SERVE_POOL;  runServe "$run" ;;
        stream) buildSchedule STREAM_POOL; runStream "$run" ;;
        batch)  buildSchedule BATCH_POOL;  runBatch "$run" ;;
        record) buildSchedule RECORD_POOL; runRecord "$run" ;;
        engine) buildSchedule ENGINE_POOL; runEngine "$run" ;;
        model)  buildSchedule MODEL_POOL;  runModel "$run" ;;
    esac
    MODE_RUNS[$MODE]=$(( MODE_RUNS[$MODE] + 1 ))
done

echo "chaos: $RUNS run(s) (serve=${MODE_RUNS[serve]} stream=${MODE_RUNS[stream]}" \
     "batch=${MODE_RUNS[batch]} record=${MODE_RUNS[record]}" \
     "engine=${MODE_RUNS[engine]} model=${MODE_RUNS[model]}), $FAILS failure(s)"
[ $FAILS -eq 0 ]
