#include "sim/exec_stats.hh"

#include "common/string_util.hh"

namespace wmr {

ExecStats
summarizeExecution(const ExecutionResult &res)
{
    ExecStats s;
    s.instructions = res.steps;
    s.memOps = res.ops.size();
    s.totalCycles = res.totalCycles;
    s.opsPerProc.assign(res.procCycles.size(), 0);

    for (const auto &op : res.ops) {
        if (op.proc >= s.opsPerProc.size())
            s.opsPerProc.resize(op.proc + 1, 0);
        ++s.opsPerProc[op.proc];
        if (op.sync) {
            ++s.syncByAddr[op.addr];
            if (op.kind == OpKind::Read) {
                ++s.syncReads;
                s.acquires += op.acquire;
            } else {
                ++s.syncWrites;
                s.releases += op.release;
            }
        } else {
            if (op.kind == OpKind::Read)
                ++s.dataReads;
            else
                ++s.dataWrites;
        }
        if (op.kind == OpKind::Read && op.stale) {
            ++s.staleReads;
            ++s.staleByAddr[op.addr];
        }
        s.divergentOps += op.divergent;
        s.taintedWrites +=
            op.kind == OpKind::Write && op.taintedValue;
    }
    return s;
}

std::string
formatStats(const ExecStats &s, const Program *prog)
{
    const auto addrName = [&](Addr a) {
        return prog ? prog->addrName(a) : strformat("[%u]", a);
    };

    std::string out;
    out += strformat(
        "instructions %llu, memory ops %llu (%llu dr / %llu dw / "
        "%llu sr / %llu sw), cycles %llu\n",
        static_cast<unsigned long long>(s.instructions),
        static_cast<unsigned long long>(s.memOps),
        static_cast<unsigned long long>(s.dataReads),
        static_cast<unsigned long long>(s.dataWrites),
        static_cast<unsigned long long>(s.syncReads),
        static_cast<unsigned long long>(s.syncWrites),
        static_cast<unsigned long long>(s.totalCycles));
    out += strformat(
        "sync fraction %.1f%% (%llu acquires, %llu releases)\n",
        100.0 * s.syncFraction(),
        static_cast<unsigned long long>(s.acquires),
        static_cast<unsigned long long>(s.releases));
    if (s.staleReads) {
        out += strformat(
            "stale reads %llu, divergent ops %llu, tainted writes "
            "%llu\n",
            static_cast<unsigned long long>(s.staleReads),
            static_cast<unsigned long long>(s.divergentOps),
            static_cast<unsigned long long>(s.taintedWrites));
        out += "stale reads by address:";
        for (const auto &[addr, n] : s.staleByAddr) {
            out += strformat(" %s:%llu", addrName(addr).c_str(),
                             static_cast<unsigned long long>(n));
        }
        out += "\n";
    } else {
        out += "no stale reads: execution matches the issue-order SC "
               "witness\n";
    }
    return out;
}

} // namespace wmr
