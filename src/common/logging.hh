/**
 * @file
 * Error and status reporting in the spirit of gem5's logging.hh.
 *
 * fatal()  — the user's fault (bad program, bad configuration);
 *            prints and exits with status 1.
 * panic()  — a wmrace bug (broken invariant); prints and aborts.
 * warn()   — something dubious but survivable.
 * inform() — plain status output.
 */

#ifndef WMR_COMMON_LOGGING_HH
#define WMR_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace wmr {

/** Print a formatted fatal error (user error) and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted internal error (wmrace bug) and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benchmarks use this). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are silenced. */
bool isQuiet();

/**
 * Assert a wmrace-internal invariant; on failure panics with the
 * stringified condition, file and line.
 */
#define wmr_assert(cond)                                                 \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::wmr::panic("assertion '%s' failed at %s:%d", #cond,        \
                         __FILE__, __LINE__);                            \
        }                                                                \
    } while (0)

} // namespace wmr

#endif // WMR_COMMON_LOGGING_HH
