# Empty compiler generated dependencies file for test_onthefly.
# This may be replaced when dependencies are built.
