/**
 * @file
 * Unit tests of the on-the-fly detectors: precision of the unbounded
 * variants, agreement with the post-mortem method, and the accuracy
 * loss of bounded-history modes (Section 5).
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "prog/builder.hh"
#include "onthefly/epoch_detector.hh"
#include "onthefly/vc_detector.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace wmr {
namespace {

/** Run @p prog with detector @p det attached. */
template <typename Detector>
ExecutionResult
runWith(const Program &prog, Detector &det,
        ModelKind model = ModelKind::SC, std::uint64_t seed = 3)
{
    ExecOptions opts;
    opts.model = model;
    opts.seed = seed;
    opts.sink = &det;
    return runProgram(prog, opts);
}

TEST(VcDetector, CatchesFigure1a)
{
    const Program p = figure1a();
    VcDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    EXPECT_FALSE(det.races().empty());
    EXPECT_GT(det.stats().opsProcessed, 0u);
}

TEST(VcDetector, SilentOnFigure1b)
{
    const Program p = figure1b();
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        VcDetector det(p.numProcs(), p.memWords());
        runWith(p, det, ModelKind::WO, seed);
        EXPECT_TRUE(det.races().empty()) << "seed " << seed;
    }
}

TEST(VcDetector, SilentOnLockedCounter)
{
    const Program p = lockedCounter(3, 4);
    VcDetector det(p.numProcs(), p.memWords());
    runWith(p, det, ModelKind::WO, 9);
    EXPECT_TRUE(det.races().empty());
}

TEST(VcDetector, CatchesRacyCounter)
{
    const Program p = lockedCounter(2, 4, /*racy=*/true);
    VcDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    EXPECT_FALSE(det.races().empty());
}

TEST(VcDetector, ReadWriteRaceAgainstEarlierReader)
{
    // P0 reads x; P1 writes x later with no sync: r-w race.
    ProgramBuilder pb;
    pb.var("x", 0, 1);
    ThreadBuilder a, b;
    a.load(1, 0).halt();
    b.storei(0, 2).halt();
    pb.thread(a).thread(b);
    const Program p = pb.build();
    VcDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    ASSERT_FALSE(det.races().empty());
}

TEST(VcDetector, AgreesWithPostMortemOnRaceExistence)
{
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = (seed % 2) ? randomRacyProgram(seed)
                                     : randomRaceFreeProgram(seed);
        VcDetector det(p.numProcs(), p.memWords());
        const auto res = runWith(p, det, ModelKind::SC, seed);
        const auto post = analyzeExecution(res);
        EXPECT_EQ(!det.races().empty(), post.anyDataRace())
            << "seed " << seed;
    }
}

TEST(EpochDetector, AgreesWithVcDetectorOnRaceExistence)
{
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = (seed % 2) ? randomRacyProgram(seed)
                                     : randomRaceFreeProgram(seed);
        VcDetector vc(p.numProcs(), p.memWords());
        EpochDetector ep(p.numProcs(), p.memWords());
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        opts.sink = &vc;
        const auto res = runProgram(p, opts);
        for (const auto &op : res.ops)
            ep.onOp(op);
        EXPECT_EQ(vc.races().empty(), ep.races().empty())
            << "seed " << seed;
    }
}

TEST(EpochDetector, FewerVectorJoinsThanVcDetector)
{
    // FastTrack's point: data accesses do O(1) epoch comparisons
    // instead of full vector comparisons, so the epoch detector's
    // vector-join count (sync only) is strictly below the VC
    // detector's (sync + every data check) on data-heavy code.
    RandomProgConfig cfg;
    cfg.seed = 4;
    cfg.procs = 3;
    cfg.blocksPerProc = 8;
    cfg.opsPerBlock = 10;
    cfg.dataWords = 8;
    cfg.numLocks = 2;
    cfg.unlockedProb = 0.3;
    const Program p = randomProgram(cfg);

    VcDetector vc(p.numProcs(), p.memWords());
    const auto res = runWith(p, vc, ModelKind::WO, 4);
    EpochDetector ep(p.numProcs(), p.memWords());
    for (const auto &op : res.ops)
        ep.onOp(op);

    EXPECT_LT(ep.stats().clockJoins, vc.stats().clockJoins);
    EXPECT_GT(ep.stats().epochChecks, 0u);
}

TEST(EpochDetector, InflatesOnConcurrentReads)
{
    // Two unsynchronized readers then a writer: the read metadata
    // must inflate to a vector and the write must catch both races.
    ProgramBuilder pb;
    pb.var("x", 0, 1);
    ThreadBuilder r1, r2, w;
    r1.load(1, 0).halt();
    r2.load(1, 0).halt();
    w.storei(0, 9).halt();
    pb.thread(r1).thread(r2).thread(w);
    const Program p = pb.build();

    // Scripted order: both reads, then the write.
    ScriptedScheduler sched({0, 1, 2});
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    EpochDetector det(p.numProcs(), p.memWords());
    opts.sink = &det;
    runProgram(p, opts);
    EXPECT_EQ(det.distinctRaces().size(), 2u);
}

TEST(BoundedHistory, LastReaderOnlyMissesRaces)
{
    // Reader A reads x, reader B reads x, writer W writes x.
    // Precise mode: 2 read-write races.  last-reader-only: 1.
    ProgramBuilder pb;
    pb.var("x", 0, 1);
    ThreadBuilder r1, r2, w;
    r1.load(1, 0).halt();
    r2.load(1, 0).halt();
    w.storei(0, 9).halt();
    pb.thread(r1).thread(r2).thread(w);
    const Program p = pb.build();

    ScriptedScheduler s1({0, 1, 2});
    ExecOptions o1;
    o1.scheduler = &s1;
    o1.model = ModelKind::SC;
    VcDetector precise(p.numProcs(), p.memWords(),
                       {.trackAllReaders = true});
    o1.sink = &precise;
    runProgram(p, o1);

    ScriptedScheduler s2({0, 1, 2});
    ExecOptions o2;
    o2.scheduler = &s2;
    o2.model = ModelKind::SC;
    VcDetector bounded(p.numProcs(), p.memWords(),
                       {.trackAllReaders = false});
    o2.sink = &bounded;
    runProgram(p, o2);

    EXPECT_EQ(precise.distinctRaces().size(), 2u);
    EXPECT_EQ(bounded.distinctRaces().size(), 1u);
}

TEST(BoundedHistory, EvictedReleaseClocksOverOrder)
{
    // With a 1-entry publication table, old release clocks are
    // evicted; acquires then join the conservative per-location
    // clock, which can only ADD order -> never MORE races.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;

        VcDetector precise(p.numProcs(), p.memWords());
        opts.sink = &precise;
        const auto res = runProgram(p, opts);

        VcDetector bounded(p.numProcs(), p.memWords(),
                           {.maxPublishedClocks = 1});
        for (const auto &op : res.ops)
            bounded.onOp(op);

        EXPECT_LE(bounded.distinctRaces().size(),
                  precise.distinctRaces().size())
            << "seed " << seed;
    }
}

TEST(Stats, CountersPopulated)
{
    const Program p = lockedCounter(2, 5);
    VcDetector det(p.numProcs(), p.memWords());
    runWith(p, det, ModelKind::WO, 2);
    const auto &st = det.stats();
    EXPECT_GT(st.opsProcessed, 0u);
    EXPECT_GT(st.clockJoins, 0u);
    EXPECT_GT(st.metadataBytes, 0u);
    EXPECT_EQ(st.racesReported, det.races().size());
}

TEST(Stats, DistinctRacesCanonicalizes)
{
    OtfRace a{0, 1, 1, 2, 5, 10};
    OtfRace b{1, 2, 0, 1, 5, 99}; // same pair, swapped + later op
    class Probe : public OnTheFlyDetector
    {
      public:
        void onOp(const MemOp &) override {}
        void
        add(const OtfRace &r)
        {
            report(r);
        }
    } probe;
    probe.add(a);
    probe.add(b);
    EXPECT_EQ(probe.races().size(), 2u);
    EXPECT_EQ(probe.distinctRaces().size(), 1u);
}

} // namespace
} // namespace wmr
