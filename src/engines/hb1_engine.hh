/**
 * @file
 * The canonical hb1 method behind the DetectorEngine interface.
 *
 * Wraps the whole-trace Section-4 pipeline (detect/analysis.hh):
 * the engine buffers the event stream back into an ExecutionTrace
 * and runs analyzeTrace() at finish().  It is the family's baseline
 * — races are the full hb1-unordered set and the REPORTED subset is
 * the Def. 4.1 first partitions, exactly what `wmrace check`
 * prints.  The verdict also carries the rendered canonical report,
 * which the differential harness byte-compares against the direct
 * pipeline to prove the refactor changed nothing.
 */

#ifndef WMR_ENGINES_HB1_ENGINE_HH
#define WMR_ENGINES_HB1_ENGINE_HH

#include "engines/engine.hh"
#include "trace/execution_trace.hh"

namespace wmr::engines {

/** hb1 + first-partition reporting, as an engine. */
class Hb1Engine : public DetectorEngine
{
  public:
    explicit Hb1Engine(unsigned threads = 1)
        : threads_(threads)
    {
    }

    const char *name() const override { return "hb1"; }

    void begin(const EngineTraceInfo &info) override;
    void feed(const Event &ev) override;
    EngineVerdict finish() override;

    /** The canonical `wmrace check` report of the analyzed stream
     *  (valid after finish()). */
    const std::string &canonicalReport() const { return report_; }

  private:
    unsigned threads_ = 1;
    ExecutionTrace trace_;
    std::string report_;
};

} // namespace wmr::engines

#endif // WMR_ENGINES_HB1_ENGINE_HH
