# Empty dependencies file for wmr_trace.
# This may be replaced when dependencies are built.
