/**
 * @file
 * Must-hold lockset dataflow over a thread CFG.
 *
 * Forward dataflow computing, for every program point, the set of
 * lock words the thread MUST hold there:
 *
 *   transfer:  TestAndSet [L]  adds L  (after the instruction)
 *              Unset [L]       removes L
 *   meet:      set intersection over predecessors (must-analysis)
 *   entry:     empty set
 *
 * The usual spin idiom `spin: tas r,[L]; bnz r, spin` converges
 * correctly: the fall-through edge of the bnz carries {L}, the back
 * edge re-enters the tas, and intersection at the tas keeps the
 * entry value.  The analysis is conservative in the right direction
 * for race detection — when it cannot prove a common lock is held,
 * the pair is reported.
 */

#ifndef WMR_STATICDET_LOCKSET_DATAFLOW_HH
#define WMR_STATICDET_LOCKSET_DATAFLOW_HH

#include <set>
#include <vector>

#include "staticdet/cfg.hh"

namespace wmr {

/** A set of lock addresses. */
using LockSet = std::set<Addr>;

/** Result of the dataflow: locksets before and after each pc. */
struct LocksetResult
{
    /** Must-held locks immediately BEFORE each instruction. */
    std::vector<LockSet> before;

    /** Must-held locks immediately AFTER each instruction. */
    std::vector<LockSet> after;
};

/** Run the must-hold lockset dataflow on @p thread. */
LocksetResult computeLocksets(const Thread &thread, const Cfg &cfg);

} // namespace wmr

#endif // WMR_STATICDET_LOCKSET_DATAFLOW_HH
