#include "detect/partition.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace wmr {

RacePartitions
partitionRaces(const std::vector<DataRace> &races,
               const AugmentedGraph &aug)
{
    const auto &scc = aug.reach().scc();

    RacePartitions out;
    out.partitionOf.assign(races.size(), 0);

    // Group races by their G'-component.  The doubly directed race
    // edge guarantees both endpoints share a component.
    std::map<std::uint32_t, std::vector<RaceId>> byComp;
    for (RaceId r = 0; r < races.size(); ++r) {
        const std::uint32_t ca = scc.componentOf[races[r].a];
        wmr_assert(ca == scc.componentOf[races[r].b]);
        byComp[ca].push_back(r);
    }

    for (const auto &[comp, rs] : byComp) {
        RacePartition part;
        part.component = comp;
        part.races = rs;
        part.label = kNoEvent;
        for (const auto r : rs) {
            part.hasDataRace |= races[r].isDataRace;
            part.label = std::min(part.label, races[r].a);
        }
        out.partitions.push_back(std::move(part));
    }

    // Order by the canonical label (smallest racy event id).  Labels
    // are distinct across partitions: an event belongs to exactly one
    // SCC, so race-endpoint sets of different partitions are disjoint.
    std::sort(out.partitions.begin(), out.partitions.end(),
              [](const RacePartition &a, const RacePartition &b) {
                  return a.label < b.label;
              });
    for (std::size_t i = 0; i < out.partitions.size(); ++i) {
        for (const auto r : out.partitions[i].races)
            out.partitionOf[r] = static_cast<std::uint32_t>(i);
    }

    // First partitions: not preceded (Def. 4.1) by any OTHER
    // partition containing a data race.
    for (std::size_t i = 0; i < out.partitions.size(); ++i) {
        auto &pi = out.partitions[i];
        if (!pi.hasDataRace)
            continue;
        bool first = true;
        for (std::size_t j = 0; j < out.partitions.size() && first;
             ++j) {
            if (j == i || !out.partitions[j].hasDataRace)
                continue;
            if (aug.reach().componentReaches(
                    out.partitions[j].component, pi.component)) {
                first = false;
            }
        }
        pi.first = first;
        if (first) {
            out.firstPartitions.push_back(
                static_cast<std::uint32_t>(i));
        }
    }
    return out;
}

} // namespace wmr
