# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("prog")
subdirs("sim")
subdirs("trace")
subdirs("hb")
subdirs("detect")
subdirs("mc")
subdirs("onthefly")
subdirs("staticdet")
subdirs("workload")
subdirs("pipeline")
