#include "pipeline/batch_runner.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "pipeline/checkpoint.hh"
#include "pipeline/work_queue.hh"
#include "pipeline/worker_pool.hh"
#include "stream/stream_analyzer.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"

namespace wmr {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** One worker's private metric accumulators (merged at exit). */
struct WorkerTotals
{
    StageSeconds stages;
    AnalysisStageSeconds analysis;
    std::uint64_t candidatePairs = 0;
    std::uint64_t reachQueries = 0;
};

/**
 * Stream-analyze one segmented trace (BatchOptions::stream): same
 * TraceRunResult fields — including the salvage-recovered-nothing
 * quarantine rule — as the whole-trace path, O(window) memory.
 */
void
streamOneTrace(const std::string &path, const BatchOptions &opts,
               TraceRunResult &out, StageSeconds &stages)
{
    obs::StagedSpan analyzeSpan("batch.analyze", stages.analyze);
    StreamOptions sopts;
    sopts.strict = !opts.salvage;
    sopts.windowSegments = opts.streamWindow;
    const StreamResult sr = streamAnalyzeFile(path, sopts);
    if (sr.ok && sr.salvage.salvaged && sr.events == 0) {
        out.status = TraceRunStatus::FormatError;
        out.error = "salvage recovered no events (" +
                    sr.salvage.summary() + ")";
        return;
    }
    if (!sr.ok) {
        out.status = TraceRunStatus::FormatError;
        out.error = sr.error;
        return;
    }
    out.salvaged = sr.salvage.salvaged;
    out.unresolvedPairings = sr.salvage.unresolvedPairings;
    out.droppedDataRecords = sr.salvage.droppedDataRecords;
    out.status = TraceRunStatus::Ok;
    out.events = sr.events;
    out.syncEvents = sr.syncEvents;
    out.ops = sr.ops;
    out.races = sr.races;
    out.dataRaces = sr.dataRaces;
    out.partitions = sr.partitions;
    out.firstPartitions = sr.firstPartitions;
    out.reportedRaces = sr.reportedRaces;
    out.anyDataRace = sr.anyDataRace;
    out.wholeExecutionSc = sr.wholeExecutionSc;
}

/** Load + parse + analyze one trace file into @p out. */
void
analyzeOneTrace(const std::string &path, const BatchOptions &opts,
                TraceRunResult &out, WorkerTotals &totals)
{
    StageSeconds &stages = totals.stages;
    out.path = path;

    obs::Span traceSpan("batch.trace");
    traceSpan.annotate(path);

    ExecutionTrace trace;
    {
        std::vector<std::uint8_t> bytes;
        {
            obs::StagedSpan s("batch.read", stages.read);
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                out.status = TraceRunStatus::IoError;
                out.error =
                    "cannot open trace file '" + path + "'";
                return;
            }
            bytes.assign((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
            if (in.bad()) {
                out.status = TraceRunStatus::IoError;
                out.error =
                    "read error on trace file '" + path + "'";
                return;
            }
            out.fileBytes = bytes.size();
        }

        obs::StagedSpan s("batch.parse", stages.parse);
        if (looksSegmented(bytes.data(), bytes.size())) {
            if (opts.stream) {
                // Bounded-memory path: drop the materialized bytes
                // and stream the file instead.
                bytes.clear();
                bytes.shrink_to_fit();
                streamOneTrace(path, opts, out, stages);
                return;
            }
            // Segmented traces go through their own reader (rather
            // than the sniffing tryDeserializeTrace) so the batch can
            // salvage damaged files and surface recorder-side losses
            // per trace.
            auto seg = opts.salvage ? trySalvageTrace(bytes)
                                    : tryReadSegmentedTrace(bytes);
            if (seg.ok() && seg.salvage.salvaged &&
                seg.trace.events().empty()) {
                // Nothing recoverable: fail so the file lands in the
                // quarantine instead of passing as an empty analysis.
                seg.status = TraceIoStatus::FormatError;
                seg.error = "salvage recovered no events (" +
                            seg.salvage.summary() + ")";
            }
            if (!seg.ok()) {
                out.status = seg.status == TraceIoStatus::IoError
                                 ? TraceRunStatus::IoError
                                 : TraceRunStatus::FormatError;
                out.error = seg.error;
                return;
            }
            out.salvaged = seg.salvage.salvaged;
            out.unresolvedPairings = seg.salvage.unresolvedPairings;
            out.droppedDataRecords = seg.salvage.droppedDataRecords;
            trace = std::move(seg.trace);
        } else {
            auto parsed = tryDeserializeTrace(bytes);
            if (!parsed.ok()) {
                out.status = parsed.status == TraceIoStatus::IoError
                                 ? TraceRunStatus::IoError
                                 : TraceRunStatus::FormatError;
                out.error = parsed.error;
                return;
            }
            trace = std::move(parsed.trace);
        }
    }

    obs::StagedSpan analyzeSpan("batch.analyze", stages.analyze);
    if (!opts.engineKinds.empty()) {
        // `batch --engine`: the detector family replaces the
        // canonical pipeline; counts per fillFromEngineFamily().
        engines::EngineFamilyOptions fopts;
        fopts.kinds = opts.engineKinds;
        fopts.threads = opts.analysis.threads;
        const engines::EngineFamilyResult fam =
            engines::runEngineFamily(trace, fopts);
        out.status = TraceRunStatus::Ok;
        fillFromEngineFamily(fam, out);
        return;
    }
    const DetectionResult det =
        analyzeTrace(std::move(trace), opts.analysis);
    const AnalysisStats &as = det.stats();
    totals.analysis.graphBuild += as.graphBuildSeconds;
    totals.analysis.reachability += as.reachabilitySeconds;
    totals.analysis.raceFind += as.raceFindSeconds;
    totals.analysis.augment += as.augmentSeconds;
    totals.analysis.partition += as.partitionSeconds;
    totals.analysis.scp += as.scpSeconds;
    totals.candidatePairs += as.finder.candidatePairs;
    totals.reachQueries += as.finder.reachQueries;

    out.status = TraceRunStatus::Ok;
    out.events = det.trace().events().size();
    out.syncEvents = det.trace().numSyncEvents();
    out.ops = det.trace().totalOps();
    out.races = det.races().size();
    out.dataRaces = det.numDataRaces();
    out.partitions = det.partitions().partitions.size();
    out.firstPartitions = det.partitions().firstPartitions.size();
    out.reportedRaces = det.reportedRaces().size();
    out.anyDataRace = det.anyDataRace();
    out.wholeExecutionSc = det.scp().wholeExecutionSc;
}

} // namespace

const char *
traceRunStatusName(TraceRunStatus status)
{
    switch (status) {
      case TraceRunStatus::Ok:
        return "ok";
      case TraceRunStatus::IoError:
        return "io_error";
      case TraceRunStatus::FormatError:
        return "format_error";
      case TraceRunStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

void
fillFromEngineFamily(const engines::EngineFamilyResult &fam,
                     TraceRunResult &out)
{
    out.events = fam.info.numEvents;
    out.syncEvents = fam.info.numSyncEvents;
    out.ops = fam.info.totalOps;

    // The weakest chain engine that ran holds the superset race set
    // (containment chain), so its counts are "everything predicted".
    const engines::EngineVerdict *primary = nullptr;
    for (const engines::EngineVerdict &v : fam.verdicts) {
        if (!v.opLevel)
            primary = &v;
    }
    if (primary != nullptr) {
        out.races = primary->races.size();
        out.dataRaces = primary->numDataRaces;
    }
    if (const engines::EngineVerdict *hb1 = fam.verdict("hb1")) {
        out.partitions = hb1->partitions;
        out.firstPartitions = hb1->firstPartitions;
        out.reportedRaces = hb1->reported.size();
    }
    out.anyDataRace = fam.anyDataRace;
    // Same rule the SCP stage applies (scp.cc): the whole execution
    // is sequentially consistent iff no read ever returned a stale
    // value.
    out.wholeExecutionSc = fam.info.firstStaleRead == kNoOp;
}

bool
BatchResult::anyDataRace() const
{
    for (const auto &t : traces) {
        if (t.ok() && t.anyDataRace)
            return true;
    }
    return false;
}

std::size_t
BatchResult::numFailed() const
{
    std::size_t n = 0;
    for (const auto &t : traces) {
        if (t.failed())
            ++n;
    }
    return n;
}

BatchResult
runBatch(const CorpusScan &corpus, const BatchOptions &opts)
{
    BatchResult result;
    result.corpus = corpus;

    const std::size_t n = corpus.files.size();
    const unsigned budget = resolveThreads(opts.jobs);

    // Split the thread budget: one worker per trace up to the corpus
    // size, and when the corpus is smaller than the budget, spend the
    // leftover INSIDE each analysis (intra-trace parallelism) instead
    // of idling.  An explicit AnalysisOptions::threads wins.
    unsigned jobs = budget;
    if (jobs > n && n > 0)
        jobs = static_cast<unsigned>(n);
    BatchOptions effective = opts;
    if (effective.analysis.threads == 1 && jobs > 0)
        effective.analysis.threads = std::max(1u, budget / jobs);
    effective.analysis.threads =
        resolveThreads(effective.analysis.threads);

    result.traces.resize(n);
    result.metrics.jobs = jobs;
    result.metrics.analysisThreads = effective.analysis.threads;
    result.metrics.corpusTraces = n;
    if (n == 0)
        return result;

    // Resume: prefill result slots journaled by a previous run over
    // this corpus, then keep journaling the rest as they complete.
    // The journal is an optimization — any problem with it degrades
    // to re-analyzing traces, never to wrong results.
    std::vector<char> done(n, 0);
    bool priorFailure = false;
    CheckpointWriter journal;
    bool journaling = false;
    if (!opts.checkpointPath.empty()) {
        std::unordered_map<std::string, std::size_t> slotByPath;
        slotByPath.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            slotByPath.emplace(corpus.files[i], i);
        const CheckpointLoad prior =
            loadCheckpoint(opts.checkpointPath);
        if (prior.tornLines > 0)
            warn("batch: checkpoint '%s': ignoring %zu torn or "
                 "foreign line(s)",
                 opts.checkpointPath.c_str(), prior.tornLines);
        for (const auto &entry : prior.entries) {
            const auto it = slotByPath.find(entry.path);
            if (it == slotByPath.end() || done[it->second])
                continue; // journaled under a different corpus
            result.traces[it->second] = entry;
            done[it->second] = 1;
            priorFailure |= entry.failed();
            ++result.metrics.resumed;
        }
        if (journal.open(opts.checkpointPath))
            journaling = true;
        else
            warn("batch: checkpoint journaling disabled: %s",
                 journal.lastError().c_str());
    }

    const auto wallStart = Clock::now();

    // Producer -> workers hand-off.  The bound keeps the backlog (and
    // so the peak-depth metric) meaningful without ever stalling the
    // workers: a few slots of slack per worker.
    WorkQueue<std::size_t> queue(static_cast<std::size_t>(jobs) * 4);
    std::atomic<bool> abortDispatch{priorFailure};
    std::atomic<bool> journalWarned{false};

    std::mutex metricsMutex;
    WorkerTotals grandTotal;

    const auto workerBody = [&](unsigned worker) {
        obs::setThreadName("batch.worker." + std::to_string(worker));
        obs::Span workerSpan("batch.worker");
        WorkerTotals local;
        std::size_t index = 0;
        while (queue.pop(index)) {
            TraceRunResult &slot = result.traces[index];
            if (opts.failFast &&
                abortDispatch.load(std::memory_order_relaxed)) {
                slot.path = corpus.files[index];
                slot.status = TraceRunStatus::Skipped;
                slot.error = "--fail-fast after an earlier failure";
                continue;
            }
            analyzeOneTrace(corpus.files[index], effective, slot,
                            local);
            if (slot.failed())
                abortDispatch.store(true,
                                    std::memory_order_relaxed);
            if (journaling && !journal.append(slot) &&
                !journalWarned.exchange(true))
                warn("batch: checkpoint journaling failed: %s",
                     journal.lastError().c_str());
        }
        std::lock_guard<std::mutex> lock(metricsMutex);
        grandTotal.stages.read += local.stages.read;
        grandTotal.stages.parse += local.stages.parse;
        grandTotal.stages.analyze += local.stages.analyze;
        grandTotal.analysis.graphBuild += local.analysis.graphBuild;
        grandTotal.analysis.reachability +=
            local.analysis.reachability;
        grandTotal.analysis.raceFind += local.analysis.raceFind;
        grandTotal.analysis.augment += local.analysis.augment;
        grandTotal.analysis.partition += local.analysis.partition;
        grandTotal.analysis.scp += local.analysis.scp;
        grandTotal.candidatePairs += local.candidatePairs;
        grandTotal.reachQueries += local.reachQueries;
    };

    {
        WorkerPool pool(jobs, workerBody);
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i])
                continue; // resumed from the checkpoint journal
            if (opts.failFast &&
                abortDispatch.load(std::memory_order_relaxed)) {
                // Mark everything not yet dispatched as skipped; the
                // producer owns these slots until they are pushed.
                TraceRunResult &slot = result.traces[i];
                slot.path = corpus.files[i];
                slot.status = TraceRunStatus::Skipped;
                slot.error = "--fail-fast after an earlier failure";
                continue;
            }
            queue.push(i);
        }
        queue.close();
        pool.join();
    }

    result.metrics.wallSeconds = secondsSince(wallStart);
    result.metrics.stageTotal = grandTotal.stages;
    result.metrics.analysisStages = grandTotal.analysis;
    result.metrics.candidatePairs = grandTotal.candidatePairs;
    result.metrics.reachQueries = grandTotal.reachQueries;
    result.metrics.peakQueueDepth = queue.peakDepth();
    for (const auto &t : result.traces) {
        result.metrics.bytesRead += t.fileBytes;
        if (t.ok()) {
            ++result.metrics.analyzed;
            if (t.salvaged)
                ++result.metrics.salvaged;
        } else if (t.failed()) {
            ++result.metrics.failed;
        } else {
            ++result.metrics.skipped;
        }
    }

    // Publish the batch into the shared registry alongside the
    // analysis.* and rt.* series; the JSON report keeps its own
    // schema-stable copy of these numbers.
    obs::counter("batch.traces").add(result.metrics.corpusTraces);
    obs::counter("batch.analyzed").add(result.metrics.analyzed);
    obs::counter("batch.failed").add(result.metrics.failed);
    obs::counter("batch.salvaged").add(result.metrics.salvaged);
    obs::counter("batch.bytes_read").add(result.metrics.bytesRead);
    obs::gauge("batch.jobs").set(result.metrics.jobs);
    obs::gauge("batch.peak_queue_depth")
        .set(result.metrics.peakQueueDepth);
    return result;
}

} // namespace wmr
