file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_queue.dir/bench_fig2_queue.cc.o"
  "CMakeFiles/bench_fig2_queue.dir/bench_fig2_queue.cc.o.d"
  "bench_fig2_queue"
  "bench_fig2_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
