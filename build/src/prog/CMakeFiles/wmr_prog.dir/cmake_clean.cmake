file(REMOVE_RECURSE
  "CMakeFiles/wmr_prog.dir/assembler.cc.o"
  "CMakeFiles/wmr_prog.dir/assembler.cc.o.d"
  "CMakeFiles/wmr_prog.dir/builder.cc.o"
  "CMakeFiles/wmr_prog.dir/builder.cc.o.d"
  "CMakeFiles/wmr_prog.dir/instr.cc.o"
  "CMakeFiles/wmr_prog.dir/instr.cc.o.d"
  "CMakeFiles/wmr_prog.dir/program.cc.o"
  "CMakeFiles/wmr_prog.dir/program.cc.o.d"
  "libwmr_prog.a"
  "libwmr_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
