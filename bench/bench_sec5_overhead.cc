/**
 * @file
 * Section 5 overhead claims:
 *
 *  (1) Section 4.1's tracing scheme — bit-vector READ/WRITE sets per
 *      computation event — beats tracing every memory operation:
 *      trace bytes per operation drop by an order of magnitude.
 *  (2) Post-mortem analysis cost scales with EVENTS, not operations:
 *      coarser events (longer computation runs) make analysis
 *      cheaper for the same operation count.
 *  (3) On-the-fly detection avoids trace storage entirely but does
 *      work on every operation (the run-time overhead trade-off),
 *      with FastTrack-style epochs recovering most of the cost.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "onthefly/epoch_detector.hh"
#include "onthefly/vc_detector.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

Program
workloadProgram(std::uint32_t blocks, std::uint64_t seed = 11,
                std::uint32_t opsPerBlock = 8)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 4;
    cfg.blocksPerProc = blocks;
    cfg.opsPerBlock = opsPerBlock;
    cfg.dataWords = 64;
    cfg.numLocks = 8;
    cfg.unlockedProb = 0.05;
    return randomProgram(cfg);
}

ExecutionResult
execOf(const Program &p, std::uint64_t seed = 11)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    return runProgram(p, opts);
}

void
reproduce()
{
    section("(1) trace size: full-op records vs bit-vector events");
    std::printf("  %-10s %12s %14s %14s %12s %12s\n", "ops",
                "events", "full bytes", "event bytes", "B/op full",
                "B/op event");
    for (const std::uint32_t blocks : {5u, 20u, 80u, 320u}) {
        const auto res = execOf(workloadProgram(blocks));
        const auto trace = buildTrace(res); // production mode: no
                                            // member-op lists
        const auto fullBytes = serializeFullOps(res.ops).size();
        const auto eventBytes = serializeTrace(trace).size();
        std::printf("  %-10zu %12zu %14zu %14zu %12.2f %12.2f\n",
                    res.ops.size(), trace.events().size(), fullBytes,
                    eventBytes,
                    static_cast<double>(fullBytes) /
                        static_cast<double>(res.ops.size()),
                    static_cast<double>(eventBytes) /
                        static_cast<double>(res.ops.size()));
    }
    note("'recording the READ and WRITE sets is in general more "
         "efficient than");
    note(" tracing every memory operation' (Sec. 4.1).");

    section("(1b) ...and the gap grows with the computation-run "
            "length");
    std::printf("  %-14s %10s %12s %12s %10s\n", "ops/block",
                "ops", "B/op full", "B/op event", "ratio");
    for (const std::uint32_t opb : {2u, 8u, 32u, 128u}) {
        const auto res = execOf(workloadProgram(20, 11, opb));
        const auto trace = buildTrace(res);
        const double full =
            static_cast<double>(serializeFullOps(res.ops).size()) /
            static_cast<double>(res.ops.size());
        const double event =
            static_cast<double>(serializeTrace(trace).size()) /
            static_cast<double>(res.ops.size());
        std::printf("  %-14u %10zu %12.2f %12.2f %9.1fx\n", opb,
                    res.ops.size(), full, event, full / event);
    }
    note("long unsynchronized computation phases are where the "
         "bit-vector scheme");
    note("pays off: many operations fold into one event record.");

    section("(2) analysis cost follows events, not operations");
    std::printf("  %-14s %10s %10s  (same execution, different "
                "tracing granularity)\n",
                "maxCompRun", "events", "races");
    const auto res = execOf(workloadProgram(80));
    for (const std::uint32_t run : {1u, 4u, 16u, 0u}) {
        TraceBuildOptions t;
        t.maxCompRun = run;
        const auto trace = buildTrace(res, t);
        const auto det = analyzeTrace(trace);
        const std::string label =
            run == 0 ? "unbounded" : std::to_string(run);
        std::printf("  %-14s %10zu %10zu\n", label.c_str(),
                    trace.events().size(), det.races().size());
    }
    note("timings below (BM_AnalyzeGranularity) quantify the gap.");

    section("(3) on-the-fly work counters (per operation)");
    std::printf("  %-10s %14s %14s %16s %14s\n", "detector",
                "ops", "vector joins", "epoch checks", "races");
    {
        const Program p = workloadProgram(80);
        VcDetector vc(p.numProcs(), p.memWords());
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = 11;
        opts.sink = &vc;
        const auto r1 = runProgram(p, opts);
        std::printf("  %-10s %14llu %14llu %16llu %14llu\n", "VC",
                    static_cast<unsigned long long>(
                        vc.stats().opsProcessed),
                    static_cast<unsigned long long>(
                        vc.stats().clockJoins),
                    static_cast<unsigned long long>(
                        vc.stats().epochChecks),
                    static_cast<unsigned long long>(
                        vc.stats().racesReported));

        EpochDetector ep(p.numProcs(), p.memWords());
        for (const auto &op : r1.ops)
            ep.onOp(op);
        std::printf("  %-10s %14llu %14llu %16llu %14llu\n",
                    "FastTrack",
                    static_cast<unsigned long long>(
                        ep.stats().opsProcessed),
                    static_cast<unsigned long long>(
                        ep.stats().clockJoins),
                    static_cast<unsigned long long>(
                        ep.stats().epochChecks),
                    static_cast<unsigned long long>(
                        ep.stats().racesReported));
    }
    note("on-the-fly methods do O(1)-O(P) work on EVERY operation "
         "but write no trace");
    note("files (Sec. 5's storage-vs-runtime trade).");
}

void
BM_TraceWriteEventFormat(benchmark::State &state)
{
    const auto res = execOf(workloadProgram(
        static_cast<std::uint32_t>(state.range(0))));
    for (auto _ : state) {
        const auto trace = buildTrace(res);
        benchmark::DoNotOptimize(serializeTrace(trace).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_TraceWriteEventFormat)->Arg(20)->Arg(80);

void
BM_TraceWriteFullOps(benchmark::State &state)
{
    const auto res = execOf(workloadProgram(
        static_cast<std::uint32_t>(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(serializeFullOps(res.ops).size());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_TraceWriteFullOps)->Arg(20)->Arg(80);

void
BM_AnalyzeGranularity(benchmark::State &state)
{
    const auto res = execOf(workloadProgram(80));
    TraceBuildOptions t;
    t.maxCompRun = static_cast<std::uint32_t>(state.range(0));
    const auto trace = buildTrace(res, t);
    for (auto _ : state) {
        auto det = analyzeTrace(trace);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.counters["events"] =
        static_cast<double>(trace.events().size());
}
BENCHMARK(BM_AnalyzeGranularity)->Arg(1)->Arg(16)->Arg(0);

void
BM_OnTheFlyVc(benchmark::State &state)
{
    const Program p = workloadProgram(80);
    const auto res = execOf(p);
    for (auto _ : state) {
        VcDetector det(p.numProcs(), p.memWords());
        for (const auto &op : res.ops)
            det.onOp(op);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_OnTheFlyVc);

void
BM_OnTheFlyEpoch(benchmark::State &state)
{
    const Program p = workloadProgram(80);
    const auto res = execOf(p);
    for (auto _ : state) {
        EpochDetector det(p.numProcs(), p.memWords());
        for (const auto &op : res.ops)
            det.onOp(op);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_OnTheFlyEpoch);

} // namespace

WMR_BENCH_MAIN(reproduce)
