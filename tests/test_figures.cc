/**
 * @file
 * Figure-by-figure reproduction tests: every figure of the paper is
 * re-created and its depicted properties are machine-checked.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "mc/scp_witness.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

// ------------------------------------------------------------------
// Figure 1(a): execution WITH data races.
// ------------------------------------------------------------------

TEST(Figure1a, ScExecutionExhibitsTheDataRace)
{
    const auto det = analyzeExecution(
        runProgram(figure1a(), {.model = ModelKind::SC}));
    EXPECT_EQ(det.races().size(), 1u);
    EXPECT_TRUE(det.races()[0].isDataRace);
    EXPECT_EQ(det.partitions().firstPartitions.size(), 1u);
}

TEST(Figure1a, WeakExecutionViolatesScExactlyAsDepicted)
{
    // "it is possible for P2 to read the new value for y but the old
    //  value for x, thereby violating sequential consistency"
    const auto s = stageFigure1aViolation();
    EXPECT_EQ(s.result.finalRegs[1][0], 1); // Read(y) -> new value
    EXPECT_EQ(s.result.finalRegs[1][1], 0); // Read(x) -> old value
    EXPECT_GT(s.result.staleReads, 0u);

    // The detector still reports the race, and it is an SCP race: the
    // same operations race in a sequentially consistent execution.
    const auto det = analyzeExecution(s.result);
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_TRUE(det.scp().raceInScp[0]);
}

// ------------------------------------------------------------------
// Figure 1(b): execution WITHOUT data races.
// ------------------------------------------------------------------

TEST(Figure1b, RaceFreeUnderEveryModelAndScEquivalent)
{
    for (const auto kind : kAllModels) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(figure1b(), opts);
            const auto det = analyzeExecution(res);
            EXPECT_FALSE(det.anyDataRace());
            // Condition 3.4(1): the execution is SC.
            EXPECT_EQ(res.staleReads, 0u);
            EXPECT_TRUE(det.scp().wholeExecutionSc);
        }
    }
}

TEST(Figure1b, So1EdgeOrdersTheConflictingAccesses)
{
    const auto res = runProgram(figure1b(), {.model = ModelKind::WO});
    const auto det = analyzeExecution(res);
    // Writes of P1 happen-before reads of P2 via Unset -> Test&Set.
    const auto &trace = det.trace();
    const EventId w = trace.procEvents(0)[0];
    const EventId r = trace.procEvents(1).back();
    EXPECT_TRUE(det.hbReach().reaches(w, r));
}

// ------------------------------------------------------------------
// Figure 2: the queue fragment and its weak execution.
// ------------------------------------------------------------------

class Figure2 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scenario_ = stageFigure2bExecution();
        det_ = std::make_unique<DetectionResult>(
            analyzeExecution(scenario_.result));
    }

    Scenario scenario_;
    std::unique_ptr<DetectionResult> det_;
};

TEST_F(Figure2, P2DequeuesTheStaleOffset37)
{
    // "Instead it reads an old value, in this case 37."
    EXPECT_EQ(scenario_.result.finalRegs[1][2], 37);
    // And that read is the first stale read of the execution.
    const MemOp &op =
        scenario_.result.ops[scenario_.result.firstStaleRead];
    EXPECT_EQ(op.addr, scenario_.program.addrOf("Q"));
    EXPECT_EQ(op.value, 37);
}

TEST_F(Figure2, SequentiallyConsistentAndNonScRacesCoexist)
{
    // The depicted execution has (1) the SC data races on Q/QEmpty
    // between P1 and P2 and (2) the non-SC data races on the region
    // between P2 and P3.
    ASSERT_EQ(det_->races().size(), 2u);
    int scRaces = 0, nonScRaces = 0;
    for (RaceId r = 0; r < det_->races().size(); ++r) {
        if (det_->scp().raceInScp[r])
            ++scRaces;
        else
            ++nonScRaces;
    }
    EXPECT_EQ(scRaces, 1);
    EXPECT_EQ(nonScRaces, 1);
}

TEST_F(Figure2, FirstPartitionIsTheQueueRace)
{
    ASSERT_EQ(det_->partitions().firstPartitions.size(), 1u);
    const auto &first =
        det_->partitions()
            .partitions[det_->partitions().firstPartitions[0]];
    ASSERT_EQ(first.races.size(), 1u);
    const auto &race = det_->races()[first.races[0]];
    const Addr q = scenario_.program.addrOf("Q");
    const Addr qe = scenario_.program.addrOf("QEmpty");
    EXPECT_EQ(race.addrs, (std::vector<Addr>{q, qe}));
    EXPECT_TRUE(det_->scp().raceInScp[first.races[0]]);
}

TEST_F(Figure2, RegionRacesAreNonFirstAndNonSc)
{
    // "On a sequentially consistent system, P2 could never have
    //  returned the value 37, and hence these races would never have
    //  occurred."
    for (std::size_t i = 0; i < det_->partitions().partitions.size();
         ++i) {
        const auto &part = det_->partitions().partitions[i];
        if (part.first)
            continue;
        for (const auto r : part.races) {
            EXPECT_FALSE(det_->scp().raceInScp[r]);
            // Region addresses, not the queue variables.
            for (const auto addr : det_->races()[r].addrs)
                EXPECT_GE(addr, 3u);
        }
    }
}

TEST_F(Figure2, ScpBoundaryMatchesTheDepiction)
{
    // Figure 2(b) draws "End of SCP" after P2's Unset(s): P2's reads
    // of QEmpty and Q and its Unset are IN the SCP; its region work
    // is outside.
    const auto &trace = det_->trace();
    const auto &scp = det_->scp();
    const auto &p2 = trace.procEvents(1);
    // First events of P2: computation {read QEmpty, read Q}, sync
    // Unset.  Both fully in SCP.
    EXPECT_EQ(scp.membership(p2[0]), ScpMembership::Full);
    EXPECT_EQ(scp.membership(p2[1]), ScpMembership::Full);
    // The region-work computation event is entirely outside.
    EXPECT_EQ(scp.membership(p2[2]), ScpMembership::Outside);
    // P1 and P3 never diverge.
    for (const auto e : trace.procEvents(0))
        EXPECT_EQ(scp.membership(e), ScpMembership::Full);
    for (const auto e : trace.procEvents(2))
        EXPECT_EQ(scp.membership(e), ScpMembership::Full);
}

TEST_F(Figure2, Condition34Holds)
{
    const auto bad = checkCondition34(det_->races(), det_->scp(),
                                      det_->augmented());
    EXPECT_TRUE(bad.empty());
}

TEST_F(Figure2, WitnessEseqContainsTheQueueRace)
{
    // Theorem 4.2 constructively: replaying the SCP prefix under SC
    // yields an execution Eseq whose races include a Q/QEmpty race.
    const auto w = buildScpWitness(scenario_.program, scenario_.result);
    ASSERT_TRUE(w.prefixMatched);
    EXPECT_FALSE(w.eseqRaces.empty());
}

// ------------------------------------------------------------------
// Figure 3: the augmented graph with first / non-first partitions.
// ------------------------------------------------------------------

TEST_F(Figure2, Figure3PartitionOrdering)
{
    // The non-first partition must be ordered after the first one by
    // the partial order P (Def. 4.1) realized as G' reachability.
    const auto &parts = det_->partitions();
    ASSERT_EQ(parts.partitions.size(), 2u);
    const auto &first = parts.partitions[parts.firstPartitions[0]];
    for (const auto &part : parts.partitions) {
        if (part.first)
            continue;
        EXPECT_TRUE(det_->augmented().reach().componentReaches(
            first.component, part.component));
        EXPECT_FALSE(det_->augmented().reach().componentReaches(
            part.component, first.component));
    }
}

TEST_F(Figure2, Figure3ReportShowsBothPartitions)
{
    const auto text = formatReport(*det_, &scenario_.program);
    EXPECT_NE(text.find("first partition"), std::string::npos);
    EXPECT_NE(text.find("non-first partition"), std::string::npos);
    EXPECT_NE(text.find("Q"), std::string::npos);
    EXPECT_NE(text.find("QEmpty"), std::string::npos);
}

} // namespace
} // namespace wmr
