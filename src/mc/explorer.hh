/**
 * @file
 * Exhaustive enumeration of the sequentially consistent executions of
 * a (small) program — the ground-truth oracle behind the paper's
 * definitions.
 *
 * Definitions 2.4 and 3.2 quantify over "some/all sequentially
 * consistent execution(s)": a program is data-race-free iff ALL its
 * SC executions are race-free, and a detected race is a valid report
 * iff it occurs in SOME SC execution.  The explorer decides both for
 * programs small enough to enumerate, which is what the property
 * tests and the accuracy benchmark need.
 *
 * The exploration branches only at shared-memory operations (local
 * instructions of the chosen processor run atomically with it), which
 * is sound for race detection because local instructions neither read
 * nor write shared state.
 */

#ifndef WMR_MC_EXPLORER_HH
#define WMR_MC_EXPLORER_HH

#include <functional>

#include "mc/static_race.hh"
#include "prog/program.hh"
#include "sim/executor.hh"

namespace wmr {

/** Exploration bounds. */
struct McLimits
{
    /** Stop after this many complete executions. */
    std::uint64_t maxExecutions = 50'000;

    /** Per-execution instruction bound (spin-loop guard). */
    std::uint64_t maxStepsPerExec = 20'000;

    /**
     * Prune no-progress cycles: when a scheduling choice returns the
     * interpreter to a state already on the current path (a failed
     * spin iteration changed nothing), the subtree is skipped — the
     * same behaviors are reachable through the sibling branch where
     * the spinning processor simply is not scheduled.  Without this,
     * programs with spin locks have an INFINITE execution tree.
     * Disable only for loop-free programs.
     */
    bool pruneCycles = true;
};

/** Ground truth extracted from the explored SC executions. */
struct ScGroundTruth
{
    /** All executions were enumerated within the limits. */
    bool exhaustive = false;

    /** Complete executions explored. */
    std::uint64_t executions = 0;

    /** Executions that hit the step bound (treated as incomplete). */
    std::uint64_t truncated = 0;

    /** Subtrees skipped by no-progress cycle pruning. */
    std::uint64_t cyclesPruned = 0;

    /** Some explored SC execution exhibited a data race. */
    bool anyDataRace = false;

    /** Static data races observed across the explored executions. */
    StaticRaceSet races;

    /** @return data-race-freedom verdict (valid when exhaustive). */
    bool
    dataRaceFree() const
    {
        return !anyDataRace;
    }
};

/**
 * Callback invoked per complete SC execution; return false to stop
 * exploring early.
 */
using ExecutionCallback =
    std::function<bool(const ExecutionResult &)>;

/**
 * Enumerate SC executions of @p prog within @p limits.  When
 * @p onExecution is provided it is invoked for each one.  The
 * returned ground truth aggregates dynamic race analyses of every
 * explored execution.
 */
ScGroundTruth exploreScExecutions(const Program &prog,
                                  const McLimits &limits = {},
                                  const ExecutionCallback &onExecution =
                                      nullptr);

/**
 * @return whether some SC execution within @p limits exhibits a data
 * race matching @p target (static identity).
 */
bool raceFeasibleOnSc(const Program &prog, const StaticRace &target,
                      const McLimits &limits = {});

} // namespace wmr

#endif // WMR_MC_EXPLORER_HH
