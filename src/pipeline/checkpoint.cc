#include "pipeline/checkpoint.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/string_util.hh"
#include "fault/fault.hh"

namespace wmr {

namespace {

// Journal line: tag, status, path, 12 counters/flags, error, end
// marker — tab-separated.  The trailing marker is the torn-line
// detector: a write cut short by SIGKILL loses it (or whole fields)
// and the loader drops the line.
constexpr const char *kTag = "wmrck1";
constexpr const char *kEndMarker = ".";
constexpr std::size_t kFields = 19;

/** Escape tabs/newlines/backslashes so fields never split lines. */
std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '\\':
            out += '\\';
            break;
          case 't':
            out += '\t';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default: // unknown escape: keep both chars verbatim
            out += '\\';
            out += s[i];
        }
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "0")
        out = false;
    else if (s == "1")
        out = true;
    else
        return false;
    return true;
}

bool
parseStatus(const std::string &s, TraceRunStatus &out)
{
    if (s == "ok")
        out = TraceRunStatus::Ok;
    else if (s == "io_error")
        out = TraceRunStatus::IoError;
    else if (s == "format_error")
        out = TraceRunStatus::FormatError;
    else // "skipped" is not a completed state; never journaled
        return false;
    return true;
}

} // namespace

std::string
checkpointLine(const TraceRunResult &r)
{
    std::string out;
    out += kTag;
    out += '\t';
    out += traceRunStatusName(r.status);
    out += '\t';
    out += escapeField(r.path);
    const std::uint64_t counters[] = {
        r.fileBytes,      r.events,
        r.syncEvents,     r.ops,
        r.races,          r.dataRaces,
        r.partitions,     r.firstPartitions,
        r.reportedRaces,  r.unresolvedPairings,
        r.droppedDataRecords,
    };
    for (const std::uint64_t c : counters)
        out += strformat("\t%llu",
                         static_cast<unsigned long long>(c));
    out += strformat("\t%d\t%d\t%d", r.anyDataRace ? 1 : 0,
                     r.wholeExecutionSc ? 1 : 0, r.salvaged ? 1 : 0);
    out += '\t';
    out += escapeField(r.error);
    out += '\t';
    out += kEndMarker;
    return out;
}

bool
parseCheckpointLine(const std::string &line, TraceRunResult &out)
{
    if (line.empty() || line[0] == '#')
        return false;

    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    if (fields.size() != kFields || fields[0] != kTag ||
        fields[kFields - 1] != kEndMarker)
        return false;

    TraceRunResult r;
    if (!parseStatus(fields[1], r.status))
        return false;
    r.path = unescapeField(fields[2]);
    if (r.path.empty())
        return false;
    std::uint64_t *counters[] = {
        &r.fileBytes,      &r.events,
        &r.syncEvents,     &r.ops,
        &r.races,          &r.dataRaces,
        &r.partitions,     &r.firstPartitions,
        &r.reportedRaces,  &r.unresolvedPairings,
        &r.droppedDataRecords,
    };
    for (std::size_t i = 0; i < 11; ++i) {
        if (!parseU64(fields[3 + i], *counters[i]))
            return false;
    }
    if (!parseBool(fields[14], r.anyDataRace) ||
        !parseBool(fields[15], r.wholeExecutionSc) ||
        !parseBool(fields[16], r.salvaged))
        return false;
    r.error = unescapeField(fields[17]);
    if (r.status != TraceRunStatus::Ok && r.error.empty())
        return false; // a failure line must say why
    out = std::move(r);
    return true;
}

CheckpointLoad
loadCheckpoint(const std::string &path)
{
    CheckpointLoad load;
    std::ifstream in(path);
    if (!in)
        return load; // missing journal: fresh start
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        TraceRunResult r;
        if (parseCheckpointLine(line, r))
            load.entries.push_back(std::move(r));
        else
            ++load.tornLines;
    }
    return load;
}

CheckpointWriter::~CheckpointWriter()
{
    if (file_)
        std::fclose(file_);
}

bool
CheckpointWriter::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_) {
        error_ = "checkpoint already open";
        return false;
    }
    // If a crash tore the journal's final line, appending would glue
    // the next entry onto the fragment and lose it too; start on a
    // fresh line instead.
    bool needNewline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            char last = '\0';
            in.get(last);
            needNewline = last != '\n';
        }
    }
    file_ = std::fopen(path.c_str(), "ae");
    if (!file_) {
        error_ = "cannot open checkpoint file '" + path +
                 "': " + std::strerror(errno);
        return false;
    }
    if (needNewline)
        std::fputc('\n', file_);
    return true;
}

bool
CheckpointWriter::append(const TraceRunResult &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_) {
        error_ = "checkpoint not open";
        return false;
    }
    const std::string line = checkpointLine(r) + "\n";
    // Fault injection: a failed journal append (disk full under the
    // checkpoint).  Callers must treat it as a counted degradation —
    // the batch continues, it just loses resume coverage.
    if (fault::at("pipeline.checkpoint.fail")) {
        errno = ENOSPC;
        error_ = std::string("checkpoint write failed: ") +
                 std::strerror(errno);
        return false;
    }
    // One fwrite per line + an immediate flush: the line reaches the
    // OS before the next trace starts, so a SIGKILL costs at most
    // the line being written right now (and the loader skips a torn
    // one).
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        error_ = std::string("checkpoint write failed: ") +
                 std::strerror(errno);
        return false;
    }
    return true;
}

std::string
quarantineManifest(const BatchResult &batch)
{
    std::size_t failed = 0;
    for (const auto &tr : batch.traces) {
        if (tr.failed())
            ++failed;
    }
    if (failed == 0)
        return "";
    std::string out;
    out += "# wmrace quarantine manifest: trace files that failed "
           "to load or parse\n";
    out += strformat("# source corpus: %s\n",
                     batch.corpus.source.c_str());
    out += "# this file is itself a corpus manifest: re-run with "
           "`wmrace batch <this file>`\n";
    for (const auto &tr : batch.traces) {
        if (!tr.failed())
            continue;
        out += strformat("# %s: %s\n",
                         traceRunStatusName(tr.status),
                         tr.error.c_str());
        out += tr.path;
        out += '\n';
    }
    return out;
}

} // namespace wmr
