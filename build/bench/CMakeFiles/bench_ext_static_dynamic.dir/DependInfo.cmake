
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_static_dynamic.cc" "bench/CMakeFiles/bench_ext_static_dynamic.dir/bench_ext_static_dynamic.cc.o" "gcc" "bench/CMakeFiles/bench_ext_static_dynamic.dir/bench_ext_static_dynamic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/wmr_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/onthefly/CMakeFiles/wmr_onthefly.dir/DependInfo.cmake"
  "/root/repo/build/src/staticdet/CMakeFiles/wmr_staticdet.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wmr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/wmr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/wmr_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/wmr_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wmr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
