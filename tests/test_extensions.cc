/**
 * @file
 * Tests of the extension modules: DOT export and the on-the-fly
 * first-race filter (the paper's Section 5/6 future work).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "detect/analysis.hh"
#include "detect/dot_export.hh"
#include "onthefly/first_race_filter.hh"
#include "prog/builder.hh"
#include "sim/scheduler.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(DotExport, ContainsNodesAndEdges)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto det = analyzeExecution(s.result);
    const auto dot = toDot(det, &s.program);
    EXPECT_NE(dot.find("digraph hb1"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_p0"), std::string::npos);
    EXPECT_NE(dot.find("label=\"po\""), std::string::npos);
    EXPECT_NE(dot.find("dir=both"), std::string::npos);
    EXPECT_NE(dot.find("(FIRST)"), std::string::npos);
    EXPECT_NE(dot.find("Q"), std::string::npos);

    // so1 edges appear when a pairing exists (figure 1b).
    const auto paired = analyzeExecution(
        runProgram(figure1b(), {.model = ModelKind::WO}));
    const auto dot2 = toDot(paired, nullptr);
    EXPECT_NE(dot2.find("label=\"so1\""), std::string::npos);
}

TEST(DotExport, ScpShadingPresent)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto det = analyzeExecution(s.result);
    const auto dot = toDot(det, &s.program);
    EXPECT_NE(dot.find("#d4edd4"), std::string::npos); // in SCP
    EXPECT_NE(dot.find("#f4d3d3"), std::string::npos); // diverged
}

TEST(DotExport, OptionsDisableFeatures)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto det = analyzeExecution(s.result);
    DotOptions opts;
    opts.showRaceEdges = false;
    opts.processorColumns = false;
    opts.shadeScp = false;
    const auto dot = toDot(det, &s.program, opts);
    EXPECT_EQ(dot.find("dir=both"), std::string::npos);
    EXPECT_EQ(dot.find("subgraph"), std::string::npos);
    EXPECT_EQ(dot.find("#d4edd4"), std::string::npos);
}

TEST(DotExport, WritesFile)
{
    const auto s = stageFigure1aViolation();
    const auto det = analyzeExecution(s.result);
    const std::string path = "/tmp/wmr_test_graph.dot";
    writeDotFile(det, path, &s.program);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_EQ(first_line, "digraph hb1 {");
    in.close();
    std::remove(path.c_str());
}

TEST(FirstRaceFilter, SilentOnRaceFreePrograms)
{
    const Program p = randomRaceFreeProgram(4);
    FirstRaceFilter filter(p.numProcs(), p.memWords());
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 4;
    opts.sink = &filter;
    runProgram(p, opts);
    EXPECT_TRUE(filter.classified().empty());
    EXPECT_TRUE(filter.firstRaces().empty());
}

TEST(FirstRaceFilter, EarliestRaceIsFirst)
{
    // Figure 1a races on both x and y between the same processors;
    // post-mortem they form ONE mutually-affecting partition.  The
    // online approximation keeps the earliest-reported race first
    // and demotes the rest of the cycle (documented behavior).
    const Program p = figure1a();
    FirstRaceFilter filter(p.numProcs(), p.memWords());
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.seed = 2;
    opts.sink = &filter;
    runProgram(p, opts);
    ASSERT_FALSE(filter.classified().empty());
    EXPECT_TRUE(filter.classified()[0].first);
    EXPECT_EQ(filter.firstRaces().size(), 1u);
}

TEST(FirstRaceFilter, ChainedRaceIsDemoted)
{
    // P0 writes a; P1 reads a (race 1), then syncs with P2 through a
    // release/acquire pair, and P2 writes c while P0 reads c... keep
    // the paper shape: race 2's endpoint is hb1-after race 1's.
    ProgramBuilder pb;
    pb.var("a", 0).var("c", 1).var("d", 2, 1);
    ThreadBuilder p0, p1, p2;
    p0.storei(0, 1).halt();               // write a
    p1.load(1, 0)                          // read a (race 1)
      .unset(2)                            // split + publish clock
      .storei(1, 1)                        // write c (race 2 endpoint)
      .halt();
    p2.load(1, 1).halt();                  // read c (race 2)
    pb.thread(p0).thread(p1).thread(p2);
    const Program p = pb.build();

    // Deterministic order: P0's write, P1 fully, then P2's read.
    ScriptedScheduler sched({0, 1, 1, 1, 2});
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    FirstRaceFilter filter(p.numProcs(), p.memWords());
    opts.sink = &filter;
    runProgram(p, opts);

    ASSERT_EQ(filter.classified().size(), 2u);
    // Race on a first, race on c affected.
    EXPECT_TRUE(filter.classified()[0].first);
    EXPECT_EQ(filter.classified()[0].race.addr, 0u);
    EXPECT_FALSE(filter.classified()[1].first);
    EXPECT_EQ(filter.classified()[1].race.addr, 1u);
    EXPECT_EQ(filter.firstRaces().size(), 1u);
}

TEST(FirstRaceFilter, IndependentRacesBothFirst)
{
    // Two completely unrelated races on different processors pairs.
    ProgramBuilder pb;
    pb.var("a", 0).var("b", 1);
    ThreadBuilder p0, p1, p2, p3;
    p0.storei(0, 1).halt();
    p1.load(1, 0).halt();
    p2.storei(1, 1).halt();
    p3.load(1, 1).halt();
    pb.thread(p0).thread(p1).thread(p2).thread(p3);
    const Program p = pb.build();

    ScriptedScheduler sched({0, 1, 2, 3});
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    FirstRaceFilter filter(p.numProcs(), p.memWords());
    opts.sink = &filter;
    runProgram(p, opts);

    ASSERT_EQ(filter.classified().size(), 2u);
    EXPECT_TRUE(filter.classified()[0].first);
    EXPECT_TRUE(filter.classified()[1].first);
}

TEST(FirstRaceFilter, AgreesWithPostMortemOnFirstExistence)
{
    // Whenever the post-mortem method reports first partitions, the
    // online filter keeps at least one race classified first (the
    // filter is an approximation, but never demotes ALL races: the
    // very first reported race has no earlier marks).
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = randomRacyProgram(seed);
        FirstRaceFilter filter(p.numProcs(), p.memWords());
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.sink = &filter;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);
        if (det.partitions().firstPartitions.empty())
            continue;
        EXPECT_FALSE(filter.firstRaces().empty()) << "seed " << seed;
    }
}

} // namespace
} // namespace wmr
