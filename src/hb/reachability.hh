/**
 * @file
 * Reachability queries over event graphs that contain po chains.
 *
 * Races are "conflicting events not ordered by hb1" (Def. 2.4), so
 * the detector needs many reaches(a,b) queries over graphs with up to
 * hundreds of thousands of nodes.  A transitive-closure bitset would
 * cost O(V^2) memory; instead we exploit the structure every graph we
 * query has: it CONTAINS the po chains (consecutive events of a
 * processor are linked), so any component holding a later event of
 * processor p is reachable from any component holding an earlier one.
 *
 * That makes a per-processor "clock" over the SCC condensation exact:
 *   hi_C(p)    = max program-order index of C's events on processor p
 *   clock_C(p) = max of hi_D(p) over all D that reach C (incl. C)
 * and then, for distinct components A, B:
 *   A reaches B  ⟺  ∃p: hi_A(p) ≥ 0  ∧  clock_B(p) ≥ hi_A(p).
 * (⇐ holds because the component holding proc p's event with index
 * clock_B(p) reaches B, and A reaches that component along p's po
 * chain; ⇒ is monotonicity of clock along paths.)
 *
 * Cycles (possible in weak executions and guaranteed in the
 * augmented graph G') are handled by the condensation: events in one
 * SCC are mutually reachable.  Memory is O(#components × #procs).
 *
 * Clock propagation can run on multiple threads: the condensation is
 * stratified into longest-path levels and each level's components are
 * computed pull-style (from already-final predecessor clocks) in
 * parallel.  Every clock entry is a max over a fixed input set, so
 * the parallel build is bit-identical to the serial one; it is only
 * engaged where the level structure is wide enough to pay for the
 * per-level barrier (see ReachBuildStats::parallelClocks).
 */

#ifndef WMR_HB_REACHABILITY_HH
#define WMR_HB_REACHABILITY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "hb/hb_graph.hh"
#include "hb/scc.hh"

namespace wmr {

/** Shape/time facts of one ReachabilityIndex build. */
struct ReachBuildStats
{
    double sccSeconds = 0;   ///< SCC condensation
    double clockSeconds = 0; ///< clock propagation
    std::uint32_t components = 0;
    std::uint32_t levels = 0; ///< condensation levels (parallel path)
    bool parallelClocks = false; ///< level-parallel path engaged
};

/** Reachability oracle over an event graph containing po chains. */
class ReachabilityIndex
{
  public:
    /**
     * Build from an arbitrary adjacency that includes the po chains.
     *
     * @param graph adjacency list over events.
     * @param procOf processor of each event.
     * @param indexInProc program-order index of each event within
     *        its processor.
     * @param nprocs number of processors.
     * @param threads clock-propagation worker budget (0 = hardware
     *        concurrency).  Any value yields bit-identical clocks;
     *        extra threads are used only where profitable.
     */
    ReachabilityIndex(const AdjList &graph,
                      const std::vector<ProcId> &procOf,
                      const std::vector<std::uint32_t> &indexInProc,
                      ProcId nprocs, unsigned threads = 1);

    /** Convenience: build for the hb1 graph of @p trace. */
    ReachabilityIndex(const HbGraph &graph,
                      const ExecutionTrace &trace,
                      unsigned threads = 1);

    /** @return whether a path a →* b exists (true when a == b). */
    bool reaches(EventId a, EventId b) const;

    /**
     * @return whether hb1 orders the pair: a reaches b, b reaches a,
     * or both lie in one SCC (mutual order).  Distinct conflicting
     * events with ordered() == false form a race.
     */
    bool ordered(EventId a, EventId b) const;

    /** @return the underlying SCC decomposition. */
    const SccResult &scc() const { return scc_; }

    /** @return whether component @p a reaches component @p b. */
    bool componentReaches(std::uint32_t a, std::uint32_t b) const;

    /** @return shape/time facts of the build. */
    const ReachBuildStats &buildStats() const { return stats_; }

  private:
    void build(const AdjList &graph,
               const std::vector<ProcId> &procOf,
               const std::vector<std::uint32_t> &indexInProc,
               unsigned threads);
    void propagateSerial();
    bool propagateParallel(unsigned threads);

    std::int64_t &hi(std::uint32_t comp, ProcId p);
    std::int64_t &clock(std::uint32_t comp, ProcId p);
    std::int64_t hiAt(std::uint32_t comp, ProcId p) const;
    std::int64_t clockAt(std::uint32_t comp, ProcId p) const;

    ProcId nprocs_;
    SccResult scc_;
    std::vector<std::int64_t> hi_;      // [comp * nprocs + p]
    std::vector<std::int64_t> clock_;   // [comp * nprocs + p]
    ReachBuildStats stats_;
};

} // namespace wmr

#endif // WMR_HB_REACHABILITY_HH
