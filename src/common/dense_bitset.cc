#include "common/dense_bitset.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wmr {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t
wordsFor(std::size_t nbits)
{
    return (nbits + kWordBits - 1) / kWordBits;
}
} // namespace

DenseBitset::DenseBitset(std::size_t nbits)
    : nbits_(nbits), words_(wordsFor(nbits), 0)
{
}

void
DenseBitset::resize(std::size_t nbits)
{
    if (nbits <= nbits_)
        return;
    nbits_ = nbits;
    words_.resize(wordsFor(nbits), 0);
}

void
DenseBitset::set(std::size_t i)
{
    if (i >= nbits_)
        resize(i + 1);
    words_[i / kWordBits] |= (1ull << (i % kWordBits));
}

void
DenseBitset::reset(std::size_t i)
{
    if (i >= nbits_)
        return;
    words_[i / kWordBits] &= ~(1ull << (i % kWordBits));
}

bool
DenseBitset::test(std::size_t i) const
{
    if (i >= nbits_)
        return false;
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

void
DenseBitset::clear()
{
    std::fill(words_.begin(), words_.end(), 0ull);
}

std::size_t
DenseBitset::count() const
{
    std::size_t n = 0;
    for (const auto w : words_)
        n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
}

bool
DenseBitset::empty() const
{
    for (const auto w : words_) {
        if (w)
            return false;
    }
    return true;
}

DenseBitset &
DenseBitset::operator|=(const DenseBitset &other)
{
    if (other.nbits_ > nbits_)
        resize(other.nbits_);
    for (std::size_t i = 0; i < other.words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

DenseBitset &
DenseBitset::operator&=(const DenseBitset &other)
{
    const std::size_t common = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < common; ++i)
        words_[i] &= other.words_[i];
    for (std::size_t i = common; i < words_.size(); ++i)
        words_[i] = 0;
    return *this;
}

bool
DenseBitset::intersects(const DenseBitset &other) const
{
    const std::size_t common = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (words_[i] & other.words_[i])
            return true;
    }
    return false;
}

std::vector<std::uint32_t>
DenseBitset::toVector() const
{
    std::vector<std::uint32_t> out;
    out.reserve(count());
    forEach([&out](std::size_t i) {
        out.push_back(static_cast<std::uint32_t>(i));
    });
    return out;
}

bool
DenseBitset::operator==(const DenseBitset &other) const
{
    const std::size_t common = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (words_[i] != other.words_[i])
            return false;
    }
    for (std::size_t i = common; i < words_.size(); ++i) {
        if (words_[i])
            return false;
    }
    for (std::size_t i = common; i < other.words_.size(); ++i) {
        if (other.words_[i])
            return false;
    }
    return true;
}

DenseBitset
DenseBitset::fromWords(std::vector<std::uint64_t> words, std::size_t nbits)
{
    wmr_assert(words.size() >= wordsFor(nbits));
    DenseBitset bs;
    bs.nbits_ = nbits;
    bs.words_ = std::move(words);
    bs.words_.resize(wordsFor(nbits));
    return bs;
}

} // namespace wmr
