# Empty dependencies file for bench_sec5_accuracy.
# This may be replaced when dependencies are built.
