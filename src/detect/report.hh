/**
 * @file
 * Human-readable race reports.
 *
 * Renders a DetectionResult the way Section 4.2 prescribes reporting:
 * first partitions (and their races) prominently, non-first
 * partitions listed as affected follow-ups, SCP classification and
 * the Theorem 4.1 conclusion ("no data races ⇒ execution was
 * sequentially consistent") spelled out.  When the originating
 * Program is supplied, addresses print with their symbolic names and
 * races carry static instruction attribution.
 *
 * The rendering itself lives in report_model.hh: this header adapts
 * the whole-trace DetectionResult onto the engine-neutral ReportModel
 * so the streaming engine shares the exact same formatter.
 */

#ifndef WMR_DETECT_REPORT_HH
#define WMR_DETECT_REPORT_HH

#include <string>

#include "detect/analysis.hh"
#include "detect/report_model.hh"
#include "prog/program.hh"

namespace wmr {

/** Build the engine-neutral report model from a detection result. */
ReportModel buildReportModel(const DetectionResult &result);

/** Render one event as a one-line summary. */
std::string describeEvent(const Event &ev, const Program *prog);

/** Render one race as a one-line summary. */
std::string describeRace(const DetectionResult &result, RaceId r,
                         const Program *prog,
                         const ReportOptions &opts = {});

/** Render the full report. */
std::string formatReport(const DetectionResult &result,
                         const Program *prog = nullptr,
                         const ReportOptions &opts = {});

} // namespace wmr

#endif // WMR_DETECT_REPORT_HH
