#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "trace/segmented_io.hh"
#include "trace/wire_codec.hh"

namespace wmr {

namespace {

using wire::Decoder;
using wire::Encoder;
using wire::ParseFailure;
using wire::parseFail;

constexpr char kMagic[8] = {'W', 'M', 'R', 'T', 'R', 'C', '0', '1'};
constexpr char kFullOpMagic[8] = {'W', 'M', 'R', 'F',
                                  'O', 'P', '0', '1'};

/** Render the 8 magic bytes with non-printable bytes escaped, so an
 *  "unrecognized magic" error is copy-pasteable and unambiguous. */
std::string
printableMagic(const char magic[8])
{
    std::string out;
    for (std::size_t i = 0; i < 8; ++i) {
        const auto c = static_cast<unsigned char>(magic[i]);
        if (c >= 0x20 && c < 0x7f && c != '"' && c != '\\') {
            out += static_cast<char>(c);
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x", c);
            out += buf;
        }
    }
    return out;
}

} // namespace

std::vector<std::uint8_t>
serializeTrace(const ExecutionTrace &trace)
{
    Encoder enc;
    enc.raw(kMagic, sizeof(kMagic));
    enc.u64(trace.numProcs());
    enc.u64(trace.memWords());
    enc.u64(trace.firstStaleRead());
    enc.u64(trace.totalOps());
    enc.u64(trace.events().size());
    for (const auto &ev : trace.events()) {
        enc.u64(ev.kind == EventKind::Sync ? 1 : 0);
        enc.u64(ev.proc);
        enc.u64(ev.firstOp);
        enc.u64(ev.lastOp);
        enc.u64(ev.opCount);
        if (ev.kind == EventKind::Sync) {
            wire::encodeMemOp(enc, ev.syncOp);
            enc.u64(ev.pairedRelease);
        } else {
            wire::encodeBitset(enc, ev.readSet);
            wire::encodeBitset(enc, ev.writeSet);
            enc.u64(ev.memberOps.size());
            for (const auto oid : ev.memberOps)
                enc.u64(oid);
        }
    }
    return enc.take();
}

namespace {

/** The parse proper; throws ParseFailure on malformed input. */
ExecutionTrace
decodeTraceOrThrow(const std::vector<std::uint8_t> &bytes)
{
    Decoder dec(bytes);
    if (bytes.size() < sizeof(kMagic)) {
        parseFail("trace file: %zu byte(s) is shorter than any "
                  "wmrace container header",
                  bytes.size());
    }
    char magic[sizeof(kMagic)];
    dec.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        // Name the format we DID recognize, or print the magic we
        // didn't: serve/batch report malformed uploads precisely
        // instead of a generic failure.
        if (std::memcmp(magic, kFullOpMagic,
                        sizeof(kFullOpMagic)) == 0) {
            parseFail("trace file: this is a full-op file "
                      "(WMRFOP01); use the full-op reader");
        }
        parseFail("trace file: unrecognized magic \"%s\" (expected "
                  "WMRTRC01, WMRSEG01 or WMRFOP01)",
                  printableMagic(magic).c_str());
    }

    ExecutionTrace trace;
    // Sanity-bound the shape BEFORE allocating per-processor state:
    // a corrupt header must produce an error, not an OOM or a
    // narrowing-cast surprise.
    const std::uint64_t rawProcs = dec.u64();
    const std::uint64_t rawWords = dec.u64();
    if (rawProcs > kNoProc)
        parseFail("trace file: processor count %llu too large",
                  static_cast<unsigned long long>(rawProcs));
    if (rawWords > (1ull << 28))
        parseFail("trace file: memory universe %llu too large",
                  static_cast<unsigned long long>(rawWords));
    const auto procs = static_cast<ProcId>(rawProcs);
    const auto words = static_cast<Addr>(rawWords);
    trace.setShape(procs, words);
    trace.setFirstStaleRead(dec.u64());
    trace.setTotalOps(dec.u64());

    const std::uint64_t nevents = dec.u64();
    dec.checkCount(nevents, "event");
    // Events were serialized in id order and pairing references are
    // ids, so a single pass with post-hoc pairing patch suffices.
    std::vector<EventId> pairing(nevents, kNoEvent);
    for (std::uint64_t i = 0; i < nevents; ++i) {
        Event ev;
        ev.kind = dec.u64() ? EventKind::Sync : EventKind::Computation;
        const std::uint64_t proc = dec.u64();
        if (proc >= procs)
            parseFail("trace file: event processor %llu out of range",
                  static_cast<unsigned long long>(proc));
        ev.proc = static_cast<ProcId>(proc);
        ev.firstOp = dec.u64();
        ev.lastOp = dec.u64();
        ev.opCount = static_cast<std::uint32_t>(dec.u64());
        if (ev.kind == EventKind::Sync) {
            ev.syncOp = wire::decodeMemOp(dec);
            pairing[i] = static_cast<EventId>(dec.u64());
        } else {
            ev.readSet = wire::decodeBitset(dec);
            ev.writeSet = wire::decodeBitset(dec);
            const std::uint64_t nmembers = dec.u64();
            dec.checkCount(nmembers, "member op");
            ev.memberOps.reserve(nmembers);
            for (std::uint64_t m = 0; m < nmembers; ++m)
                ev.memberOps.push_back(dec.u64());
        }
        const EventId id = trace.addEvent(std::move(ev));
        if (id != static_cast<EventId>(i))
            parseFail("trace file: events out of id order");
    }
    for (std::uint64_t i = 0; i < nevents; ++i) {
        if (pairing[i] != kNoEvent) {
            trace.mutableEvent(static_cast<EventId>(i)).pairedRelease =
                pairing[i];
        }
    }
    if (!dec.done())
        parseFail("trace file: trailing bytes");
    return trace;
}

} // namespace

TraceReadResult
tryDeserializeTrace(const std::vector<std::uint8_t> &bytes)
{
    // Transparently accept the segmented container (strict read —
    // a damaged segmented file is routed to the salvage reader by
    // the callers that want tolerance).
    if (looksSegmented(bytes.data(), bytes.size())) {
        auto seg = tryReadSegmentedTrace(bytes);
        TraceReadResult res;
        res.status = seg.status;
        res.error = std::move(seg.error);
        res.trace = std::move(seg.trace);
        return res;
    }
    TraceReadResult res;
    try {
        res.trace = decodeTraceOrThrow(bytes);
    } catch (const ParseFailure &pf) {
        res.status = TraceIoStatus::FormatError;
        res.error = pf.message;
    } catch (const std::bad_alloc &) {
        res.status = TraceIoStatus::FormatError;
        res.error = "trace file: allocation failure during parse";
    }
    return res;
}

TraceReadResult
tryReadTraceFile(const std::string &path)
{
    obs::Span span("trace.read");
    span.annotate(path);
    obs::counter("trace.file_reads").inc();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        TraceReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "cannot open trace file '" + path + "'";
        return res;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        TraceReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "read error on trace file '" + path + "'";
        return res;
    }
    return tryDeserializeTrace(bytes);
}

ExecutionTrace
deserializeTrace(const std::vector<std::uint8_t> &bytes)
{
    auto res = tryDeserializeTrace(bytes);
    if (!res.ok())
        fatal("%s", res.error.c_str());
    return std::move(res.trace);
}

std::size_t
writeTraceFile(const ExecutionTrace &trace, const std::string &path)
{
    const auto bytes = serializeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("short write to trace file '%s'", path.c_str());
    return bytes.size();
}

ExecutionTrace
readTraceFile(const std::string &path)
{
    auto res = tryReadTraceFile(path);
    if (!res.ok())
        fatal("%s", res.error.c_str());
    return std::move(res.trace);
}

std::vector<std::uint8_t>
serializeFullOps(const std::vector<MemOp> &ops)
{
    Encoder enc;
    enc.raw(kFullOpMagic, sizeof(kFullOpMagic));
    enc.u64(ops.size());
    for (const auto &op : ops)
        wire::encodeMemOp(enc, op);
    return enc.take();
}

namespace {

/** The full-op parse proper; throws ParseFailure when malformed. */
std::vector<MemOp>
decodeFullOpsOrThrow(const std::vector<std::uint8_t> &bytes)
{
    Decoder dec(bytes);
    char magic[sizeof(kFullOpMagic)];
    dec.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kFullOpMagic, sizeof(kFullOpMagic)) != 0) {
        if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
            parseFail("full-op file: this is an event-format trace "
                      "(use the trace reader)");
        if (looksSegmented(
                reinterpret_cast<const std::uint8_t *>(magic),
                sizeof(magic)))
            parseFail("full-op file: this is a segmented event trace "
                      "(use the trace reader)");
        parseFail("full-op file: unrecognized magic \"%s\" (expected "
                  "WMRFOP01, WMRTRC01 or WMRSEG01)",
                  printableMagic(magic).c_str());
    }
    const std::uint64_t count = dec.u64();
    // Each op encodes to >= 10 bytes, but 1 byte/op is enough of a
    // bound to turn an absurd header count into an error, not an OOM.
    dec.checkCount(count, "full-op");
    std::vector<MemOp> ops;
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        ops.push_back(wire::decodeMemOp(dec));
    if (!dec.done())
        parseFail("full-op file: trailing bytes");
    return ops;
}

} // namespace

FullOpsReadResult
tryDeserializeFullOps(const std::vector<std::uint8_t> &bytes)
{
    FullOpsReadResult res;
    try {
        res.ops = decodeFullOpsOrThrow(bytes);
    } catch (const ParseFailure &pf) {
        res.status = TraceIoStatus::FormatError;
        res.error = pf.message;
    } catch (const std::bad_alloc &) {
        res.status = TraceIoStatus::FormatError;
        res.error = "full-op file: allocation failure during parse";
    }
    return res;
}

FullOpsReadResult
tryReadFullOpsFile(const std::string &path)
{
    FullOpsReadResult res;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        res.status = TraceIoStatus::IoError;
        res.error = "cannot open full-op file '" + path + "'";
        return res;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        res.status = TraceIoStatus::IoError;
        res.error = "read error on full-op file '" + path + "'";
        return res;
    }
    return tryDeserializeFullOps(bytes);
}

} // namespace wmr
