# Empty dependencies file for bench_ext_static_dynamic.
# This may be replaced when dependencies are built.
