/**
 * @file
 * Property tests of the detection pipeline against brute force.
 *
 * The production path answers "is this pair hb1-ordered" with the
 * per-processor clock oracle over the SCC condensation, enumerates
 * candidates per address shard, and partitions races by G'-SCC.
 * Every one of those layers has a trivially correct O(n^2)
 * counterpart: the transitive closure computed by DFS from every
 * node.  This file cross-checks, over seeded random-program traces
 * and synthetic traces:
 *
 *  - ReachOracle.*:     reaches()/ordered() equal the hb1 closure on
 *                       ALL event pairs;
 *  - RaceOracle.*:      findRaces() (serial and sharded) returns
 *                       exactly the conflicting-unordered pairs, with
 *                       exactly the conflict addresses;
 *  - PartitionOracle.*: partition membership equals mutual G'-closure
 *                       reachability and first flags equal Def. 4.1
 *                       computed by brute force.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "detect/analysis.hh"
#include "hb/hb_graph.hh"
#include "hb/reachability.hh"
#include "sim/executor.hh"
#include "trace/event.hh"
#include "workload/random_gen.hh"
#include "workload/synthetic_trace.hh"

namespace wmr {
namespace {

/** O(V*E) transitive closure: reach[a][b] == path a ->* b (and
 *  reach[a][a] always).  Handles cycles — plain DFS. */
std::vector<std::vector<char>>
bruteClosure(const AdjList &adj)
{
    const std::size_t n = adj.size();
    std::vector<std::vector<char>> reach(
        n, std::vector<char>(n, 0));
    std::vector<std::uint32_t> stack;
    for (std::size_t s = 0; s < n; ++s) {
        auto &row = reach[s];
        stack.assign(1, static_cast<std::uint32_t>(s));
        row[s] = 1;
        while (!stack.empty()) {
            const std::uint32_t v = stack.back();
            stack.pop_back();
            for (const std::uint32_t w : adj[v]) {
                if (!row[w]) {
                    row[w] = 1;
                    stack.push_back(w);
                }
            }
        }
    }
    return reach;
}

/** The inputs every oracle check needs, built once per trace. */
struct TraceUnderTest
{
    ExecutionTrace trace;
    HbGraph hb;
    ReachabilityIndex reach;
    std::vector<std::vector<char>> closure; ///< hb1 brute closure

    explicit TraceUnderTest(ExecutionTrace t)
        : trace(std::move(t)), hb(trace), reach(hb, trace),
          closure(bruteClosure(hb.adjacency()))
    {
    }

    bool
    bruteOrdered(EventId a, EventId b) const
    {
        return closure[a][b] || closure[b][a];
    }
};

/** A spread of trace shapes: weak-model program runs (racy and
 *  race-free) plus synthetic hot-conflict traces. */
std::vector<ExecutionTrace>
oracleTraces()
{
    std::vector<ExecutionTrace> out;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Program prog = seed % 2 == 0
                                 ? randomRacyProgram(seed)
                                 : randomRaceFreeProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        out.push_back(
            buildTrace(runProgram(prog, opts),
                       {.keepMemberOps = true}));
    }
    for (std::uint64_t seed = 30; seed < 34; ++seed) {
        SyntheticTraceOptions opts;
        opts.procs = 3 + static_cast<ProcId>(seed % 3);
        opts.eventsPerProc = 40;
        opts.memWords = 48;
        opts.hotFraction = 0.6;
        opts.seed = seed;
        out.push_back(makeSyntheticTrace(opts));
    }
    return out;
}

/** Brute-force findRaces: every conflicting pair the closure leaves
 *  unordered, with its conflict addresses, canonically sorted. */
std::vector<DataRace>
bruteRaces(const TraceUnderTest &t, bool includeSyncSync)
{
    const auto &events = t.trace.events();
    std::vector<DataRace> out;
    for (EventId a = 0; a < events.size(); ++a) {
        for (EventId b = a + 1; b < events.size(); ++b) {
            const bool isData =
                events[a].kind == EventKind::Computation ||
                events[b].kind == EventKind::Computation;
            if (!isData && !includeSyncSync)
                continue;
            if (!eventsConflict(events[a], events[b]))
                continue;
            if (t.bruteOrdered(a, b))
                continue;
            DataRace r;
            r.a = a;
            r.b = b;
            r.addrs = conflictAddrs(events[a], events[b]);
            std::sort(r.addrs.begin(), r.addrs.end());
            r.isDataRace = isData;
            out.push_back(std::move(r));
        }
    }
    return out; // (a, b) ascending by construction
}

// ---------------------------------------------------------------
// ReachOracle
// ---------------------------------------------------------------

TEST(ReachOracle, AllPairsMatchBruteClosure)
{
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const EventId n =
            static_cast<EventId>(t.trace.events().size());
        ASSERT_GT(n, 0u);
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                ASSERT_EQ(t.reach.reaches(a, b),
                          static_cast<bool>(t.closure[a][b]))
                    << "reaches(" << a << ", " << b << ")";
                ASSERT_EQ(t.reach.ordered(a, b), t.bruteOrdered(a, b))
                    << "ordered(" << a << ", " << b << ")";
            }
        }
    }
}

// ---------------------------------------------------------------
// RaceOracle
// ---------------------------------------------------------------

void
expectSameRaces(const std::vector<DataRace> &got,
                const std::vector<DataRace> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].a, want[i].a) << what << " race " << i;
        EXPECT_EQ(got[i].b, want[i].b) << what << " race " << i;
        EXPECT_EQ(got[i].addrs, want[i].addrs)
            << what << " race " << i;
        EXPECT_EQ(got[i].isDataRace, want[i].isDataRace)
            << what << " race " << i;
    }
}

TEST(RaceOracle, SerialAndShardedMatchBruteForce)
{
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const auto expected = bruteRaces(t, false);
        expectSameRaces(findRaces(t.trace, t.reach, {}, 1), expected,
                        "serial");
        expectSameRaces(findRaces(t.trace, t.reach, {}, 4), expected,
                        "sharded");
    }
}

TEST(RaceOracle, SyncSyncGeneralRacesMatchToo)
{
    RaceFinderOptions opts;
    opts.includeSyncSyncRaces = true;
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const auto expected = bruteRaces(t, true);
        expectSameRaces(findRaces(t.trace, t.reach, opts, 1),
                        expected, "serial+syncsync");
        expectSameRaces(findRaces(t.trace, t.reach, opts, 8),
                        expected, "sharded+syncsync");
    }
}

// ---------------------------------------------------------------
// PartitionOracle
// ---------------------------------------------------------------

TEST(PartitionOracle, MembershipAndFirstFlagsMatchBruteForce)
{
    for (auto &trace : oracleTraces()) {
        for (const unsigned threads : {1u, 4u}) {
            AnalysisOptions aopts;
            aopts.threads = threads;
            const DetectionResult det = analyzeTrace(trace, aopts);
            const auto &races = det.races();
            const auto &parts = det.partitions();

            // Brute closure of G' = hb1 + doubly directed race edges.
            AdjList aug = det.hbGraph().adjacency();
            for (const auto &r : races) {
                aug[r.a].push_back(r.b);
                aug[r.b].push_back(r.a);
            }
            const auto closure = bruteClosure(aug);

            // Same partition <=> mutually reachable in G'.
            for (RaceId r = 0; r < races.size(); ++r) {
                for (RaceId s = 0; s < races.size(); ++s) {
                    const bool sameBrute =
                        closure[races[r].a][races[s].a] &&
                        closure[races[s].a][races[r].a];
                    EXPECT_EQ(parts.partitionOf[r] ==
                                  parts.partitionOf[s],
                              sameBrute)
                        << "races " << r << ", " << s
                        << " at threads=" << threads;
                }
            }

            // First flags (Def. 4.1): a data-race partition is first
            // iff no OTHER data-race partition precedes it, where
            // partition j precedes i iff a G' path leads from j's
            // events to i's.
            for (std::size_t i = 0; i < parts.partitions.size();
                 ++i) {
                const auto &pi = parts.partitions[i];
                if (!pi.hasDataRace) {
                    EXPECT_FALSE(pi.first);
                    continue;
                }
                bool bruteFirst = true;
                for (std::size_t j = 0;
                     j < parts.partitions.size() && bruteFirst;
                     ++j) {
                    const auto &pj = parts.partitions[j];
                    if (j == i || !pj.hasDataRace)
                        continue;
                    const EventId from =
                        races[pj.races.front()].a;
                    const EventId to = races[pi.races.front()].a;
                    if (closure[from][to])
                        bruteFirst = false;
                }
                EXPECT_EQ(pi.first, bruteFirst)
                    << "partition " << i << " at threads=" << threads;
            }

            // firstPartitions lists exactly the flagged ones.
            std::vector<std::uint32_t> flagged;
            for (std::size_t i = 0; i < parts.partitions.size();
                 ++i) {
                if (parts.partitions[i].first)
                    flagged.push_back(
                        static_cast<std::uint32_t>(i));
            }
            EXPECT_EQ(parts.firstPartitions, flagged);
        }
    }
}

} // namespace
} // namespace wmr
