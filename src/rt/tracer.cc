#include "rt/tracer.hh"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "onthefly/epoch_detector.hh"
#include "onthefly/vc_detector.hh"
#include "trace/trace_io.hh"

namespace wmr::rt {

namespace {

// --- Fatal-signal crash flush -----------------------------------
//
// At most one tracer registers for crash flushing (the global one
// `wmrace record` children run).  The handler seals + fsyncs the
// pending spill segment with async-signal-safe calls only, restores
// the default disposition, and re-raises so the process still dies
// with the original signal (the parent's waitpid classification and
// core dumps stay truthful).

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr std::size_t kNumCrashSignals =
    sizeof(kCrashSignals) / sizeof(kCrashSignals[0]);

std::atomic<Tracer *> gCrashTracer{nullptr};
std::atomic<bool> gCrashFlushDone{false};
struct sigaction gOldActions[kNumCrashSignals];

void
crashSignalHandler(int sig)
{
    if (!gCrashFlushDone.exchange(true)) {
        if (Tracer *t =
                gCrashTracer.load(std::memory_order_acquire)) {
            t->crashFlush();
        }
    }
    for (std::size_t i = 0; i < kNumCrashSignals; ++i) {
        if (kCrashSignals[i] == sig) {
            ::sigaction(sig, &gOldActions[i], nullptr);
            ::raise(sig);
            return;
        }
    }
}

bool
installCrashHandlers(Tracer *t)
{
    Tracer *expected = nullptr;
    if (!gCrashTracer.compare_exchange_strong(expected, t))
        return false; // another tracer already owns the handlers
    gCrashFlushDone.store(false);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    for (std::size_t i = 0; i < kNumCrashSignals; ++i)
        ::sigaction(kCrashSignals[i], &sa, &gOldActions[i]);
    return true;
}

void
uninstallCrashHandlers(Tracer *t)
{
    Tracer *expected = t;
    if (!gCrashTracer.compare_exchange_strong(expected, nullptr))
        return;
    for (std::size_t i = 0; i < kNumCrashSignals; ++i)
        ::sigaction(kCrashSignals[i], &gOldActions[i], nullptr);
}

/** Calling thread's registration with (at most one) tracer.  The
 *  channel is stored untyped because Tracer::Channel is private.
 *  The epoch guards against a new Tracer reusing a dead one's
 *  address and validating a stale channel pointer. */
struct ThreadReg
{
    Tracer *owner = nullptr;
    std::uint64_t epoch = 0;
    void *channel = nullptr;
};

thread_local ThreadReg tlsReg;

std::atomic<std::uint64_t> gTracerEpoch{0};

/** Shared-memory granule: the tracer maps memory at 8-byte (word)
 *  granularity, matching the paper's word-addressed universe. */
inline const void *
granuleOf(std::uintptr_t p)
{
    return reinterpret_cast<const void *>(p & ~std::uintptr_t{7});
}

} // namespace

Tracer::Tracer(TracerConfig cfg)
    : cfg_(std::move(cfg)), syncs_(cfg_.syncCapacity),
      epoch_(gTracerEpoch.fetch_add(1,
                                    std::memory_order_relaxed) +
             1)
{
    if (cfg_.mode == RtMode::Inline) {
        if (cfg_.detector == RtDetector::VectorClock) {
            detector_ = std::make_unique<VcDetector>(
                cfg_.maxThreads, 0);
        } else {
            detector_ = std::make_unique<EpochDetector>(
                cfg_.maxThreads, 0);
        }
    }
    parseFault();
    if (cfg_.mode == RtMode::Record && cfg_.spillSegmentBytes > 0 &&
        !cfg_.tracePath.empty()) {
        auto spill = std::make_unique<SegmentSpillWriter>();
        if (spill->open(cfg_.tracePath)) {
            spill_ = std::move(spill);
            if (cfg_.crashHandlers)
                crashHandlersInstalled_ =
                    installCrashHandlers(this);
        } else {
            // Degrade to the classic at-stop() write.
            warn("wmr-rt: spill disabled: %s",
                 spill->lastError().c_str());
            spillFailures_ += 1;
        }
    }
    if (cfg_.backgroundDrain)
        drainThread_ = std::thread(&Tracer::drainLoop, this);
}

Tracer::~Tracer()
{
    stop();
    if (tlsReg.owner == this)
        tlsReg = {};
}

// ---------------------------------------------------------------
// Producer side (annotated threads).
// ---------------------------------------------------------------

ProcId
Tracer::threadBegin()
{
    if (tlsReg.owner == this && tlsReg.epoch == epoch_ &&
        tlsReg.channel) {
        return static_cast<Channel *>(tlsReg.channel)->proc;
    }
    std::lock_guard<std::mutex> lk(channelsMu_);
    wmr_assert(channels_.size() < kNoProc);
    const auto proc = static_cast<ProcId>(channels_.size());
    channels_.push_back(
        std::make_unique<Channel>(proc, cfg_.ringCapacity));
    tlsReg = {this, epoch_, channels_.back().get()};
    return proc;
}

void
Tracer::threadEnd()
{
    if (tlsReg.owner != this || tlsReg.epoch != epoch_ ||
        !tlsReg.channel) {
        return;
    }
    static_cast<Channel *>(tlsReg.channel)
        ->finished.store(true, std::memory_order_release);
    tlsReg = {};
}

Tracer::Channel *
Tracer::channelOfCallingThread()
{
    if (tlsReg.owner == this && tlsReg.epoch == epoch_ &&
        tlsReg.channel) {
        return static_cast<Channel *>(tlsReg.channel);
    }
    threadBegin(); // lazy registration
    return static_cast<Channel *>(tlsReg.channel);
}

void
Tracer::push(Channel &ch, const RtRecord &rec)
{
    if (ch.ring.tryPush(rec)) {
        ch.captured.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const bool isData =
        rec.kind == RecKind::Read || rec.kind == RecKind::Write;
    // Sync records are never dropped: a hole in a per-object
    // sequence would stall the drain's ordering gate forever.
    if (cfg_.overflow == RtOverflowPolicy::Drop && isData) {
        ch.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ch.blocked.fetch_add(1, std::memory_order_relaxed);
    while (!ch.ring.tryPush(rec))
        std::this_thread::yield();
    ch.captured.fetch_add(1, std::memory_order_relaxed);
}

void
Tracer::onData(const void *addr, std::size_t size, bool isWrite)
{
    if (size == 0)
        return;
    Channel *ch = channelOfCallingThread();
    RtRecord rec;
    rec.kind = isWrite ? RecKind::Write : RecKind::Read;
    rec.addr = addr;
    rec.size = static_cast<std::uint32_t>(
        std::min<std::size_t>(size, 1u << 20));
    push(*ch, rec);
}

void
Tracer::onAcquire(const void *obj)
{
    Channel *ch = channelOfCallingThread();
    RtRecord rec;
    rec.kind = RecKind::Acquire;
    rec.addr = obj;
    if (SyncSlot *slot = syncs_.findOrInsert(obj)) {
        // Load the pairing token BEFORE taking a sequence number:
        // seeing release token t proves t's publisher already took
        // its (smaller) sequence number, so draining in sequence
        // order processes the release first.
        rec.token = slot->lastToken.load(std::memory_order_acquire);
        rec.seq = slot->seq.fetch_add(1, std::memory_order_acq_rel);
    } else {
        registryFull_.fetch_add(1, std::memory_order_relaxed);
    }
    push(*ch, rec);
}

void
Tracer::onRelease(const void *obj)
{
    Channel *ch = channelOfCallingThread();
    RtRecord rec;
    rec.kind = RecKind::Release;
    rec.addr = obj;
    rec.token =
        releaseTokens_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (SyncSlot *slot = syncs_.findOrInsert(obj)) {
        rec.seq = slot->seq.fetch_add(1, std::memory_order_acq_rel);
        slot->lastToken.store(rec.token,
                              std::memory_order_release);
    } else {
        registryFull_.fetch_add(1, std::memory_order_relaxed);
    }
    push(*ch, rec);
}

// ---------------------------------------------------------------
// Consumer side (drain thread / foreground drain).
// ---------------------------------------------------------------

void
Tracer::drainLoop()
{
    obs::setThreadName("rt.drain");
    obs::Span loopSpan("rt.drain_loop");
    while (!stopping_.load(std::memory_order_acquire)) {
        if (!drainPass(false)) {
            // Quiescent: everything drained so far is sealed to
            // disk, so a SIGKILL during the lull loses nothing.
            maybeSealSpill(/*force=*/true);
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        } else {
            maybeSealSpill(/*force=*/false);
        }
    }
    drainToQuiescence();
}

void
Tracer::drainToQuiescence()
{
    obs::Span span("rt.drain_quiescence");
    // Normal passes until nothing moves, then force the ordering
    // gate so a thread killed mid-annotation can't wedge shutdown.
    bool progress = true;
    while (progress) {
        progress = false;
        while (drainPass(false))
            progress = true;
        while (drainPass(true))
            progress = true;
    }
}

bool
Tracer::drainPass(bool force)
{
    drainStats_.drainPasses += 1;
    std::vector<Channel *> chans;
    {
        std::lock_guard<std::mutex> lk(channelsMu_);
        chans.reserve(channels_.size());
        for (const auto &c : channels_)
            chans.push_back(c.get());
    }
    bool progress = false;
    for (Channel *ch : chans) {
        for (std::size_t n = 0; n < cfg_.drainBatch; ++n) {
            const RtRecord *rec = ch->ring.peek();
            if (!rec)
                break;
            const bool isSync = rec->kind == RecKind::Acquire ||
                                rec->kind == RecKind::Release;
            if (isSync && rec->seq != kNoSeq) {
                const auto it = nextSeq_.find(rec->addr);
                const std::uint64_t next =
                    it == nextSeq_.end() ? 0 : it->second;
                if (rec->seq != next) {
                    if (!force) {
                        // An earlier sync op on this object is
                        // still in some other ring; revisit later.
                        drainStats_.syncStalls += 1;
                        break;
                    }
                    drainStats_.forcedSync += 1;
                }
            }
            processRecord(*ch, *rec);
            ch->ring.popFront();
            drainStats_.drainedRecords += 1;
            maybeFaultInDrain();
            progress = true;
        }
    }
    return progress;
}

void
Tracer::processRecord(Channel &ch, const RtRecord &rec)
{
    if (detector_ && ch.proc >= cfg_.maxThreads) {
        // Inline detectors size their clocks for maxThreads procs;
        // later threads are dropped (visibly) rather than UB'd.
        drainStats_.recordsDropped += 1;
        return;
    }

    if (rec.kind == RecKind::Acquire ||
        rec.kind == RecKind::Release) {
        if (rec.seq != kNoSeq) {
            auto &next = nextSeq_[rec.addr];
            if (rec.seq + 1 > next)
                next = rec.seq + 1;
        }
        emitSync(ch, rec);
        return;
    }

    // Data access: one MemOp per touched 8-byte word.
    const bool isWrite = rec.kind == RecKind::Write;
    const auto base = reinterpret_cast<std::uintptr_t>(rec.addr);
    const std::uintptr_t first = base >> 3;
    const std::uintptr_t last = (base + rec.size - 1) >> 3;
    for (std::uintptr_t g = first; g <= last; ++g) {
        const Addr a = mapGranule(granuleOf(g << 3));
        const OpId oid = nextOp_++;
        drainStats_.opsEmitted += 1;
        if (detector_) {
            MemOp op;
            op.id = oid;
            op.proc = ch.proc;
            op.poIndex = ch.poIndex;
            op.pc = ch.poIndex;
            op.kind = isWrite ? OpKind::Write : OpKind::Read;
            op.addr = a;
            op.tick = oid;
            op.step = oid;
            feedInline(op);
        } else {
            if (ch.openValid && cfg_.maxCompRun != 0 &&
                ch.open.opCount >= cfg_.maxCompRun) {
                flushOpenEvent(ch);
            }
            if (!ch.openValid) {
                ch.open = StagedEvent{};
                ch.open.kind = EventKind::Computation;
                ch.open.proc = ch.proc;
                ch.open.firstOp = oid;
                ch.openValid = true;
            }
            ch.open.lastOp = oid;
            ch.open.opCount += 1;
            (isWrite ? ch.open.writeWords : ch.open.readWords)
                .push_back(a);
        }
        ch.poIndex += 1;
    }
}

void
Tracer::emitSync(Channel &ch, const RtRecord &rec)
{
    flushOpenEvent(ch);

    MemOp op;
    op.id = nextOp_++;
    op.proc = ch.proc;
    op.poIndex = ch.poIndex;
    op.pc = ch.poIndex;
    op.sync = true;
    op.addr = mapGranule(granuleOf(
        reinterpret_cast<std::uintptr_t>(rec.addr)));
    op.value = static_cast<Value>(rec.token);
    op.tick = op.id;
    op.step = op.id;
    if (rec.kind == RecKind::Acquire) {
        op.kind = OpKind::Read;
        op.acquire = true;
        if (rec.token != 0) {
            const auto it = releaseOpByToken_.find(rec.token);
            if (it != releaseOpByToken_.end())
                op.observedWrite = it->second;
            else
                drainStats_.unresolvedPairings += 1;
        }
    } else {
        op.kind = OpKind::Write;
        op.release = true;
        releaseOpByToken_[rec.token] = op.id;
    }
    ch.poIndex += 1;
    drainStats_.opsEmitted += 1;
    drainStats_.syncEvents += 1;

    if (detector_) {
        feedInline(op);
        return;
    }

    StagedEvent ev;
    ev.kind = EventKind::Sync;
    ev.proc = ch.proc;
    ev.firstOp = ev.lastOp = op.id;
    ev.opCount = 1;
    ev.syncOp = op;
    ev.pairedToken =
        rec.kind == RecKind::Acquire ? rec.token : 0;
    ch.staged.push_back(std::move(ev));
    spillStaged(ch.staged.back());
    drainStats_.eventsEmitted += 1;
}

void
Tracer::flushOpenEvent(Channel &ch)
{
    if (!ch.openValid)
        return;
    ch.staged.push_back(std::move(ch.open));
    ch.open = StagedEvent{};
    ch.openValid = false;
    spillStaged(ch.staged.back());
    drainStats_.eventsEmitted += 1;
}

// ---------------------------------------------------------------
// Spill path (drain thread only).
// ---------------------------------------------------------------

void
Tracer::spillStaged(const StagedEvent &sev)
{
    if (!spill_)
        return;
    SegEvent ev;
    ev.kind = sev.kind;
    ev.proc = sev.proc;
    ev.firstOp = sev.firstOp;
    ev.lastOp = sev.lastOp;
    ev.opCount = sev.opCount;
    if (sev.kind == EventKind::Sync) {
        ev.syncOp = sev.syncOp;
        // The release token rides in the sync op's value field; the
        // drain's per-object ordering gate guarantees a release is
        // spilled before any acquire that observed it, so the writer
        // can always resolve the pairing to an earlier ordinal.
        if (sev.syncOp.release)
            ev.releaseToken =
                static_cast<std::uint64_t>(sev.syncOp.value);
        ev.pairedToken = sev.pairedToken;
    } else {
        ev.readWords = sev.readWords;
        ev.writeWords = sev.writeWords;
    }
    spill_->addEvent(ev);
}

std::uint64_t
Tracer::currentDropped() const
{
    std::uint64_t dropped = drainStats_.recordsDropped;
    std::lock_guard<std::mutex> lk(channelsMu_);
    for (const auto &c : channels_)
        dropped += c->dropped.load(std::memory_order_relaxed);
    return dropped;
}

void
Tracer::maybeSealSpill(bool force)
{
    if (!spill_ || spill_->pendingEvents() == 0)
        return;
    if (!force && spill_->pendingBytes() < cfg_.spillSegmentBytes)
        return;
    if (fault_ == Fault::CrashMidSegment &&
        spill_->segmentsWritten() >= faultParam_) {
        fault::noteFired("rt.crash-mid-segment");
        spill_->writeTornFrame();
        ::_exit(86);
    }
    spill_->setCounters(drainStats_.opsEmitted, currentDropped());
    obs::Span span("rt.spill_seal");
    obs::counter("rt.spill_seals").inc();
    if (!spill_->sealSegment()) {
        warn("wmr-rt: spill write failed: %s",
             spill_->lastError().c_str());
        spillFailures_ += 1;
        spill_.reset(); // fall back to the classic write at stop()
    }
}

bool
Tracer::crashFlush()
{
    // Async-signal-safe: crashSeal() frames the pre-encoded pending
    // payload with stack buffers and raw write()/fsync() only.  If
    // the drain thread was mid-append the final frame may be torn;
    // the CRC makes salvage drop exactly that segment.
    SegmentSpillWriter *w = spill_.get();
    return w && w->crashSeal();
}

void
Tracer::parseFault()
{
    if (cfg_.faultSpec.empty())
        return;
    std::string name = cfg_.faultSpec;
    std::uint64_t param = 0;
    bool haveParam = false;
    const auto at = name.find('@');
    if (at != std::string::npos) {
        param = std::strtoull(name.c_str() + at + 1, nullptr, 10);
        haveParam = true;
        name.resize(at);
    }
    if (name == "crash-in-drain") {
        fault_ = Fault::CrashInDrain;
        faultParam_ = haveParam ? param : 50;
    } else if (name == "crash-mid-segment") {
        fault_ = Fault::CrashMidSegment;
        faultParam_ = haveParam ? param : 1;
    } else if (name == "slow-child") {
        fault_ = Fault::SlowChild;
        faultParam_ = haveParam ? param : 30;
    } else {
        warn("wmr-rt: ignoring unknown fault spec '%s'",
             cfg_.faultSpec.c_str());
    }
}

void
Tracer::maybeFaultInDrain()
{
    if (fault_ == Fault::CrashInDrain &&
        drainStats_.drainedRecords >= faultParam_) {
        fault_ = Fault::None; // don't re-fire from the handler path
        fault::noteFired("rt.crash-in-drain");
        ::raise(SIGSEGV);
    }
}

void
Tracer::feedInline(const MemOp &op)
{
    detector_->onOp(op);
}

Addr
Tracer::mapGranule(const void *granule)
{
    const auto next = static_cast<Addr>(nativeOfDense_.size());
    const auto [it, inserted] = addrMap_.try_emplace(granule, next);
    if (inserted)
        nativeOfDense_.push_back(granule);
    return it->second;
}

// ---------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------

void
Tracer::drainAll()
{
    wmr_assert(!cfg_.backgroundDrain);
    while (drainPass(false)) {
    }
}

void
Tracer::stop()
{
    if (stopped_.exchange(true))
        return;
    if (fault_ == Fault::SlowChild) {
        // Wedged-shutdown fault: everything already drained has been
        // sealed to disk by the idle spill, so a supervisor killing
        // us now still finds a salvageable trace.
        fault::noteFired("rt.slow-child");
        std::this_thread::sleep_for(
            std::chrono::seconds(faultParam_));
    }
    stopping_.store(true, std::memory_order_release);
    {
        obs::Span span("rt.stop");
        if (drainThread_.joinable())
            drainThread_.join(); // runs drainToQuiescence() on exit
        else
            drainToQuiescence();
        finalize();
    }
    if (crashHandlersInstalled_) {
        uninstallCrashHandlers(this);
        crashHandlersInstalled_ = false;
    }

    // Mirror the final RtStats into the shared registry so a single
    // WMR_OBS export shows recorder and analysis side by side.
    const RtStats s = stats();
    obs::counter("rt.records_captured").add(s.recordsCaptured);
    obs::counter("rt.records_drained").add(s.drainedRecords);
    obs::counter("rt.records_dropped").add(s.recordsDropped);
    obs::counter("rt.ops_emitted").add(s.opsEmitted);
    obs::counter("rt.drain_passes").add(s.drainPasses);
    obs::counter("rt.sync_stalls").add(s.syncStalls);
    obs::counter("rt.blocked_pushes").add(s.blockedPushes);
    obs::gauge("rt.threads_traced").set(s.threadsTraced);
    obs::gauge("rt.words_mapped").set(s.wordsMapped);
}

void
Tracer::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    obs::Span span("rt.finalize");

    for (const auto &c : channels_)
        flushOpenEvent(*c);

    if (cfg_.mode != RtMode::Record)
        return;

    const auto words = static_cast<Addr>(nativeOfDense_.size());
    const auto procs = static_cast<ProcId>(
        std::max<std::size_t>(channels_.size(), 1));
    built_ = ExecutionTrace();
    built_.setShape(procs, words);
    built_.setFirstStaleRead(kNoOp);
    built_.setTotalOps(drainStats_.opsEmitted);

    // Merge the per-thread staged streams into global first-op
    // order.  Op ids are assigned in drain order, which respects
    // both program order per thread and the per-object sync order
    // (the drain's ordering gate), so this insertion order yields a
    // valid per-processor sequence AND per-location sync order.
    std::vector<StagedEvent *> staging;
    for (const auto &c : channels_) {
        for (auto &ev : c->staged)
            staging.push_back(&ev);
    }
    std::sort(staging.begin(), staging.end(),
              [](const StagedEvent *a, const StagedEvent *b) {
                  return a->firstOp < b->firstOp;
              });

    std::unordered_map<std::uint64_t, EventId> releaseEventByToken;
    std::vector<std::pair<EventId, std::uint64_t>> acquires;
    for (StagedEvent *sev : staging) {
        Event ev;
        ev.kind = sev->kind;
        ev.proc = sev->proc;
        ev.firstOp = sev->firstOp;
        ev.lastOp = sev->lastOp;
        ev.opCount = sev->opCount;
        if (sev->kind == EventKind::Sync) {
            ev.syncOp = sev->syncOp;
        } else {
            ev.readSet.resize(words);
            ev.writeSet.resize(words);
            for (const Addr a : sev->readWords)
                ev.readSet.set(a);
            for (const Addr a : sev->writeWords)
                ev.writeSet.set(a);
        }
        const EventId id = built_.addEvent(std::move(ev));
        if (sev->kind == EventKind::Sync) {
            if (sev->syncOp.release) {
                releaseEventByToken[static_cast<std::uint64_t>(
                    sev->syncOp.value)] = id;
            } else if (sev->pairedToken != 0) {
                acquires.emplace_back(id, sev->pairedToken);
            }
        }
    }
    for (const auto &[id, token] : acquires) {
        const auto it = releaseEventByToken.find(token);
        if (it != releaseEventByToken.end())
            built_.mutableEvent(id).pairedRelease = it->second;
    }

    if (spill_) {
        // The spill file already holds every event (flushOpenEvent
        // above spilled the stragglers); seal the remainder and
        // stamp the FIN segment that marks a clean shutdown.
        maybeSealSpill(/*force=*/true);
    }
    if (spill_) {
        SegShape shape;
        shape.procs = procs;
        shape.memWords = words;
        shape.firstStaleRead = kNoOp;
        shape.totalOps = drainStats_.opsEmitted;
        shape.droppedRecords = currentDropped();
        spill_->setCounters(shape.totalOps, shape.droppedRecords);
        if (!spill_->finish(shape)) {
            warn("wmr-rt: spill finish failed: %s",
                 spill_->lastError().c_str());
            spillFailures_ += 1;
            spill_.reset();
        }
    }
    if (!spill_ && !cfg_.tracePath.empty())
        writeTraceFile(built_, cfg_.tracePath);
}

ExecutionTrace
Tracer::takeTrace()
{
    wmr_assert(stopped_.load() && cfg_.mode == RtMode::Record);
    return std::move(built_);
}

// ---------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------

RtStats
Tracer::stats() const
{
    RtStats s = drainStats_;
    std::lock_guard<std::mutex> lk(channelsMu_);
    s.threadsTraced = channels_.size();
    for (const auto &c : channels_) {
        s.recordsCaptured +=
            c->captured.load(std::memory_order_relaxed);
        s.recordsDropped +=
            c->dropped.load(std::memory_order_relaxed);
        s.blockedPushes +=
            c->blocked.load(std::memory_order_relaxed);
    }
    s.registryFull +=
        registryFull_.load(std::memory_order_relaxed);
    s.wordsMapped = nativeOfDense_.size();
    if (detector_)
        s.inlineRaces = detector_->stats().racesReported;
    if (spill_) {
        s.segmentsSpilled = spill_->segmentsWritten();
        s.spillBytes = spill_->bytesWritten();
    }
    s.spillFailures = spillFailures_;
    return s;
}

std::vector<Tracer::RaceReport>
Tracer::inlineRaces() const
{
    std::vector<RaceReport> out;
    if (!detector_)
        return out;
    for (const auto &r : detector_->races())
        out.push_back({r, nativeAddrOf(r.addr)});
    return out;
}

const void *
Tracer::nativeAddrOf(Addr a) const
{
    if (a >= nativeOfDense_.size())
        return nullptr;
    return nativeOfDense_[a];
}

Addr
Tracer::denseAddrOf(const void *addr) const
{
    const auto it = addrMap_.find(granuleOf(
        reinterpret_cast<std::uintptr_t>(addr)));
    return it == addrMap_.end() ? kNoAddr : it->second;
}

} // namespace wmr::rt
