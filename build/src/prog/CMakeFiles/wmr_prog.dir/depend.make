# Empty dependencies file for wmr_prog.
# This may be replaced when dependencies are built.
