file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_accuracy.dir/bench_sec5_accuracy.cc.o"
  "CMakeFiles/bench_sec5_accuracy.dir/bench_sec5_accuracy.cc.o.d"
  "bench_sec5_accuracy"
  "bench_sec5_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
