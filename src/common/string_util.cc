#include "common/string_util.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wmr {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run && run % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++run;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace wmr
