/**
 * @file
 * Tests of the in-process runtime tracer (src/rt):
 *
 *  - SpscRing.*:       the per-thread lock-free ring (wraparound,
 *                      full/empty edges, cross-thread stress);
 *  - SyncRegistry.*:   the lock-free sync-object table;
 *  - RtRecord.*:       record mode end to end — annotated REAL
 *                      threads -> recorder -> EVENT trace file ->
 *                      the existing detect analysis reports the
 *                      seeded race (and none on the race-free twin);
 *  - RtInline.*:       inline mode reports the same race through the
 *                      on-the-fly detectors without writing a file;
 *  - RtSpill.*:        crash-resilient segmented spilling — strict
 *                      round trip, crashFlush() salvage, parity with
 *                      the classic container;
 *  - RtOverflow.*:     Drop-policy accounting and foreground drains.
 *
 * The workload mirrors examples/rt_demo_shared.hh: two worker
 * threads deposit into one account under a REAL std::mutex (so these
 * tests stay clean under WMR_SANITIZE=thread); the racy variant
 * merely omits the mutex *annotations*, seeding an annotation-level
 * race the trace analysis must find.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <numeric>
#include <thread>
#include <unistd.h>
#include <vector>

#include "detect/analysis.hh"
#include "rt/ring_buffer.hh"
#include "rt/sync_registry.hh"
#include "rt/tracer.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"

namespace fs = std::filesystem;

namespace wmr::rt {
namespace {

// ---------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------

TEST(SpscRing, FifoAcrossManyWraparounds)
{
    SpscRing<int> ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    int expected = 0;
    for (int round = 0; round < 100; ++round) {
        // Fill to capacity, then drain, crossing the index mask
        // dozens of times.
        int next = round * 8;
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(ring.tryPush(next + i));
        EXPECT_FALSE(ring.tryPush(-1)) << "push into a full ring";
        int v = -1;
        while (ring.tryPop(v))
            EXPECT_EQ(v, expected++);
    }
    EXPECT_EQ(expected, 800);
    int v;
    EXPECT_FALSE(ring.tryPop(v)) << "pop from an empty ring";
}

TEST(SpscRing, PeekLeavesItemInPlace)
{
    SpscRing<int> ring(4);
    ASSERT_TRUE(ring.tryPush(42));
    const int *p1 = ring.peek();
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(*p1, 42);
    const int *p2 = ring.peek();
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(*p2, 42) << "peek must not consume";
    ring.popFront();
    EXPECT_EQ(ring.peek(), nullptr);
}

TEST(SpscRing, TwoThreadStressKeepsOrderAndLosesNothing)
{
    constexpr int kItems = 200000;
    SpscRing<int> ring(1 << 10);
    std::uint64_t sum = 0;
    int popped = 0;

    std::thread consumer([&] {
        int v;
        while (popped < kItems) {
            if (ring.tryPop(v)) {
                ASSERT_EQ(v, popped) << "FIFO order broken";
                sum += static_cast<std::uint64_t>(v);
                ++popped;
            } else {
                std::this_thread::yield();
            }
        }
    });
    for (int i = 0; i < kItems; ++i) {
        while (!ring.tryPush(i))
            std::this_thread::yield();
    }
    consumer.join();
    EXPECT_EQ(popped, kItems);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kItems) *
                       (kItems - 1) / 2);
}

// ---------------------------------------------------------------
// SyncRegistry
// ---------------------------------------------------------------

TEST(SyncRegistry, SameObjectSameSlotDistinctObjectsDistinct)
{
    SyncRegistry reg(16);
    int a, b;
    SyncSlot *sa = reg.findOrInsert(&a);
    SyncSlot *sb = reg.findOrInsert(&b);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_NE(sa, sb);
    EXPECT_EQ(reg.findOrInsert(&a), sa);
    EXPECT_EQ(reg.findOrInsert(&b), sb);
    EXPECT_EQ(reg.sizeApprox(), 2u);
}

TEST(SyncRegistry, FullTableDegradesToNullNotCorruption)
{
    SyncRegistry reg(4);
    std::uint64_t objs[8];
    int inserted = 0;
    for (auto &o : objs) {
        if (reg.findOrInsert(&o) != nullptr)
            ++inserted;
    }
    EXPECT_EQ(inserted, 4) << "capacity is a hard ceiling";
    // Registered objects stay findable after the table fills.
    EXPECT_NE(reg.findOrInsert(&objs[0]), nullptr);
}

// ---------------------------------------------------------------
// Shared workload: the miniature bank of the demos.
// ---------------------------------------------------------------

struct Account
{
    std::mutex mu;
    std::uint64_t balance = 0;
    std::uint64_t history[4] = {0, 0, 0, 0};
};

/** Deposit loop over the tracer's direct (non-global) API.  The real
 *  mutex is always held; @p annotateLocks decides whether the tracer
 *  is told about it. */
void
depositLoop(Tracer &t, Account &acct, bool annotateLocks,
            int deposits)
{
    t.threadBegin();
    for (int i = 0; i < deposits; ++i) {
        std::lock_guard<std::mutex> lock(acct.mu);
        if (annotateLocks)
            t.onAcquire(&acct.mu);

        t.onData(&acct.balance, sizeof(acct.balance), false);
        const std::uint64_t v = acct.balance;
        t.onData(&acct.balance, sizeof(acct.balance), true);
        acct.balance = v + 10;
        t.onData(&acct.history[v % 4], sizeof(acct.history[0]),
                 true);
        acct.history[v % 4] += 1;

        if (annotateLocks)
            t.onRelease(&acct.mu);
    }
    t.threadEnd();
}

/** Run the two-worker workload under @p t. */
void
runWorkload(Tracer &t, Account &acct, bool annotateLocks)
{
    std::thread w1(depositLoop, std::ref(t), std::ref(acct),
                   annotateLocks, 4);
    std::thread w2(depositLoop, std::ref(t), std::ref(acct),
                   annotateLocks, 4);
    w1.join();
    w2.join();
}

std::string
tempTracePath(const char *tag)
{
    return (fs::temp_directory_path() /
            (std::string(tag) + "." + std::to_string(::getpid()) +
             ".trace"))
        .string();
}

// ---------------------------------------------------------------
// RtRecord: annotated threads -> recorder -> EVENT trace file ->
// existing analysis.  This is the issue's acceptance round trip.
// ---------------------------------------------------------------

TEST(RtRecord, SeededRaceSurvivesTheFileRoundTrip)
{
    const std::string path = tempTracePath("wmr_rt_racy");
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.tracePath = path;
    {
        Tracer t(cfg);
        runWorkload(t, acct, /*annotateLocks=*/false);
        t.stop();

        const RtStats s = t.stats();
        EXPECT_EQ(s.threadsTraced, 2u);
        EXPECT_EQ(s.recordsDropped, 0u);
        EXPECT_GT(s.opsEmitted, 0u);
        EXPECT_GT(s.eventsEmitted, 0u);

        // The racy word (the balance) must be in the address map and
        // map back to its native granule.
        const Addr w = t.denseAddrOf(&acct.balance);
        ASSERT_NE(w, Tracer::kNoAddr);
        EXPECT_EQ(t.nativeAddrOf(w),
                  reinterpret_cast<const void *>(
                      reinterpret_cast<std::uintptr_t>(
                          &acct.balance) &
                      ~std::uintptr_t(7)));
    }

    // Read the file back through the recoverable path and run the
    // full Section-4 analysis on it: the seeded race must be
    // reported from a FIRST partition.
    auto res = tryReadTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.trace.numProcs(), 2u);
    const DetectionResult det = analyzeTrace(std::move(res.trace));
    EXPECT_TRUE(det.anyDataRace());
    EXPECT_GT(det.numDataRaces(), 0u);
    EXPECT_FALSE(det.reportedRaces().empty())
        << "a racy trace must have a first partition to report";
    fs::remove(path);
}

TEST(RtRecord, AnnotatedLocksMakeTheTraceRaceFree)
{
    const std::string path = tempTracePath("wmr_rt_clean");
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.tracePath = path;
    {
        Tracer t(cfg);
        runWorkload(t, acct, /*annotateLocks=*/true);
        t.stop();
        const RtStats s = t.stats();
        EXPECT_GT(s.syncEvents, 0u) << "locks must appear as sync";
        EXPECT_EQ(s.unresolvedPairings + s.registryFull, 0u);
    }
    auto res = tryReadTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    const DetectionResult det = analyzeTrace(std::move(res.trace));
    EXPECT_FALSE(det.anyDataRace());
    EXPECT_EQ(det.numDataRaces(), 0u);
    fs::remove(path);
}

TEST(RtRecord, InMemoryTraceMatchesTheFile)
{
    // tracePath = "" keeps the trace in memory; takeTrace() must
    // yield the same analysis verdict as the file round trip.
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    Tracer t(cfg);
    runWorkload(t, acct, /*annotateLocks=*/false);
    t.stop();
    const DetectionResult det = analyzeTrace(t.takeTrace());
    EXPECT_TRUE(det.anyDataRace());
}

TEST(RtRecord, SyncEventsArePairedReleaseToAcquire)
{
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    Tracer t(cfg);
    runWorkload(t, acct, /*annotateLocks=*/true);
    t.stop();
    const ExecutionTrace trace = t.takeTrace();

    std::size_t acquires = 0, paired = 0;
    for (const auto &ev : trace.events()) {
        if (ev.kind != EventKind::Sync || !ev.syncOp.acquire)
            continue;
        ++acquires;
        if (ev.pairedRelease == kNoEvent)
            continue;
        ++paired;
        const Event &rel = trace.events()[ev.pairedRelease];
        ASSERT_EQ(rel.kind, EventKind::Sync);
        EXPECT_TRUE(rel.syncOp.release);
        EXPECT_EQ(rel.syncOp.addr, ev.syncOp.addr)
            << "pairing must stay on one sync object";
    }
    ASSERT_GT(acquires, 0u);
    // Every acquire except each object's first observes a release.
    EXPECT_GE(paired + 1, acquires);
}

// ---------------------------------------------------------------
// RtInline: the same race through the on-the-fly detectors, no file.
// ---------------------------------------------------------------

class RtInlineP : public ::testing::TestWithParam<RtDetector>
{
};

TEST_P(RtInlineP, ReportsTheSeededRaceWithNativeAddress)
{
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Inline;
    cfg.detector = GetParam();
    Tracer t(cfg);
    runWorkload(t, acct, /*annotateLocks=*/false);
    t.stop();

    const auto races = t.inlineRaces();
    ASSERT_FALSE(races.empty());
    EXPECT_EQ(t.stats().inlineRaces, races.size());
    // Every reported address must map back into the account.
    const auto *lo = reinterpret_cast<const char *>(&acct);
    const auto *hi = lo + sizeof(acct);
    for (const auto &rr : races) {
        ASSERT_NE(rr.nativeAddr, nullptr);
        const auto *p = static_cast<const char *>(rr.nativeAddr);
        EXPECT_TRUE(p >= lo && p < hi)
            << "race reported outside the workload's data";
        EXPECT_NE(rr.race.proc1, rr.race.proc2);
    }
}

TEST_P(RtInlineP, AnnotatedLocksSilenceTheDetector)
{
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Inline;
    cfg.detector = GetParam();
    Tracer t(cfg);
    runWorkload(t, acct, /*annotateLocks=*/true);
    t.stop();
    EXPECT_TRUE(t.inlineRaces().empty());
    EXPECT_EQ(t.stats().inlineRaces, 0u);
}

INSTANTIATE_TEST_SUITE_P(Detectors, RtInlineP,
                         ::testing::Values(RtDetector::VectorClock,
                                           RtDetector::Epoch),
                         [](const auto &info) {
                             return info.param ==
                                            RtDetector::VectorClock
                                        ? "VectorClock"
                                        : "Epoch";
                         });

// ---------------------------------------------------------------
// RtOverflow: Drop policy accounting, foreground drain.
// ---------------------------------------------------------------

TEST(RtOverflow, DropPolicyCountsEveryLostRecord)
{
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.overflow = RtOverflowPolicy::Drop;
    cfg.ringCapacity = 8;
    cfg.backgroundDrain = false; // nobody drains while we push
    Tracer t(cfg);

    t.threadBegin();
    std::uint64_t x = 0;
    constexpr std::uint64_t kPushes = 1000;
    for (std::uint64_t i = 0; i < kPushes; ++i)
        t.onData(&x, sizeof(x), true);
    t.threadEnd();
    t.stop();

    const RtStats s = t.stats();
    EXPECT_GT(s.recordsDropped, 0u);
    EXPECT_EQ(s.recordsCaptured + s.recordsDropped, kPushes);
    EXPECT_EQ(s.opsEmitted, s.recordsCaptured)
        << "everything captured must still drain";
}

TEST(RtOverflow, ForegroundDrainAllMakesRoom)
{
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.overflow = RtOverflowPolicy::Drop;
    cfg.ringCapacity = 8;
    cfg.backgroundDrain = false;
    Tracer t(cfg);

    t.threadBegin();
    std::uint64_t x = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 4; ++i)
            t.onData(&x, sizeof(x), i % 2 == 0);
        t.drainAll(); // frees the ring between bursts
    }
    t.threadEnd();
    t.stop();

    const RtStats s = t.stats();
    EXPECT_EQ(s.recordsDropped, 0u)
        << "drained-between-bursts run must be lossless";
    EXPECT_EQ(s.opsEmitted, 400u);
}

// ---------------------------------------------------------------
// RtSpill: crash-resilient segmented spilling from the recorder.
// ---------------------------------------------------------------

TEST(RtSpill, SpillProducesAStrictReadableSegmentedFile)
{
    const std::string path = tempTracePath("wmr_rt_spill");
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.tracePath = path;
    cfg.spillSegmentBytes = 64; // tiny threshold -> many segments
    {
        Tracer t(cfg);
        runWorkload(t, acct, /*annotateLocks=*/false);
        t.stop();
        const RtStats s = t.stats();
        EXPECT_GT(s.segmentsSpilled, 1u);
        EXPECT_GT(s.spillBytes, 0u);
        EXPECT_EQ(s.spillFailures, 0u);
    }
    // The file is the segmented container, complete (FIN present),
    // and the seeded race survives the incremental path.
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> head(8);
    in.read(reinterpret_cast<char *>(head.data()), 8);
    ASSERT_TRUE(in.good());
    EXPECT_TRUE(looksSegmented(head.data(), head.size()));
    in.close();

    auto seg = tryReadSegmentedTraceFile(path);
    ASSERT_TRUE(seg.ok()) << seg.error;
    EXPECT_TRUE(seg.salvage.finSeen);
    EXPECT_FALSE(seg.salvage.salvaged);

    // And the classic entry point sniffs it transparently.
    auto res = tryReadTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    const DetectionResult det = analyzeTrace(std::move(res.trace));
    EXPECT_TRUE(det.anyDataRace());
    EXPECT_FALSE(det.reportedRaces().empty());
    fs::remove(path);
}

TEST(RtSpill, SpilledAndClassicTracesAgreeOnTheVerdict)
{
    const std::string classicPath = tempTracePath("wmr_rt_classic");
    const std::string spillPath = tempTracePath("wmr_rt_spill2");
    for (const bool spill : {false, true}) {
        Account acct;
        TracerConfig cfg;
        cfg.mode = RtMode::Record;
        cfg.tracePath = spill ? spillPath : classicPath;
        cfg.spillSegmentBytes = spill ? 128 : 0;
        Tracer t(cfg);
        runWorkload(t, acct, /*annotateLocks=*/true);
        t.stop();
    }
    auto a = tryReadTraceFile(classicPath);
    auto b = tryReadTraceFile(spillPath);
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.trace.events().size(), b.trace.events().size());
    EXPECT_EQ(a.trace.numSyncEvents(), b.trace.numSyncEvents());
    const DetectionResult da = analyzeTrace(std::move(a.trace));
    const DetectionResult db = analyzeTrace(std::move(b.trace));
    EXPECT_EQ(da.anyDataRace(), db.anyDataRace());
    EXPECT_EQ(da.numDataRaces(), db.numDataRaces());
    fs::remove(classicPath);
    fs::remove(spillPath);
}

TEST(RtSpill, CrashFlushLeavesASalvageableTrace)
{
    // Simulate the fatal-signal path without dying: crashFlush() is
    // exactly what the installed handlers call.  Crash flush can only
    // save events that have CLOSED (open events are still in flux in
    // the owning threads); maxCompRun bounds how much of an
    // unsynchronized run stays open, i.e. the worst-case crash loss.
    const std::string path = tempTracePath("wmr_rt_crashflush");
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.tracePath = path;
    cfg.spillSegmentBytes = 1 << 20; // never reaches the threshold
    cfg.backgroundDrain = false;     // we drain, deterministically
    cfg.maxCompRun = 2;              // close events every 2 ops
    auto *t = new Tracer(cfg);
    runWorkload(*t, acct, /*annotateLocks=*/false);
    t->drainAll();
    ASSERT_TRUE(t->crashFlush());
    // The process "died": the tracer is abandoned, never stop()ed.
    // (Leaked deliberately; its drain thread keeps the file open.)

    auto strict = tryReadSegmentedTraceFile(path);
    EXPECT_FALSE(strict.ok()) << "no FIN must fail the strict read";

    auto res = trySalvageTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.salvaged);
    EXPECT_FALSE(res.salvage.finSeen);
    EXPECT_GT(res.salvage.eventsRecovered, 0u);
    const DetectionResult det = analyzeTrace(std::move(res.trace));
    EXPECT_TRUE(det.anyDataRace())
        << "the seeded race must survive the crash flush";
    fs::remove(path);
}

TEST(RtSpill, SpillStatsStayZeroWhenDisabled)
{
    Account acct;
    TracerConfig cfg;
    cfg.mode = RtMode::Record; // no tracePath, no spill
    Tracer t(cfg);
    runWorkload(t, acct, /*annotateLocks=*/false);
    t.stop();
    const RtStats s = t.stats();
    EXPECT_EQ(s.segmentsSpilled, 0u);
    EXPECT_EQ(s.spillBytes, 0u);
    EXPECT_EQ(s.spillFailures, 0u);
}

TEST(RtOverflow, SyncRecordsAreNeverDropped)
{
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.overflow = RtOverflowPolicy::Drop;
    cfg.ringCapacity = 1 << 8;
    cfg.backgroundDrain = false;
    Tracer t(cfg);

    t.threadBegin();
    std::uint64_t x = 0;
    int m;
    for (int i = 0; i < 20; ++i) {
        t.onAcquire(&m);
        t.onData(&x, sizeof(x), true);
        t.onRelease(&m);
    }
    t.threadEnd();
    t.stop();

    const RtStats s = t.stats();
    EXPECT_EQ(s.recordsDropped, 0u);
    EXPECT_EQ(s.syncEvents, 40u) << "20 acquires + 20 releases";
}

} // namespace
} // namespace wmr::rt
