/**
 * @file
 * Shared machinery of the clock-based on-the-fly detectors:
 * per-processor clocks and the release-clock publication table that
 * implements exact so1 pairing (with optional bounded history).
 */

#ifndef WMR_ONTHEFLY_CLOCK_BASE_HH
#define WMR_ONTHEFLY_CLOCK_BASE_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "hb/vector_clock.hh"
#include "onthefly/onthefly.hh"

namespace wmr {

/** Base for detectors that maintain hb1 with vector clocks. */
class ClockedDetectorBase : public OnTheFlyDetector
{
  public:
    /** @return the current clock of processor @p p. */
    const VectorClock &
    procClockOf(ProcId p) const
    {
        return procClock_.at(p);
    }

  protected:
    ClockedDetectorBase(ProcId nprocs, std::size_t maxPublished)
        : nprocs_(nprocs), maxPublished_(maxPublished)
    {
        procClock_.reserve(nprocs);
        for (ProcId p = 0; p < nprocs; ++p) {
            VectorClock c(nprocs);
            c.tick(p);
            procClock_.push_back(std::move(c));
        }
    }

    /** Handle an acquire read: join the paired release's clock. */
    void
    handleAcquire(const MemOp &op, VectorClock &fallback)
    {
        if (!op.acquire || op.observedWrite == kNoOp)
            return;
        VectorClock &c = procClock_[op.proc];
        const auto it = published_.find(op.observedWrite);
        ++stats_.clockJoins;
        if (it != published_.end()) {
            c.join(it->second);
        } else {
            // Publication evicted (bounded history): join the
            // conservative per-location clock.  Over-orders the
            // execution — races can be missed.
            c.join(fallback);
        }
    }

    /** Handle a release write: publish the releasing clock. */
    void
    handleRelease(const MemOp &op, VectorClock &fallback)
    {
        if (!op.release)
            return;
        VectorClock &c = procClock_[op.proc];
        published_.emplace(op.id, c);
        publishOrder_.push_back(op.id);
        ++stats_.clockAllocations;
        stats_.metadataBytes += nprocs_ * 8ull;
        fallback.join(c);
        if (maxPublished_ != 0 &&
            published_.size() > maxPublished_) {
            published_.erase(publishOrder_.front());
            publishOrder_.pop_front();
        }
    }

    ProcId nprocs_;
    std::size_t maxPublished_;
    std::vector<VectorClock> procClock_;
    std::unordered_map<OpId, VectorClock> published_;
    std::deque<OpId> publishOrder_;
};

} // namespace wmr

#endif // WMR_ONTHEFLY_CLOCK_BASE_HH
