#include "detect/scp.hh"

#include "common/logging.hh"

namespace wmr {

namespace {

/**
 * Is op @p o inside the op-level SCP?
 *
 * An operation belongs to the SCP when it also occurs — same program
 * point, same address — in the SC witness Eseq (operation identity
 * ignores values, Sec. 2.1).  The executor marks the operations that
 * do NOT as `divergent` (address through a tainted register, or
 * control flow already diverged).  Note a stale read itself is in
 * the SCP: Figure 2(b) draws "End of SCP" AFTER read(Q,37).
 */
bool
opInScp(const MemOp &o)
{
    return !o.divergent;
}

/** Collect the member op ids of @p ev (sync events carry one). */
std::vector<OpId>
memberIds(const Event &ev)
{
    if (ev.kind == EventKind::Sync)
        return {ev.syncOp.id};
    return ev.memberOps;
}

/**
 * Exact op-level SCP test for a race: does a conflicting pair of
 * lower-level operations (≥1 data op) lie inside the SCP?
 */
bool
lowerLevelRaceInScp(const Event &ea, const Event &eb,
                    const std::vector<MemOp> &ops)
{
    for (const OpId oa : memberIds(ea)) {
        if (!opInScp(ops[oa]))
            continue;
        for (const OpId ob : memberIds(eb)) {
            if (!opInScp(ops[ob]))
                continue;
            const MemOp &x = ops[oa];
            const MemOp &y = ops[ob];
            if (!conflict(x, y))
                continue;
            if (x.sync && y.sync)
                continue; // not a data pair
            return true;
        }
    }
    return false;
}

} // namespace

ScpInfo
analyzeScp(const ExecutionTrace &trace,
           const std::vector<DataRace> &races,
           const std::vector<MemOp> *ops)
{
    ScpInfo info;
    info.wholeExecutionSc = trace.firstStaleRead() == kNoOp;
    info.scpEndOp =
        info.wholeExecutionSc ? trace.totalOps() : trace.firstStaleRead();

    const auto &events = trace.events();
    info.eventScp.resize(events.size(), ScpMembership::Outside);

    // Per-event membership.  With the op stream we classify exactly
    // by divergence; otherwise conservatively by the base prefix
    // boundary (ops before the first stale read are never divergent).
    for (const auto &ev : events) {
        const bool haveMembers =
            ops != nullptr &&
            (ev.kind == EventKind::Sync || !ev.memberOps.empty() ||
             ev.opCount == 0);
        if (haveMembers) {
            std::size_t in = 0, total = 0;
            for (const OpId o : memberIds(ev)) {
                ++total;
                in += opInScp((*ops)[o]);
            }
            if (total == 0 || in == total)
                info.eventScp[ev.id] = ScpMembership::Full;
            else if (in == 0)
                info.eventScp[ev.id] = ScpMembership::Outside;
            else
                info.eventScp[ev.id] = ScpMembership::Partial;
        } else {
            if (ev.lastOp < info.scpEndOp)
                info.eventScp[ev.id] = ScpMembership::Full;
            else if (ev.firstOp < info.scpEndOp)
                info.eventScp[ev.id] = ScpMembership::Partial;
            else
                info.eventScp[ev.id] = ScpMembership::Outside;
        }
    }

    info.raceInScp.resize(races.size(), false);
    info.raceMaybeInScp.resize(races.size(), false);
    for (RaceId r = 0; r < races.size(); ++r) {
        const Event &ea = events[races[r].a];
        const Event &eb = events[races[r].b];
        const auto ma = info.eventScp[ea.id];
        const auto mb = info.eventScp[eb.id];
        if (ma == ScpMembership::Outside ||
            mb == ScpMembership::Outside) {
            continue;
        }
        const bool haveMembers =
            ops != nullptr &&
            (ea.kind == EventKind::Sync || !ea.memberOps.empty() ||
             ea.opCount == 0) &&
            (eb.kind == EventKind::Sync || !eb.memberOps.empty() ||
             eb.opCount == 0);
        if (haveMembers) {
            const bool in = lowerLevelRaceInScp(ea, eb, *ops);
            info.raceInScp[r] = in;
            info.raceMaybeInScp[r] = in;
        } else if (ma == ScpMembership::Full &&
                   mb == ScpMembership::Full) {
            // Every member op inside: every lower-level conflicting
            // pair is inside.
            info.raceInScp[r] = true;
            info.raceMaybeInScp[r] = true;
        } else {
            info.raceMaybeInScp[r] = true;
        }
    }
    return info;
}

std::vector<RaceId>
checkCondition34(const std::vector<DataRace> &races, const ScpInfo &scp,
                 const AugmentedGraph &aug)
{
    std::vector<RaceId> violations;
    for (RaceId r = 0; r < races.size(); ++r) {
        if (!races[r].isDataRace)
            continue;
        if (scp.raceMaybeInScp[r])
            continue;
        bool covered = false;
        for (RaceId s = 0; s < races.size() && !covered; ++s) {
            if (s == r || !races[s].isDataRace || !scp.raceInScp[s])
                continue;
            if (aug.raceAffectsRace(races[s], races[r]))
                covered = true;
        }
        if (!covered)
            violations.push_back(r);
    }
    return violations;
}

} // namespace wmr
