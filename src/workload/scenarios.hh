/**
 * @file
 * Canonical staged executions of the paper's figures.
 *
 * The figures depict SPECIFIC weak interleavings; random exploration
 * finds them only occasionally, so these helpers pin them down with a
 * ScriptedScheduler plus scripted buffer drains.  Tests, examples and
 * the figure benches all share these staging functions.
 */

#ifndef WMR_WORKLOAD_SCENARIOS_HH
#define WMR_WORKLOAD_SCENARIOS_HH

#include "sim/executor.hh"
#include "workload/patterns.hh"

namespace wmr {

/** A staged execution together with the program that produced it. */
struct Scenario
{
    Program program;
    ExecutionResult result;
};

/**
 * Figure 1(a)'s sequential-consistency violation: P1's write of y
 * becomes visible before its write of x, and P2 reads y==new,
 * x==old.  @p model must be a weak model (not SC).
 */
Scenario stageFigure1aViolation(ModelKind model = ModelKind::WO);

/**
 * Figure 1(a)'s violation on the INVALIDATE realization: delayed
 * invalidations instead of buffered stores.  Needs a warm-up read so
 * P2 holds a (soon stale) cached copy of x; P2 then reads the fresh
 * y from memory but the stale x from its cache.  Demonstrates that
 * Condition 3.4 concerns the implementation CLASS, not one design.
 */
Scenario stageInvalidateFigure1a(ModelKind model = ModelKind::WO);

/**
 * Figure 2(b)'s weak execution: P1's write of QEmpty becomes visible
 * before its write of Q; P2 dequeues the stale offset and its region
 * work collides with P3's.  The returned execution contains the
 * paper's sequentially consistent prefix boundary (P2's reads are IN
 * the SCP; its region work is divergent) and the non-SC data races
 * between P2 and P3.
 *
 * @p params must have staleOffset < regionSize so the regions
 * overlap (the defaults do).
 */
Scenario stageFigure2bExecution(QueueParams params = {},
                                ModelKind model = ModelKind::WO);

} // namespace wmr

#endif // WMR_WORKLOAD_SCENARIOS_HH
