/**
 * @file
 * Binary trace-file serialization for the post-mortem workflow.
 *
 * The paper's method is post-mortem: the instrumented execution
 * writes trace files, a later analysis phase reads them back and
 * runs the detector.  Two formats are provided:
 *
 *  - the EVENT format (what Section 4.1 proposes): per-processor
 *    event streams with bit-vector READ/WRITE sets and sync pairing;
 *  - the FULL-OP format (the strawman Section 4.1 rejects): one
 *    record per memory operation, used by bench_sec5_overhead to
 *    measure how much the event abstraction saves.
 *
 * Encoding: little-endian, varint-compressed unsigned integers, with
 * an 8-byte magic + version header.  The two formats carry distinct
 * magics ("WMRTRC01" vs "WMRFOP01") so each reader can reject the
 * other's files with a clear error instead of misparsing them.
 */

#ifndef WMR_TRACE_TRACE_IO_HH
#define WMR_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/execution_trace.hh"

namespace wmr {

/** Why a recoverable trace read failed. */
enum class TraceIoStatus : std::uint8_t {
    Ok,          ///< trace is valid
    IoError,     ///< file could not be opened/read
    FormatError, ///< bytes are not a well-formed trace
};

/**
 * Outcome of a recoverable trace parse/read.  Malformed input is
 * reported here instead of killing the process, so batch consumers
 * (src/pipeline) can record a per-trace failure and keep going.
 */
struct TraceReadResult
{
    TraceIoStatus status = TraceIoStatus::Ok;

    /** The parsed trace; meaningful only when ok(). */
    ExecutionTrace trace;

    /** Human-readable failure reason; empty when ok(). */
    std::string error;

    bool ok() const { return status == TraceIoStatus::Ok; }
};

/** Serialize @p trace into a byte buffer (event format). */
std::vector<std::uint8_t> serializeTrace(const ExecutionTrace &trace);

/**
 * Parse an event-format buffer.  Never aborts: truncated, corrupt or
 * oversized input yields a FormatError result with the reason.
 */
TraceReadResult
tryDeserializeTrace(const std::vector<std::uint8_t> &bytes);

/**
 * Read and parse an event-format trace file.  Never aborts: I/O
 * problems yield IoError, malformed bytes yield FormatError.
 */
TraceReadResult tryReadTraceFile(const std::string &path);

/**
 * Parse an event-format buffer; fatal() on malformed input.  Thin
 * wrapper over tryDeserializeTrace() for single-trace tools.
 */
ExecutionTrace deserializeTrace(const std::vector<std::uint8_t> &bytes);

/** Write @p trace to @p path (event format). @return bytes written. */
std::size_t writeTraceFile(const ExecutionTrace &trace,
                           const std::string &path);

/**
 * Read an event-format trace file; fatal() on I/O or parse error.
 * Thin wrapper over tryReadTraceFile() for single-trace tools.
 */
ExecutionTrace readTraceFile(const std::string &path);

/**
 * Serialize every memory operation of @p ops (full-op format).
 * @return the encoded bytes; used for overhead comparison only.
 */
std::vector<std::uint8_t>
serializeFullOps(const std::vector<MemOp> &ops);

/**
 * Outcome of a recoverable full-op parse/read.  Mirrors
 * TraceReadResult so batch consumers can treat a malformed full-op
 * buffer as a per-file failure and keep going.
 */
struct FullOpsReadResult
{
    TraceIoStatus status = TraceIoStatus::Ok;

    /** The decoded operations; meaningful only when ok(). */
    std::vector<MemOp> ops;

    /** Human-readable failure reason; empty when ok(). */
    std::string error;

    bool ok() const { return status == TraceIoStatus::Ok; }
};

/**
 * Parse a full-op-format buffer.  Never aborts: truncated, corrupt,
 * oversized or wrong-format input (e.g. an event-format trace) yields
 * a FormatError result with the reason.
 */
FullOpsReadResult
tryDeserializeFullOps(const std::vector<std::uint8_t> &bytes);

/**
 * Read and parse a full-op-format file.  Never aborts: I/O problems
 * yield IoError, malformed bytes yield FormatError.
 */
FullOpsReadResult tryReadFullOpsFile(const std::string &path);

} // namespace wmr

#endif // WMR_TRACE_TRACE_IO_HH
