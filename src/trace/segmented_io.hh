/**
 * @file
 * The segmented, checksummed trace container ("WMRSEG01") — the
 * crash-resilient sibling of the classic single-blob EVENT format.
 *
 * The classic container (trace_io.hh) is written in one shot at the
 * end of a recording, so the executions most worth debugging — the
 * ones that crash or wedge on a race — lose their trace entirely.
 * This container is APPEND-ONLY: the recorder spills sealed events
 * incrementally as framed segments, each protected by a length
 * header and a CRC-32 footer, so whatever prefix reached the disk
 * before a crash is recoverable:
 *
 *   file     := "WMRSEG01" segment*
 *   segment  := len:u32le payload crc:u32le      crc = CRC32(payload)
 *   payload  := 'D' opsSoFar droppedSoFar nevents event*
 *             | 'F' procs memWords firstStaleRead totalOps
 *                   droppedRecords
 *   event    := kind proc firstOp lastOp opCount
 *               sync(kind=1): memop pairing     (pairing = 1 + file
 *                 ordinal of the paired release event, 0 = unpaired)
 *               comp(kind=0): nread wordDelta* nwrite wordDelta*
 *                 (strictly increasing word ids, delta-coded)
 *
 * A final 'F' (FIN) segment marks a clean shutdown and carries the
 * authoritative shape plus the Drop-policy loss count.  Readers:
 *
 *  - tryReadSegmentedTraceFile(): STRICT — every frame must verify
 *    and the FIN must be present (a complete recording);
 *  - trySalvageTraceFile(): TOLERANT — recovers the longest valid
 *    checksummed segment prefix of a truncated/corrupt file and
 *    reports what was lost, so analysis can still run on the prefix.
 *
 * Integration: tryReadTraceFile() (trace_io.hh) sniffs this magic
 * and delegates to the strict reader, so `wmrace check`/`batch`
 * accept both containers transparently; the salvage reader is the
 * abnormal-exit path of `wmrace record` and `wmrace batch`.
 */

#ifndef WMR_TRACE_SEGMENTED_IO_HH
#define WMR_TRACE_SEGMENTED_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_io.hh"

namespace wmr {

/** @return whether @p n bytes at @p data start with the segmented
 *  container magic. */
bool looksSegmented(const std::uint8_t *data, std::size_t n);

/** What a (possibly partial) segmented read recovered and lost. */
struct SalvageInfo
{
    /** A FIN segment was decoded: the recording shut down cleanly. */
    bool finSeen = false;

    /** The file was incomplete or damaged: no FIN, or a bad tail. */
    bool salvaged = false;

    std::uint64_t segmentsRecovered = 0;

    /** Damaged/undecodable trailing frames (0 when only the FIN is
     *  missing — e.g. the recorder was SIGKILLed between spills). */
    std::uint64_t segmentsDropped = 0;

    /** Bytes of the file discarded after the last valid segment. */
    std::uint64_t bytesDropped = 0;

    std::uint64_t eventsRecovered = 0;
    std::uint64_t opsRecovered = 0;

    /** Acquire events whose paired release fell outside the
     *  recovered prefix (their so1 edge is dropped). */
    std::uint64_t unresolvedPairings = 0;

    /** Data records lost to the recorder's Drop overflow policy, as
     *  of the last recovered segment (FIN value when finSeen). */
    std::uint64_t droppedDataRecords = 0;

    /** Why recovery stopped (empty for a clean, complete file). */
    std::string note;

    /** @return a one-line human summary ("complete" when clean). */
    std::string summary() const;
};

/** Outcome of a segmented read/salvage. */
struct SegTraceReadResult
{
    TraceIoStatus status = TraceIoStatus::Ok;
    ExecutionTrace trace;
    std::string error;
    SalvageInfo salvage;

    bool ok() const { return status == TraceIoStatus::Ok; }
};

/**
 * Render the report header lines stating what an analyzed trace
 * actually is — salvage provenance and recorder-side data loss — so
 * a partial or Drop-mode trace can never masquerade as a complete
 * one.  Empty for a non-segmented or clean, lossless trace.  Both
 * `wmrace check` and the serve subsystem emit EXACTLY this string
 * ahead of the report, which is what keeps a served analysis
 * byte-identical to a local one.
 */
std::string formatTraceProvenance(bool segmented,
                                  const SalvageInfo &salvage);

/**
 * STRICT read of a complete segmented trace: all frames verify, FIN
 * present.  Damage or a missing FIN yields FormatError whose message
 * points at the salvage reader.
 */
SegTraceReadResult
tryReadSegmentedTrace(const std::vector<std::uint8_t> &bytes);
SegTraceReadResult
tryReadSegmentedTraceFile(const std::string &path);

/**
 * TOLERANT read: recover the longest valid checksummed segment
 * prefix.  Only an unreadable file or an unrecognizable header (not
 * even the magic survives) fails; an empty prefix (zero segments)
 * comes back ok() with an empty trace and salvage.salvaged set.
 */
SegTraceReadResult
trySalvageTrace(const std::vector<std::uint8_t> &bytes);
SegTraceReadResult trySalvageTraceFile(const std::string &path);

/**
 * One event as the segmented container carries it — word lists
 * instead of universe-sized bitsets, so events can be encoded before
 * the address universe is known (the whole point of spilling).
 */
struct SegEvent
{
    EventKind kind = EventKind::Computation;
    ProcId proc = 0;
    OpId firstOp = kNoOp;
    OpId lastOp = kNoOp;
    std::uint32_t opCount = 0;

    /** Computation payload: touched word ids (need not be sorted or
     *  unique; the encoder canonicalizes). */
    std::vector<Addr> readWords;
    std::vector<Addr> writeWords;

    /** Sync payload. */
    MemOp syncOp;

    /** Sync release: producer-chosen nonzero token later acquires
     *  reference; sync acquire: token of the observed release (0 =
     *  unpaired).  Tokens never reach the wire — the writer resolves
     *  them to file ordinals. */
    std::uint64_t releaseToken = 0;
    std::uint64_t pairedToken = 0;
};

/** Shape written into the FIN segment. */
struct SegShape
{
    ProcId procs = 0;
    Addr memWords = 0;
    OpId firstStaleRead = kNoOp;
    std::uint64_t totalOps = 0;

    /** Drop-policy data-record losses of the whole recording. */
    std::uint64_t droppedRecords = 0;
};

/**
 * Incremental segment writer over a raw file descriptor.
 *
 * Usage (the recorder's drain thread): open(), then addEvent() as
 * events seal; sealSegment() when pendingBytes() crosses the spill
 * threshold or the drain goes idle; finish() at clean shutdown.
 *
 * crashSeal() is the fatal-signal path: it frames and writes the
 * pending payload and fsyncs using only async-signal-safe syscalls
 * plus arithmetic on memory that is already allocated.  If the drain
 * thread was mid-append when the signal hit, the frame may be torn —
 * the CRC then fails and salvage drops exactly that final segment,
 * which is the contract: best effort, never a lie.
 */
class SegmentSpillWriter
{
  public:
    SegmentSpillWriter() = default;
    ~SegmentSpillWriter();

    SegmentSpillWriter(const SegmentSpillWriter &) = delete;
    SegmentSpillWriter &operator=(const SegmentSpillWriter &) = delete;

    /** Create/truncate @p path and write the magic. */
    bool open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &lastError() const { return error_; }

    /** Running counters embedded in every data segment, so salvage
     *  can report losses up to the recovered prefix. */
    void
    setCounters(std::uint64_t opsEmitted, std::uint64_t dropped)
    {
        ops_ = opsEmitted;
        dropped_ = dropped;
    }

    /** Append one sealed event to the pending segment payload. */
    void addEvent(const SegEvent &ev);

    std::size_t pendingBytes() const;
    std::uint64_t pendingEvents() const { return pendingEvents_; }

    /** Frame and write the pending payload (no-op when empty). */
    bool sealSegment();

    /** Seal the remainder, write the FIN segment, fsync, close. */
    bool finish(const SegShape &shape);

    /** Fatal-signal flush: seal pending + fsync, nothing else. */
    bool crashSeal();

    /**
     * Fault-injection hook (WMR_RT_FAULT=crash-mid-segment): append
     * a deliberately truncated frame — a length header promising more
     * payload than follows — so tests can prove salvage drops exactly
     * the damaged tail.
     */
    void writeTornFrame();

    std::uint64_t segmentsWritten() const { return segments_; }
    std::uint64_t bytesWritten() const { return bytes_; }

  private:
    bool writeFrame(const std::uint8_t *hdr, std::size_t hdrLen,
                    const std::uint8_t *body, std::size_t bodyLen,
                    bool fsyncAfter);
    bool fail(const std::string &why);

    int fd_ = -1;
    std::string error_;

    // Pending DATA payload: the event bytes accumulate here; the
    // 'D'+counters+count header is prepended at seal time.
    std::vector<std::uint8_t> pending_;
    std::uint64_t pendingEvents_ = 0;

    std::uint64_t ops_ = 0;
    std::uint64_t dropped_ = 0;

    // Token -> file ordinal of release events (pairing resolution).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tokenMap_;
    std::uint64_t nextOrdinal_ = 0;

    std::uint64_t segments_ = 0;
    std::uint64_t bytes_ = 0;
};

/**
 * Serialize a whole ExecutionTrace into the segmented container,
 * @p eventsPerSegment events per frame — the test/tooling producer
 * (the recorder spills through SegmentSpillWriter instead).
 */
std::vector<std::uint8_t>
serializeSegmentedTrace(const ExecutionTrace &trace,
                        std::size_t eventsPerSegment = 64);

/** Write @p trace to @p path segmented. @return bytes written. */
std::size_t
writeSegmentedTraceFile(const ExecutionTrace &trace,
                        const std::string &path,
                        std::size_t eventsPerSegment = 64);

} // namespace wmr

#endif // WMR_TRACE_SEGMENTED_IO_HH
