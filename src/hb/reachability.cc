#include "hb/reachability.hh"

#include <algorithm>
#include <barrier>
#include <chrono>

#include "common/logging.hh"
#include "common/worker_pool.hh"

namespace wmr {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/**
 * Engagement thresholds of the level-parallel clock build.  A long
 * po chain condenses to one component per event with level width
 * ≈ nprocs — there a per-level barrier costs more than the maxes it
 * distributes, so the serial push loop wins.  Wide condensations
 * (many processors, or G' graphs whose race edges collapsed the
 * chains into few big levels) are where the parallel path pays.
 */
constexpr std::uint32_t kMinComponentsForParallel = 1u << 12;
constexpr std::uint32_t kMinAvgLevelWidth = 32;

std::vector<ProcId>
procsOf(const ExecutionTrace &trace)
{
    std::vector<ProcId> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.proc;
    return out;
}

std::vector<std::uint32_t>
indicesOf(const ExecutionTrace &trace)
{
    std::vector<std::uint32_t> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.indexInProc;
    return out;
}

} // namespace

ReachabilityIndex::ReachabilityIndex(
    const AdjList &graph, const std::vector<ProcId> &procOf,
    const std::vector<std::uint32_t> &indexInProc, ProcId nprocs,
    unsigned threads)
    : nprocs_(nprocs)
{
    wmr_assert(procOf.size() == graph.size());
    wmr_assert(indexInProc.size() == graph.size());
    build(graph, procOf, indexInProc, threads);
}

ReachabilityIndex::ReachabilityIndex(const HbGraph &graph,
                                     const ExecutionTrace &trace,
                                     unsigned threads)
    : nprocs_(trace.numProcs())
{
    build(graph.adjacency(), procsOf(trace), indicesOf(trace),
          threads);
}

std::int64_t &
ReachabilityIndex::hi(std::uint32_t comp, ProcId p)
{
    return hi_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t &
ReachabilityIndex::clock(std::uint32_t comp, ProcId p)
{
    return clock_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t
ReachabilityIndex::hiAt(std::uint32_t comp, ProcId p) const
{
    return hi_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t
ReachabilityIndex::clockAt(std::uint32_t comp, ProcId p) const
{
    return clock_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

void
ReachabilityIndex::build(const AdjList &graph,
                         const std::vector<ProcId> &procOf,
                         const std::vector<std::uint32_t> &indexInProc,
                         unsigned threads)
{
    const auto sccStart = Clock::now();
    scc_ = stronglyConnectedComponents(graph);
    stats_.sccSeconds = secondsSince(sccStart);
    const std::uint32_t ncomp = scc_.numComponents;
    stats_.components = ncomp;
    hi_.assign(static_cast<std::size_t>(ncomp) * nprocs_, -1);
    clock_.assign(static_cast<std::size_t>(ncomp) * nprocs_, -1);

    for (std::uint32_t v = 0; v < graph.size(); ++v) {
        const std::uint32_t c = scc_.componentOf[v];
        auto &h = hi(c, procOf[v]);
        h = std::max(h, static_cast<std::int64_t>(indexInProc[v]));
    }

    const auto clockStart = Clock::now();
    threads = resolveThreads(threads);
    if (threads < 2 || ncomp < kMinComponentsForParallel ||
        !propagateParallel(threads)) {
        propagateSerial();
    }
    stats_.clockSeconds = secondsSince(clockStart);
}

void
ReachabilityIndex::propagateSerial()
{
    // Tarjan numbers components in reverse topological order: every
    // condensation edge c→c' has c > c'.  Descending id order visits
    // predecessors before successors; push clocks forward.
    for (std::uint32_t c = scc_.numComponents; c-- > 0;) {
        for (ProcId p = 0; p < nprocs_; ++p) {
            auto &cl = clock(c, p);
            cl = std::max(cl, hiAt(c, p));
        }
        for (const std::uint32_t succ : scc_.condensation[c]) {
            for (ProcId p = 0; p < nprocs_; ++p) {
                auto &cl = clock(succ, p);
                cl = std::max(cl, clockAt(c, p));
            }
        }
    }
}

/**
 * Level-parallel clock propagation.  Stratify the condensation by
 * longest path from the sources; a component's clock then depends
 * only on strictly lower levels, so each level can be computed
 * pull-style (max over its predecessors' final clocks) with workers
 * owning disjoint component slices.  Returns false — leaving the
 * clocks untouched for the serial path — when the level structure is
 * too narrow for the per-level barrier to pay.
 */
bool
ReachabilityIndex::propagateParallel(unsigned threads)
{
    const std::uint32_t ncomp = scc_.numComponents;

    // Longest-path levels, walking reverse-topological (descending)
    // ids so every predecessor (higher id) is final before its
    // successors read it.
    std::vector<std::uint32_t> level(ncomp, 0);
    std::uint32_t maxLevel = 0;
    for (std::uint32_t c = ncomp; c-- > 0;) {
        maxLevel = std::max(maxLevel, level[c]);
        for (const std::uint32_t succ : scc_.condensation[c])
            level[succ] = std::max(level[succ], level[c] + 1);
    }
    const std::uint32_t nlevels = maxLevel + 1;
    stats_.levels = nlevels;
    if (ncomp / nlevels < kMinAvgLevelWidth)
        return false;
    stats_.parallelClocks = true;

    // Predecessor adjacency (the pull direction).
    std::vector<std::vector<std::uint32_t>> preds(ncomp);
    for (std::uint32_t c = 0; c < ncomp; ++c) {
        for (const std::uint32_t succ : scc_.condensation[c])
            preds[succ].push_back(c);
    }

    // Components bucketed by level.
    std::vector<std::vector<std::uint32_t>> byLevel(nlevels);
    for (std::uint32_t c = 0; c < ncomp; ++c)
        byLevel[level[c]].push_back(c);

    const unsigned workers = std::min<unsigned>(
        threads, std::max<std::uint32_t>(1, ncomp / nlevels));
    std::barrier levelDone(static_cast<std::ptrdiff_t>(workers));
    WorkerPool pool(workers, [&](unsigned w) {
        for (std::uint32_t lv = 0; lv < nlevels; ++lv) {
            const auto &bucket = byLevel[lv];
            const auto [first, last] =
                workerSlice(bucket.size(), workers, w);
            for (std::size_t i = first; i < last; ++i) {
                const std::uint32_t c = bucket[i];
                for (ProcId p = 0; p < nprocs_; ++p) {
                    std::int64_t cl = hiAt(c, p);
                    for (const std::uint32_t pr : preds[c])
                        cl = std::max(cl, clockAt(pr, p));
                    clock(c, p) = cl;
                }
            }
            levelDone.arrive_and_wait();
        }
    });
    pool.join();
    return true;
}

bool
ReachabilityIndex::componentReaches(std::uint32_t a,
                                    std::uint32_t b) const
{
    if (a == b)
        return true;
    for (ProcId p = 0; p < nprocs_; ++p) {
        const std::int64_t h = hiAt(a, p);
        if (h >= 0 && clockAt(b, p) >= h)
            return true;
    }
    return false;
}

bool
ReachabilityIndex::reaches(EventId a, EventId b) const
{
    return componentReaches(scc_.componentOf[a], scc_.componentOf[b]);
}

bool
ReachabilityIndex::ordered(EventId a, EventId b) const
{
    const std::uint32_t ca = scc_.componentOf[a];
    const std::uint32_t cb = scc_.componentOf[b];
    if (ca == cb)
        return true; // mutual hb1 order inside a cycle
    return componentReaches(ca, cb) || componentReaches(cb, ca);
}

} // namespace wmr
