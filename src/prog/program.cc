#include "prog/program.hh"

#include "common/logging.hh"
#include "common/string_util.hh"

namespace wmr {

ProcId
Program::addThread(Thread thread)
{
    for (const auto &instr : thread.code) {
        if (opcodeAccessesMemory(instr.op))
            coverAddr(instr.addr);
    }
    threads_.push_back(std::move(thread));
    return static_cast<ProcId>(threads_.size() - 1);
}

void
Program::setInitial(Addr addr, Value value)
{
    coverAddr(addr);
    init_[addr] = value;
}

Value
Program::initial(Addr addr) const
{
    const auto it = init_.find(addr);
    return it == init_.end() ? 0 : it->second;
}

void
Program::coverAddr(Addr addr)
{
    if (addr + 1 > memWords_)
        memWords_ = addr + 1;
}

void
Program::nameAddr(const std::string &name, Addr addr)
{
    coverAddr(addr);
    symbols_[name] = addr;
    addrNames_[addr] = name;
}

std::string
Program::addrName(Addr addr) const
{
    const auto it = addrNames_.find(addr);
    if (it != addrNames_.end())
        return it->second;
    return strformat("[%u]", addr);
}

Addr
Program::addrOf(const std::string &name) const
{
    const auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("unknown shared-variable name '%s'", name.c_str());
    return it->second;
}

void
Program::validate() const
{
    for (ProcId p = 0; p < numProcs(); ++p) {
        const auto &code = threads_[p].code;
        for (std::size_t pc = 0; pc < code.size(); ++pc) {
            const Instr &i = code[pc];
            if (opcodeIsBranch(i.op) && i.target > code.size()) {
                fatal("P%u pc %zu: branch target %u out of range",
                      p, pc, i.target);
            }
            if (i.dst >= kNumRegs || i.a >= kNumRegs || i.b >= kNumRegs) {
                fatal("P%u pc %zu: register index out of range", p, pc);
            }
        }
    }
}

std::string
Program::disassembleAll() const
{
    std::string out;
    for (ProcId p = 0; p < numProcs(); ++p) {
        out += strformat("# processor P%u\n", p);
        const auto &code = threads_[p].code;
        for (std::size_t pc = 0; pc < code.size(); ++pc) {
            out += strformat("%4zu: %s\n", pc,
                             disassemble(code[pc]).c_str());
        }
    }
    return out;
}

} // namespace wmr
