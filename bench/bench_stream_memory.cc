/**
 * @file
 * Resident-memory curve of the streaming engine (src/stream/): trace
 * sizes spanning two orders of magnitude are generated through the
 * bounded-memory writer and stream-analyzed, recording peak resident
 * events against total events.  The claim under test is the
 * subsystem's reason to exist: resident state tracks the GC window
 * plus the racy pin set — a fraction of a percent of the trace — not
 * the trace itself, so analysis memory stays flat while traces grow
 * unbounded.  Each size is additionally streamed at a second window
 * size and the rendered reports compared byte for byte (cross-window
 * identity; the whole-trace differential lives in tests/
 * test_stream.cc where trace sizes keep the quadratic reference
 * engine feasible).
 *
 * A machine-readable JSON block follows the table; the committed
 * baseline is BENCH_stream_memory.json (tools/bench_baselines.sh).
 * WMR_BENCH_SMOKE=1 shrinks the sizes so the binary doubles as a
 * fast CTest smoke entry.
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "detect/report.hh"
#include "stream/stream_analyzer.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/** The proven flat-memory workload shape: uniform accesses over a
 *  large data span and few sync words, so clocks gossip fast and the
 *  watermark follows close behind the frontier. */
SyntheticTraceOptions
workload(std::uint64_t totalEvents)
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc =
        static_cast<std::uint32_t>(totalEvents / o.procs);
    o.memWords = 65536;
    o.syncWords = 16;
    o.syncFraction = 0.6;
    o.hotFraction = 0.0;
    o.seed = 11;
    return o;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Row
{
    std::uint64_t events = 0;
    std::uint64_t fileBytes = 0;
    double genSeconds = 0;
    double wallSeconds = 0;
    std::uint64_t peakResident = 0;
    std::uint64_t windowsRetired = 0;
    std::uint64_t races = 0;
    bool windowsIdentical = false;
};

std::string
tracePath(std::uint64_t events)
{
    return (std::filesystem::temp_directory_path() /
            ("bench_stream_" + std::to_string(::getpid()) + "_" +
             std::to_string(events) + ".seg"))
        .string();
}

Row
runSize(std::uint64_t totalEvents)
{
    Row row;
    row.events = totalEvents;
    const std::string path = tracePath(totalEvents);

    auto t = std::chrono::steady_clock::now();
    row.fileBytes =
        writeSyntheticSegmentedTraceFile(workload(totalEvents), path);
    row.genSeconds = secondsSince(t);
    if (row.fileBytes == 0)
        fatal("bench_stream_memory: cannot write %s", path.c_str());

    StreamOptions opts; // window 4, the CLI default
    t = std::chrono::steady_clock::now();
    const StreamResult sr = streamAnalyzeFile(path, opts);
    row.wallSeconds = secondsSince(t);
    if (!sr.ok)
        fatal("bench_stream_memory: %s", sr.error.c_str());
    row.peakResident = sr.peakResident;
    row.windowsRetired = sr.windowsRetired;
    row.races = sr.races;

    StreamOptions wide;
    wide.windowSegments = 64;
    const StreamResult sw = streamAnalyzeFile(path, wide);
    row.windowsIdentical =
        sw.ok && renderReport(sr.report, nullptr, {}) ==
                     renderReport(sw.report, nullptr, {});

    std::remove(path.c_str());
    return row;
}

void
reproduce()
{
    const std::vector<std::uint64_t> sizes =
        smokeMode()
            ? std::vector<std::uint64_t>{40'000, 160'000}
            : std::vector<std::uint64_t>{100'000, 1'000'000,
                                         10'000'000};

    section("streaming engine resident memory vs. trace size" +
            std::string(smokeMode() ? " (smoke mode)" : ""));
    note("events resident = live GC window + pinned racy events; "
         "flat target: < 2% of the trace at every size");

    std::printf("  %-12s %12s %10s %10s %12s %10s %10s\n", "events",
                "file MB", "gen s", "stream s", "peak resident",
                "resident%", "races");
    std::vector<Row> rows;
    bool flat = true;
    bool identical = true;
    for (const std::uint64_t n : sizes) {
        const Row row = runSize(n);
        const double fraction =
            100.0 * static_cast<double>(row.peakResident) /
            static_cast<double>(row.events);
        std::printf("  %-12llu %12.1f %10.2f %10.2f %12llu %9.3f%% "
                    "%10llu\n",
                    static_cast<unsigned long long>(row.events),
                    static_cast<double>(row.fileBytes) / 1e6,
                    row.genSeconds, row.wallSeconds,
                    static_cast<unsigned long long>(row.peakResident),
                    fraction,
                    static_cast<unsigned long long>(row.races));
        if (row.peakResident * 50 >= row.events)
            flat = false;
        identical = identical && row.windowsIdentical;
        rows.push_back(row);
    }
    note(flat ? "resident line flat (< 2% of the trace at every "
                "size)."
              : "!! RESIDENT LINE NOT FLAT — the watermark GC is "
                "not retiring (regression).");
    note(identical
             ? "reports verified byte-identical across window sizes "
               "4 and 64 at every size."
             : "!! WINDOW MISMATCH — report depends on the GC "
               "window (regression).");

    // Machine-readable block for plotting/regression tooling.
    std::printf("{\n  \"schema\": \"wmrace-stream-memory\",\n");
    std::printf("  \"resident_flat\": %s,\n",
                flat ? "true" : "false");
    std::printf("  \"windows_identical\": %s,\n",
                identical ? "true" : "false");
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"events\": %llu, \"file_bytes\": %llu, "
            "\"gen_seconds\": %.3f, \"stream_seconds\": %.3f, "
            "\"events_per_second\": %.1f, \"peak_resident_events\": "
            "%llu, \"resident_fraction\": %.6f, \"windows_retired\": "
            "%llu, \"races\": %llu}%s\n",
            static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.fileBytes),
            r.genSeconds, r.wallSeconds,
            static_cast<double>(r.events) / r.wallSeconds,
            static_cast<unsigned long long>(r.peakResident),
            static_cast<double>(r.peakResident) /
                static_cast<double>(r.events),
            static_cast<unsigned long long>(r.windowsRetired),
            static_cast<unsigned long long>(r.races),
            i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
BM_StreamAnalyze(benchmark::State &state)
{
    const auto events =
        static_cast<std::uint64_t>(state.range(0)) * 1000;
    const std::string path = tracePath(events);
    if (writeSyntheticSegmentedTraceFile(workload(events), path) == 0)
        fatal("bench_stream_memory: cannot write %s", path.c_str());
    for (auto _ : state) {
        const StreamResult sr = streamAnalyzeFile(path, {});
        benchmark::DoNotOptimize(sr.races);
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(events));
}
BENCHMARK(BM_StreamAnalyze)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

WMR_BENCH_MAIN(reproduce)
