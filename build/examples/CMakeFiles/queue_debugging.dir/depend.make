# Empty dependencies file for queue_debugging.
# This may be replaced when dependencies are built.
