file(REMOVE_RECURSE
  "libwmr_onthefly.a"
)
