/**
 * @file
 * Extension study: static and dynamic detection used together, the
 * complementary workflow the paper endorses (Section 1, citing
 * [EmP88]) — "tools should support both static and dynamic
 * techniques in a complementary fashion".
 *
 * Measures, over seeded program families:
 *  - soundness: the static report covers every dynamic race
 *    (the "superset of all possible data races" property);
 *  - imprecision: how many statically reported pairs the dynamic
 *    detector never confirms (conservatism: flag sync is invisible
 *    statically, aliasing is over-approximated);
 *  - the three on-the-fly detector families side by side on the
 *    same executions (hb1 clocks, FastTrack epochs, Eraser lockset).
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "mc/static_race.hh"
#include "onthefly/epoch_detector.hh"
#include "onthefly/lockset_detector.hh"
#include "onthefly/vc_detector.hh"
#include "staticdet/static_analyzer.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

void
reproduce()
{
    section("static superset property (25 racy programs, WO "
            "executions)");
    StaticOptions sopts;
    sopts.firstDataAddr = 2;
    std::size_t staticPairsTotal = 0, dynPairsTotal = 0,
                covered = 0, confirmed = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = randomRacyProgram(seed);
        const auto stat = analyzeStatically(p, sopts);
        std::set<StaticRace> staticPairs;
        for (const auto &r : stat.races) {
            staticPairs.insert(StaticRace::make(
                {r.a.proc, r.a.pc}, {r.b.proc, r.b.pc}));
        }
        staticPairsTotal += staticPairs.size();

        ExecOptions eopts;
        eopts.model = ModelKind::WO;
        eopts.seed = seed;
        const auto res = runProgram(p, eopts);
        const auto det = analyzeExecution(res);
        std::set<StaticRace> dynPairs;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (!det.races()[r].isDataRace)
                continue;
            const auto pairs = staticPairsOfRace(det, r, res.ops);
            dynPairs.insert(pairs.begin(), pairs.end());
        }
        dynPairsTotal += dynPairs.size();
        for (const auto &d : dynPairs)
            covered += staticPairs.count(d);
        for (const auto &s : staticPairs)
            confirmed += dynPairs.count(s);
    }
    std::printf("  static potential pairs: %zu\n", staticPairsTotal);
    std::printf("  dynamic race pairs:     %zu, covered by static: "
                "%zu (%.1f%%)\n",
                dynPairsTotal, covered,
                100.0 * static_cast<double>(covered) /
                    static_cast<double>(dynPairsTotal));
    std::printf("  static pairs confirmed dynamically (one seed "
                "each): %zu (%.1f%%)\n",
                confirmed,
                100.0 * static_cast<double>(confirmed) /
                    static_cast<double>(staticPairsTotal));
    note("superset holds (100% coverage); the unconfirmed rest is "
         "static");
    note("conservatism — other schedules may realize them, or they "
         "are spurious.");

    section("where each method is blind (pattern programs)");
    std::printf("  %-28s %10s %10s %12s\n", "program",
                "static", "hb1 (VC)", "lockset");
    struct Case
    {
        const char *name;
        Program prog;
    };
    const Case cases[] = {
        {"locked counter (clean)", lockedCounter(3, 4)},
        {"racy counter", lockedCounter(2, 3, true)},
        {"msg passing (flag sync)", messagePassing(4, false)},
        {"prod/cons (flag sync)", producerConsumer(6, 2, false)},
        {"figure 1(b) (tas order)", figure1b()},
    };
    for (const auto &c : cases) {
        const auto stat = analyzeStatically(c.prog, sopts);
        VcDetector vc(c.prog.numProcs(), c.prog.memWords());
        LocksetDetector ls(c.prog.numProcs(), c.prog.memWords());
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = 5;
        opts.sink = &vc;
        const auto res = runProgram(c.prog, opts);
        for (const auto &op : res.ops)
            ls.onOp(op);
        std::printf("  %-28s %10s %10s %12s\n", c.name,
                    stat.clean() ? "clean" : "REPORT",
                    vc.races().empty() ? "clean" : "REPORT",
                    ls.races().empty() ? "clean" : "REPORT");
    }
    note("hb1 (the paper's formulation) is the only one precise on "
         "flag sync;");
    note("static analysis is the only one covering ALL schedules; "
         "use both.");
}

void
BM_StaticAnalysis(benchmark::State &state)
{
    const Program p = randomRacyProgram(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analyzeStatically(p).races.size());
    }
}
BENCHMARK(BM_StaticAnalysis);

void
BM_LocksetDetector(benchmark::State &state)
{
    const Program p = randomRacyProgram(7);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 7;
    const auto res = runProgram(p, opts);
    for (auto _ : state) {
        LocksetDetector det(p.numProcs(), p.memWords());
        for (const auto &op : res.ops)
            det.onOp(op);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_LocksetDetector);

} // namespace

WMR_BENCH_MAIN(reproduce)
