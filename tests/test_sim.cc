/**
 * @file
 * Unit tests of the simulator: memory models, schedulers, executor
 * semantics, staleness annotation, and the cost model.
 */

#include <gtest/gtest.h>

#include "prog/builder.hh"
#include "sim/executor.hh"
#include "sim/store_buffer_model.hh"
#include "workload/patterns.hh"

namespace wmr {
namespace {

Program
singleThread(ThreadBuilder &t)
{
    ProgramBuilder pb;
    pb.thread(t);
    return pb.build();
}

TEST(Model, PolicyTable)
{
    EXPECT_TRUE(policyFor(ModelKind::SC).noBuffer);
    EXPECT_TRUE(policyFor(ModelKind::WO).drainOnAllSync);
    EXPECT_FALSE(policyFor(ModelKind::WO).pipelinedDrain);
    EXPECT_FALSE(policyFor(ModelKind::RCsc).drainOnAllSync);
    EXPECT_TRUE(policyFor(ModelKind::RCsc).drainOnRelease);
    EXPECT_TRUE(policyFor(ModelKind::DRF0).drainOnAllSync);
    EXPECT_TRUE(policyFor(ModelKind::DRF0).pipelinedDrain);
    EXPECT_FALSE(policyFor(ModelKind::DRF1).drainOnAllSync);
    EXPECT_TRUE(policyFor(ModelKind::DRF1).pipelinedDrain);
}

TEST(Model, Names)
{
    EXPECT_EQ(modelName(ModelKind::SC), "SC");
    EXPECT_EQ(modelName(ModelKind::WO), "WO");
    EXPECT_EQ(modelName(ModelKind::RCsc), "RCsc");
    EXPECT_EQ(modelName(ModelKind::DRF0), "DRF0");
    EXPECT_EQ(modelName(ModelKind::DRF1), "DRF1");
}

TEST(StoreBuffer, OwnerForwardsPendingStore)
{
    auto m = makeModel(ModelKind::WO, 2, 4, {}, /*laziness=*/1.0);
    m->writeData(0, 1, 42, /*id=*/0);
    EXPECT_EQ(m->pendingStores(0), 1u);
    const auto r = m->readData(0, 1);
    EXPECT_EQ(r.value, 42);
    EXPECT_EQ(r.observedWrite, 0u);
    EXPECT_FALSE(r.stale); // issue-order witness agrees
}

TEST(StoreBuffer, RemoteReaderSeesStaleValue)
{
    auto m = makeModel(ModelKind::WO, 2, 4, {}, 1.0);
    m->writeData(0, 1, 42, 0);
    const auto r = m->readData(1, 1);
    EXPECT_EQ(r.value, 0);          // buffered, not yet visible
    EXPECT_TRUE(r.stale);           // witness says it should be 42
}

TEST(StoreBuffer, SyncDrainsOnWO)
{
    auto m = makeModel(ModelKind::WO, 2, 4, {}, 1.0);
    m->writeData(0, 1, 42, 0);
    m->readSync(0, 2, true); // any sync op drains on WO
    EXPECT_EQ(m->pendingStores(0), 0u);
    EXPECT_EQ(m->readData(1, 1).value, 42);
}

TEST(StoreBuffer, AcquireDoesNotDrainOnRCsc)
{
    auto m = makeModel(ModelKind::RCsc, 2, 4, {}, 1.0);
    m->writeData(0, 1, 42, 0);
    m->readSync(0, 2, /*acquire=*/true);
    EXPECT_EQ(m->pendingStores(0), 1u); // still buffered
    m->writeSync(0, 2, 0, 1, /*release=*/true);
    EXPECT_EQ(m->pendingStores(0), 0u); // release drained
}

TEST(StoreBuffer, FenceDrains)
{
    auto m = makeModel(ModelKind::DRF1, 2, 4, {}, 1.0);
    m->writeData(0, 1, 7, 0);
    m->fence(0);
    EXPECT_EQ(m->pendingStores(0), 0u);
}

TEST(StoreBuffer, ScWritesCompleteImmediately)
{
    auto m = makeModel(ModelKind::SC, 2, 4);
    m->writeData(0, 1, 9, 0);
    EXPECT_EQ(m->pendingStores(0), 0u);
    EXPECT_EQ(m->readData(1, 1).value, 9);
    EXPECT_FALSE(m->readData(1, 1).stale);
}

TEST(StoreBuffer, PerLocationCoherenceOnDrain)
{
    // Two stores by one proc to the SAME word must drain in order.
    auto m = makeModel(ModelKind::WO, 1, 4, {}, 0.0);
    Rng rng(3);
    m->writeData(0, 1, 1, 0);
    m->writeData(0, 1, 2, 1);
    for (int i = 0; i < 10; ++i)
        m->tick(rng);
    EXPECT_EQ(m->globalValue(1), 2);
}

TEST(Scheduler, RoundRobinCycles)
{
    RoundRobinScheduler s(1);
    Rng rng(1);
    const std::vector<ProcId> all{0, 1, 2};
    EXPECT_EQ(s.pick(all, rng), 0);
    EXPECT_EQ(s.pick(all, rng), 1);
    EXPECT_EQ(s.pick(all, rng), 2);
    EXPECT_EQ(s.pick(all, rng), 0);
}

TEST(Scheduler, RoundRobinQuantum)
{
    RoundRobinScheduler s(3);
    Rng rng(1);
    const std::vector<ProcId> all{0, 1};
    EXPECT_EQ(s.pick(all, rng), 0);
    EXPECT_EQ(s.pick(all, rng), 0);
    EXPECT_EQ(s.pick(all, rng), 0);
    EXPECT_EQ(s.pick(all, rng), 1);
}

TEST(Scheduler, RoundRobinSkipsHalted)
{
    RoundRobinScheduler s(1);
    Rng rng(1);
    EXPECT_EQ(s.pick({0, 1, 2}, rng), 0);
    EXPECT_EQ(s.pick({0, 2}, rng), 2);
    EXPECT_EQ(s.pick({0, 2}, rng), 0);
}

TEST(Scheduler, ScriptedReplaysThenFallsBack)
{
    ScriptedScheduler s({1, 1, 0});
    Rng rng(1);
    const std::vector<ProcId> all{0, 1};
    EXPECT_EQ(s.pick(all, rng), 1);
    EXPECT_EQ(s.pick(all, rng), 1);
    EXPECT_EQ(s.pick(all, rng), 0);
    // script exhausted: round-robin fallback still yields valid procs
    const ProcId next = s.pick(all, rng);
    EXPECT_TRUE(next == 0 || next == 1);
}

TEST(Scheduler, RandomIsFairIsh)
{
    RandomScheduler s;
    Rng rng(5);
    int c0 = 0;
    for (int i = 0; i < 1000; ++i)
        c0 += s.pick({0, 1}, rng) == 0;
    EXPECT_GT(c0, 300);
    EXPECT_LT(c0, 700);
}

TEST(Executor, ArithmeticAndControlFlow)
{
    ThreadBuilder t;
    t.movi(1, 0)
     .movi(2, 5)
     .label("loop")
     .addi(1, 1, 2)
     .addi(2, 2, -1)
     .bnz(2, "loop")
     .store(0, 1)
     .halt();
    const auto res = runProgram(singleThread(t),
                                {.model = ModelKind::SC});
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.memAt(0), 10);
}

TEST(Executor, ComparisonsWork)
{
    ThreadBuilder t;
    t.movi(1, 3).movi(2, 7)
     .cmplt(3, 1, 2)   // 1
     .cmpeq(4, 1, 2)   // 0
     .cmpne(5, 1, 2)   // 1
     .cmpeqi(6, 1, 3)  // 1
     .cmplti(7, 2, 7)  // 0
     .sub(8, 2, 1)     // 4
     .mul(9, 1, 2)     // 21
     .halt();
    const auto res = runProgram(singleThread(t));
    const auto &r = res.finalRegs[0];
    EXPECT_EQ(r[3], 1);
    EXPECT_EQ(r[4], 0);
    EXPECT_EQ(r[5], 1);
    EXPECT_EQ(r[6], 1);
    EXPECT_EQ(r[7], 0);
    EXPECT_EQ(r[8], 4);
    EXPECT_EQ(r[9], 21);
}

TEST(Executor, IndexedAddressing)
{
    ThreadBuilder t;
    t.movi(1, 3)
     .storeiIdx(10, 1, 77)   // mem[10+3] = 77
     .loadIdx(2, 10, 1)      // r2 = mem[13]
     .halt();
    const auto res = runProgram(singleThread(t));
    EXPECT_EQ(res.memAt(13), 77);
    EXPECT_EQ(res.finalRegs[0][2], 77);
}

TEST(Executor, InitialMemoryVisible)
{
    ProgramBuilder pb;
    pb.var("x", 0, 37);
    ThreadBuilder t;
    t.load(1, 0).halt();
    pb.thread(t);
    const auto res = runProgram(pb.build());
    EXPECT_EQ(res.finalRegs[0][1], 37);
    EXPECT_EQ(res.staleReads, 0u);
    // Reads of the initial image pair with "no writer".
    ASSERT_EQ(res.ops.size(), 1u);
    EXPECT_EQ(res.ops[0].observedWrite, kNoOp);
}

TEST(Executor, TasIsAtomicReadThenWrite)
{
    ProgramBuilder pb;
    pb.var("s", 0, 0);
    ThreadBuilder t;
    t.tas(1, 0).halt();
    pb.thread(t);
    const auto res = runProgram(pb.build());
    ASSERT_EQ(res.ops.size(), 2u);
    EXPECT_EQ(res.ops[0].kind, OpKind::Read);
    EXPECT_TRUE(res.ops[0].sync);
    EXPECT_TRUE(res.ops[0].acquire);
    EXPECT_EQ(res.ops[1].kind, OpKind::Write);
    EXPECT_TRUE(res.ops[1].sync);
    EXPECT_FALSE(res.ops[1].release); // Test&Set write is NOT a release
    EXPECT_EQ(res.memAt(0), 1);
    EXPECT_EQ(res.finalRegs[0][1], 0); // old value
}

TEST(Executor, UnsetIsRelease)
{
    ProgramBuilder pb;
    pb.var("s", 0, 1);
    ThreadBuilder t;
    t.unset(0).halt();
    pb.thread(t);
    const auto res = runProgram(pb.build());
    ASSERT_EQ(res.ops.size(), 1u);
    EXPECT_TRUE(res.ops[0].sync);
    EXPECT_TRUE(res.ops[0].release);
    EXPECT_EQ(res.memAt(0), 0);
}

TEST(Executor, DeterministicForSeed)
{
    const Program p = figure2Queue({.regionSize = 10});
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 33;
    const auto a = runProgram(p, opts);
    const auto b = runProgram(p, opts);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].addr, b.ops[i].addr);
        EXPECT_EQ(a.ops[i].value, b.ops[i].value);
        EXPECT_EQ(a.ops[i].proc, b.ops[i].proc);
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.stepOrder, b.stepOrder);
}

TEST(Executor, MaxStepsTruncatesSpin)
{
    // Consumer spins on a flag nobody sets.
    ProgramBuilder pb;
    pb.var("f", 0, 0);
    ThreadBuilder t;
    t.label("w").syncload(1, 0).bz(1, "w").halt();
    pb.thread(t);
    ExecOptions opts;
    opts.maxSteps = 100;
    const auto res = runProgram(pb.build(), opts);
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(res.steps, 100u);
}

TEST(Executor, StepOrderReplaysExactly)
{
    const Program p = figure2Queue({.regionSize = 8});
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 5;
    opts.drainLaziness = 0.9;
    const auto orig = runProgram(p, opts);

    ScriptedScheduler sched(orig.stepOrder);
    ExecOptions replay = opts;
    replay.scheduler = &sched;
    const auto again = runProgram(p, replay);
    ASSERT_EQ(orig.ops.size(), again.ops.size());
    for (std::size_t i = 0; i < orig.ops.size(); ++i) {
        EXPECT_EQ(orig.ops[i].proc, again.ops[i].proc);
        EXPECT_EQ(orig.ops[i].addr, again.ops[i].addr);
    }
}

// --- Staleness & SC witness --------------------------------------

TEST(Staleness, ScNeverStale)
{
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        const auto res = runProgram(figure1a(), opts);
        EXPECT_EQ(res.staleReads, 0u) << "seed " << seed;
        EXPECT_EQ(res.firstStaleRead, kNoOp);
    }
}

TEST(Staleness, WeakFig1aEventuallyViolatesSc)
{
    // Figure 1a exhibits the classic violation: P2 reads the new y
    // but the old x.  Search seeds for it under WO.
    bool violated = false;
    for (std::uint64_t seed = 0; seed < 200 && !violated; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.8;
        const auto res = runProgram(figure1a(), opts);
        const auto &regs = res.finalRegs[1];
        if (regs[0] == 1 && regs[1] == 0) { // y new, x old
            violated = true;
            EXPECT_GT(res.staleReads, 0u);
        }
    }
    EXPECT_TRUE(violated);
}

TEST(Staleness, RaceFreeProgramsNeverStale)
{
    // Condition 3.4(1) at the simulator level: figure 1b is
    // data-race-free, so no model may produce a stale read.
    for (const auto kind : kAllModels) {
        for (std::uint64_t seed = 0; seed < 50; ++seed) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(figure1b(), opts);
            ASSERT_TRUE(res.completed);
            EXPECT_EQ(res.staleReads, 0u)
                << modelName(kind) << " seed " << seed;
            // And the synchronized reads saw the new values.
            EXPECT_EQ(res.finalRegs[1][1], 1);
            EXPECT_EQ(res.finalRegs[1][2], 1);
        }
    }
}

// --- Locked counter across models (parameterized) ----------------

class ModelSweep : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(ModelSweep, LockedCounterIsCorrectUnderEveryModel)
{
    const Program p = lockedCounter(3, 5);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opts;
        opts.model = GetParam();
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(1), 15) << "seed " << seed;
        EXPECT_EQ(res.staleReads, 0u) << "seed " << seed;
    }
}

TEST_P(ModelSweep, MessagePassingDeliversUnderEveryModel)
{
    const Program p = messagePassing(4, /*racy=*/false);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opts;
        opts.model = GetParam();
        opts.seed = seed;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.staleReads, 0u);
        // Consumer's last loads (ring of regs 1..) saw the payloads.
        EXPECT_EQ(res.finalRegs[1][1], 100);
        EXPECT_EQ(res.finalRegs[1][4], 103);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto &info) {
                             return std::string(modelName(info.param));
                         });

// --- Cost model ---------------------------------------------------

TEST(Cost, WeakModelsOutrunScOnWriteHeavyCode)
{
    const Program p = lockedCounter(2, 10);
    Tick sc = 0, wo = 0;
    {
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = 1;
        sc = runProgram(p, opts).totalCycles;
    }
    {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = 1;
        wo = runProgram(p, opts).totalCycles;
    }
    EXPECT_LT(wo, sc);
}

TEST(Cost, PipelinedDrainBeatsSerialDrain)
{
    // Many buffered stores before a release: DRF0's pipelined drain
    // should be cheaper than WO's serial one.
    ThreadBuilder t;
    for (Addr a = 1; a <= 20; ++a)
        t.storei(a, 1);
    t.unset(0).halt();
    ProgramBuilder pb1;
    pb1.thread(t);
    const Program p = pb1.build();

    ExecOptions wo;
    wo.model = ModelKind::WO;
    wo.drainLaziness = 1.0;
    ExecOptions drf0;
    drf0.model = ModelKind::DRF0;
    drf0.drainLaziness = 1.0;
    EXPECT_LT(runProgram(p, drf0).totalCycles,
              runProgram(p, wo).totalCycles);
}

} // namespace
} // namespace wmr
