#include "trace/execution_trace.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace wmr {

void
ExecutionTrace::setShape(ProcId procs, Addr words)
{
    perProc_.assign(procs, {});
    memWords_ = words;
}

EventId
ExecutionTrace::addEvent(Event ev)
{
    wmr_assert(ev.proc < perProc_.size());
    ev.id = static_cast<EventId>(events_.size());
    ev.indexInProc =
        static_cast<std::uint32_t>(perProc_[ev.proc].size());
    perProc_[ev.proc].push_back(ev.id);
    if (ev.kind == EventKind::Sync) {
        syncOrder_[ev.syncOp.addr].push_back(ev.id);
        ++numSync_;
    }
    events_.push_back(std::move(ev));
    return events_.back().id;
}

ExecutionTrace
buildTrace(const ExecutionResult &res, const TraceBuildOptions &opts)
{
    // Universe size: cover every address any op touched.
    Addr words = 0;
    ProcId procs = 0;
    for (const auto &op : res.ops) {
        words = std::max(words, op.addr + 1);
        procs = std::max<ProcId>(procs, op.proc + 1);
    }
    if (procs == 0)
        procs = 1;

    ExecutionTrace trace;
    trace.setShape(procs, words);
    trace.setFirstStaleRead(res.firstStaleRead);
    trace.setTotalOps(res.ops.size());

    // Per-processor op id lists, in program order (= issue order
    // restricted to the processor).
    std::vector<std::vector<OpId>> perProcOps(procs);
    for (const auto &op : res.ops)
        perProcOps[op.proc].push_back(op.id);

    // Emit events per processor, then register them in global
    // first-op order so event ids are roughly chronological (useful
    // for human-readable reports; nothing depends on it).
    std::vector<Event> staging;

    for (ProcId p = 0; p < procs; ++p) {
        Event comp;                // accumulating computation event
        bool open = false;

        const auto flush = [&]() {
            if (open) {
                staging.push_back(std::move(comp));
                comp = Event();
                open = false;
            }
        };

        for (const OpId oid : perProcOps[p]) {
            const MemOp &op = res.ops[oid];
            if (op.sync) {
                flush();
                Event ev;
                ev.kind = EventKind::Sync;
                ev.proc = p;
                ev.firstOp = ev.lastOp = oid;
                ev.opCount = 1;
                ev.syncOp = op;
                staging.push_back(std::move(ev));
                continue;
            }
            if (open && opts.maxCompRun != 0 &&
                comp.opCount >= opts.maxCompRun) {
                flush();
            }
            if (!open) {
                comp.kind = EventKind::Computation;
                comp.proc = p;
                comp.firstOp = oid;
                comp.readSet.resize(words);
                comp.writeSet.resize(words);
                open = true;
            }
            comp.lastOp = oid;
            ++comp.opCount;
            if (op.kind == OpKind::Read)
                comp.readSet.set(op.addr);
            else
                comp.writeSet.set(op.addr);
            if (opts.keepMemberOps)
                comp.memberOps.push_back(oid);
        }
        flush();
    }

    std::sort(staging.begin(), staging.end(),
              [](const Event &a, const Event &b) {
                  return a.firstOp < b.firstOp;
              });

    // Map from sync-op id to its event id, for so1 pairing.
    std::unordered_map<OpId, EventId> syncWriteEvent;
    for (auto &ev : staging) {
        const EventId id = trace.addEvent(std::move(ev));
        const Event &stored = trace.event(id);
        if (stored.kind == EventKind::Sync &&
            stored.syncOp.kind == OpKind::Write) {
            syncWriteEvent[stored.syncOp.id] = id;
        }
    }

    // Resolve release→acquire pairing: an acquire read pairs with the
    // RELEASE write whose value it returned (Defs. 2.1-2.2).
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
        const Event &ev = trace.events()[i];
        if (ev.kind != EventKind::Sync || !ev.syncOp.acquire)
            continue;
        const OpId writer = ev.syncOp.observedWrite;
        if (writer == kNoOp)
            continue;
        const MemOp &wop = res.ops[writer];
        if (!wop.sync || !wop.release)
            continue;
        const auto it = syncWriteEvent.find(writer);
        wmr_assert(it != syncWriteEvent.end());
        trace.mutableEvent(static_cast<EventId>(i)).pairedRelease =
            it->second;
    }

    return trace;
}

} // namespace wmr
