#include "detect/report.hh"

#include "common/string_util.hh"

namespace wmr {

namespace {

std::string
membershipText(ScpMembership m)
{
    switch (m) {
      case ScpMembership::Full: return "in-SCP";
      case ScpMembership::Partial: return "SCP-boundary";
      case ScpMembership::Outside: return "post-SCP";
    }
    return "?";
}

ReportRaceModel
buildRaceModel(const DetectionResult &result, RaceId r)
{
    const DataRace &race = result.races()[r];
    ReportRaceModel out;
    out.a = summarizeEvent(result.trace().event(race.a));
    out.b = summarizeEvent(result.trace().event(race.b));
    out.addrs = race.addrs;
    out.isDataRace = race.isDataRace;
    out.inScp = result.scp().raceInScp[r];
    out.maybeInScp = result.scp().raceMaybeInScp[r];
    return out;
}

} // namespace

ReportModel
buildReportModel(const DetectionResult &result)
{
    ReportModel m;
    m.numEvents = result.trace().events().size();
    m.numSyncEvents = result.trace().numSyncEvents();
    m.totalOps = result.trace().totalOps();
    m.numDataRaces = result.numDataRaces();
    m.anyDataRace = result.anyDataRace();
    m.wholeExecutionSc = result.scp().wholeExecutionSc;
    m.scpEndOp = result.scp().scpEndOp;
    for (RaceId r = 0; r < result.races().size(); ++r)
        m.races.push_back(buildRaceModel(result, r));
    const auto &parts = result.partitions();
    for (const auto &part : parts.partitions) {
        ReportPartitionModel pm;
        pm.label = part.label;
        pm.races = part.races;
        pm.first = part.first;
        m.partitions.push_back(std::move(pm));
    }
    m.firstPartitions = parts.firstPartitions;
    return m;
}

std::string
describeEvent(const Event &ev, const Program *prog)
{
    return describeEventInfo(summarizeEvent(ev), prog);
}

std::string
describeRace(const DetectionResult &result, RaceId r,
             const Program *prog, const ReportOptions &opts)
{
    ReportModel m;
    m.races.resize(r + 1);
    m.races[r] = buildRaceModel(result, r);
    return describeRaceModel(m, r, prog, opts);
}

std::string
formatReport(const DetectionResult &result, const Program *prog,
             const ReportOptions &opts)
{
    const ReportModel m = buildReportModel(result);
    std::string out = renderReport(m, prog, opts);

    if (m.anyDataRace && opts.showEvents) {
        out += "-- events --\n";
        for (const auto &ev : result.trace().events()) {
            out += strformat(
                "   %s [%s]\n", describeEvent(ev, prog).c_str(),
                membershipText(
                    result.scp().membership(ev.id)).c_str());
        }
    }
    return out;
}

} // namespace wmr
