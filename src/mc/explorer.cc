#include "mc/explorer.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"
#include "detect/analysis.hh"

namespace wmr {

namespace {

/** Snapshot-able interpreter state of one exploration path. */
struct McState
{
    std::vector<std::uint32_t> pcs;
    std::vector<std::array<Value, kNumRegs>> regs;
    std::vector<bool> halted;
    std::vector<std::uint32_t> poIndex;
    std::vector<Value> memory;
    std::vector<OpId> lastWriter;
    std::uint64_t steps = 0;

    /** FNV-1a hash of the semantic state (pcs/regs/halted/memory),
     *  used for no-progress cycle pruning. */
    std::uint64_t
    semanticHash() const
    {
        std::uint64_t h = 1469598103934665603ull;
        const auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        for (std::size_t p = 0; p < pcs.size(); ++p) {
            mix(pcs[p]);
            mix(halted[p]);
            for (const auto r : regs[p])
                mix(static_cast<std::uint64_t>(r));
        }
        for (const auto v : memory)
            mix(static_cast<std::uint64_t>(v));
        return h;
    }
};

/** DFS driver enumerating SC executions. */
class McRunner
{
  public:
    McRunner(const Program &prog, const McLimits &limits,
             const ExecutionCallback &cb)
        : prog_(prog), limits_(limits), cb_(cb)
    {
        const ProcId n = prog.numProcs();
        state_.pcs.assign(n, 0);
        state_.regs.assign(n, {});
        state_.halted.assign(n, false);
        state_.poIndex.assign(n, 0);
        state_.memory.assign(prog.memWords(), 0);
        state_.lastWriter.assign(prog.memWords(), kNoOp);
        for (const auto &[addr, value] : prog.initialMemory())
            state_.memory[addr] = value;
        truth_.exhaustive = true;
    }

    ScGroundTruth
    run()
    {
        dfs();
        return truth_;
    }

  private:
    /** @return effective address of @p i on processor @p p. */
    Addr
    ea(ProcId p, const Instr &i) const
    {
        Addr a = i.addr;
        if (i.indexed) {
            a += static_cast<Addr>(
                static_cast<std::uint64_t>(state_.regs[p][i.a]));
        }
        return a;
    }

    void
    ensureAddr(Addr a)
    {
        if (a >= state_.memory.size()) {
            state_.memory.resize(a + 1, 0);
            state_.lastWriter.resize(a + 1, kNoOp);
        }
    }

    /**
     * Execute local (non-memory) instructions of @p p until the next
     * memory instruction, the Halt, or the step bound.
     * @return false when the step bound was exceeded.
     */
    bool
    advanceLocal(ProcId p)
    {
        const auto &code = prog_.thread(p).code;
        auto &pc = state_.pcs[p];
        auto &regs = state_.regs[p];
        while (!state_.halted[p]) {
            if (pc >= code.size()) {
                state_.halted[p] = true;
                return true;
            }
            const Instr &i = code[pc];
            if (opcodeAccessesMemory(i.op))
                return true;
            if (++state_.steps > limits_.maxStepsPerExec)
                return false;
            std::uint32_t next = pc + 1;
            switch (i.op) {
              case Opcode::Nop: break;
              case Opcode::MovI: regs[i.dst] = i.imm; break;
              case Opcode::Mov: regs[i.dst] = regs[i.a]; break;
              case Opcode::Add:
                regs[i.dst] = regs[i.a] + regs[i.b];
                break;
              case Opcode::AddI:
                regs[i.dst] = regs[i.a] + i.imm;
                break;
              case Opcode::Sub:
                regs[i.dst] = regs[i.a] - regs[i.b];
                break;
              case Opcode::Mul:
                regs[i.dst] = regs[i.a] * regs[i.b];
                break;
              case Opcode::CmpEq:
                regs[i.dst] = regs[i.a] == regs[i.b];
                break;
              case Opcode::CmpNe:
                regs[i.dst] = regs[i.a] != regs[i.b];
                break;
              case Opcode::CmpLt:
                regs[i.dst] = regs[i.a] < regs[i.b];
                break;
              case Opcode::CmpEqI:
                regs[i.dst] = regs[i.a] == i.imm;
                break;
              case Opcode::CmpLtI:
                regs[i.dst] = regs[i.a] < i.imm;
                break;
              case Opcode::Fence: break;   // SC: no-op
              case Opcode::FenceSS: break; // SC: no-op
              case Opcode::Branch:
                if (regs[i.a] != 0)
                    next = i.target;
                break;
              case Opcode::BranchZ:
                if (regs[i.a] == 0)
                    next = i.target;
                break;
              case Opcode::Jump: next = i.target; break;
              case Opcode::Halt: state_.halted[p] = true; break;
              default:
                panic("advanceLocal: memory opcode slipped through");
            }
            pc = next;
        }
        return true;
    }

    void
    emit(ProcId p, std::uint32_t pc, OpKind kind, bool sync, bool acq,
         bool rel, Addr addr, Value value)
    {
        MemOp op;
        op.id = static_cast<OpId>(trail_.size());
        op.proc = p;
        op.poIndex = state_.poIndex[p]++;
        op.pc = pc;
        op.kind = kind;
        op.sync = sync;
        op.acquire = acq;
        op.release = rel;
        op.addr = addr;
        op.value = value;
        if (kind == OpKind::Read) {
            op.observedWrite = state_.lastWriter[addr];
        } else {
            state_.memory[addr] = value;
            state_.lastWriter[addr] = op.id;
        }
        trail_.push_back(op);
    }

    /** Execute the pending memory instruction of @p p (SC memory). */
    void
    execMemInstr(ProcId p)
    {
        const auto &code = prog_.thread(p).code;
        const std::uint32_t pc = state_.pcs[p];
        const Instr &i = code[pc];
        auto &regs = state_.regs[p];
        const Addr a = ea(p, i);
        ensureAddr(a);
        ++state_.steps;
        switch (i.op) {
          case Opcode::Load:
            regs[i.dst] = state_.memory[a];
            emit(p, pc, OpKind::Read, false, false, false, a,
                 regs[i.dst]);
            break;
          case Opcode::Store:
            emit(p, pc, OpKind::Write, false, false, false, a,
                 regs[i.b]);
            break;
          case Opcode::StoreI:
            emit(p, pc, OpKind::Write, false, false, false, a, i.imm);
            break;
          case Opcode::TestAndSet: {
            const Value old = state_.memory[a];
            regs[i.dst] = old;
            emit(p, pc, OpKind::Read, true, true, false, a, old);
            emit(p, pc, OpKind::Write, true, false, false, a, 1);
            break;
          }
          case Opcode::Unset:
            emit(p, pc, OpKind::Write, true, false, true, a, 0);
            break;
          case Opcode::SyncLoad:
            regs[i.dst] = state_.memory[a];
            emit(p, pc, OpKind::Read, true, true, false, a,
                 regs[i.dst]);
            break;
          case Opcode::SyncStore:
            emit(p, pc, OpKind::Write, true, false, true, a,
                 regs[i.b]);
            break;
          case Opcode::SyncStoreI:
            emit(p, pc, OpKind::Write, true, false, true, a, i.imm);
            break;
          default:
            panic("execMemInstr: non-memory opcode");
        }
        state_.pcs[p] = pc + 1;
    }

    /** @return false to stop the whole exploration. */
    bool
    dfs()
    {
        // Deterministically advance every processor to its next
        // memory instruction (or halt).
        for (ProcId p = 0; p < prog_.numProcs(); ++p) {
            if (!state_.halted[p] && !advanceLocal(p)) {
                ++truth_.truncated;
                truth_.exhaustive = false;
                return true; // prune this path only
            }
        }

        std::vector<ProcId> runnable;
        for (ProcId p = 0; p < prog_.numProcs(); ++p) {
            if (!state_.halted[p])
                runnable.push_back(p);
        }

        if (runnable.empty())
            return leaf();

        if (state_.steps > limits_.maxStepsPerExec) {
            ++truth_.truncated;
            truth_.exhaustive = false;
            return true;
        }

        // No-progress cycle pruning: a state already on the current
        // path means some spin iteration changed nothing; the same
        // behaviors are covered by the branch that never scheduled
        // the spinner.
        std::uint64_t h = 0;
        if (limits_.pruneCycles) {
            h = state_.semanticHash();
            if (pathStates_.count(h)) {
                ++truth_.cyclesPruned;
                return true;
            }
            pathStates_.insert(h);
        }

        for (const ProcId p : runnable) {
            const McState snapshot = state_;
            const std::size_t trailLen = trail_.size();
            execMemInstr(p);
            const bool keep_going = dfs();
            state_ = snapshot;
            trail_.resize(trailLen);
            if (!keep_going) {
                if (limits_.pruneCycles)
                    pathStates_.erase(h);
                return false;
            }
            if (truth_.executions >= limits_.maxExecutions) {
                truth_.exhaustive = false;
                if (limits_.pruneCycles)
                    pathStates_.erase(h);
                return false;
            }
        }
        if (limits_.pruneCycles)
            pathStates_.erase(h);
        return true;
    }

    /** A complete SC execution: analyze and aggregate. */
    bool
    leaf()
    {
        ++truth_.executions;

        ExecutionResult res;
        res.model = ModelKind::SC;
        res.ops = trail_;
        res.completed = true;
        res.steps = state_.steps;
        res.firstStaleRead = kNoOp;
        res.finalMemory = state_.memory;
        res.finalRegs = state_.regs;
        res.procCycles.assign(prog_.numProcs(), 0);

        DetectionResult det = analyzeExecution(res);
        if (det.anyDataRace()) {
            truth_.anyDataRace = true;
            for (RaceId r = 0;
                 r < static_cast<RaceId>(det.races().size()); ++r) {
                if (!det.races()[r].isDataRace)
                    continue;
                const auto pairs =
                    staticPairsOfRace(det, r, res.ops);
                truth_.races.insert(pairs.begin(), pairs.end());
            }
        }

        if (cb_ && !cb_(res))
            return false;
        return true;
    }

    const Program &prog_;
    const McLimits &limits_;
    const ExecutionCallback &cb_;
    McState state_;
    std::vector<MemOp> trail_;
    std::unordered_set<std::uint64_t> pathStates_;
    ScGroundTruth truth_;
};

} // namespace

ScGroundTruth
exploreScExecutions(const Program &prog, const McLimits &limits,
                    const ExecutionCallback &onExecution)
{
    prog.validate();
    McRunner runner(prog, limits, onExecution);
    return runner.run();
}

bool
raceFeasibleOnSc(const Program &prog, const StaticRace &target,
                 const McLimits &limits)
{
    bool found = false;
    exploreScExecutions(
        prog, limits, [&](const ExecutionResult &res) {
            DetectionResult det = analyzeExecution(res);
            for (RaceId r = 0;
                 r < static_cast<RaceId>(det.races().size()); ++r) {
                if (!det.races()[r].isDataRace)
                    continue;
                const auto pairs =
                    staticPairsOfRace(det, r, res.ops);
                if (pairs.count(target)) {
                    found = true;
                    return false; // stop exploring
                }
            }
            return true;
        });
    return found;
}

StaticRaceSet
staticPairsOfRace(const DetectionResult &result, RaceId r,
                  const std::vector<MemOp> &ops)
{
    const DataRace &race = result.races()[r];
    const Event &ea = result.trace().event(race.a);
    const Event &eb = result.trace().event(race.b);

    const auto members = [&](const Event &ev) {
        std::vector<OpId> out;
        if (ev.kind == EventKind::Sync)
            out.push_back(ev.syncOp.id);
        else
            out = ev.memberOps;
        return out;
    };

    StaticRaceSet set;
    for (const OpId oa : members(ea)) {
        for (const OpId ob : members(eb)) {
            const MemOp &x = ops[oa];
            const MemOp &y = ops[ob];
            if (!conflict(x, y) || (x.sync && y.sync))
                continue;
            set.insert(StaticRace::make({x.proc, x.pc},
                                        {y.proc, y.pc}));
        }
    }
    return set;
}

StaticRaceSet
staticPairsOfRaces(const DetectionResult &result,
                   const std::vector<RaceId> &raceIds,
                   const std::vector<MemOp> &ops)
{
    StaticRaceSet set;
    for (const auto r : raceIds) {
        const auto pairs = staticPairsOfRace(result, r, ops);
        set.insert(pairs.begin(), pairs.end());
    }
    return set;
}

} // namespace wmr
