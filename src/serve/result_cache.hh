/**
 * @file
 * The content-addressed analysis result cache of the serve
 * subsystem.
 *
 * Analysis is DETERMINISTIC — PR 4/5 prove reports byte-identical
 * across thread counts and obs on/off — so a result is a pure
 * function of (trace bytes, salvage mode) and caching is sound: the
 * key is the CRC32-extended 64-bit content digest of the uploaded
 * bytes (common/hash64.hh) plus the exact byte length and the
 * request flags that change the result (salvage).  Identical
 * uploads are answered from here byte-identically, without touching
 * the analysis engine.
 *
 * Two tiers:
 *  - MEMORY: an LRU list under a byte budget; insertion evicts from
 *    the cold end until the new entry fits.  Entries are whole
 *    responses (meta + report text), costed at their string sizes
 *    plus a fixed per-entry overhead so the accounting cannot creep.
 *  - DISK (optional): a directory of one file per key, written
 *    temp-then-rename and CRC-framed so a torn write is detected and
 *    ignored, never served.  A memory miss falls through to disk and
 *    re-warms the memory tier; memory eviction does NOT delete the
 *    disk copy (disk is the durable tier, trimmed out of band).
 *
 * Thread safety: one mutex around both tiers.  Lookups are
 * string-copy cheap next to an analysis, and the serve accept loop
 * is the only hot caller.
 */

#ifndef WMR_SERVE_RESULT_CACHE_HH
#define WMR_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/protocol.hh"

namespace wmr::serve {

/** The content address of one analysis result. */
struct CacheKey
{
    std::uint64_t hash = 0;  ///< contentHash64 of the trace bytes
    std::uint64_t bytes = 0; ///< exact upload length
    std::uint32_t flags = 0; ///< result-relevant request flags

    bool
    operator==(const CacheKey &o) const
    {
        return hash == o.hash && bytes == o.bytes &&
               flags == o.flags;
    }
};

/** @return the request flag bits that change the analysis result
 *  (cache-key relevant): salvage changes what a damaged upload
 *  parses to; no-cache is a policy bit, not a result bit. */
std::uint32_t cacheRelevantFlags(std::uint32_t requestFlags);

/** One cached response: everything needed to answer byte-identically
 *  (the serve layer adds the cache-hit flag on the way out). */
struct CachedResult
{
    ResponseMeta meta;
    std::uint32_t respFlags = 0; ///< anyDataRace/salvaged bits
    std::string report;
};

/** Point-in-time cache accounting. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t diskHits = 0;   ///< misses recovered from disk
    std::uint64_t diskErrors = 0; ///< unreadable/torn disk entries
    std::uint64_t bytes = 0;      ///< memory tier, accounted bytes
    std::uint64_t entries = 0;    ///< memory tier, entry count
    std::uint64_t byteBudget = 0;
};

class ResultCache
{
  public:
    /**
     * @p byteBudget bounds the memory tier (0 = caching disabled:
     * every get misses, every put is dropped).  @p persistDir "" =
     * memory only; otherwise the directory is created if missing.
     */
    explicit ResultCache(std::uint64_t byteBudget,
                         std::string persistDir = "");

    /** Look up @p key; on hit copies into @p out and touches the
     *  entry most-recently-used. */
    bool get(const CacheKey &key, CachedResult &out);

    /** Insert @p value under @p key (replacing any stale entry),
     *  evicting least-recently-used entries until it fits.  An entry
     *  larger than the whole budget is persisted but not kept in
     *  memory. */
    void put(const CacheKey &key, const CachedResult &value);

    CacheStats stats() const;

    /** Drop the memory tier (disk survives).  Test support. */
    void dropMemoryForTest();

    /** @return the disk file name for @p key (entry naming is part
     *  of the persistence contract; see docs/SERVE.md). */
    static std::string entryFileName(const CacheKey &key);

  private:
    struct Entry
    {
        CacheKey key;
        CachedResult value;
        std::uint64_t cost = 0;
    };

    struct KeyHasher
    {
        std::size_t
        operator()(const CacheKey &k) const
        {
            // hash is already uniform; fold in the low key fields.
            return static_cast<std::size_t>(
                k.hash ^ (k.bytes * 0x9e3779b97f4a7c15ull) ^
                k.flags);
        }
    };

    std::uint64_t entryCost(const CachedResult &v) const;
    void evictToFitLocked(std::uint64_t need);
    bool loadFromDiskLocked(const CacheKey &key, CachedResult &out);
    void persistToDisk(const CacheKey &key,
                       const CachedResult &value);
    void insertLocked(const CacheKey &key, const CachedResult &value);

    const std::uint64_t byteBudget_;
    const std::string persistDir_;

    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator,
                       KeyHasher>
        index_;
    CacheStats stats_;
};

} // namespace wmr::serve

#endif // WMR_SERVE_RESULT_CACHE_HH
