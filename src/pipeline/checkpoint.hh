/**
 * @file
 * The batch checkpoint journal: crash-tolerant resume for long
 * corpus runs, plus the quarantine manifest for poison traces.
 *
 * A checkpoint is an APPEND-ONLY text journal with one line per
 * COMPLETED trace (analyzed or failed; skipped traces are not
 * completed and are never journaled).  Workers append their line the
 * moment a trace finishes, so a batch run killed halfway leaves a
 * journal listing exactly the finished prefix; re-running with the
 * same --checkpoint file prefills those results and analyzes only
 * the remainder.
 *
 * Crash tolerance mirrors the segmented trace container: a line is
 * only trusted if it parses completely (tag, full field count, end
 * marker), so a line torn by SIGKILL mid-append is silently ignored
 * and its trace is simply re-analyzed — resume never trusts a
 * half-written record.  Lines starting with '#' are comments.
 *
 * DETERMINISM: a journaled line carries every per-trace field that
 * the aggregated report (text and JSON) renders, so a resumed run
 * produces byte-identical report output to an uninterrupted one —
 * the property the determinism tests diff.
 *
 * The quarantine manifest is the complementary output: the paths of
 * traces that FAILED to load/parse, written in the corpus-manifest
 * syntax ('#' comments + one path per line) so it can be fed
 * straight back to `wmrace batch` once the traces are repaired.
 */

#ifndef WMR_PIPELINE_CHECKPOINT_HH
#define WMR_PIPELINE_CHECKPOINT_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/batch_runner.hh"

namespace wmr {

/** Render @p r as one checkpoint journal line (no newline). */
std::string checkpointLine(const TraceRunResult &r);

/**
 * Parse one journal line into @p out.  @return false (and leaves
 * @p out unspecified) for comments, blank lines, torn/truncated
 * lines, or lines from an incompatible journal version.
 */
bool parseCheckpointLine(const std::string &line, TraceRunResult &out);

/** What loadCheckpoint() recovered from a journal file. */
struct CheckpointLoad
{
    /** Completed-trace results, in journal (= completion) order. */
    std::vector<TraceRunResult> entries;

    /** Unparseable non-comment lines that were skipped (at most one
     *  for a journal torn by a single crash; more means the file was
     *  edited or is not a checkpoint). */
    std::size_t tornLines = 0;
};

/**
 * Load @p path.  A missing file is a fresh start (no entries); a
 * torn final line is skipped.  Never fails: the journal is an
 * optimization, and the worst case is re-analyzing a trace.
 */
CheckpointLoad loadCheckpoint(const std::string &path);

/**
 * Thread-safe append-only journal writer.  Each append() writes one
 * complete line and flushes it to the OS, so the journal survives
 * the process being killed (a torn line is possible only if the
 * kill lands mid-write, and the loader tolerates that).
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Open @p path for appending (creating it if absent). */
    bool open(const std::string &path);

    bool isOpen() const { return file_ != nullptr; }
    const std::string &lastError() const { return error_; }

    /** Journal one completed trace. */
    bool append(const TraceRunResult &r);

  private:
    std::FILE *file_ = nullptr;
    std::string error_;
    std::mutex mu_;
};

/**
 * Render the quarantine manifest of @p batch: every failed trace
 * path, in corpus order, under a '#' comment header.  Empty string
 * when nothing failed.
 */
std::string quarantineManifest(const BatchResult &batch);

} // namespace wmr

#endif // WMR_PIPELINE_CHECKPOINT_HH
