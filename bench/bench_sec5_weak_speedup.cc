/**
 * @file
 * The motivating performance claim (Sections 1 and 5): weak systems
 * outperform sequentially consistent ones, and because race
 * detection works directly on weak executions, "a slower
 * sequentially consistent mode for debugging is not necessary".
 *
 * The table sweeps race-free workloads and reports simulated cycles
 * under each model plus the weak speedup over SC.  The shape to
 * expect: SC stalls on every write (writeLatency cycles); the weak
 * models retire writes into the buffer and pay only at sync points,
 * so speedup grows with the write density between synchronizations.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

Tick
avgCycles(const Program &p, ModelKind kind, std::uint64_t seeds)
{
    Tick total = 0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        ExecOptions opts;
        opts.model = kind;
        opts.seed = seed;
        opts.drainLaziness = 0.5;
        total += runProgram(p, opts).totalCycles;
    }
    return total / seeds;
}

void
row(const std::string &name, const Program &p)
{
    const Tick sc = avgCycles(p, ModelKind::SC, 8);
    std::printf("  %-26s %10llu", name.c_str(),
                static_cast<unsigned long long>(sc));
    for (const auto kind : {ModelKind::WO, ModelKind::RCsc,
                            ModelKind::DRF0, ModelKind::DRF1}) {
        const Tick t = avgCycles(p, kind, 8);
        std::printf(" %8llu (%4.2fx)",
                    static_cast<unsigned long long>(t),
                    static_cast<double>(sc) /
                        static_cast<double>(t));
    }
    std::printf("\n");
}

Program
randomDrf(std::uint32_t opsPerBlock)
{
    RandomProgConfig cfg;
    cfg.seed = 5;
    cfg.procs = 4;
    cfg.blocksPerProc = 8;
    cfg.opsPerBlock = opsPerBlock;
    cfg.dataWords = 32;
    cfg.numLocks = 4;
    cfg.unlockedProb = 0.0;
    cfg.writeProb = 0.7;
    return randomProgram(cfg);
}

void
reproduce()
{
    section("simulated cycles on race-free workloads (avg of 8 "
            "seeds)");
    std::printf("  %-26s %10s %16s %16s %16s %16s\n", "workload",
                "SC", "WO", "RCsc", "DRF0", "DRF1");
    row("locked counter 4x8", lockedCounter(4, 8));
    row("message passing x8", messagePassing(8));
    row("producer/consumer 8x4", producerConsumer(8, 4));
    row("barrier stripes 4x4", barrierStripes(4, 4));
    row("random DRF, 4 ops/block", randomDrf(4));
    row("random DRF, 12 ops/block", randomDrf(12));
    row("random DRF, 24 ops/block", randomDrf(24));
    note("shape: every weak model beats SC; the gap widens with "
         "write density");
    note("between sync points; RCsc/DRF1 shave sync stalls further "
         "by not draining");
    note("at acquires; DRF0/DRF1 pipeline their drains.");

    section("...and debugging needs no SC mode (Sec. 5)");
    const Program p = randomDrf(12);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 1;
    const auto res = runProgram(p, opts);
    const auto det = analyzeExecution(res);
    std::printf("  WO execution of the random DRF workload: %zu "
                "races, SC-equivalent: %s\n",
                det.races().size(),
                det.scp().wholeExecutionSc ? "yes" : "no");
    note("the detector certified the WEAK execution itself; the "
         "paper's point.");
}

void
BM_SimulateModel(benchmark::State &state)
{
    const auto kind = static_cast<ModelKind>(state.range(0));
    const Program p = randomDrf(12);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = kind;
        opts.seed = ++seed;
        benchmark::DoNotOptimize(runProgram(p, opts).totalCycles);
    }
}
BENCHMARK(BM_SimulateModel)->DenseRange(0, 4)->ArgName("model");

} // namespace

WMR_BENCH_MAIN(reproduce)
