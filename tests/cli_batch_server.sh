#!/usr/bin/env bash
# CTest driver for `wmrace batch --server`: start a server, aggregate
# a corpus through it, and require the remote batch report to be
# byte-identical to the same corpus batched locally (the report
# carries no timing, so the runs compare exactly).
#
# Usage: cli_batch_server.sh WMRACE_BIN CORPUS_DIR
set -u

die() { echo "cli_batch_server: $*" >&2; exit 2; }

[ $# -eq 2 ] || die "usage: cli_batch_server.sh WMRACE_BIN CORPUS_DIR"
WMRACE=$1
CORPUS=$2
[ -x "$WMRACE" ] || die "not executable: $WMRACE"
[ -d "$CORPUS" ] || die "no corpus dir: $CORPUS"

WORK=$(mktemp -d /tmp/wmrbatchsrv.XXXXXX) || die "mktemp failed"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        "$WMRACE" submit --server "$ADDR" --shutdown >/dev/null 2>&1
        wait "$SERVER_PID" 2>/dev/null
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

"$WMRACE" serve --socket "$WORK/serve.sock" --jobs 2 \
    > "$WORK/addr.txt" 2> "$WORK/serve.log" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(cat "$WORK/addr.txt" 2>/dev/null)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        cat "$WORK/serve.log" >&2
        SERVER_PID=""
        die "server died during startup"
    }
    sleep 0.1
done
[ -n "$ADDR" ] || die "server never printed its address"

# `batch` exits 1 when any trace has a data race; both runs must
# agree on that exit status too.
"$WMRACE" batch "$CORPUS" --jobs 2 \
    > "$WORK/local.out" 2> "$WORK/local.err"
local_status=$?
"$WMRACE" batch "$CORPUS" --jobs 2 --server "$ADDR" \
    > "$WORK/remote.out" 2> "$WORK/remote.err"
remote_status=$?

if [ $local_status -ne $remote_status ]; then
    echo "cli_batch_server: exit status differs" \
         "(local $local_status, remote $remote_status)" >&2
    cat "$WORK/remote.out" >&2
    exit 1
fi
if ! cmp -s "$WORK/local.out" "$WORK/remote.out"; then
    echo "cli_batch_server: remote batch report differs from local" >&2
    diff -u "$WORK/local.out" "$WORK/remote.out" >&2
    exit 1
fi
echo "batch --server report is byte-identical to local batch"
cat "$WORK/remote.out"
