/**
 * @file
 * Model explorer: run the same programs under all five memory models
 * and compare outcomes, performance, and race reports side by side.
 *
 * Demonstrates the paper's framing: the weak models buy performance
 * (fewer stall cycles) and remain indistinguishable from SC exactly
 * as long as the program is data-race-free; racy programs expose the
 * difference, and the detector keeps working on all of them.
 */

#include <cstdio>
#include <string>

#include "detect/analysis.hh"
#include "onthefly/vc_detector.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;

struct Row
{
    std::string model;
    Tick cycles = 0;
    std::uint64_t staleReads = 0;
    std::size_t races = 0;
    std::size_t firstPartitions = 0;
};

Row
measure(const Program &prog, ModelKind kind, std::uint64_t seeds)
{
    Row row;
    row.model = modelName(kind);
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        ExecOptions opts;
        opts.model = kind;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(prog, opts);
        row.cycles += res.totalCycles;
        row.staleReads += res.staleReads;
        const auto det = analyzeExecution(res);
        row.races += det.numDataRaces();
        row.firstPartitions +=
            det.partitions().firstPartitions.size();
    }
    row.cycles /= seeds;
    return row;
}

void
table(const char *title, const Program &prog, std::uint64_t seeds)
{
    std::printf("\n%s  (averaged over %llu seeded runs)\n", title,
                static_cast<unsigned long long>(seeds));
    std::printf("  %-6s %12s %12s %10s %12s\n", "model", "avg cycles",
                "stale reads", "races", "first parts");
    for (const auto kind : kAllModels) {
        const Row r = measure(prog, kind, seeds);
        std::printf("  %-6s %12llu %12llu %10zu %12zu\n",
                    r.model.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.staleReads),
                    r.races, r.firstPartitions);
    }
}

} // namespace

int
main()
{
    std::printf("wmrace model explorer: SC vs WO vs RCsc vs DRF0 vs "
                "DRF1\n");

    table("race-free: locked counter (4 procs x 8 increments)",
          lockedCounter(4, 8), 10);
    std::printf("  -> weak models run faster; zero stale reads and "
                "zero races:\n     sequential consistency is "
                "preserved for free (Condition 3.4(1)).\n");

    table("race-free: message passing (release/acquire flag)",
          messagePassing(8, false), 10);

    table("racy: message passing with a DATA flag (bug)",
          messagePassing(8, true), 10);
    std::printf("  -> the data-flag handshake races on every model; "
                "on the weak\n     models stale reads appear — but "
                "the detector still reports\n     the same first "
                "partition, no SC debug mode needed.\n");

    table("racy: unlocked shared counter",
          lockedCounter(4, 8, /*racy=*/true), 10);

    table("mixed: random program, 5% unlocked blocks", [] {
        RandomProgConfig cfg;
        cfg.seed = 7;
        cfg.procs = 4;
        cfg.blocksPerProc = 10;
        cfg.opsPerBlock = 6;
        cfg.dataWords = 16;
        cfg.numLocks = 4;
        cfg.unlockedProb = 0.05;
        return randomProgram(cfg);
    }(), 10);

    std::printf("\ndone: weak models preserve SC until a data race "
                "actually occurs,\nso dynamic race detection needs "
                "no slower SC debugging mode.\n");
    return 0;
}
