/**
 * @file
 * A deliberately tiny recursive-descent JSON parser for tests.
 *
 * The repo's machine outputs (batch --metrics JSON, the Chrome
 * trace_event export) are consumed by external tools, so the tests
 * must validate them as real JSON — not with regexes.  Pulling in a
 * JSON library for that would add a dependency the container may not
 * have; this ~150-line parser accepts exactly standard JSON and
 * keeps object fields in document order.
 *
 * Test-only: no error recovery, everything public, values are copied
 * freely.  Not for product code.
 */

#ifndef WMR_TESTS_JSON_MINI_HH
#define WMR_TESTS_JSON_MINI_HH

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace jsonmini {

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;                            // Array
    std::vector<std::pair<std::string, Value>> fields;   // Object

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** @return the field named @p key, or nullptr. */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : fields) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    std::vector<std::string>
    keys() const
    {
        std::vector<std::string> out;
        out.reserve(fields.size());
        for (const auto &[k, v] : fields)
            out.push_back(k);
        return out;
    }
};

struct ParseResult
{
    bool ok = false;
    Value value;
    std::string error;
};

namespace detail {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    literal(const char *word, std::size_t n)
    {
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                break;
            const char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text[pos++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("bad \\u escape digit");
                  }
                  // UTF-8 encode (no surrogate-pair support; the
                  // exporters only emit \u00XX control escapes).
                  if (cp < 0x80) {
                      out.push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      out.push_back(
                          static_cast<char>(0xC0 | (cp >> 6)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  } else {
                      out.push_back(
                          static_cast<char>(0xE0 | (cp >> 12)));
                      out.push_back(static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3F)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = Value::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Value v;
                if (!parseValue(v))
                    return false;
                out.fields.emplace_back(std::move(key),
                                        std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = Value::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null", 4);
        }
        // Number.
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        out.kind = Value::Kind::Number;
        out.number = std::strtod(text.substr(start, pos - start).c_str(),
                                 nullptr);
        return true;
    }
};

} // namespace detail

/** Parse @p text as one JSON document (trailing garbage rejected). */
inline ParseResult
parse(const std::string &text)
{
    detail::Parser p(text);
    ParseResult res;
    if (!p.parseValue(res.value)) {
        res.error = p.error;
        return res;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        res.error = "trailing bytes after the JSON document";
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace jsonmini

#endif // WMR_TESTS_JSON_MINI_HH
