#include "detect/report.hh"

#include "common/string_util.hh"

namespace wmr {

namespace {

std::string
addrText(Addr a, const Program *prog)
{
    if (prog)
        return prog->addrName(a);
    return strformat("[%u]", a);
}

std::string
membershipText(ScpMembership m)
{
    switch (m) {
      case ScpMembership::Full: return "in-SCP";
      case ScpMembership::Partial: return "SCP-boundary";
      case ScpMembership::Outside: return "post-SCP";
    }
    return "?";
}

} // namespace

std::string
describeEvent(const Event &ev, const Program *prog)
{
    if (ev.kind == EventKind::Sync) {
        const char *what = ev.syncOp.kind == OpKind::Write
                               ? (ev.syncOp.release ? "release-write"
                                                    : "sync-write")
                               : (ev.syncOp.acquire ? "acquire-read"
                                                    : "sync-read");
        return strformat("E%u P%u %s %s @pc%u", ev.id, ev.proc, what,
                         addrText(ev.syncOp.addr, prog).c_str(),
                         ev.syncOp.pc);
    }
    std::string reads, writes;
    std::size_t shown = 0;
    ev.readSet.forEach([&](std::size_t a) {
        if (shown++ < 4) {
            if (!reads.empty())
                reads += ",";
            reads += addrText(static_cast<Addr>(a), prog);
        }
    });
    shown = 0;
    ev.writeSet.forEach([&](std::size_t a) {
        if (shown++ < 4) {
            if (!writes.empty())
                writes += ",";
            writes += addrText(static_cast<Addr>(a), prog);
        }
    });
    return strformat("E%u P%u computation(%u ops) R{%s} W{%s}", ev.id,
                     ev.proc, ev.opCount, reads.c_str(),
                     writes.c_str());
}

std::string
describeRace(const DetectionResult &result, RaceId r,
             const Program *prog, const ReportOptions &opts)
{
    const DataRace &race = result.races()[r];
    const auto &ea = result.trace().event(race.a);
    const auto &eb = result.trace().event(race.b);
    std::string addrs;
    for (std::size_t i = 0;
         i < race.addrs.size() && i < opts.maxAddrsPerRace; ++i) {
        if (i)
            addrs += ",";
        addrs += addrText(race.addrs[i], prog);
    }
    if (race.addrs.size() > opts.maxAddrsPerRace)
        addrs += ",...";
    const char *scp_tag =
        result.scp().raceInScp[r]
            ? "SCP"
            : (result.scp().raceMaybeInScp[r] ? "SCP?" : "non-SCP");
    return strformat(
        "race #%u <%s | %s> on {%s} [%s]%s", r,
        describeEvent(ea, prog).c_str(),
        describeEvent(eb, prog).c_str(), addrs.c_str(), scp_tag,
        race.isDataRace ? "" : " (general race, not a data race)");
}

std::string
formatReport(const DetectionResult &result, const Program *prog,
             const ReportOptions &opts)
{
    std::string out;
    const auto &scp = result.scp();
    const auto &parts = result.partitions();

    out += "=== wmrace post-mortem data race report ===\n";
    out += strformat("events: %zu (%u sync), operations: %llu\n",
                     result.trace().events().size(),
                     result.trace().numSyncEvents(),
                     static_cast<unsigned long long>(
                         result.trace().totalOps()));
    out += strformat("races: %zu (%zu data races) in %zu partitions\n",
                     result.races().size(), result.numDataRaces(),
                     parts.partitions.size());

    if (!result.anyDataRace()) {
        out += "NO data races detected.\n";
        out += "By Theorem 4.1 / Condition 3.4(1): this execution was "
               "sequentially consistent;\nreason about it exactly as "
               "on a sequentially consistent machine.\n";
        return out;
    }

    if (scp.wholeExecutionSc) {
        out += "execution remained SC end-to-end (no stale reads); "
               "all races are SCP races.\n";
    } else {
        out += strformat(
            "sequentially consistent prefix: operations [0, %llu)\n",
            static_cast<unsigned long long>(scp.scpEndOp));
    }

    out += strformat("FIRST partitions to report: %zu\n",
                     parts.firstPartitions.size());
    for (const auto pi : parts.firstPartitions) {
        const auto &part = parts.partitions[pi];
        out += strformat("-- first partition (G' component %u), "
                         "%zu race(s):\n",
                         part.component, part.races.size());
        out += "   at least one race below also occurs in a "
               "sequentially consistent execution (Theorem 4.2)\n";
        for (const auto r : part.races)
            out += "   " + describeRace(result, r, prog, opts) + "\n";
    }

    if (opts.showNonFirst) {
        for (std::size_t i = 0; i < parts.partitions.size(); ++i) {
            const auto &part = parts.partitions[i];
            if (part.first)
                continue;
            out += strformat("-- non-first partition (G' component "
                             "%u), %zu race(s) — affected by earlier "
                             "races, may be artifacts:\n",
                             part.component, part.races.size());
            for (const auto r : part.races)
                out += "   " + describeRace(result, r, prog, opts) +
                       "\n";
        }
    }

    if (opts.showEvents) {
        out += "-- events --\n";
        for (const auto &ev : result.trace().events()) {
            out += strformat(
                "   %s [%s]\n", describeEvent(ev, prog).c_str(),
                membershipText(scp.membership(ev.id)).c_str());
        }
    }
    return out;
}

} // namespace wmr
