#include "pipeline/batch_runner.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>

#include "pipeline/work_queue.hh"
#include "pipeline/worker_pool.hh"
#include "trace/trace_io.hh"

namespace wmr {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Load + parse + analyze one trace file into @p out. */
void
analyzeOneTrace(const std::string &path, const AnalysisOptions &opts,
                TraceRunResult &out, StageSeconds &stages)
{
    out.path = path;

    const auto readStart = Clock::now();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.status = TraceRunStatus::IoError;
        out.error = "cannot open trace file '" + path + "'";
        return;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        out.status = TraceRunStatus::IoError;
        out.error = "read error on trace file '" + path + "'";
        return;
    }
    out.fileBytes = bytes.size();
    stages.read += secondsSince(readStart);

    const auto parseStart = Clock::now();
    auto parsed = tryDeserializeTrace(bytes);
    stages.parse += secondsSince(parseStart);
    if (!parsed.ok()) {
        out.status = parsed.status == TraceIoStatus::IoError
                         ? TraceRunStatus::IoError
                         : TraceRunStatus::FormatError;
        out.error = parsed.error;
        return;
    }

    const auto analyzeStart = Clock::now();
    const DetectionResult det =
        analyzeTrace(std::move(parsed.trace), opts);
    stages.analyze += secondsSince(analyzeStart);

    out.status = TraceRunStatus::Ok;
    out.events = det.trace().events().size();
    out.syncEvents = det.trace().numSyncEvents();
    out.ops = det.trace().totalOps();
    out.races = det.races().size();
    out.dataRaces = det.numDataRaces();
    out.partitions = det.partitions().partitions.size();
    out.firstPartitions = det.partitions().firstPartitions.size();
    out.reportedRaces = det.reportedRaces().size();
    out.anyDataRace = det.anyDataRace();
    out.wholeExecutionSc = det.scp().wholeExecutionSc;
}

} // namespace

const char *
traceRunStatusName(TraceRunStatus status)
{
    switch (status) {
      case TraceRunStatus::Ok:
        return "ok";
      case TraceRunStatus::IoError:
        return "io_error";
      case TraceRunStatus::FormatError:
        return "format_error";
      case TraceRunStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

bool
BatchResult::anyDataRace() const
{
    for (const auto &t : traces) {
        if (t.ok() && t.anyDataRace)
            return true;
    }
    return false;
}

std::size_t
BatchResult::numFailed() const
{
    std::size_t n = 0;
    for (const auto &t : traces) {
        if (t.failed())
            ++n;
    }
    return n;
}

BatchResult
runBatch(const CorpusScan &corpus, const BatchOptions &opts)
{
    BatchResult result;
    result.corpus = corpus;

    const std::size_t n = corpus.files.size();
    unsigned jobs = opts.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > n && n > 0)
        jobs = static_cast<unsigned>(n);

    result.traces.resize(n);
    result.metrics.jobs = jobs;
    result.metrics.corpusTraces = n;
    if (n == 0)
        return result;

    const auto wallStart = Clock::now();

    // Producer -> workers hand-off.  The bound keeps the backlog (and
    // so the peak-depth metric) meaningful without ever stalling the
    // workers: a few slots of slack per worker.
    WorkQueue<std::size_t> queue(static_cast<std::size_t>(jobs) * 4);
    std::atomic<bool> abortDispatch{false};

    std::mutex metricsMutex;
    StageSeconds stageTotal;

    const auto workerBody = [&](unsigned) {
        StageSeconds localStages;
        std::size_t index = 0;
        while (queue.pop(index)) {
            TraceRunResult &slot = result.traces[index];
            if (opts.failFast &&
                abortDispatch.load(std::memory_order_relaxed)) {
                slot.path = corpus.files[index];
                slot.status = TraceRunStatus::Skipped;
                slot.error = "--fail-fast after an earlier failure";
                continue;
            }
            analyzeOneTrace(corpus.files[index], opts.analysis, slot,
                            localStages);
            if (slot.failed())
                abortDispatch.store(true,
                                    std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(metricsMutex);
        stageTotal.read += localStages.read;
        stageTotal.parse += localStages.parse;
        stageTotal.analyze += localStages.analyze;
    };

    {
        WorkerPool pool(jobs, workerBody);
        for (std::size_t i = 0; i < n; ++i) {
            if (opts.failFast &&
                abortDispatch.load(std::memory_order_relaxed)) {
                // Mark everything not yet dispatched as skipped; the
                // producer owns these slots until they are pushed.
                TraceRunResult &slot = result.traces[i];
                slot.path = corpus.files[i];
                slot.status = TraceRunStatus::Skipped;
                slot.error = "--fail-fast after an earlier failure";
                continue;
            }
            queue.push(i);
        }
        queue.close();
        pool.join();
    }

    result.metrics.wallSeconds = secondsSince(wallStart);
    result.metrics.stageTotal = stageTotal;
    result.metrics.peakQueueDepth = queue.peakDepth();
    for (const auto &t : result.traces) {
        result.metrics.bytesRead += t.fileBytes;
        if (t.ok())
            ++result.metrics.analyzed;
        else if (t.failed())
            ++result.metrics.failed;
        else
            ++result.metrics.skipped;
    }
    return result;
}

} // namespace wmr
