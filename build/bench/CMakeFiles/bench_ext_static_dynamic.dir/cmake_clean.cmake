file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_static_dynamic.dir/bench_ext_static_dynamic.cc.o"
  "CMakeFiles/bench_ext_static_dynamic.dir/bench_ext_static_dynamic.cc.o.d"
  "bench_ext_static_dynamic"
  "bench_ext_static_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_static_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
