#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/string_util.hh"
#include "fault/fault.hh"
#include "serve/io_util.hh"

namespace wmr::serve {

std::string
ServerAddress::str() const
{
    if (tcp)
        return strformat("tcp:%s:%d", host.c_str(), port);
    return socketPath;
}

bool
parseServerAddress(const std::string &text, ServerAddress &out,
                   std::string &error)
{
    out = ServerAddress{};
    if (text.empty()) {
        error = "server address is empty";
        return false;
    }
    if (text.rfind("tcp:", 0) != 0) {
        out.socketPath = text;
        return true;
    }
    const std::size_t colon = text.rfind(':');
    if (colon == 3) { // only the "tcp:" prefix — no port separator
        error = "tcp server address needs tcp:HOST:PORT";
        return false;
    }
    out.tcp = true;
    out.host = text.substr(4, colon - 4);
    const std::string portText = text.substr(colon + 1);
    char *end = nullptr;
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (out.host.empty() || portText.empty() || *end != '\0' ||
        port < 1 || port > 65535) {
        error = "tcp server address needs tcp:HOST:PORT with a "
                "port in 1..65535";
        return false;
    }
    out.port = static_cast<int>(port);
    return true;
}

int
connectToServer(const ServerAddress &addr, std::string &error)
{
    if (!addr.tcp) {
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        if (addr.socketPath.size() >= sizeof(sa.sun_path)) {
            error = "socket path exceeds the unix-domain limit";
            return -1;
        }
        std::memcpy(sa.sun_path, addr.socketPath.c_str(),
                    addr.socketPath.size() + 1);
        const int fd =
            ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        // EINTR on a unix-domain connect is retryable: the kernel
        // either completed nothing or everything, and a re-connect
        // on an already-connected socket returns EISCONN — success.
        int rc;
        do {
            rc = ::connect(fd,
                           reinterpret_cast<const sockaddr *>(&sa),
                           sizeof(sa));
        } while (rc != 0 && errno == EINTR);
        if (rc != 0 && errno != EISCONN) {
            error = strformat("connect %s: %s",
                              addr.socketPath.c_str(),
                              std::strerror(errno));
            ::close(fd);
            return -1;
        }
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portText = std::to_string(addr.port);
    const int gai = ::getaddrinfo(addr.host.c_str(),
                                  portText.c_str(), &hints, &res);
    if (gai != 0) {
        error = strformat("resolve %s: %s", addr.host.c_str(),
                          ::gai_strerror(gai));
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        int rc;
        do {
            rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        } while (rc != 0 && errno == EINTR);
        if (rc == 0 || errno == EISCONN)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        error = strformat("connect %s: %s", addr.str().c_str(),
                          std::strerror(errno));
    return fd;
}

namespace {

/** One request/response round trip on a fresh connection. */
SubmitResult
roundTrip(const ServerAddress &addr, const Request &req)
{
    SubmitResult out;
    const int fd = connectToServer(addr, out.error);
    if (fd < 0)
        return out;
    const std::vector<std::uint8_t> frame = encodeRequestFrame(req);

    // Fault injection, hostile-client edition.  slowloris trickles
    // the request one byte per param ms (default 10) — the SERVER's
    // per-connection deadline must cut it off; truncate stops after
    // half the frame and shuts down the write side — the server
    // must answer with a typed error or close, never hang.
    std::uint64_t dripMs = 0;
    if (fault::at("serve.client.slowloris", &dripMs)) {
        if (dripMs == 0)
            dripMs = 10;
        bool sent = true;
        for (std::size_t i = 0; i < frame.size() && sent; ++i) {
            sent = writeAll(fd, frame.data() + i, 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(dripMs));
        }
        if (!sent) {
            out.error = "send failed: server closed the "
                        "connection (deadline)";
            ::close(fd);
            return out;
        }
    } else if (fault::at("serve.client.truncate")) {
        (void)writeAll(fd, frame.data(), frame.size() / 2);
        ::shutdown(fd, SHUT_WR);
    } else if (!writeAll(fd, frame.data(), frame.size())) {
        out.error = std::string("send failed: ") +
                    std::strerror(errno);
        ::close(fd);
        return out;
    }
    const FrameReadStatus rs =
        readResponse(fd, out.response, out.error);
    ::close(fd);
    out.ok = rs == FrameReadStatus::Ok;
    return out;
}

} // namespace

SubmitResult
submitTraceBytes(const ServerAddress &addr,
                 const std::vector<std::uint8_t> &bytes,
                 const SubmitOptions &opts)
{
    Request req;
    req.command = Command::Analyze;
    req.flags = (opts.salvage ? kReqSalvage : 0u) |
                (opts.noCache ? kReqNoCache : 0u);
    if (!opts.engine.empty()) {
        const std::uint32_t wire = engineWireId(opts.engine);
        if (wire == 0) {
            SubmitResult out;
            out.error = strformat(
                "unknown engine '%s' (valid: hb1|shb|wcp|all)",
                opts.engine.c_str());
            return out;
        }
        req.flags |= wire << kReqEngineShift;
    }
    req.body = bytes;

    const unsigned attempts = std::max(1u, opts.maxAttempts);
    SubmitResult last;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        last = roundTrip(addr, req);
        if (!last.ok)
            return last;
        const RespStatus status = last.response.status;
        if (status != RespStatus::Overloaded &&
            status != RespStatus::Draining)
            return last;
        if (attempt + 1 == attempts)
            break; // out of attempts: surface the rejection
        const std::uint32_t waitMs =
            last.response.retryAfterMs != 0
                ? last.response.retryAfterMs
                : opts.retryAfterMs;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(waitMs));
    }
    return last;
}

SubmitResult
submitTraceFile(const ServerAddress &addr, const std::string &path,
                const SubmitOptions &opts)
{
    std::vector<std::uint8_t> bytes;
    if (!readWholeFile(path, bytes)) {
        SubmitResult out;
        out.error =
            strformat("cannot read trace file '%s'", path.c_str());
        return out;
    }
    return submitTraceBytes(addr, bytes, opts);
}

SubmitResult
queryStatus(const ServerAddress &addr)
{
    Request req;
    req.command = Command::Status;
    return roundTrip(addr, req);
}

SubmitResult
requestShutdown(const ServerAddress &addr)
{
    Request req;
    req.command = Command::Shutdown;
    return roundTrip(addr, req);
}

} // namespace wmr::serve
