
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hb/hb_graph.cc" "src/hb/CMakeFiles/wmr_hb.dir/hb_graph.cc.o" "gcc" "src/hb/CMakeFiles/wmr_hb.dir/hb_graph.cc.o.d"
  "/root/repo/src/hb/reachability.cc" "src/hb/CMakeFiles/wmr_hb.dir/reachability.cc.o" "gcc" "src/hb/CMakeFiles/wmr_hb.dir/reachability.cc.o.d"
  "/root/repo/src/hb/scc.cc" "src/hb/CMakeFiles/wmr_hb.dir/scc.cc.o" "gcc" "src/hb/CMakeFiles/wmr_hb.dir/scc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wmr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
