/**
 * @file
 * Unit tests of the hb layer: SCC decomposition, the hb1 graph, the
 * reachability index (including cyclic graphs), and vector clocks.
 */

#include <gtest/gtest.h>

#include "hb/hb_graph.hh"
#include "hb/reachability.hh"
#include "hb/scc.hh"
#include "hb/vector_clock.hh"
#include "sim/executor.hh"
#include "trace/execution_trace.hh"
#include "workload/patterns.hh"

namespace wmr {
namespace {

TEST(Scc, SingletonsOnDag)
{
    // 0 -> 1 -> 2
    AdjList g{{1}, {2}, {}};
    const auto scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComponents, 3u);
    // Tarjan reverse-topological property: edges go to smaller ids.
    EXPECT_GT(scc.componentOf[0], scc.componentOf[1]);
    EXPECT_GT(scc.componentOf[1], scc.componentOf[2]);
}

TEST(Scc, DetectsCycle)
{
    // 0 -> 1 -> 2 -> 0, 2 -> 3
    AdjList g{{1}, {2}, {0, 3}, {}};
    const auto scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComponents, 2u);
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[1]);
    EXPECT_EQ(scc.componentOf[1], scc.componentOf[2]);
    EXPECT_NE(scc.componentOf[0], scc.componentOf[3]);
    // Condensation has exactly one edge cycle-comp -> {3}.
    const auto cyc = scc.componentOf[0];
    ASSERT_EQ(scc.condensation[cyc].size(), 1u);
    EXPECT_EQ(scc.condensation[cyc][0], scc.componentOf[3]);
}

TEST(Scc, SelfLoopIsItsOwnComponent)
{
    AdjList g{{0}, {}};
    const auto scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComponents, 2u);
    EXPECT_EQ(scc.members[scc.componentOf[0]].size(), 1u);
}

TEST(Scc, TwoInterleavedCycles)
{
    // 0<->1, 2<->3, 1->2
    AdjList g{{1}, {0, 2}, {3}, {2}};
    const auto scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComponents, 2u);
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[1]);
    EXPECT_EQ(scc.componentOf[2], scc.componentOf[3]);
    EXPECT_NE(scc.componentOf[0], scc.componentOf[2]);
}

TEST(Scc, EmptyGraph)
{
    const auto scc = stronglyConnectedComponents({});
    EXPECT_EQ(scc.numComponents, 0u);
}

TEST(Scc, DeepChainDoesNotOverflowStack)
{
    // 100k-node chain: the iterative Tarjan must handle it.
    const std::uint32_t n = 100'000;
    AdjList g(n);
    for (std::uint32_t i = 0; i + 1 < n; ++i)
        g[i].push_back(i + 1);
    const auto scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComponents, n);
}

// Helper: reachability over an explicit 2-proc graph.  Nodes
// alternate procs: node i belongs to proc i%2 with index i/2, and po
// chains 0->2->4..., 1->3->5... are added automatically.
ReachabilityIndex
makeIndex(std::uint32_t n, AdjList extra)
{
    AdjList g(n);
    std::vector<ProcId> proc(n);
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        proc[i] = i % 2;
        idx[i] = i / 2;
        if (i + 2 < n)
            g[i].push_back(i + 2);
    }
    for (std::uint32_t i = 0; i < n; ++i)
        for (const auto j : extra[i])
            g[i].push_back(j);
    return ReachabilityIndex(g, proc, idx, 2);
}

TEST(Reachability, PoChainsReach)
{
    auto r = makeIndex(6, AdjList(6));
    EXPECT_TRUE(r.reaches(0, 2));
    EXPECT_TRUE(r.reaches(0, 4));
    EXPECT_TRUE(r.reaches(1, 5));
    EXPECT_FALSE(r.reaches(4, 0));
    EXPECT_FALSE(r.reaches(0, 1)); // different procs, no cross edge
    EXPECT_FALSE(r.ordered(0, 1));
    EXPECT_TRUE(r.ordered(0, 4));
}

TEST(Reachability, CrossEdgeOrders)
{
    // so1-like edge 0 -> 3: then 0 reaches 3 and 5, but not 1.
    AdjList extra(6);
    extra[0].push_back(3);
    auto r = makeIndex(6, std::move(extra));
    EXPECT_TRUE(r.reaches(0, 3));
    EXPECT_TRUE(r.reaches(0, 5));
    EXPECT_FALSE(r.reaches(0, 1));
    EXPECT_TRUE(r.ordered(0, 5));
    EXPECT_FALSE(r.ordered(2, 1));
}

TEST(Reachability, TransitiveThroughBothProcs)
{
    // 0 -> 1's chain -> back to 0's chain: 0 ->(e) 3 ->(po) 5 ->(e) 4.
    AdjList extra(6);
    extra[0].push_back(3);
    extra[5].push_back(4);
    auto r = makeIndex(6, std::move(extra));
    EXPECT_TRUE(r.reaches(0, 4));
    EXPECT_FALSE(r.reaches(0, 1));
}

TEST(Reachability, CycleMeansMutuallyOrdered)
{
    // 0 -> 3 and 3 -> 0 create a cycle {0,3} (with nothing between).
    AdjList extra(6);
    extra[0].push_back(3);
    extra[3].push_back(0);
    auto r = makeIndex(6, std::move(extra));
    EXPECT_TRUE(r.reaches(0, 3));
    EXPECT_TRUE(r.reaches(3, 0));
    EXPECT_TRUE(r.ordered(0, 3));
    // Everything po-after either cycle member is reachable from both.
    EXPECT_TRUE(r.reaches(3, 2));
    EXPECT_TRUE(r.reaches(0, 5));
}

TEST(Reachability, ReflexiveReaches)
{
    auto r = makeIndex(4, AdjList(4));
    EXPECT_TRUE(r.reaches(2, 2));
}

TEST(HbGraph, Figure1bOrdersAcrossProcs)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 3;
    const auto res = runProgram(figure1b(), opts);
    const auto trace = buildTrace(res);
    HbGraph hb(trace);
    EXPECT_GT(hb.numSyncEdges(), 0u);
    ReachabilityIndex reach(hb, trace);

    // P1's computation event (writes) must happen-before P2's final
    // computation event (reads) through the Unset/Test&Set pairing.
    const EventId writer = trace.procEvents(0)[0];
    const EventId reader = trace.procEvents(1).back();
    EXPECT_TRUE(reach.reaches(writer, reader));
    EXPECT_FALSE(reach.reaches(reader, writer));
}

TEST(HbGraph, Figure1aLeavesDataUnordered)
{
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.seed = 3;
    const auto res = runProgram(figure1a(), opts);
    const auto trace = buildTrace(res);
    HbGraph hb(trace);
    EXPECT_EQ(hb.numSyncEdges(), 0u);
    ReachabilityIndex reach(hb, trace);
    const EventId e0 = trace.procEvents(0)[0];
    const EventId e1 = trace.procEvents(1)[0];
    EXPECT_FALSE(reach.ordered(e0, e1));
}

TEST(HbGraph, EdgesAreLabelled)
{
    ExecOptions opts;
    opts.seed = 3;
    const auto res = runProgram(figure1b(), opts);
    const auto trace = buildTrace(res);
    HbGraph hb(trace);
    bool saw_po = false, saw_so = false;
    for (const auto &e : hb.edges()) {
        saw_po |= e.kind == HbEdgeKind::ProgramOrder;
        saw_so |= e.kind == HbEdgeKind::SyncOrder;
    }
    EXPECT_TRUE(saw_po);
    EXPECT_TRUE(saw_so);
}

TEST(VectorClock, TickAndGet)
{
    VectorClock c(3);
    EXPECT_EQ(c.get(1), 0u);
    c.tick(1);
    c.tick(1);
    EXPECT_EQ(c.get(1), 2u);
    EXPECT_EQ(c.get(0), 0u);
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a(3), b(3);
    a.set(0, 5);
    a.set(1, 1);
    b.set(1, 4);
    b.set(2, 2);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 4u);
    EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, LessOrEqual)
{
    VectorClock a(2), b(2);
    a.set(0, 1);
    b.set(0, 2);
    b.set(1, 1);
    EXPECT_TRUE(a.lessOrEqual(b));
    EXPECT_FALSE(b.lessOrEqual(a));
    EXPECT_TRUE(a.lessOrEqual(a));
}

TEST(VectorClock, EpochLeq)
{
    VectorClock c(2);
    c.set(1, 3);
    EXPECT_TRUE(c.epochLeq(1, 3));
    EXPECT_TRUE(c.epochLeq(1, 2));
    EXPECT_FALSE(c.epochLeq(1, 4));
    EXPECT_FALSE(c.epochLeq(0, 1));
}

TEST(VectorClock, EqualityAcrossSizes)
{
    VectorClock a(2), b(4);
    a.set(1, 7);
    b.set(1, 7);
    EXPECT_TRUE(a == b);
    b.set(3, 1);
    EXPECT_FALSE(a == b);
}

TEST(VectorClock, Str)
{
    VectorClock c(3);
    c.set(0, 3);
    c.set(2, 7);
    EXPECT_EQ(c.str(), "<3,0,7>");
}

} // namespace
} // namespace wmr
