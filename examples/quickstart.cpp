/**
 * @file
 * Quickstart: build a small multithreaded program, run it on a weak
 * memory model, and detect its data races post-mortem.
 *
 *   $ ./quickstart
 *
 * The program is the paper's Figure 1(a): two processors touching
 * shared x and y with no synchronization.  The detector finds the
 * race and — because the race is in the sequentially consistent
 * prefix — tells you it is a REAL bug you can reason about with
 * sequentially consistent intuition.
 */

#include <cstdio>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "prog/builder.hh"
#include "sim/executor.hh"

int
main()
{
    using namespace wmr;

    // 1. Build the program with the fluent builder API.
    ProgramBuilder pb;
    pb.var("x", 0).var("y", 1);

    ThreadBuilder p1;
    p1.storei(0, 1).note("Write(x)")
      .storei(1, 1).note("Write(y)")
      .halt();

    ThreadBuilder p2;
    p2.load(0, 1).note("Read(y)")
      .load(1, 0).note("Read(x)")
      .halt();

    pb.thread(p1).thread(p2);
    const Program prog = pb.build();

    std::printf("--- program ---\n%s\n",
                prog.disassembleAll().c_str());

    // 2. Execute it on a weakly ordered (WO) machine.
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 42;
    const ExecutionResult res = runProgram(prog, opts);

    std::printf("executed %llu instructions, %zu memory operations, "
                "%llu simulated cycles\n",
                static_cast<unsigned long long>(res.steps),
                res.ops.size(),
                static_cast<unsigned long long>(res.totalCycles));
    std::printf("P2 observed y=%lld x=%lld%s\n\n",
                static_cast<long long>(res.finalRegs[1][0]),
                static_cast<long long>(res.finalRegs[1][1]),
                res.staleReads
                    ? "  <-- a combination no SC machine produces!"
                    : "");

    // 3. Detect data races post-mortem (Section 4 of the paper).
    const DetectionResult det = analyzeExecution(res);
    std::printf("%s", formatReport(det, &prog).c_str());

    // 4. Act on the verdict.
    if (det.anyDataRace()) {
        std::printf("\n=> fix: order the accesses with Unset/Test&Set"
                    " (see Figure 1(b), workload/patterns.hh)\n");
    }
    return det.anyDataRace() ? 1 : 0;
}
