# Empty dependencies file for wmr_onthefly.
# This may be replaced when dependencies are built.
