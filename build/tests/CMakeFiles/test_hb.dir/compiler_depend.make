# Empty compiler generated dependencies file for test_hb.
# This may be replaced when dependencies are built.
