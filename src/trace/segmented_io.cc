#include "trace/segmented_io.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <numeric>
#include <unordered_map>

#include "common/crc32.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "trace/wire_codec.hh"

namespace wmr {

namespace {

const char kSegMagic[8] = {'W', 'M', 'R', 'S', 'E', 'G', '0', '1'};

constexpr std::uint8_t kSegData = 'D';
constexpr std::uint8_t kSegFin = 'F';

/** Largest single segment we accept (a frame claiming more is
 *  treated as damage, not as a 2 GiB allocation request). */
constexpr std::uint32_t kMaxSegmentBytes = 1u << 30;

constexpr std::uint64_t kMaxWords = 1ull << 28;

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
putLe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

/** Signal-safe varint: encode @p v into @p out, return bytes used. */
std::size_t
putVarint(std::uint8_t *out, std::uint64_t v)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        out[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    out[n++] = static_cast<std::uint8_t>(v);
    return n;
}

/** One event in FILE order, pairing still an ordinal reference
 *  (the public SegFileEvent — declared in the header so incremental
 *  consumers share the exact wire semantics). */
using FileEvent = SegFileEvent;

void
encodeWordList(wire::Encoder &enc, std::vector<Addr> words)
{
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    enc.u64(words.size());
    Addr prev = 0;
    for (const Addr w : words) {
        enc.u64(w - prev);
        prev = w;
    }
}

std::vector<Addr>
decodeWordList(wire::Decoder &dec, const char *what)
{
    const std::uint64_t count = dec.u64();
    dec.checkCount(count, what);
    std::vector<Addr> words;
    words.reserve(count);
    std::uint64_t idx = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t delta = dec.u64();
        if (i > 0 && delta == 0)
            wire::parseFail("segmented trace: %s word ids not "
                            "strictly increasing",
                            what);
        idx += delta;
        if (idx >= kMaxWords)
            wire::parseFail("segmented trace: %s word id %llu out of "
                            "range",
                            what,
                            static_cast<unsigned long long>(idx));
        words.push_back(static_cast<Addr>(idx));
    }
    return words;
}

void
encodeFileEvent(wire::Encoder &enc, const FileEvent &ev)
{
    enc.u64(ev.kind == EventKind::Sync ? 1 : 0);
    enc.u64(ev.proc);
    enc.u64(ev.firstOp);
    enc.u64(ev.lastOp);
    enc.u64(ev.opCount);
    if (ev.kind == EventKind::Sync) {
        wire::encodeMemOp(enc, ev.syncOp);
        enc.u64(ev.pairing);
    } else {
        encodeWordList(enc, ev.readWords);
        encodeWordList(enc, ev.writeWords);
    }
}

FileEvent
decodeFileEvent(wire::Decoder &dec)
{
    FileEvent ev;
    const std::uint64_t kind = dec.u64();
    if (kind > 1)
        wire::parseFail("segmented trace: bad event kind %llu",
                        static_cast<unsigned long long>(kind));
    ev.kind = kind ? EventKind::Sync : EventKind::Computation;
    const std::uint64_t rawProc = dec.u64();
    if (rawProc >= kNoProc)
        wire::parseFail("segmented trace: event processor %llu too "
                        "large",
                        static_cast<unsigned long long>(rawProc));
    ev.proc = static_cast<ProcId>(rawProc);
    ev.firstOp = dec.u64();
    ev.lastOp = dec.u64();
    const std::uint64_t rawCount = dec.u64();
    if (rawCount > 0xffffffffull)
        wire::parseFail("segmented trace: event op count %llu too "
                        "large",
                        static_cast<unsigned long long>(rawCount));
    ev.opCount = static_cast<std::uint32_t>(rawCount);
    if (ev.kind == EventKind::Sync) {
        ev.syncOp = wire::decodeMemOp(dec);
        ev.pairing = dec.u64();
    } else {
        ev.readWords = decodeWordList(dec, "read set");
        ev.writeWords = decodeWordList(dec, "write set");
    }
    return ev;
}

/** Everything the frame scan recovers before trace rebuild. */
struct ScanResult
{
    std::vector<FileEvent> events;
    bool finSeen = false;
    SegShape fin;
    std::uint64_t droppedSoFar = 0;
    std::uint64_t segments = 0;
    // Damage (salvage mode only — strict throws instead).
    std::uint64_t segmentsDropped = 0;
    std::uint64_t bytesDropped = 0;
    std::string note;
};

/**
 * Parse one CRC-verified segment payload.  DATA events/counters land
 * in @p seg; a FIN fills @p fin.  Throws wire::ParseFailure on any
 * problem (including a segment appearing after the FIN).  @return
 * whether the payload was the FIN.
 */
bool
parseSegmentPayload(const std::uint8_t *payload, std::uint32_t len,
                    bool finAlready, SegTailSegment &seg,
                    SegShape &fin)
{
    wire::Decoder dec(payload, len);
    std::uint8_t tag = 0;
    dec.raw(&tag, 1);
    if (finAlready)
        wire::parseFail("segmented trace: segment after FIN");
    bool isFin = false;
    if (tag == kSegData) {
        seg.opsSoFar = dec.u64();
        seg.droppedSoFar = dec.u64();
        const std::uint64_t nevents = dec.u64();
        dec.checkCount(nevents, "segment event");
        for (std::uint64_t i = 0; i < nevents; ++i)
            seg.events.push_back(decodeFileEvent(dec));
    } else if (tag == kSegFin) {
        const std::uint64_t procs = dec.u64();
        if (procs >= kNoProc)
            wire::parseFail("segmented trace: FIN processor "
                            "count %llu too large",
                            static_cast<unsigned long long>(procs));
        const std::uint64_t words = dec.u64();
        if (words > kMaxWords)
            wire::parseFail("segmented trace: FIN universe "
                            "%llu too large",
                            static_cast<unsigned long long>(words));
        fin.procs = static_cast<ProcId>(procs);
        fin.memWords = static_cast<Addr>(words);
        fin.firstStaleRead = dec.u64();
        fin.totalOps = dec.u64();
        fin.droppedRecords = dec.u64();
        isFin = true;
    } else {
        wire::parseFail("segmented trace: unknown segment "
                        "tag 0x%02x",
                        tag);
    }
    if (!dec.done())
        wire::parseFail("segmented trace: trailing bytes in segment");
    return isFin;
}

/**
 * Scan segments from byte 8 on.  Strict mode throws ParseFailure at
 * the first problem; salvage mode records the damage, discards the
 * tail and returns what verified.
 */
ScanResult
scanSegments(const std::vector<std::uint8_t> &bytes, bool strict)
{
    ScanResult out;
    std::size_t off = sizeof(kSegMagic);

    const auto damage = [&](std::size_t at, const std::string &why) {
        if (strict)
            wire::parseFail("segmented trace: %s (offset %zu); a "
                            "partial recording can be recovered with "
                            "salvage",
                            why.c_str(), at);
        out.segmentsDropped = bytes.size() > at ? 1 : 0;
        out.bytesDropped = bytes.size() - at;
        out.note = why;
    };

    while (off < bytes.size()) {
        const std::size_t frameStart = off;
        if (bytes.size() - off < 4) {
            damage(frameStart, "truncated segment length");
            return out;
        }
        const std::uint32_t len = readLe32(bytes.data() + off);
        if (len == 0 || len > kMaxSegmentBytes ||
            len + 8ull > bytes.size() - off) {
            damage(frameStart, "truncated or oversized segment");
            return out;
        }
        const std::uint8_t *payload = bytes.data() + off + 4;
        const std::uint32_t stored = readLe32(payload + len);
        if (crc32(payload, len) != stored) {
            damage(frameStart, "segment checksum mismatch");
            return out;
        }

        // The frame verified; parse the payload.  In salvage mode a
        // payload that fails to decode still ends recovery here —
        // the CRC says the bytes are what the writer wrote, so a
        // parse failure means a writer/reader version skew we cannot
        // safely guess past.
        try {
            SegTailSegment seg;
            if (parseSegmentPayload(payload, len, out.finSeen, seg,
                                    out.fin)) {
                out.finSeen = true;
            } else {
                out.droppedSoFar = seg.droppedSoFar;
                std::move(seg.events.begin(), seg.events.end(),
                          std::back_inserter(out.events));
            }
        } catch (const wire::ParseFailure &pf) {
            if (strict)
                throw;
            damage(frameStart, pf.message);
            return out;
        }

        ++out.segments;
        off += 4ull + len + 4;
    }
    return out;
}

/** Rebuild an ExecutionTrace from the recovered file-order events. */
SegTraceReadResult
buildFromScan(ScanResult scan, bool strict)
{
    SegTraceReadResult res;
    SalvageInfo &sv = res.salvage;
    sv.finSeen = scan.finSeen;
    sv.segmentsRecovered = scan.segments;
    sv.segmentsDropped = scan.segmentsDropped;
    sv.bytesDropped = scan.bytesDropped;
    sv.note = scan.note;
    sv.salvaged = !scan.finSeen || scan.segmentsDropped > 0 ||
                  scan.bytesDropped > 0;
    if (sv.salvaged && sv.note.empty())
        sv.note = "no FIN segment (recording did not shut down "
                  "cleanly)";
    sv.droppedDataRecords =
        scan.finSeen ? scan.fin.droppedRecords : scan.droppedSoFar;

    if (strict && !scan.finSeen)
        wire::parseFail("segmented trace: missing FIN segment — the "
                        "recording did not shut down cleanly; a "
                        "partial recording can be recovered with "
                        "salvage");

    // Shape: the FIN is authoritative; without one (or when a
    // damaged file disagrees with it) widen to cover every event.
    ProcId procs = scan.finSeen ? scan.fin.procs : 0;
    Addr words = scan.finSeen ? scan.fin.memWords : 0;
    std::uint64_t totalOps = scan.finSeen ? scan.fin.totalOps : 0;
    std::uint64_t opsSeen = 0;
    for (const FileEvent &ev : scan.events) {
        ProcId needProcs = static_cast<ProcId>(ev.proc + 1);
        Addr needWords = 0;
        if (ev.kind == EventKind::Sync) {
            needWords = ev.syncOp.addr + 1;
        } else {
            if (!ev.readWords.empty())
                needWords = ev.readWords.back() + 1;
            if (!ev.writeWords.empty())
                needWords = std::max(needWords,
                                     ev.writeWords.back() + 1);
        }
        if (strict && scan.finSeen &&
            (needProcs > procs || needWords > words)) {
            wire::parseFail("segmented trace: event exceeds the FIN "
                            "shape (%u procs, %u words)",
                            static_cast<unsigned>(procs),
                            static_cast<unsigned>(words));
        }
        procs = std::max(procs, needProcs);
        words = std::max(words, needWords);
        opsSeen += ev.opCount;
    }
    if (procs == 0)
        procs = 1;
    if (!scan.finSeen)
        totalOps = opsSeen;

    sv.eventsRecovered = scan.events.size();
    sv.opsRecovered = opsSeen;

    res.trace.setShape(procs, words);
    res.trace.setFirstStaleRead(scan.finSeen ? scan.fin.firstStaleRead
                                             : kNoOp);
    res.trace.setTotalOps(totalOps);

    // Events are registered in first-op order (matching the classic
    // builder) while pairing ordinals refer to FILE order, so map
    // one onto the other.  The spill order already respects both the
    // per-processor and the per-location sync orders, and first-op
    // order refines it deterministically.
    const std::size_t n = scan.events.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return scan.events[a].firstOp <
                                scan.events[b].firstOp;
                     });
    std::vector<EventId> idByOrdinal(n, kNoEvent);

    for (std::size_t i = 0; i < n; ++i) {
        FileEvent &fe = scan.events[order[i]];
        Event ev;
        ev.kind = fe.kind;
        ev.proc = fe.proc;
        ev.firstOp = fe.firstOp;
        ev.lastOp = fe.lastOp;
        ev.opCount = fe.opCount;
        if (fe.kind == EventKind::Sync) {
            ev.syncOp = fe.syncOp;
        } else {
            ev.readSet.resize(words);
            ev.writeSet.resize(words);
            for (const Addr w : fe.readWords)
                ev.readSet.set(w);
            for (const Addr w : fe.writeWords)
                ev.writeSet.set(w);
        }
        idByOrdinal[order[i]] = res.trace.addEvent(std::move(ev));
    }

    // Resolve release→acquire pairing ordinals to event ids.  A
    // pairing that points outside the recovered prefix loses its so1
    // edge; strict mode treats that as corruption.
    for (std::size_t ord = 0; ord < n; ++ord) {
        const FileEvent &fe = scan.events[ord];
        if (fe.kind != EventKind::Sync || fe.pairing == 0)
            continue;
        const std::uint64_t target = fe.pairing - 1;
        const bool resolvable =
            target < n &&
            scan.events[target].kind == EventKind::Sync;
        if (!resolvable) {
            if (strict)
                wire::parseFail("segmented trace: event pairing "
                                "%llu unresolvable",
                                static_cast<unsigned long long>(
                                    fe.pairing));
            ++sv.unresolvedPairings;
            continue;
        }
        res.trace.mutableEvent(idByOrdinal[ord]).pairedRelease =
            idByOrdinal[target];
    }

    return res;
}

SegTraceReadResult
readSegmented(const std::vector<std::uint8_t> &bytes, bool strict)
{
    obs::Span span(strict ? "trace.read_segmented"
                          : "trace.salvage");
    obs::counter(strict ? "trace.segmented_reads"
                        : "trace.salvage_reads")
        .inc();
    SegTraceReadResult res;
    if (!looksSegmented(bytes.data(), bytes.size())) {
        res.status = TraceIoStatus::FormatError;
        res.error = "not a segmented trace (bad magic)";
        return res;
    }
    try {
        res = buildFromScan(scanSegments(bytes, strict), strict);
    } catch (const wire::ParseFailure &pf) {
        res.status = TraceIoStatus::FormatError;
        res.error = pf.message;
        res.trace = ExecutionTrace();
        return res;
    }
    if (res.salvage.salvaged && span.recording())
        span.annotate(res.salvage.summary());
    return res;
}

bool
loadFile(const std::string &path, std::vector<std::uint8_t> &bytes,
         std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "': " +
                std::strerror(errno);
        return false;
    }
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    in.seekg(0, std::ios::beg);
    bytes.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (!bytes.empty() &&
        !in.read(reinterpret_cast<char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
        error = "cannot read '" + path + "'";
        return false;
    }
    // Fault injection on the read boundary: a short read drops the
    // file's tail (param = bytes to drop), a bit-flip corrupts one
    // byte (param = byte offset).  Both land AFTER a successful read,
    // modelling storage rot rather than syscall failure — the frame
    // CRCs must turn either into typed damage, never a wrong report.
    std::uint64_t p = 0;
    if (fault::at("trace.read.short", &p) && !bytes.empty()) {
        const std::size_t drop = std::max<std::uint64_t>(p, 1);
        bytes.resize(bytes.size() > drop ? bytes.size() - drop : 0);
    }
    if (fault::at("trace.read.bitflip", &p) && !bytes.empty())
        bytes[p % bytes.size()] ^= 0x01;
    return true;
}

SegTraceReadResult
readSegmentedFile(const std::string &path, bool strict)
{
    SegTraceReadResult res;
    std::vector<std::uint8_t> bytes;
    if (!loadFile(path, bytes, res.error)) {
        res.status = TraceIoStatus::IoError;
        return res;
    }
    return readSegmented(bytes, strict);
}

} // namespace

bool
looksSegmented(const std::uint8_t *data, std::size_t n)
{
    return n >= sizeof(kSegMagic) &&
           std::memcmp(data, kSegMagic, sizeof(kSegMagic)) == 0;
}

std::string
SalvageInfo::summary() const
{
    char buf[256];
    if (!salvaged) {
        std::snprintf(buf, sizeof(buf),
                      "complete (%llu segments, %llu events)",
                      static_cast<unsigned long long>(
                          segmentsRecovered),
                      static_cast<unsigned long long>(
                          eventsRecovered));
        return buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "salvaged %llu events (%llu ops) from %llu segments; "
        "%llu damaged segment(s), %llu bytes dropped",
        static_cast<unsigned long long>(eventsRecovered),
        static_cast<unsigned long long>(opsRecovered),
        static_cast<unsigned long long>(segmentsRecovered),
        static_cast<unsigned long long>(segmentsDropped),
        static_cast<unsigned long long>(bytesDropped));
    std::string s = buf;
    if (!note.empty())
        s += "; " + note;
    return s;
}

std::string
formatTraceProvenance(bool segmented, const SalvageInfo &salvage)
{
    if (!segmented)
        return "";
    std::string out;
    char buf[256];
    if (salvage.salvaged) {
        out += "SALVAGED trace: " + salvage.summary() + "\n";
        if (salvage.unresolvedPairings > 0) {
            std::snprintf(buf, sizeof(buf),
                          "  %llu release->acquire pairing(s) lost "
                          "with the dropped tail\n",
                          static_cast<unsigned long long>(
                              salvage.unresolvedPairings));
            out += buf;
        }
    }
    if (salvage.droppedDataRecords > 0) {
        std::snprintf(buf, sizeof(buf),
                      "RECORDER LOSS: %llu data record(s) dropped "
                      "by the ring-overflow Drop policy; computation "
                      "events undercount accordingly\n",
                      static_cast<unsigned long long>(
                          salvage.droppedDataRecords));
        out += buf;
    }
    return out;
}

SegTraceReadResult
tryReadSegmentedTrace(const std::vector<std::uint8_t> &bytes)
{
    return readSegmented(bytes, /*strict=*/true);
}

SegTraceReadResult
tryReadSegmentedTraceFile(const std::string &path)
{
    return readSegmentedFile(path, /*strict=*/true);
}

SegTraceReadResult
trySalvageTrace(const std::vector<std::uint8_t> &bytes)
{
    return readSegmented(bytes, /*strict=*/false);
}

SegTraceReadResult
trySalvageTraceFile(const std::string &path)
{
    return readSegmentedFile(path, /*strict=*/false);
}

// --- SegmentSpillWriter -----------------------------------------

SegmentSpillWriter::~SegmentSpillWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
SegmentSpillWriter::fail(const std::string &why)
{
    if (error_.empty())
        error_ = why + ": " + std::strerror(errno);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    return false;
}

bool
SegmentSpillWriter::open(const std::string &path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        return fail("cannot open '" + path + "'");
    const std::uint8_t *magic =
        reinterpret_cast<const std::uint8_t *>(kSegMagic);
    std::size_t done = 0;
    while (done < sizeof(kSegMagic)) {
        const ssize_t w =
            ::write(fd_, magic + done, sizeof(kSegMagic) - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return fail("cannot write magic");
        }
        done += static_cast<std::size_t>(w);
    }
    bytes_ = sizeof(kSegMagic);
    return true;
}

void
SegmentSpillWriter::addEvent(const SegEvent &ev)
{
    FileEvent fe;
    fe.kind = ev.kind;
    fe.proc = ev.proc;
    fe.firstOp = ev.firstOp;
    fe.lastOp = ev.lastOp;
    fe.opCount = ev.opCount;
    fe.syncOp = ev.syncOp;
    fe.readWords = ev.readWords;
    fe.writeWords = ev.writeWords;
    if (ev.kind == EventKind::Sync) {
        if (ev.pairedToken != 0) {
            const auto it = tokenMap_.find(ev.pairedToken);
            if (it != tokenMap_.end())
                fe.pairing = it->second + 1;
        }
        if (ev.releaseToken != 0)
            tokenMap_[ev.releaseToken] = nextOrdinal_;
    }

    wire::Encoder enc;
    encodeFileEvent(enc, fe);
    pending_.insert(pending_.end(), enc.data(),
                    enc.data() + enc.size());
    ++pendingEvents_;
    ++nextOrdinal_;
}

std::size_t
SegmentSpillWriter::pendingBytes() const
{
    return pending_.size();
}

bool
SegmentSpillWriter::writeFrame(const std::uint8_t *hdr,
                               std::size_t hdrLen,
                               const std::uint8_t *body,
                               std::size_t bodyLen, bool fsyncAfter,
                               bool faults)
{
    if (fd_ < 0)
        return false;

    std::uint32_t crc = crc32Init();
    crc = crc32Update(crc, hdr, hdrLen);
    crc = crc32Update(crc, body, bodyLen);
    crc = crc32Final(crc);

    std::uint8_t lenBuf[4];
    std::uint8_t crcBuf[4];
    putLe32(lenBuf, static_cast<std::uint32_t>(hdrLen + bodyLen));
    putLe32(crcBuf, crc);

    // Fault injection on the write boundary.  The ENOSPC site fails
    // the whole frame (the recorder's drain path must degrade, not
    // crash); the EINTR site storms the loop with param spurious
    // interrupts (default 3) so the retry really runs; the short
    // site caps every write at one byte, forcing the partial-
    // transfer accounting through its paces.
    std::uint64_t p = 0;
    if (faults && fault::at("trace.seg.write.enospc", &p)) {
        errno = ENOSPC;
        return fail("segment write failed");
    }
    std::uint64_t stormLeft = 0;
    if (faults && fault::at("trace.seg.write.eintr", &p))
        stormLeft = p != 0 ? p : 3;
    const bool shortWrites =
        faults && fault::at("trace.seg.write.short");

    const std::uint8_t *parts[4] = {lenBuf, hdr, body, crcBuf};
    const std::size_t partLens[4] = {4, hdrLen, bodyLen, 4};
    for (int i = 0; i < 4; ++i) {
        std::size_t done = 0;
        while (done < partLens[i]) {
            ssize_t w;
            if (stormLeft > 0) {
                --stormLeft;
                errno = EINTR;
                w = -1;
            } else {
                w = ::write(fd_, parts[i] + done,
                            shortWrites ? 1 : partLens[i] - done);
            }
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return fail("segment write failed");
            }
            done += static_cast<std::size_t>(w);
        }
    }
    bytes_ += 8 + hdrLen + bodyLen;
    ++segments_;
    if (fsyncAfter)
        ::fsync(fd_);
    return true;
}

bool
SegmentSpillWriter::sealSegment()
{
    if (pending_.empty())
        return fd_ >= 0;
    // Header on the stack: tag + three varints (signal-safe; the
    // crash path shares this framing).
    std::uint8_t hdr[1 + 3 * 10];
    std::size_t h = 0;
    hdr[h++] = kSegData;
    h += putVarint(hdr + h, ops_);
    h += putVarint(hdr + h, dropped_);
    h += putVarint(hdr + h, pendingEvents_);
    if (!writeFrame(hdr, h, pending_.data(), pending_.size(),
                    /*fsyncAfter=*/false))
        return false;
    pending_.clear();
    pendingEvents_ = 0;
    return true;
}

bool
SegmentSpillWriter::crashSeal()
{
    // Fatal-signal path: frame whatever payload bytes exist using
    // only stack memory and raw syscalls, then fsync.  If the drain
    // thread was concurrently appending, the frame may be torn — the
    // CRC will reject exactly that one segment at salvage time.
    if (fd_ < 0)
        return false;
    if (!pending_.empty()) {
        std::uint8_t hdr[1 + 3 * 10];
        std::size_t h = 0;
        hdr[h++] = kSegData;
        h += putVarint(hdr + h, ops_);
        h += putVarint(hdr + h, dropped_);
        h += putVarint(hdr + h, pendingEvents_);
        if (!writeFrame(hdr, h, pending_.data(), pending_.size(),
                        /*fsyncAfter=*/false, /*faults=*/false))
            return false;
        pendingEvents_ = 0;
    }
    ::fsync(fd_);
    return true;
}

void
SegmentSpillWriter::writeTornFrame()
{
    if (fd_ < 0)
        return;
    // A frame header claiming 4 KiB of payload, followed by only a
    // few garbage bytes: exactly what a crash mid-write leaves.
    std::uint8_t buf[12];
    putLe32(buf, 4096);
    std::memset(buf + 4, 0x5a, 8);
    std::size_t done = 0;
    while (done < sizeof(buf)) {
        const ssize_t w = ::write(fd_, buf + done,
                                  sizeof(buf) - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        done += static_cast<std::size_t>(w);
    }
    ::fsync(fd_);
}

bool
SegmentSpillWriter::finish(const SegShape &shape)
{
    if (!sealSegment())
        return false;
    std::uint8_t hdr[1 + 5 * 10];
    std::size_t h = 0;
    hdr[h++] = kSegFin;
    h += putVarint(hdr + h, shape.procs);
    h += putVarint(hdr + h, shape.memWords);
    h += putVarint(hdr + h, shape.firstStaleRead);
    h += putVarint(hdr + h, shape.totalOps);
    h += putVarint(hdr + h, shape.droppedRecords);
    if (!writeFrame(hdr, h, nullptr, 0, /*fsyncAfter=*/true))
        return false;
    ::close(fd_);
    fd_ = -1;
    return true;
}

// --- Whole-trace serialization (tests and tooling) ---------------

std::vector<std::uint8_t>
serializeSegmentedTrace(const ExecutionTrace &trace,
                        std::size_t eventsPerSegment)
{
    if (eventsPerSegment == 0)
        eventsPerSegment = 64;

    std::vector<std::uint8_t> out(
        reinterpret_cast<const std::uint8_t *>(kSegMagic),
        reinterpret_cast<const std::uint8_t *>(kSegMagic) +
            sizeof(kSegMagic));

    const auto appendFrame = [&out](const wire::Encoder &payload) {
        std::uint8_t buf[4];
        putLe32(buf, static_cast<std::uint32_t>(payload.size()));
        out.insert(out.end(), buf, buf + 4);
        out.insert(out.end(), payload.data(),
                   payload.data() + payload.size());
        putLe32(buf, crc32(payload.data(), payload.size()));
        out.insert(out.end(), buf, buf + 4);
    };

    // File order = event id order, so the pairing ordinal of event e
    // is exactly its id.
    const auto &events = trace.events();
    std::uint64_t opsSoFar = 0;
    for (std::size_t base = 0; base < events.size();
         base += eventsPerSegment) {
        const std::size_t count =
            std::min(eventsPerSegment, events.size() - base);
        wire::Encoder enc;
        const std::uint8_t tag = kSegData;
        enc.raw(&tag, 1);
        enc.u64(opsSoFar);
        enc.u64(0); // droppedSoFar: complete traces lose nothing
        enc.u64(count);
        for (std::size_t i = 0; i < count; ++i) {
            const Event &ev = events[base + i];
            FileEvent fe;
            fe.kind = ev.kind;
            fe.proc = ev.proc;
            fe.firstOp = ev.firstOp;
            fe.lastOp = ev.lastOp;
            fe.opCount = ev.opCount;
            if (ev.kind == EventKind::Sync) {
                fe.syncOp = ev.syncOp;
                fe.pairing = ev.pairedRelease == kNoEvent
                                 ? 0
                                 : ev.pairedRelease + 1ull;
            } else {
                ev.readSet.forEach([&](std::size_t w) {
                    fe.readWords.push_back(static_cast<Addr>(w));
                });
                ev.writeSet.forEach([&](std::size_t w) {
                    fe.writeWords.push_back(static_cast<Addr>(w));
                });
            }
            encodeFileEvent(enc, fe);
            opsSoFar += ev.opCount;
        }
        appendFrame(enc);
    }

    wire::Encoder fin;
    const std::uint8_t tag = kSegFin;
    fin.raw(&tag, 1);
    fin.u64(trace.numProcs());
    fin.u64(trace.memWords());
    fin.u64(trace.firstStaleRead());
    fin.u64(trace.totalOps());
    fin.u64(0); // droppedRecords
    appendFrame(fin);
    return out;
}

std::size_t
writeSegmentedTraceFile(const ExecutionTrace &trace,
                        const std::string &path,
                        std::size_t eventsPerSegment)
{
    const auto bytes = serializeSegmentedTrace(trace,
                                               eventsPerSegment);
    std::ofstream outFile(path, std::ios::binary);
    if (!outFile ||
        !outFile.write(reinterpret_cast<const char *>(bytes.data()),
                       static_cast<std::streamsize>(bytes.size())))
        return 0;
    return bytes.size();
}

// --- SegmentTailReader -------------------------------------------

SegmentTailReader::~SegmentTailReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
SegmentTailReader::open(const std::string &path)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
        error_ = "cannot open '" + path + "': " +
                 std::strerror(errno);
        return false;
    }
    return true;
}

TailPollStatus
SegmentTailReader::fail(std::uint64_t at, const std::string &why)
{
    damaged_ = true;
    damageAt_ = at;
    damageNote_ = why;
    return TailPollStatus::Damaged;
}

TailPollStatus
SegmentTailReader::poll(std::vector<SegTailSegment> &segs)
{
    if (fd_ < 0)
        return TailPollStatus::Damaged;
    if (damaged_)
        return TailPollStatus::Damaged;
    if (finSeen_ && buf_.empty())
        return TailPollStatus::Fin;

    // Fault injection on the tail: a stalled tail reports Waiting
    // without touching the file (the consumer's liveness handling —
    // keep polling, then finalize — must absorb it), and the damage
    // site corrupts one byte of freshly appended data, modelling a
    // segment sealed to disk and then rotted under the reader.
    if (fault::at("stream.tail.stall"))
        return TailPollStatus::Waiting;
    const bool damageAppend = fault::at("stream.tail.damage");
    const std::size_t bufBefore = buf_.size();

    // Pull every newly appended byte.  On a regular file read()
    // returns 0 at the current EOF; a later poll() sees appends.
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return fail(seen_, std::string("read failed: ") +
                                   std::strerror(errno));
        }
        if (r == 0)
            break;
        buf_.insert(buf_.end(), chunk, chunk + r);
        seen_ += static_cast<std::uint64_t>(r);
    }
    if (damageAppend && buf_.size() > bufBefore)
        buf_.back() ^= 0x01;

    // The magic is just a fixed 8-byte prefix frame.
    std::size_t pos = 0; // into buf_, which starts at offset consumed_
    if (!magicOk_) {
        if (consumed_ != 0)
            return fail(consumed_, "internal: resumed before magic");
        if (buf_.size() < sizeof(kSegMagic))
            return TailPollStatus::Waiting;
        if (std::memcmp(buf_.data(), kSegMagic, sizeof(kSegMagic)) !=
            0)
            return fail(0, "not a segmented trace (bad magic)");
        magicOk_ = true;
        pos = sizeof(kSegMagic);
    }

    bool progressed = pos > 0;
    for (;;) {
        const std::uint64_t frameStart = consumed_ + pos;
        const std::size_t avail = buf_.size() - pos;
        if (avail == 0)
            break;
        if (finSeen_)
            return fail(frameStart,
                        "segmented trace: segment after FIN");
        if (avail < 4)
            break; // mid-length: more may come
        const std::uint32_t len = readLe32(buf_.data() + pos);
        if (len == 0 || len > kMaxSegmentBytes) {
            // No append can make this frame valid.
            return fail(frameStart, "truncated or oversized segment");
        }
        if (len + 8ull > avail)
            break; // mid-frame: more may come
        const std::uint8_t *payload = buf_.data() + pos + 4;
        const std::uint32_t stored = readLe32(payload + len);
        if (crc32(payload, len) != stored) {
            // The frame is fully present yet fails its checksum:
            // a torn/corrupt write, damaged no matter what follows.
            return fail(frameStart, "segment checksum mismatch");
        }
        SegTailSegment seg;
        try {
            if (parseSegmentPayload(payload, len, finSeen_, seg,
                                    fin_)) {
                finSeen_ = true;
            } else {
                droppedSoFar_ = seg.droppedSoFar;
                events_ += seg.events.size();
                for (const SegFileEvent &ev : seg.events)
                    ops_ += ev.opCount;
                segs.push_back(std::move(seg));
            }
        } catch (const wire::ParseFailure &pf) {
            return fail(frameStart, pf.message);
        }
        ++segments_;
        pos += 4ull + len + 4;
        progressed = true;
    }

    // Drop consumed bytes; keep the unconsumed tail buffered.
    if (pos > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos));
        consumed_ += pos;
    }
    if (finSeen_ && buf_.empty())
        return TailPollStatus::Fin;
    return progressed ? TailPollStatus::Progress
                      : TailPollStatus::Waiting;
}

bool
SegmentTailReader::finalize(bool strict)
{
    finalized_ = true;

    // No decodable magic: mirror readSegmented's FormatError — both
    // strict and salvage reject such a file outright.
    if (!magicOk_) {
        error_ = damageNote_.empty()
                     ? "not a segmented trace (bad magic)"
                     : damageNote_;
        salvage_.salvaged = true;
        salvage_.note = error_;
        return false;
    }

    // An unconsumed tail at final EOF is damage after all — exactly
    // what trySalvageTrace would have said about the same bytes.
    std::uint64_t damageAt = damaged_ ? damageAt_ : consumed_;
    std::string note = damageNote_;
    if (!damaged_ && !buf_.empty()) {
        note = buf_.size() < 4 ? "truncated segment length"
                               : "truncated or oversized segment";
    }
    const bool anyDamage = damaged_ || !buf_.empty();

    salvage_.finSeen = finSeen_;
    salvage_.segmentsRecovered = segments_;
    salvage_.segmentsDropped = anyDamage && seen_ > damageAt ? 1 : 0;
    salvage_.bytesDropped = anyDamage ? seen_ - damageAt : 0;
    salvage_.eventsRecovered = events_;
    salvage_.opsRecovered = ops_;
    salvage_.droppedDataRecords =
        finSeen_ ? fin_.droppedRecords : droppedSoFar_;
    salvage_.note = anyDamage ? note : "";
    salvage_.salvaged = !finSeen_ || salvage_.segmentsDropped > 0 ||
                        salvage_.bytesDropped > 0;
    if (salvage_.salvaged && salvage_.note.empty())
        salvage_.note = "no FIN segment (recording did not shut down "
                        "cleanly)";

    if (strict) {
        if (anyDamage) {
            char buf[512];
            std::snprintf(buf, sizeof(buf),
                          "segmented trace: %s (offset %llu); a "
                          "partial recording can be recovered with "
                          "salvage",
                          note.c_str(),
                          static_cast<unsigned long long>(damageAt));
            error_ = buf;
            return false;
        }
        if (!finSeen_) {
            error_ = "segmented trace: missing FIN segment — the "
                     "recording did not shut down cleanly; a "
                     "partial recording can be recovered with "
                     "salvage";
            return false;
        }
    }
    return true;
}

} // namespace wmr
