#include "trace/trace_io.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>

#include "common/logging.hh"

namespace wmr {

namespace {

constexpr char kMagic[8] = {'W', 'M', 'R', 'T', 'R', 'C', '0', '1'};
constexpr char kFullOpMagic[8] = {'W', 'M', 'R', 'F',
                                  'O', 'P', '0', '1'};

/**
 * Internal control-flow exception of the parse path.  Thrown wherever
 * the old code called fatal() and caught at the tryDeserializeTrace()
 * boundary, so malformed input is a recoverable per-trace failure.
 */
struct ParseFailure
{
    std::string message;
};

[[noreturn]] void
parseFail(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void
parseFail(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw ParseFailure{buf};
}

/** Growable varint encoder. */
class Encoder
{
  public:
    void
    u64(std::uint64_t v)
    {
        while (v >= 0x80) {
            bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        // zigzag
        u64((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
    }

    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), p, p + n);
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked varint decoder. */
class Decoder
{
  public:
    explicit Decoder(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (pos_ >= bytes_.size())
                parseFail("trace file truncated at byte %zu", pos_);
            const std::uint8_t b = bytes_[pos_++];
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                parseFail("trace file: varint overflow at byte %zu", pos_);
        }
    }

    std::int64_t
    i64()
    {
        const std::uint64_t z = u64();
        return static_cast<std::int64_t>(z >> 1) ^
               -static_cast<std::int64_t>(z & 1);
    }

    void
    raw(void *out, std::size_t n)
    {
        if (pos_ + n > bytes_.size())
            parseFail("trace file truncated at byte %zu", pos_);
        std::memcpy(out, bytes_.data() + pos_, n);
        pos_ += n;
    }

    bool done() const { return pos_ == bytes_.size(); }

    /** Bytes left — used to sanity-check element counts. */
    std::size_t remaining() const { return bytes_.size() - pos_; }

    /** parseFail() unless @p count elements can possibly fit. */
    void
    checkCount(std::uint64_t count, const char *what) const
    {
        if (count > remaining())
            parseFail("trace file: %s count %llu exceeds remaining %zu "
                  "bytes",
                  what, static_cast<unsigned long long>(count),
                  remaining());
    }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t pos_ = 0;
};

void
encodeBitset(Encoder &enc, const DenseBitset &bs)
{
    // Two encodings: SPARSE (delta-coded set-bit indices; the common
    // case — computation events touch a handful of the shared words)
    // and DENSE (raw words) for heavily populated sets.
    const std::size_t count = bs.count();
    const bool sparse = count * 2 < bs.words().size() * 8;
    enc.u64(bs.size());
    enc.u64(sparse ? 1 : 0);
    if (sparse) {
        enc.u64(count);
        std::uint64_t prev = 0;
        bs.forEach([&](std::size_t i) {
            enc.u64(i - prev);
            prev = i;
        });
    } else {
        enc.u64(bs.words().size());
        for (const auto w : bs.words())
            enc.u64(w);
    }
}

DenseBitset
decodeBitset(Decoder &dec)
{
    constexpr std::uint64_t kMaxBits = 1ull << 28; // 32 MiB of bits
    const std::uint64_t nbits = dec.u64();
    if (nbits > kMaxBits)
        parseFail("trace file: bitset universe %llu too large",
              static_cast<unsigned long long>(nbits));
    const bool sparse = dec.u64() != 0;
    if (sparse) {
        DenseBitset bs(nbits);
        const std::uint64_t count = dec.u64();
        dec.checkCount(count, "sparse bitset");
        std::uint64_t idx = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            idx += dec.u64();
            if (idx >= nbits)
                parseFail("trace file: bitset index %llu out of range",
                      static_cast<unsigned long long>(idx));
            bs.set(idx);
        }
        return bs;
    }
    const std::uint64_t nwords = dec.u64();
    dec.checkCount(nwords, "bitset words");
    if (nwords * 64 < nbits)
        parseFail("trace file: bitset words underflow universe");
    std::vector<std::uint64_t> words(nwords);
    for (auto &w : words)
        w = dec.u64();
    return DenseBitset::fromWords(std::move(words), nbits);
}

void
encodeMemOp(Encoder &enc, const MemOp &op)
{
    enc.u64(op.id);
    enc.u64(op.proc);
    enc.u64(op.poIndex);
    enc.u64(op.pc);
    enc.u64(op.kind == OpKind::Write ? 1 : 0);
    enc.u64((op.sync ? 1u : 0u) | (op.acquire ? 2u : 0u) |
            (op.release ? 4u : 0u) | (op.stale ? 8u : 0u) |
            (op.divergent ? 16u : 0u) | (op.taintedValue ? 32u : 0u));
    enc.u64(op.addr);
    enc.i64(op.value);
    enc.u64(op.observedWrite);
    enc.u64(op.tick);
}

MemOp
decodeMemOp(Decoder &dec)
{
    MemOp op;
    op.id = dec.u64();
    // Bound the narrowing casts: a corrupt record must yield a parse
    // error, not a silently truncated processor id or address.
    const std::uint64_t rawProc = dec.u64();
    if (rawProc > kNoProc)
        parseFail("trace file: op processor %llu too large",
                  static_cast<unsigned long long>(rawProc));
    op.proc = static_cast<ProcId>(rawProc);
    op.poIndex = static_cast<std::uint32_t>(dec.u64());
    op.pc = static_cast<std::uint32_t>(dec.u64());
    op.kind = dec.u64() ? OpKind::Write : OpKind::Read;
    const std::uint64_t flags = dec.u64();
    op.sync = flags & 1;
    op.acquire = flags & 2;
    op.release = flags & 4;
    op.stale = flags & 8;
    op.divergent = flags & 16;
    op.taintedValue = flags & 32;
    const std::uint64_t rawAddr = dec.u64();
    if (rawAddr > (1ull << 28))
        parseFail("trace file: op address %llu too large",
                  static_cast<unsigned long long>(rawAddr));
    op.addr = static_cast<Addr>(rawAddr);
    op.value = dec.i64();
    op.observedWrite = dec.u64();
    op.tick = dec.u64();
    return op;
}

} // namespace

std::vector<std::uint8_t>
serializeTrace(const ExecutionTrace &trace)
{
    Encoder enc;
    enc.raw(kMagic, sizeof(kMagic));
    enc.u64(trace.numProcs());
    enc.u64(trace.memWords());
    enc.u64(trace.firstStaleRead());
    enc.u64(trace.totalOps());
    enc.u64(trace.events().size());
    for (const auto &ev : trace.events()) {
        enc.u64(ev.kind == EventKind::Sync ? 1 : 0);
        enc.u64(ev.proc);
        enc.u64(ev.firstOp);
        enc.u64(ev.lastOp);
        enc.u64(ev.opCount);
        if (ev.kind == EventKind::Sync) {
            encodeMemOp(enc, ev.syncOp);
            enc.u64(ev.pairedRelease);
        } else {
            encodeBitset(enc, ev.readSet);
            encodeBitset(enc, ev.writeSet);
            enc.u64(ev.memberOps.size());
            for (const auto oid : ev.memberOps)
                enc.u64(oid);
        }
    }
    return enc.take();
}

namespace {

/** The parse proper; throws ParseFailure on malformed input. */
ExecutionTrace
decodeTraceOrThrow(const std::vector<std::uint8_t> &bytes)
{
    Decoder dec(bytes);
    char magic[sizeof(kMagic)];
    dec.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        parseFail("not a wmrace trace file (bad magic)");

    ExecutionTrace trace;
    // Sanity-bound the shape BEFORE allocating per-processor state:
    // a corrupt header must produce an error, not an OOM or a
    // narrowing-cast surprise.
    const std::uint64_t rawProcs = dec.u64();
    const std::uint64_t rawWords = dec.u64();
    if (rawProcs > kNoProc)
        parseFail("trace file: processor count %llu too large",
                  static_cast<unsigned long long>(rawProcs));
    if (rawWords > (1ull << 28))
        parseFail("trace file: memory universe %llu too large",
                  static_cast<unsigned long long>(rawWords));
    const auto procs = static_cast<ProcId>(rawProcs);
    const auto words = static_cast<Addr>(rawWords);
    trace.setShape(procs, words);
    trace.setFirstStaleRead(dec.u64());
    trace.setTotalOps(dec.u64());

    const std::uint64_t nevents = dec.u64();
    dec.checkCount(nevents, "event");
    // Events were serialized in id order and pairing references are
    // ids, so a single pass with post-hoc pairing patch suffices.
    std::vector<EventId> pairing(nevents, kNoEvent);
    for (std::uint64_t i = 0; i < nevents; ++i) {
        Event ev;
        ev.kind = dec.u64() ? EventKind::Sync : EventKind::Computation;
        const std::uint64_t proc = dec.u64();
        if (proc >= procs)
            parseFail("trace file: event processor %llu out of range",
                  static_cast<unsigned long long>(proc));
        ev.proc = static_cast<ProcId>(proc);
        ev.firstOp = dec.u64();
        ev.lastOp = dec.u64();
        ev.opCount = static_cast<std::uint32_t>(dec.u64());
        if (ev.kind == EventKind::Sync) {
            ev.syncOp = decodeMemOp(dec);
            pairing[i] = static_cast<EventId>(dec.u64());
        } else {
            ev.readSet = decodeBitset(dec);
            ev.writeSet = decodeBitset(dec);
            const std::uint64_t nmembers = dec.u64();
            dec.checkCount(nmembers, "member op");
            ev.memberOps.reserve(nmembers);
            for (std::uint64_t m = 0; m < nmembers; ++m)
                ev.memberOps.push_back(dec.u64());
        }
        const EventId id = trace.addEvent(std::move(ev));
        if (id != static_cast<EventId>(i))
            parseFail("trace file: events out of id order");
    }
    for (std::uint64_t i = 0; i < nevents; ++i) {
        if (pairing[i] != kNoEvent) {
            trace.mutableEvent(static_cast<EventId>(i)).pairedRelease =
                pairing[i];
        }
    }
    if (!dec.done())
        parseFail("trace file: trailing bytes");
    return trace;
}

} // namespace

TraceReadResult
tryDeserializeTrace(const std::vector<std::uint8_t> &bytes)
{
    TraceReadResult res;
    try {
        res.trace = decodeTraceOrThrow(bytes);
    } catch (const ParseFailure &pf) {
        res.status = TraceIoStatus::FormatError;
        res.error = pf.message;
    } catch (const std::bad_alloc &) {
        res.status = TraceIoStatus::FormatError;
        res.error = "trace file: allocation failure during parse";
    }
    return res;
}

TraceReadResult
tryReadTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        TraceReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "cannot open trace file '" + path + "'";
        return res;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        TraceReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "read error on trace file '" + path + "'";
        return res;
    }
    return tryDeserializeTrace(bytes);
}

ExecutionTrace
deserializeTrace(const std::vector<std::uint8_t> &bytes)
{
    auto res = tryDeserializeTrace(bytes);
    if (!res.ok())
        fatal("%s", res.error.c_str());
    return std::move(res.trace);
}

std::size_t
writeTraceFile(const ExecutionTrace &trace, const std::string &path)
{
    const auto bytes = serializeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("short write to trace file '%s'", path.c_str());
    return bytes.size();
}

ExecutionTrace
readTraceFile(const std::string &path)
{
    auto res = tryReadTraceFile(path);
    if (!res.ok())
        fatal("%s", res.error.c_str());
    return std::move(res.trace);
}

std::vector<std::uint8_t>
serializeFullOps(const std::vector<MemOp> &ops)
{
    Encoder enc;
    enc.raw(kFullOpMagic, sizeof(kFullOpMagic));
    enc.u64(ops.size());
    for (const auto &op : ops)
        encodeMemOp(enc, op);
    return enc.take();
}

namespace {

/** The full-op parse proper; throws ParseFailure when malformed. */
std::vector<MemOp>
decodeFullOpsOrThrow(const std::vector<std::uint8_t> &bytes)
{
    Decoder dec(bytes);
    char magic[sizeof(kFullOpMagic)];
    dec.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kFullOpMagic, sizeof(kFullOpMagic)) != 0) {
        if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
            parseFail("full-op file: this is an event-format trace "
                      "(use the trace reader)");
        parseFail("not a wmrace full-op file (bad magic)");
    }
    const std::uint64_t count = dec.u64();
    // Each op encodes to >= 10 bytes, but 1 byte/op is enough of a
    // bound to turn an absurd header count into an error, not an OOM.
    dec.checkCount(count, "full-op");
    std::vector<MemOp> ops;
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        ops.push_back(decodeMemOp(dec));
    if (!dec.done())
        parseFail("full-op file: trailing bytes");
    return ops;
}

} // namespace

FullOpsReadResult
tryDeserializeFullOps(const std::vector<std::uint8_t> &bytes)
{
    FullOpsReadResult res;
    try {
        res.ops = decodeFullOpsOrThrow(bytes);
    } catch (const ParseFailure &pf) {
        res.status = TraceIoStatus::FormatError;
        res.error = pf.message;
    } catch (const std::bad_alloc &) {
        res.status = TraceIoStatus::FormatError;
        res.error = "full-op file: allocation failure during parse";
    }
    return res;
}

FullOpsReadResult
tryReadFullOpsFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        FullOpsReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "cannot open full-op file '" + path + "'";
        return res;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        FullOpsReadResult res;
        res.status = TraceIoStatus::IoError;
        res.error = "read error on full-op file '" + path + "'";
        return res;
    }
    return tryDeserializeFullOps(bytes);
}

} // namespace wmr
