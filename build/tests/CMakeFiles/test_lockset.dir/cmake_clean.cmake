file(REMOVE_RECURSE
  "CMakeFiles/test_lockset.dir/test_lockset.cc.o"
  "CMakeFiles/test_lockset.dir/test_lockset.cc.o.d"
  "test_lockset"
  "test_lockset.pdb"
  "test_lockset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
