/**
 * @file
 * A fixed-size pool of analysis worker threads.
 *
 * Thin RAII wrapper over std::thread: construction spawns N workers
 * running the same body (which typically loops popping a WorkQueue),
 * join() waits for all of them.  The body receives its worker index
 * for per-worker scratch state; everything shared must be owned by
 * the caller and synchronized there.
 */

#ifndef WMR_PIPELINE_WORKER_POOL_HH
#define WMR_PIPELINE_WORKER_POOL_HH

#include <functional>
#include <thread>
#include <vector>

namespace wmr {

class WorkerPool
{
  public:
    /** Spawn @p workers threads, each running body(workerIndex). */
    WorkerPool(unsigned workers,
               const std::function<void(unsigned)> &body)
    {
        threads_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads_.emplace_back(body, w);
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Wait for every worker to finish (idempotent). */
    void
    join()
    {
        for (auto &t : threads_) {
            if (t.joinable())
                t.join();
        }
    }

    ~WorkerPool() { join(); }

  private:
    std::vector<std::thread> threads_;
};

} // namespace wmr

#endif // WMR_PIPELINE_WORKER_POOL_HH
