#include "staticdet/lockset_dataflow.hh"

#include <algorithm>

namespace wmr {

namespace {

/** Set intersection. */
LockSet
intersect(const LockSet &a, const LockSet &b)
{
    LockSet out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::inserter(out, out.begin()));
    return out;
}

/** Apply the transfer function of @p i to @p in. */
LockSet
transfer(const Instr &i, LockSet in)
{
    if (i.op == Opcode::TestAndSet)
        in.insert(i.addr);
    else if (i.op == Opcode::Unset)
        in.erase(i.addr);
    return in;
}

} // namespace

LocksetResult
computeLocksets(const Thread &thread, const Cfg &cfg)
{
    const std::size_t n = thread.code.size();
    LocksetResult res;
    res.before.assign(n, {});
    res.after.assign(n, {});

    // Unvisited nodes act as TOP: the first incoming value is taken
    // as-is, later ones are intersected (must-analysis).
    std::vector<bool> visited(n, false);
    if (n == 0)
        return res;

    // Worklist iteration to a fixpoint.
    std::vector<std::uint32_t> work{0};
    res.before[0] = {};
    visited[0] = true;
    while (!work.empty()) {
        const std::uint32_t pc = work.back();
        work.pop_back();
        const LockSet out = transfer(thread.code[pc],
                                     res.before[pc]);
        res.after[pc] = out;
        for (const auto s : cfg.successors(pc)) {
            LockSet next =
                visited[s] ? intersect(res.before[s], out) : out;
            if (!visited[s] || next != res.before[s]) {
                res.before[s] = std::move(next);
                visited[s] = true;
                work.push_back(s);
            }
        }
    }
    return res;
}

} // namespace wmr
