/**
 * @file
 * Robustness fuzzing: corrupted trace files must be rejected with a
 * clean fatal() diagnostic (exit 1) or decode to a valid trace —
 * never crash, hang, or allocate unboundedly.  Runs each mutated
 * buffer in a gtest death-test subprocess.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.hh"
#include "serve/protocol.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

std::vector<std::uint8_t>
baseline()
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    return serializeTrace(buildTrace(s.result,
                                     {.keepMemberOps = true}));
}

/** Exit status predicate: clean exit 0 (valid) or fatal exit 1. */
bool
cleanOrFatal(int status)
{
    return WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                 WEXITSTATUS(status) == 1);
}

TEST(TraceFuzz, SingleByteMutationsNeverCrash)
{
    const auto bytes = baseline();
    Rng rng(99);
    for (int trial = 0; trial < 25; ++trial) {
        auto mutated = bytes;
        const std::size_t pos =
            8 + rng.below(mutated.size() - 8); // keep the magic
        mutated[pos] ^= static_cast<std::uint8_t>(
            1u << rng.below(8));
        EXPECT_EXIT(
            {
                const auto trace = deserializeTrace(mutated);
                // If it decoded, it must be self-consistent enough
                // to answer basic queries.
                (void)trace.events().size();
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial << " pos " << pos;
    }
}

TEST(TraceFuzz, TruncationsNeverCrash)
{
    const auto bytes = baseline();
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
        auto mutated = bytes;
        mutated.resize(8 + rng.below(mutated.size() - 8));
        EXPECT_EXIT(
            {
                (void)deserializeTrace(mutated);
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial;
    }
}

TEST(TraceFuzz, RandomGarbageNeverCrashes)
{
    Rng rng(13);
    for (int trial = 0; trial < 15; ++trial) {
        std::vector<std::uint8_t> junk(
            8 + rng.below(256));
        // Valid magic so we exercise the body parser, then noise.
        const char magic[8] = {'W', 'M', 'R', 'T', 'R', 'C', '0',
                               '1'};
        std::copy(std::begin(magic), std::end(magic), junk.begin());
        for (std::size_t i = 8; i < junk.size(); ++i)
            junk[i] = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EXIT(
            {
                (void)deserializeTrace(junk);
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------
// Serve frames: structure-aware fuzzing of the wire parsers.  The
// parsers return typed FrameReadStatus / bool outcomes (they never
// fatal), so these run in-process — a crash fails the whole binary,
// a hang trips the CTest timeout.
// ---------------------------------------------------------------

namespace {

/** Feed @p bytes to readRequest over a socketpair (write side closed
 *  after the payload, so a hungry parser sees EOF, not a hang). */
serve::FrameReadStatus
parseRequestBytes(const std::vector<std::uint8_t> &bytes,
                  serve::Request &out, std::string &error)
{
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    if (!bytes.empty()) {
        EXPECT_TRUE(serve::writeAll(sv[1], bytes.data(),
                                    bytes.size()));
    }
    ::close(sv[1]);
    const serve::FrameReadStatus rs =
        serve::readRequest(sv[0], 1u << 20, out, error);
    ::close(sv[0]);
    return rs;
}

std::vector<std::uint8_t>
baselineRequestFrame()
{
    serve::Request req;
    req.command = serve::Command::Analyze;
    req.flags = serve::kReqSalvage;
    req.body.assign(64, 0xab);
    return serve::encodeRequestFrame(req);
}

std::vector<std::uint8_t>
baselineResponseFrame()
{
    serve::Response resp;
    resp.status = serve::RespStatus::Ok;
    resp.flags = serve::kRespAnyDataRace;
    resp.retryAfterMs = 250;
    resp.meta.events = 42;
    resp.meta.dataRaces = 1;
    resp.meta.anyDataRace = true;
    resp.meta.error = "";
    resp.report = "DATA RACES detected\nsome report text\n";
    return serve::encodeResponseFrame(resp);
}

} // namespace

TEST(ServeFrameFuzz, MutatedRequestFramesAlwaysReturnTyped)
{
    const auto frame = baselineRequestFrame();
    Rng rng(4242);
    for (int trial = 0; trial < 40; ++trial) {
        auto mutated = frame;
        // Bias half the trials into the 24-byte header, where the
        // length/command fields live.
        const std::size_t pos =
            (trial & 1) ? rng.below(24)
                        : rng.below(mutated.size());
        mutated[pos] ^= static_cast<std::uint8_t>(1u
                                                  << rng.below(8));
        serve::Request out;
        std::string error;
        const serve::FrameReadStatus rs =
            parseRequestBytes(mutated, out, error);
        if (rs == serve::FrameReadStatus::Ok) {
            // A surviving decode must be internally consistent.
            EXPECT_LE(out.body.size(), 1u << 20)
                << "trial " << trial;
        } else {
            EXPECT_FALSE(error.empty()) << "trial " << trial;
        }
    }
}

TEST(ServeFrameFuzz, TruncatedRequestFramesAreTypedNotOk)
{
    const auto frame = baselineRequestFrame();
    Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        auto mutated = frame;
        mutated.resize(rng.below(mutated.size())); // always short
        serve::Request out;
        std::string error;
        const serve::FrameReadStatus rs =
            parseRequestBytes(mutated, out, error);
        EXPECT_NE(rs, serve::FrameReadStatus::Ok)
            << "trial " << trial << " kept " << mutated.size();
        EXPECT_FALSE(error.empty()) << "trial " << trial;
    }
}

TEST(ServeFrameFuzz, MutatedResponseFramesNeverCrashTheDecoder)
{
    const auto frame = baselineResponseFrame();
    Rng rng(1001);
    for (int trial = 0; trial < 60; ++trial) {
        auto mutated = frame;
        const std::size_t pos =
            (trial & 1) ? rng.below(36) // response header
                        : rng.below(mutated.size());
        mutated[pos] ^= static_cast<std::uint8_t>(1u
                                                  << rng.below(8));
        serve::Response out;
        std::string error;
        if (!serve::decodeResponseFrame(mutated.data(),
                                        mutated.size(), out,
                                        error)) {
            EXPECT_FALSE(error.empty()) << "trial " << trial;
        } else {
            (void)out.report.size(); // decoded: must be usable
            (void)serve::metaJson(out);
        }
    }
}

// ---------------------------------------------------------------
// Segmented container: bit-flip fuzzing of both readers.  Strict
// must refuse damage with a typed error; salvage must always come
// back with a (possibly empty) recovered prefix.
// ---------------------------------------------------------------

TEST(SegFuzz, BitFlipsNeverCrashStrictOrSalvageReaders)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto bytes = serializeSegmentedTrace(
        buildTrace(s.result, {.keepMemberOps = true}), 4);
    Rng rng(555);
    for (int trial = 0; trial < 40; ++trial) {
        auto mutated = bytes;
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] ^= static_cast<std::uint8_t>(1u
                                                  << rng.below(8));
        const auto strict = tryReadSegmentedTrace(mutated);
        if (!strict.ok()) {
            EXPECT_FALSE(strict.error.empty())
                << "trial " << trial;
        }
        const auto salvage = trySalvageTrace(mutated);
        if (salvage.ok()) {
            // Whatever survived must answer basic queries.
            (void)salvage.trace.events().size();
        } else {
            EXPECT_FALSE(salvage.error.empty())
                << "trial " << trial;
        }
    }
}

// ---------------------------------------------------------------
// Committed regression corpus: tests/data/fuzz/ holds inputs that
// exercise (or once provoked) parser edge cases; the file prefix
// picks the parser (see the README there).
// ---------------------------------------------------------------

TEST(FuzzRegression, CommittedInputsStayTyped)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> inputs;
    for (const auto &ent : fs::directory_iterator(WMR_FUZZ_DIR)) {
        if (ent.path().extension() == ".bin")
            inputs.push_back(ent.path());
    }
    std::sort(inputs.begin(), inputs.end());
    ASSERT_FALSE(inputs.empty());

    for (const auto &path : inputs) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good());
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        const std::string name = path.filename().string();

        if (name.rfind("serve_req_", 0) == 0) {
            serve::Request out;
            std::string error;
            const serve::FrameReadStatus rs =
                parseRequestBytes(bytes, out, error);
            EXPECT_NE(rs, serve::FrameReadStatus::Ok);
            EXPECT_FALSE(error.empty());
        } else if (name.rfind("serve_resp_", 0) == 0) {
            serve::Response out;
            std::string error;
            EXPECT_FALSE(serve::decodeResponseFrame(
                bytes.data(), bytes.size(), out, error));
            EXPECT_FALSE(error.empty());
        } else if (name.rfind("seg_", 0) == 0) {
            const auto strict = tryReadSegmentedTrace(bytes);
            EXPECT_FALSE(strict.ok()); // all fixtures are damaged
            EXPECT_FALSE(strict.error.empty());
            const auto salvage = trySalvageTrace(bytes);
            if (salvage.ok())
                (void)salvage.trace.events().size();
            else
                EXPECT_FALSE(salvage.error.empty());
        } else {
            FAIL() << "unrecognized fuzz fixture prefix: " << name;
        }
    }
}

} // namespace
} // namespace wmr
