#include "obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "obs/obs.hh"

namespace wmr::obs {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

/** Microseconds with sub-ns kept (Chrome `ts`/`dur` are doubles). */
std::string
usOf(std::uint64_t ns)
{
    return fmt("%.3f", static_cast<double>(ns) / 1e3);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        return false;
    out << content;
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                out += fmt("\\u%04x", c);
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
chromeTraceJson()
{
    const auto threads = spanSnapshot();
    const auto counters = counterSnapshot();

    std::string out;
    out += "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string &event) {
        if (!first)
            out += ",";
        first = false;
        out += "\n";
        out += event;
    };

    // Process + thread metadata first: perfetto shows the names on
    // the track headers instead of bare tids.
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"name\":\"process_name\","
         "\"args\":{\"name\":\"wmrace\"}}");
    std::uint64_t lastNs = 0;
    for (const auto &t : threads) {
        if (!t.name.empty()) {
            emit(fmt("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":"
                     "\"%s\"}}",
                     t.tid, jsonEscape(t.name).c_str()));
        }
        for (const auto &s : t.spans)
            lastNs = std::max(lastNs, s.startNs + s.durNs);
    }

    // Complete ("X") events: one per finished span.
    for (const auto &t : threads) {
        for (const auto &s : t.spans) {
            std::string ev =
                fmt("{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                    "\"name\":\"%s\",\"cat\":\"wmr\",\"ts\":%s,"
                    "\"dur\":%s",
                    t.tid, jsonEscape(s.name).c_str(),
                    usOf(s.startNs).c_str(), usOf(s.durNs).c_str());
            ev += fmt(",\"args\":{\"depth\":%u", s.depth);
            if (!s.detail.empty()) {
                ev += ",\"detail\":\"";
                ev += jsonEscape(s.detail);
                ev += "\"";
            }
            ev += "}}";
            emit(ev);
        }
    }

    // Counter ("C") events: final registry values, stamped at the
    // end of the span timeline.
    for (const auto &c : counters) {
        emit(fmt("{\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                 "\"name\":\"%s\",\"ts\":%s,"
                 "\"args\":{\"value\":%" PRIu64 "}}",
                 jsonEscape(c.name).c_str(), usOf(lastNs).c_str(),
                 c.value));
    }

    out += "\n],\"displayTimeUnit\":\"ms\",";
    out += "\"otherData\":{\"tool\":\"wmrace\",\"format\":"
           "\"wmr-obs-chrome\",\"version\":1}}\n";
    return out;
}

std::string
jsonLines()
{
    const auto threads = spanSnapshot();
    const auto counters = counterSnapshot();
    std::string out;
    for (const auto &t : threads) {
        for (const auto &s : t.spans) {
            out += fmt("{\"type\":\"span\",\"name\":\"%s\","
                       "\"tid\":%u,\"thread\":\"%s\","
                       "\"start_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64
                       ",\"depth\":%u",
                       jsonEscape(s.name).c_str(), t.tid,
                       jsonEscape(t.name).c_str(), s.startNs,
                       s.durNs, s.depth);
            if (!s.detail.empty()) {
                out += ",\"detail\":\"";
                out += jsonEscape(s.detail);
                out += "\"";
            }
            out += "}\n";
        }
    }
    for (const auto &c : counters) {
        out += fmt("{\"type\":\"%s\",\"name\":\"%s\","
                   "\"value\":%" PRIu64 "}\n",
                   c.isGauge ? "gauge" : "counter",
                   jsonEscape(c.name).c_str(), c.value);
    }
    return out;
}

std::string
formatCounterSummary()
{
    const auto counters = counterSnapshot();
    std::string out = "wmr-obs counters:\n";
    if (counters.empty()) {
        out += "  (none registered)\n";
        return out;
    }
    for (const auto &c : counters) {
        out += fmt("  %-36s %20" PRIu64 "%s\n", c.name.c_str(),
                   c.value, c.isGauge ? "  (gauge)" : "");
    }
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    return writeFile(path, chromeTraceJson());
}

bool
writeJsonLines(const std::string &path)
{
    return writeFile(path, jsonLines());
}

} // namespace wmr::obs
