#include "engines/hb1_engine.hh"

#include "common/logging.hh"
#include "detect/analysis.hh"
#include "detect/report.hh"
#include "obs/obs.hh"

namespace wmr::engines {

void
Hb1Engine::begin(const EngineTraceInfo &info)
{
    trace_ = ExecutionTrace();
    trace_.setShape(info.procs, info.memWords);
    trace_.setFirstStaleRead(info.firstStaleRead);
    trace_.setTotalOps(info.totalOps);
}

void
Hb1Engine::feed(const Event &ev)
{
    static obs::Counter events = obs::counter("engine.hb1.events");
    events.inc();
    // The stream arrives in event-id order with per-processor order
    // preserved, so re-adding reproduces ids and indexInProc.
    const EventId id = trace_.addEvent(ev);
    wmr_assert(id == ev.id);
}

EngineVerdict
Hb1Engine::finish()
{
    static obs::Counter racesCtr = obs::counter("engine.hb1.races");

    AnalysisOptions opts;
    opts.threads = threads_;
    const DetectionResult det =
        analyzeTrace(std::move(trace_), opts);
    report_ = formatReport(det);

    EngineVerdict v;
    v.engine = name();
    v.semantics = "happens-before (Def. 2.2), reports first "
                  "partitions (Sec. 4.2)";
    v.races.reserve(det.races().size());
    for (const DataRace &r : det.races()) {
        EngineRace er;
        er.a = r.a;
        er.b = r.b;
        er.addrs = r.addrs;
        er.isDataRace = r.isDataRace;
        v.races.push_back(std::move(er));
    }
    racesCtr.add(v.races.size());
    v.numDataRaces = det.numDataRaces();
    v.anyDataRace = det.anyDataRace();
    v.reported = det.reportedRaces();
    v.hasPartitions = true;
    v.partitions = det.partitions().partitions.size();
    v.firstPartitions = det.partitions().firstPartitions.size();
    return v;
}

} // namespace wmr::engines
