file(REMOVE_RECURSE
  "libwmr_trace.a"
)
