/**
 * @file
 * Tiny whole-file I/O helpers shared by the serve subsystem's disk
 * paths (result-cache persistence, request spooling).  Both write
 * sides go through writeFileAtomic() — temp, write, fsync, rename,
 * directory fsync — so a crash at ANY point leaves either the old
 * file or the complete new one, never a torn or empty entry (the
 * rename alone is not enough: without the fsyncs a power cut can
 * publish a zero-length file).  Readers additionally CRC-frame their
 * payloads and treat damage as absence.
 *
 * All loops retry EINTR and handle partial transfers, matching the
 * conventions of trace/segmented_io.cc's writeFrame().
 */

#ifndef WMR_SERVE_IO_UTIL_HH
#define WMR_SERVE_IO_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "obs/obs.hh"

namespace wmr::serve {

/** Read @p path entirely into @p out. @return false on open/read
 *  failure (out is unspecified). */
inline bool
readWholeFile(const std::string &path,
              std::vector<std::uint8_t> &out)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    out.clear();
    std::uint8_t buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return true;
}

/** Write all @p n bytes to @p fd, retrying EINTR and partial
 *  writes. @return false on any other error (errno holds why). */
inline bool
writeFullFd(int fd, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t done = 0;
    while (done < n) {
        const ssize_t w = ::write(fd, p + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(w);
    }
    return true;
}

/** How an atomic file write ended. */
enum class AtomicWriteStatus : std::uint8_t {
    Ok,
    NoSpace, ///< ENOSPC/EDQUOT — a countable, expected degradation
    Error,   ///< anything else
};

/**
 * Write @p bytes to @p path via a ".tmp" sibling: write, fsync the
 * temp file, rename(2) over the destination, then fsync the parent
 * directory so the rename itself is durable.  The destination is
 * never observable half-written, and after a crash it is never the
 * pre-fsync empty file either.
 *
 * Disk-full (ENOSPC/EDQUOT) comes back as NoSpace and bumps the
 * `serve.disk.enospc` counter — callers treat it as a non-fatal
 * cache/spool degradation, not an error to die on.
 */
inline AtomicWriteStatus
writeFileAtomicStatus(const std::string &path,
                      const std::vector<std::uint8_t> &bytes)
{
    const auto classify = [] {
        if (errno == ENOSPC || errno == EDQUOT) {
            obs::counter("serve.disk.enospc").inc();
            return AtomicWriteStatus::NoSpace;
        }
        return AtomicWriteStatus::Error;
    };

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return classify();
    if (!writeFullFd(fd, bytes.data(), bytes.size()) ||
        ::fsync(fd) != 0) {
        const AtomicWriteStatus st = classify();
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
    }
    if (::close(fd) != 0) {
        const AtomicWriteStatus st = classify();
        ::unlink(tmp.c_str());
        return st;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const AtomicWriteStatus st = classify();
        ::unlink(tmp.c_str());
        return st;
    }

    // Make the rename durable: fsync the directory entry.  Failure
    // here is not a torn file (the rename is complete in the page
    // cache) — degrade silently rather than unlinking good data.
    const std::size_t slash = path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd =
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        (void)::fsync(dfd);
        ::close(dfd);
    }
    return AtomicWriteStatus::Ok;
}

/** Boolean convenience wrapper over writeFileAtomicStatus(). */
inline bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    return writeFileAtomicStatus(path, bytes) ==
           AtomicWriteStatus::Ok;
}

} // namespace wmr::serve

#endif // WMR_SERVE_IO_UTIL_HH
