#include "serve/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.hh"
#include "fault/fault.hh"
#include "pipeline/aggregate_report.hh"
#include "trace/wire_codec.hh"

namespace wmr::serve {

namespace {

constexpr std::uint8_t kReqMagic[8] = {'W', 'M', 'R', 'Q',
                                       'S', 'V', '0', '1'};
constexpr std::uint8_t kRespMagic[8] = {'W', 'M', 'R', 'P',
                                        'S', 'V', '0', '1'};

// Caps on the announced payload lengths a reader will honor.  The
// request body cap is the caller's (admission policy); these bound
// the response fields so a confused peer cannot OOM a client.
constexpr std::uint64_t kMaxMetaBytes = 1ull << 20;    // 1 MiB
constexpr std::uint64_t kMaxReportBytes = 1ull << 32;  // 4 GiB

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

using Clock = std::chrono::steady_clock;

/**
 * Read exactly @p n bytes; false on EOF/error (sets @p eof).  When
 * @p deadline is nonzero, the WHOLE transfer must finish before it —
 * the slow-loris defense: SO_RCVTIMEO bounds each recv(), this
 * bounds their sum, so a client trickling one byte per timeout can
 * never hold a worker past the deadline.
 */
bool
readFull(int fd, void *out, std::size_t n, bool &eof,
         Clock::time_point deadline = {})
{
    auto *p = static_cast<std::uint8_t *>(out);
    std::size_t got = 0;
    eof = false;

    // Fault injection: an EINTR storm (param spurious interrupts,
    // default 3) exercises the retry, a short-read schedule caps
    // recv() at one byte to drive the reassembly loop.
    std::uint64_t storm = 0;
    if (fault::at("serve.io.eintr", &storm) && storm == 0)
        storm = 3;
    const bool shortReads = fault::at("serve.read.short");

    while (got < n) {
        if (deadline != Clock::time_point{} &&
            Clock::now() >= deadline) {
            errno = ETIMEDOUT;
            return false;
        }
        ssize_t r;
        if (storm > 0) {
            --storm;
            errno = EINTR;
            r = -1;
        } else {
            r = ::recv(fd, p + got, shortReads ? 1 : n - got, 0);
        }
        if (r == 0) {
            eof = true;
            return false;
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

std::vector<std::uint8_t>
encodeMeta(const ResponseMeta &meta)
{
    wire::Encoder enc;
    enc.u64(1); // meta schema version
    enc.u64(meta.fileBytes);
    enc.u64(meta.events);
    enc.u64(meta.syncEvents);
    enc.u64(meta.ops);
    enc.u64(meta.races);
    enc.u64(meta.dataRaces);
    enc.u64(meta.partitions);
    enc.u64(meta.firstPartitions);
    enc.u64(meta.reportedRaces);
    enc.u64((meta.anyDataRace ? 1u : 0u) |
            (meta.wholeExecutionSc ? 2u : 0u) |
            (meta.salvaged ? 4u : 0u));
    enc.u64(meta.unresolvedPairings);
    enc.u64(meta.droppedDataRecords);
    enc.u64(meta.contentHash);
    enc.u64(meta.error.size());
    enc.raw(meta.error.data(), meta.error.size());
    return enc.take();
}

/** Throws wire::ParseFailure on malformed bytes. */
ResponseMeta
decodeMetaOrThrow(const std::uint8_t *data, std::size_t n)
{
    wire::Decoder dec(data, n);
    const std::uint64_t version = dec.u64();
    if (version != 1)
        wire::parseFail("response meta: unsupported version %llu",
                        static_cast<unsigned long long>(version));
    ResponseMeta meta;
    meta.fileBytes = dec.u64();
    meta.events = dec.u64();
    meta.syncEvents = dec.u64();
    meta.ops = dec.u64();
    meta.races = dec.u64();
    meta.dataRaces = dec.u64();
    meta.partitions = dec.u64();
    meta.firstPartitions = dec.u64();
    meta.reportedRaces = dec.u64();
    const std::uint64_t flags = dec.u64();
    meta.anyDataRace = flags & 1;
    meta.wholeExecutionSc = flags & 2;
    meta.salvaged = flags & 4;
    meta.unresolvedPairings = dec.u64();
    meta.droppedDataRecords = dec.u64();
    meta.contentHash = dec.u64();
    const std::uint64_t errLen = dec.u64();
    dec.checkCount(errLen, "error string");
    meta.error.resize(errLen);
    if (errLen > 0)
        dec.raw(meta.error.data(), errLen);
    if (!dec.done())
        wire::parseFail("response meta: trailing bytes");
    return meta;
}

} // namespace

const char *
engineWireName(std::uint32_t wire)
{
    switch (wire) {
      case 1:
        return "hb1";
      case 2:
        return "shb";
      case 3:
        return "wcp";
      case 4:
        return "all";
      default:
        return nullptr;
    }
}

std::uint32_t
engineWireId(const std::string &name)
{
    for (std::uint32_t id = 1; id <= kWireEngineMax; ++id) {
        if (name == engineWireName(id))
            return id;
    }
    return 0;
}

const char *
respStatusName(RespStatus status)
{
    switch (status) {
      case RespStatus::Ok:
        return "ok";
      case RespStatus::BadRequest:
        return "bad_request";
      case RespStatus::Overloaded:
        return "overloaded";
      case RespStatus::Draining:
        return "draining";
      case RespStatus::InternalError:
        return "internal_error";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeRequestFrame(const Request &req)
{
    std::vector<std::uint8_t> out;
    out.reserve(24 + req.body.size());
    out.insert(out.end(), kReqMagic, kReqMagic + sizeof(kReqMagic));
    putU32(out, static_cast<std::uint32_t>(req.command));
    putU32(out, req.flags);
    putU64(out, req.body.size());
    out.insert(out.end(), req.body.begin(), req.body.end());
    return out;
}

std::vector<std::uint8_t>
encodeResponseFrame(const Response &resp)
{
    const std::vector<std::uint8_t> meta = encodeMeta(resp.meta);
    std::vector<std::uint8_t> out;
    out.reserve(36 + meta.size() + resp.report.size());
    out.insert(out.end(), kRespMagic,
               kRespMagic + sizeof(kRespMagic));
    putU32(out, static_cast<std::uint32_t>(resp.status));
    putU32(out, resp.flags);
    putU32(out, resp.retryAfterMs);
    putU64(out, meta.size());
    putU64(out, resp.report.size());
    out.insert(out.end(), meta.begin(), meta.end());
    out.insert(out.end(), resp.report.begin(), resp.report.end());
    return out;
}

FrameReadStatus
readRequest(int fd, std::uint64_t maxBodyBytes, Request &out,
            std::string &error, std::uint32_t deadlineMs)
{
    const Clock::time_point deadline =
        deadlineMs != 0
            ? Clock::now() + std::chrono::milliseconds(deadlineMs)
            : Clock::time_point{};
    std::uint8_t header[24];
    bool eof = false;
    if (!readFull(fd, header, sizeof(header), eof, deadline)) {
        error = eof ? "connection closed before a full request "
                      "header"
                    : std::string("request read failed: ") +
                          std::strerror(errno);
        return eof ? FrameReadStatus::Eof : FrameReadStatus::IoError;
    }
    if (std::memcmp(header, kReqMagic, sizeof(kReqMagic)) != 0) {
        error = "not a wmrace serve request (bad magic)";
        return FrameReadStatus::Malformed;
    }
    const std::uint32_t cmd = getU32(header + 8);
    if (cmd < 1 || cmd > 3) {
        error = "unknown request command " + std::to_string(cmd);
        return FrameReadStatus::Malformed;
    }
    out.command = static_cast<Command>(cmd);
    out.flags = getU32(header + 12);
    // Validate the engine selector nibble HERE, before any body
    // bytes: an unknown engine must be a typed protocol error (the
    // fuzz corpus asserts this), never a crash or a silent default.
    const std::uint32_t engine = requestEngineWire(out.flags);
    if (engine > kWireEngineMax) {
        error = strformat("unknown engine selector %u in request "
                          "flags (valid: 0..%u)",
                          engine, kWireEngineMax);
        return FrameReadStatus::Malformed;
    }
    const std::uint64_t bodyLen = getU64(header + 16);
    if (bodyLen > maxBodyBytes) {
        error = strformat("request body %llu bytes exceeds the "
                          "server limit of %llu",
                          static_cast<unsigned long long>(bodyLen),
                          static_cast<unsigned long long>(
                              maxBodyBytes));
        return FrameReadStatus::TooLarge;
    }
    out.body.resize(bodyLen);
    if (bodyLen > 0 &&
        !readFull(fd, out.body.data(), bodyLen, eof, deadline)) {
        error = eof ? "connection closed mid-body"
                    : std::string("request body read failed: ") +
                          std::strerror(errno);
        return eof ? FrameReadStatus::Eof : FrameReadStatus::IoError;
    }
    return FrameReadStatus::Ok;
}

FrameReadStatus
readResponse(int fd, Response &out, std::string &error)
{
    std::uint8_t header[36];
    bool eof = false;
    if (!readFull(fd, header, sizeof(header), eof)) {
        error = eof ? "connection closed before a full response "
                      "header"
                    : std::string("response read failed: ") +
                          std::strerror(errno);
        return eof ? FrameReadStatus::Eof : FrameReadStatus::IoError;
    }
    if (std::memcmp(header, kRespMagic, sizeof(kRespMagic)) != 0) {
        error = "not a wmrace serve response (bad magic)";
        return FrameReadStatus::Malformed;
    }
    const std::uint32_t status = getU32(header + 8);
    if (status > 4) {
        error = "unknown response status " + std::to_string(status);
        return FrameReadStatus::Malformed;
    }
    out.status = static_cast<RespStatus>(status);
    out.flags = getU32(header + 12);
    out.retryAfterMs = getU32(header + 16);
    const std::uint64_t metaLen = getU64(header + 20);
    const std::uint64_t reportLen = getU64(header + 28);
    if (metaLen > kMaxMetaBytes || reportLen > kMaxReportBytes) {
        error = "response payload lengths out of range";
        return FrameReadStatus::Malformed;
    }
    std::vector<std::uint8_t> meta(metaLen);
    if (metaLen > 0 && !readFull(fd, meta.data(), metaLen, eof)) {
        error = eof ? "connection closed mid-meta"
                    : std::string("response meta read failed: ") +
                          std::strerror(errno);
        return eof ? FrameReadStatus::Eof : FrameReadStatus::IoError;
    }
    try {
        out.meta = decodeMetaOrThrow(meta.data(), meta.size());
    } catch (const wire::ParseFailure &pf) {
        error = pf.message;
        return FrameReadStatus::Malformed;
    }
    out.report.resize(reportLen);
    if (reportLen > 0 &&
        !readFull(fd, out.report.data(), reportLen, eof)) {
        error = eof ? "connection closed mid-report"
                    : std::string("response report read failed: ") +
                          std::strerror(errno);
        return eof ? FrameReadStatus::Eof : FrameReadStatus::IoError;
    }
    return FrameReadStatus::Ok;
}

bool
decodeResponseFrame(const std::uint8_t *data, std::size_t n,
                    Response &out, std::string &error)
{
    if (n < 36) {
        error = "response frame truncated before the header";
        return false;
    }
    if (std::memcmp(data, kRespMagic, sizeof(kRespMagic)) != 0) {
        error = "not a wmrace serve response (bad magic)";
        return false;
    }
    const std::uint32_t status = getU32(data + 8);
    if (status > 4) {
        error = "unknown response status " + std::to_string(status);
        return false;
    }
    out.status = static_cast<RespStatus>(status);
    out.flags = getU32(data + 12);
    out.retryAfterMs = getU32(data + 16);
    const std::uint64_t metaLen = getU64(data + 20);
    const std::uint64_t reportLen = getU64(data + 28);
    if (metaLen > kMaxMetaBytes || reportLen > kMaxReportBytes ||
        36 + metaLen + reportLen != n) {
        error = "response payload lengths do not match the frame";
        return false;
    }
    try {
        out.meta = decodeMetaOrThrow(data + 36, metaLen);
    } catch (const wire::ParseFailure &pf) {
        error = pf.message;
        return false;
    }
    out.report.assign(
        reinterpret_cast<const char *>(data + 36 + metaLen),
        reportLen);
    return true;
}

bool
writeAll(int fd, const void *data, std::size_t n)
{
    // Same EINTR-storm site as the read side: a hit storms this
    // call's send() loop with param spurious interrupts (default 3).
    std::uint64_t storm = 0;
    if (fault::at("serve.io.eintr", &storm) && storm == 0)
        storm = 3;

    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        ssize_t r;
        if (storm > 0) {
            --storm;
            errno = EINTR;
            r = -1;
        } else {
            r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

std::string
metaJson(const Response &resp)
{
    const ResponseMeta &m = resp.meta;
    std::string out = "{\"schema\": \"wmrace-serve-meta\"";
    out += strformat(", \"status\": \"%s\"",
                     respStatusName(resp.status));
    out += strformat(", \"cache_hit\": %s",
                     resp.cacheHit() ? "true" : "false");
    out += strformat(", \"content_hash\": \"%016llx\"",
                     static_cast<unsigned long long>(m.contentHash));
    out += strformat(", \"file_bytes\": %llu",
                     static_cast<unsigned long long>(m.fileBytes));
    out += strformat(", \"events\": %llu",
                     static_cast<unsigned long long>(m.events));
    out += strformat(", \"sync_events\": %llu",
                     static_cast<unsigned long long>(m.syncEvents));
    out += strformat(", \"ops\": %llu",
                     static_cast<unsigned long long>(m.ops));
    out += strformat(", \"races\": %llu",
                     static_cast<unsigned long long>(m.races));
    out += strformat(", \"data_races\": %llu",
                     static_cast<unsigned long long>(m.dataRaces));
    out += strformat(", \"partitions\": %llu",
                     static_cast<unsigned long long>(m.partitions));
    out += strformat(
        ", \"first_partitions\": %llu",
        static_cast<unsigned long long>(m.firstPartitions));
    out += strformat(
        ", \"reported_races\": %llu",
        static_cast<unsigned long long>(m.reportedRaces));
    out += strformat(", \"any_data_race\": %s",
                     m.anyDataRace ? "true" : "false");
    out += strformat(", \"whole_execution_sc\": %s",
                     m.wholeExecutionSc ? "true" : "false");
    out += strformat(", \"salvaged\": %s",
                     m.salvaged ? "true" : "false");
    out += strformat(
        ", \"unresolved_pairings\": %llu",
        static_cast<unsigned long long>(m.unresolvedPairings));
    out += strformat(
        ", \"dropped_data_records\": %llu",
        static_cast<unsigned long long>(m.droppedDataRecords));
    if (!m.error.empty())
        out += ", \"error\": \"" + jsonEscape(m.error) + "\"";
    out += "}";
    return out;
}

} // namespace wmr::serve
