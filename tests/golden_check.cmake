# Golden-report comparison, run by CTest (see tests/CMakeLists.txt):
#
#   cmake -DWMRACE=<tool> -DTRACE=<file> -DEXPECTED=<file>
#         -DOUT=<file> -DSALVAGE=0|1 [-DSTREAM=0|1] [-DENGINE=<sel>]
#         -P golden_check.cmake
#
# Runs `wmrace check [--salvage] [--stream] [--engine SEL] TRACE`,
# captures stdout,
# and compares it byte for byte with the committed EXPECTED report.
# STREAM=1 routes the same trace through the bounded-memory streaming
# engine, which must render the identical bytes the whole-trace
# pipeline blessed.  ENGINE selects a detector-family report
# (per-engine verdict blocks + containment summary) instead of the
# canonical hb1 report.  Any
# drift — a reworded line, a changed count, a reordered partition —
# fails the test; intentional changes are re-blessed with
# tests/data/golden/regen.sh.

foreach(var WMRACE TRACE EXPECTED OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "golden_check.cmake: ${var} not set")
    endif()
endforeach()

set(args check ${TRACE})
if(SALVAGE)
    list(APPEND args --salvage)
endif()
if(STREAM)
    list(APPEND args --stream)
endif()
if(DEFINED ENGINE)
    list(APPEND args --engine ${ENGINE})
endif()

execute_process(COMMAND ${WMRACE} ${args}
                OUTPUT_FILE ${OUT}
                RESULT_VARIABLE rc)
# `check` exits 0 (clean) or 1 (data races found); both are valid
# golden outcomes.  Anything else is a tool failure.
if(NOT rc MATCHES "^[01]$")
    message(FATAL_ERROR
            "wmrace ${args} exited '${rc}' (expected 0 or 1)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT} ${EXPECTED}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    execute_process(COMMAND ${CMAKE_COMMAND} -E echo
                    "--- got (${OUT}) ---")
    file(READ ${OUT} got)
    message(STATUS "${got}")
    message(FATAL_ERROR
            "report differs from golden ${EXPECTED}.  If the change "
            "is intentional, re-bless with tests/data/golden/regen.sh "
            "and review the diff.")
endif()
