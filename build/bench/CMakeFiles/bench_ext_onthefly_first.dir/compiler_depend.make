# Empty compiler generated dependencies file for bench_ext_onthefly_first.
# This may be replaced when dependencies are built.
