/**
 * @file
 * Tests of the Eraser-style dynamic lockset detector, including its
 * characteristic divergence from hb1-based detection on
 * flag-synchronized programs.
 */

#include <gtest/gtest.h>

#include "onthefly/lockset_detector.hh"
#include "onthefly/vc_detector.hh"
#include "prog/builder.hh"
#include "sim/scheduler.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace wmr {
namespace {

template <typename Detector>
ExecutionResult
runWith(const Program &p, Detector &det, std::uint64_t seed = 3,
        ModelKind model = ModelKind::SC)
{
    ExecOptions opts;
    opts.model = model;
    opts.seed = seed;
    opts.sink = &det;
    return runProgram(p, opts);
}

TEST(Lockset, VirginToExclusiveIsSilent)
{
    ProgramBuilder pb;
    pb.var("x", 0);
    ThreadBuilder a;
    a.storei(0, 1).storei(0, 2).load(1, 0).halt();
    ThreadBuilder b;
    b.nop().halt();
    pb.thread(a).thread(b);
    const Program p = pb.build();
    LocksetDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    EXPECT_TRUE(det.races().empty());
    EXPECT_EQ(det.state(0), LocksetDetector::WordState::Exclusive);
}

TEST(Lockset, SharedReadOnlyIsSilent)
{
    // Writer initializes, then everyone only reads: Shared state,
    // no check even without locks (the Eraser refinement).
    ProgramBuilder pb;
    pb.var("x", 0, 5);
    ThreadBuilder a, b;
    a.load(1, 0).halt();
    b.load(1, 0).halt();
    pb.thread(a).thread(b);
    const Program p = pb.build();
    LocksetDetector det(p.numProcs(), p.memWords());
    ScriptedScheduler sched({0, 1});
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    opts.sink = &det;
    runProgram(p, opts);
    EXPECT_TRUE(det.races().empty());
    EXPECT_EQ(det.state(0), LocksetDetector::WordState::Shared);
}

TEST(Lockset, UnprotectedSharedWriteReported)
{
    const Program p = lockedCounter(2, 2, /*racy=*/true);
    LocksetDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    EXPECT_FALSE(det.races().empty());
}

TEST(Lockset, LockDisciplineClean)
{
    const Program p = lockedCounter(3, 4);
    LocksetDetector det(p.numProcs(), p.memWords());
    runWith(p, det, 7, ModelKind::WO);
    EXPECT_TRUE(det.races().empty());
    // The counter's candidate set still holds the lock.
    EXPECT_TRUE(det.candidates(1).count(0));
}

TEST(Lockset, CandidateSetsIntersect)
{
    // Accesses under lock A then under lock B: candidates empty at
    // the second access -> violation.
    ProgramBuilder pb;
    pb.var("A", 0).var("B", 1).var("x", 2);
    ThreadBuilder a, b;
    a.acquireLock(0, 0).storei(2, 1).unset(0).halt();
    b.acquireLock(1, 0).storei(2, 2).unset(1).halt();
    pb.thread(a).thread(b);
    const Program p = pb.build();
    LocksetDetector det(p.numProcs(), p.memWords());
    ScriptedScheduler sched({0, 0, 0, 0, 1, 1, 1, 1});
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    opts.sink = &det;
    runProgram(p, opts);
    EXPECT_FALSE(det.races().empty());
    EXPECT_TRUE(det.candidates(2).empty());
}

TEST(Lockset, OneReportPerWord)
{
    const Program p = lockedCounter(2, 5, /*racy=*/true);
    LocksetDetector det(p.numProcs(), p.memWords());
    runWith(p, det);
    // Many violating accesses to the counter, but a single report.
    EXPECT_EQ(det.races().size(), 1u);
}

TEST(Lockset, FalsePositiveOnFlagSync)
{
    // The flag-synchronized producer/consumer ring is race-free (the
    // VC detector agrees), but the ring slots are written, read, and
    // REWRITTEN with no lock ever held: the lockset discipline
    // reports a violation.  The classic Eraser false positive, and
    // the reason the paper's hb1 uses release/acquire pairing.
    const Program p = producerConsumer(6, 2, /*racy=*/false);
    LocksetDetector lockset(p.numProcs(), p.memWords());
    const auto res = runWith(p, lockset, 5, ModelKind::WO);

    VcDetector vc(p.numProcs(), p.memWords());
    for (const auto &op : res.ops)
        vc.onOp(op);

    EXPECT_TRUE(vc.races().empty());       // truth: race-free
    EXPECT_FALSE(lockset.races().empty()); // discipline violated
}

TEST(Lockset, AgreesOnLockBasedPrograms)
{
    // On lock-disciplined random programs the two approaches agree
    // about existence.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Program p = (seed % 2) ? randomRacyProgram(seed)
                                     : randomRaceFreeProgram(seed);
        LocksetDetector ls(p.numProcs(), p.memWords());
        const auto res = runWith(p, ls, seed, ModelKind::SC);
        VcDetector vc(p.numProcs(), p.memWords());
        for (const auto &op : res.ops)
            vc.onOp(op);
        // Lockset never misses what VC finds on these programs
        // (lock discipline is the only sync they use).
        if (!vc.races().empty())
            EXPECT_FALSE(ls.races().empty()) << "seed " << seed;
        if (ls.races().empty())
            EXPECT_TRUE(vc.races().empty()) << "seed " << seed;
    }
}

} // namespace
} // namespace wmr
