/**
 * @file
 * Sequentially consistent prefix (SCP) analysis — Definitions 3.1/3.2
 * and Condition 3.4.
 *
 * The simulator issues instructions one at a time, so the issue order
 * is a legal SC interleaving; as long as every read returns the value
 * that interleaving prescribes, the execution IS sequentially
 * consistent with the issue order as witness.  A *stale* read is the
 * first escape from that witness — but an operation's identity is
 * its program point and address, NOT its value (Sec. 2.1), so the
 * stale read itself still occurs in the witness Eseq and still
 * belongs to the SCP (Figure 2(b) draws "End of SCP" after
 * read(Q,37)).  What falls OUT of the SCP are the operations whose
 * identity depends on stale data: ops addressed through a tainted
 * index register, and every op of a processor after it branched on a
 * tainted value.  The executor tracks that taint through registers
 * and flags such ops `divergent`; the op-level SCP is the set of
 * non-divergent operations.  (The base boundary — everything before
 * the first stale read — is also reported; it is the prefix where
 * even VALUES match Eseq.)
 *
 * This module classifies events and races against that prefix:
 * Condition 3.4 promises every data race either occurs in the SCP or
 * is affected by one that does, and Theorem 4.2 promises each first
 * partition holds at least one SCP race.  Tests verify both.
 */

#ifndef WMR_DETECT_SCP_HH
#define WMR_DETECT_SCP_HH

#include <vector>

#include "detect/augmented_graph.hh"
#include "detect/race.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Relation of one event to the SCP. */
enum class ScpMembership : std::uint8_t {
    Full,     ///< all member operations inside the SCP
    Partial,  ///< the SCP boundary cuts through the event
    Outside,  ///< all member operations past the boundary
};

/** SCP classification of one analyzed execution. */
struct ScpInfo
{
    /** Operations with id < scpEndOp belong to the base SCP. */
    OpId scpEndOp = 0;

    /** True when no stale read occurred: the whole execution is SC. */
    bool wholeExecutionSc = false;

    /** Per-event membership (indexed by EventId). */
    std::vector<ScpMembership> eventScp;

    /**
     * Per-race: certainly-in-SCP.  At event granularity a race is
     * certainly in the SCP when BOTH events are fully inside (then
     * every lower-level conflicting pair is inside).  With member
     * operations retained, boundary-straddling events are resolved
     * exactly at operation level.
     */
    std::vector<bool> raceInScp;

    /**
     * Per-race: possibly-in-SCP (some member operations of both
     * events are inside, but the boundary cuts an event whose member
     * operations were not retained).  raceInScp implies raceMaybeInScp.
     */
    std::vector<bool> raceMaybeInScp;

    /** @return membership of event @p e. */
    ScpMembership
    membership(EventId e) const
    {
        return eventScp[e];
    }
};

/**
 * Classify @p trace's events and @p races against the base SCP.
 *
 * When @p ops is non-null (the original operation stream), races on
 * boundary events are resolved exactly: a race is in the SCP iff some
 * conflicting pair of lower-level operations (one from each event, at
 * least one data, at least one write, same address) lies entirely
 * inside the prefix.  Requires the trace to have been built with
 * keepMemberOps.
 */
ScpInfo analyzeScp(const ExecutionTrace &trace,
                   const std::vector<DataRace> &races,
                   const std::vector<MemOp> *ops = nullptr);

/**
 * Verify Condition 3.4(2) on an analyzed execution: every data race
 * either is (possibly) in the SCP or is affected by a data race that
 * (certainly) is.  @return indices of violating races (empty = OK).
 */
std::vector<RaceId>
checkCondition34(const std::vector<DataRace> &races,
                 const ScpInfo &scp, const AugmentedGraph &aug);

} // namespace wmr

#endif // WMR_DETECT_SCP_HH
