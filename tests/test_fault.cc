/**
 * @file
 * Unit tests of the fault-injection registry (src/fault/): spec
 * grammar, trigger semantics (once/nth/after/probability), seeded
 * determinism, parameter plumbing, obs counter export — plus
 * integration through the segmented trace container, proving the
 * injected I/O faults degrade into the typed salvage/error paths
 * instead of crashes.
 *
 * Every test (re)configures the process-wide registry through the
 * fault::configure() test hook and the fixture disables it again on
 * teardown, so the suite leaves no schedule behind for other tests
 * in the binary.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "obs/obs.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

class FaultTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_TRUE(fault::configure("", 0));
    }

    void
    TearDown() override
    {
        ASSERT_TRUE(fault::configure("", 0));
    }
};

TEST_F(FaultTest, DisabledRegistryNeverFires)
{
    std::uint64_t param = 42;
    EXPECT_FALSE(fault::at("nothing.here", &param));
    EXPECT_EQ(param, 0u);
    EXPECT_FALSE(fault::configured("nothing.here"));
    EXPECT_EQ(fault::hits("nothing.here"), 0u);
    EXPECT_EQ(fault::paramOr("nothing.here", 7), 7u);
}

TEST_F(FaultTest, BareSiteFiresOnEveryHit)
{
    ASSERT_TRUE(fault::configure("a.b", 0));
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.other")); // unlisted site: inert
    EXPECT_EQ(fault::hits("a.b"), 5u);
    EXPECT_EQ(fault::fired("a.b"), 5u);
    EXPECT_TRUE(fault::configured("a.b"));
    EXPECT_FALSE(fault::configured("a.other"));
}

TEST_F(FaultTest, OnceFiresOnFirstHitOnly)
{
    ASSERT_TRUE(fault::configure("a.b@once", 0));
    EXPECT_TRUE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_EQ(fault::hits("a.b"), 3u);
    EXPECT_EQ(fault::fired("a.b"), 1u);
}

TEST_F(FaultTest, NthFiresExactlyOnTheNthHit)
{
    ASSERT_TRUE(fault::configure("a.b@n3", 0));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_TRUE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_EQ(fault::fired("a.b"), 1u);
}

TEST_F(FaultTest, AfterFiresOnEveryHitPastTheThreshold)
{
    ASSERT_TRUE(fault::configure("a.b@after2", 0));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    EXPECT_TRUE(fault::at("a.b"));
    EXPECT_TRUE(fault::at("a.b"));
    EXPECT_EQ(fault::fired("a.b"), 2u);
}

TEST_F(FaultTest, ParamIsDeliveredAndComposesWithTriggers)
{
    ASSERT_TRUE(fault::configure("a.b@5", 0));
    std::uint64_t param = 0;
    EXPECT_TRUE(fault::at("a.b", &param));
    EXPECT_EQ(param, 5u);
    EXPECT_EQ(fault::paramOr("a.b", 9), 5u);

    // Trigger + param in one spec: fires on hit 2 with param 7.
    ASSERT_TRUE(fault::configure("a.b@n2:7", 0));
    param = 99;
    EXPECT_FALSE(fault::at("a.b", &param));
    EXPECT_EQ(param, 7u); // param is reported on every hit
    EXPECT_TRUE(fault::at("a.b", &param));
    EXPECT_EQ(param, 7u);
}

TEST_F(FaultTest, MultipleEntriesAreIndependent)
{
    ASSERT_TRUE(fault::configure("a.b@once,c.d@n2:31", 0));
    EXPECT_TRUE(fault::at("a.b"));
    EXPECT_FALSE(fault::at("a.b"));
    std::uint64_t param = 0;
    EXPECT_FALSE(fault::at("c.d", &param));
    EXPECT_TRUE(fault::at("c.d", &param));
    EXPECT_EQ(param, 31u);
    EXPECT_EQ(fault::hits("a.b"), 2u);
    EXPECT_EQ(fault::hits("c.d"), 2u);
}

TEST_F(FaultTest, ProbabilityScheduleIsSeedDeterministic)
{
    const auto schedule = [](std::uint64_t seed) {
        EXPECT_TRUE(fault::configure("a.b@p0.5", seed));
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i)
            out.push_back(fault::at("a.b"));
        return out;
    };
    const auto s0 = schedule(1234);
    const auto s0again = schedule(1234);
    const auto s1 = schedule(99);
    EXPECT_EQ(s0, s0again);
    EXPECT_NE(s0, s1); // 2^-64 flake odds: the seeds disagree

    // A fair coin over 64 hits lands well inside [8, 56].
    std::size_t firedCount = 0;
    for (const bool b : s0)
        firedCount += b ? 1 : 0;
    EXPECT_GT(firedCount, 8u);
    EXPECT_LT(firedCount, 56u);

    // Degenerate probabilities are exact, not approximate.
    EXPECT_TRUE(fault::configure("a.b@p0", 7));
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(fault::at("a.b"));
    EXPECT_TRUE(fault::configure("a.b@p1.0", 7));
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(fault::at("a.b"));
}

TEST_F(FaultTest, SeedIsVisibleAndReconfigureResetsCounters)
{
    ASSERT_TRUE(fault::configure("a.b", 77));
    EXPECT_EQ(fault::seed(), 77u);
    EXPECT_TRUE(fault::at("a.b"));
    ASSERT_TRUE(fault::configure("a.b", 77));
    EXPECT_EQ(fault::hits("a.b"), 0u); // fresh sites, fresh counts
}

TEST_F(FaultTest, GrammarViolationsDisableTheRegistry)
{
    const char *bad[] = {
        "@n1",          // empty site name
        "a.b@",         // empty spec field
        "a.b@n0",       // hits are 1-based
        "a.b@nbanana",  // not a count
        "a.b@p1.5",     // probability outside [0,1]
        "a.b@pbanana",  // not a float
        "a.b@bogus",    // unknown field
        "a.b,,c.d",     // stray comma
        "a.b@n2:whee",  // bad second field
    };
    for (const char *spec : bad) {
        ASSERT_TRUE(fault::configure("a.b", 0));
        std::string error;
        EXPECT_FALSE(fault::configure(spec, 0, &error))
            << "spec '" << spec << "' should be rejected";
        EXPECT_FALSE(error.empty()) << spec;
        // The failed configure tore down the old schedule too: a
        // chaos run must fail loudly, never soak fault-free.
        EXPECT_FALSE(fault::at("a.b")) << spec;
    }
}

TEST_F(FaultTest, ObsCountersTrackHitsAndFires)
{
    ASSERT_TRUE(fault::configure("x.y@n2", 0));
    const std::uint64_t hits0 = obs::counter("fault.x.y.hits").value();
    const std::uint64_t fired0 = obs::counter("fault.x.y").value();
    EXPECT_FALSE(fault::at("x.y"));
    EXPECT_TRUE(fault::at("x.y"));
    EXPECT_FALSE(fault::at("x.y"));
    EXPECT_EQ(obs::counter("fault.x.y.hits").value() - hits0, 3u);
    EXPECT_EQ(obs::counter("fault.x.y").value() - fired0, 1u);

    // Externally-managed faults (the legacy tracer machinery) report
    // through the same counter namespace.
    const std::uint64_t rt0 =
        obs::counter("fault.rt.slow-child").value();
    fault::noteFired("rt.slow-child");
    EXPECT_EQ(obs::counter("fault.rt.slow-child").value() - rt0, 1u);
}

// ---------------------------------------------------------------
// Integration through the segmented trace container: the injected
// I/O faults must land in the typed degradation paths.
// ---------------------------------------------------------------

namespace {

std::vector<std::uint8_t>
segmentedBytes()
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    return serializeSegmentedTrace(
        buildTrace(s.result, {.keepMemberOps = true}), 4);
}

struct TempFile
{
    std::string path;

    explicit TempFile(const std::vector<std::uint8_t> &bytes)
    {
        char buf[] = "/tmp/wmr_fault_XXXXXX";
        const int fd = ::mkstemp(buf);
        EXPECT_GE(fd, 0);
        path = buf;
        std::FILE *f = ::fdopen(fd, "wb");
        if (!bytes.empty()) {
            EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    }

    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST_F(FaultTest, InjectedBitflipFailsStrictReadButSalvages)
{
    TempFile file(segmentedBytes());

    // Clean baseline.
    EXPECT_TRUE(tryReadSegmentedTraceFile(file.path).ok());

    // A flipped bit (byte 40: inside the first data frame; byte 0
    // would destroy the magic, which not even salvage accepts)
    // breaks a frame CRC: the strict reader refuses with a typed
    // error pointing at salvage...
    ASSERT_TRUE(fault::configure("trace.read.bitflip@n1:40", 0));
    const auto strict = tryReadSegmentedTraceFile(file.path);
    EXPECT_FALSE(strict.ok());
    EXPECT_FALSE(strict.error.empty());

    // ...and the salvage reader recovers the undamaged prefix.
    ASSERT_TRUE(fault::configure("trace.read.bitflip@n1:40", 0));
    const auto salvage = trySalvageTraceFile(file.path);
    EXPECT_TRUE(salvage.ok());
    EXPECT_TRUE(salvage.salvage.salvaged);
}

TEST_F(FaultTest, InjectedShortReadDropsTheTailIntoSalvage)
{
    TempFile file(segmentedBytes());
    ASSERT_TRUE(fault::configure("trace.read.short@n1", 0));
    const auto strict = tryReadSegmentedTraceFile(file.path);
    EXPECT_FALSE(strict.ok()); // FIN frame is torn

    ASSERT_TRUE(fault::configure("trace.read.short@n1", 0));
    const auto salvage = trySalvageTraceFile(file.path);
    EXPECT_TRUE(salvage.ok());
    EXPECT_TRUE(salvage.salvage.salvaged);
}

TEST_F(FaultTest, SpillWriterAbsorbsInjectedEintrStorms)
{
    // Every write syscall first fails with a 3-long EINTR storm; the
    // writer's retry loop must absorb all of them invisibly.
    ASSERT_TRUE(fault::configure("trace.seg.write.eintr@3", 0));

    TempFile file({});
    SegmentSpillWriter w;
    ASSERT_TRUE(w.open(file.path)) << w.lastError();
    SegEvent ev;
    ev.kind = EventKind::Computation;
    ev.proc = 0;
    ev.firstOp = 0;
    ev.lastOp = 0;
    ev.opCount = 1;
    ev.writeWords = {0};
    w.addEvent(ev);
    ASSERT_TRUE(w.sealSegment()) << w.lastError();
    SegShape shape;
    shape.procs = 1;
    shape.memWords = 1;
    shape.totalOps = 1;
    ASSERT_TRUE(w.finish(shape)) << w.lastError();
    EXPECT_GT(fault::fired("trace.seg.write.eintr"), 0u);

    // The retried file is byte-perfect: the strict reader accepts.
    ASSERT_TRUE(fault::configure("", 0));
    EXPECT_TRUE(tryReadSegmentedTraceFile(file.path).ok());
}

TEST_F(FaultTest, TailReaderStallFaultHoldsAtWaiting)
{
    TempFile file(segmentedBytes());
    SegmentTailReader r;
    ASSERT_TRUE(r.open(file.path));
    std::vector<SegTailSegment> segs;

    // Stalled tail: the reader reports Waiting — the live-follow
    // contract ("more may come"), never a hang or false damage.
    ASSERT_TRUE(fault::configure("stream.tail.stall", 0));
    EXPECT_EQ(r.poll(segs), TailPollStatus::Waiting);
    EXPECT_TRUE(segs.empty());

    // Stall lifted: the complete on-disk file decodes through FIN.
    ASSERT_TRUE(fault::configure("", 0));
    TailPollStatus st = r.poll(segs);
    while (st == TailPollStatus::Progress)
        st = r.poll(segs);
    EXPECT_EQ(st, TailPollStatus::Fin);
    EXPECT_TRUE(r.finalize(true)) << r.error();
}

TEST_F(FaultTest, TailReaderDamageFaultIsTypedDamaged)
{
    TempFile file(segmentedBytes());
    SegmentTailReader r;
    ASSERT_TRUE(r.open(file.path));
    std::vector<SegTailSegment> segs;
    ASSERT_TRUE(fault::configure("stream.tail.damage@n1", 0));
    TailPollStatus st = r.poll(segs);
    while (st == TailPollStatus::Progress)
        st = r.poll(segs);
    EXPECT_EQ(st, TailPollStatus::Damaged);
    // Tolerant finalize folds the damage into salvage accounting —
    // the streaming twin of trySalvageTrace.
    EXPECT_TRUE(r.finalize(false));
    EXPECT_TRUE(r.salvage().salvaged);
}

TEST_F(FaultTest, SpillWriterSurfacesInjectedEnospcAsTypedError)
{
    ASSERT_TRUE(fault::configure("trace.seg.write.enospc@n1", 0));
    TempFile file({});
    SegmentSpillWriter w;
    // open() writes the magic — that is the first frame-ish write;
    // the injected ENOSPC lands on the first writeFrame call.
    ASSERT_TRUE(w.open(file.path)) << w.lastError();
    SegEvent ev;
    ev.kind = EventKind::Computation;
    ev.proc = 0;
    ev.opCount = 1;
    ev.writeWords = {0};
    w.addEvent(ev);
    errno = 0;
    EXPECT_FALSE(w.sealSegment());
    EXPECT_FALSE(w.lastError().empty());
    EXPECT_EQ(errno, ENOSPC);
}

} // namespace
} // namespace wmr
