#include "pipeline/aggregate_report.hh"

#include "common/string_util.hh"

namespace wmr {

BatchTotals
computeTotals(const BatchResult &batch)
{
    BatchTotals t;
    for (const auto &tr : batch.traces) {
        if (tr.failed()) {
            ++t.failed;
            continue;
        }
        if (tr.status == TraceRunStatus::Skipped) {
            ++t.skipped;
            continue;
        }
        ++t.analyzed;
        if (tr.salvaged)
            ++t.salvaged;
        t.unresolvedPairings += tr.unresolvedPairings;
        t.droppedDataRecords += tr.droppedDataRecords;
        if (tr.anyDataRace)
            ++t.tracesWithDataRaces;
        if (tr.wholeExecutionSc)
            ++t.tracesFullySc;
        t.events += tr.events;
        t.ops += tr.ops;
        t.races += tr.races;
        t.dataRaces += tr.dataRaces;
        t.partitions += tr.partitions;
        t.firstPartitions += tr.firstPartitions;
        t.reportedRaces += tr.reportedRaces;
    }
    return t;
}

std::string
formatBatchReport(const BatchResult &batch,
                  const BatchReportOptions &opts)
{
    const BatchTotals t = computeTotals(batch);
    std::string out;
    out += "=== wmrace batch report ===\n";
    out += strformat("corpus: %s (%zu trace file(s))\n",
                     batch.corpus.source.c_str(),
                     batch.traces.size());
    out += strformat("analyzed: %zu   failed: %zu   skipped: %zu\n",
                     t.analyzed, t.failed, t.skipped);
    if (t.salvaged > 0)
        out += strformat(
            "salvaged: %zu damaged trace(s) analyzed from their "
            "recovered prefix (%llu release->acquire pairing(s) "
            "lost)\n",
            t.salvaged,
            static_cast<unsigned long long>(t.unresolvedPairings));
    if (t.droppedDataRecords > 0)
        out += strformat(
            "recorder loss: %llu data record(s) dropped by the "
            "ring-overflow Drop policy\n",
            static_cast<unsigned long long>(t.droppedDataRecords));
    out += strformat(
        "traces with data races: %zu   race-free (Theorem 4.1 => "
        "execution was SC): %zu\n",
        t.tracesWithDataRaces, t.analyzed - t.tracesWithDataRaces);

    out += "\n";
    std::size_t idx = 0;
    for (const auto &tr : batch.traces) {
        ++idx;
        if (tr.status != TraceRunStatus::Ok) {
            out += strformat("  #%3zu %s: %s: %s\n", idx,
                             tr.path.c_str(),
                             tr.status == TraceRunStatus::Skipped
                                 ? "SKIPPED"
                                 : "FAILED",
                             tr.error.c_str());
            continue;
        }
        if (!opts.showPerTrace)
            continue;
        std::string marks;
        if (tr.wholeExecutionSc)
            marks += "  [SC]";
        if (tr.salvaged)
            marks += "  [salvaged]";
        if (tr.droppedDataRecords > 0)
            marks += strformat(
                "  [dropped records: %llu]",
                static_cast<unsigned long long>(
                    tr.droppedDataRecords));
        out += strformat(
            "  #%3zu %s: %llu event(s), %llu op(s), %llu race(s) "
            "[%llu data], %llu partition(s), %llu first, "
            "%llu reported%s\n",
            idx, tr.path.c_str(),
            static_cast<unsigned long long>(tr.events),
            static_cast<unsigned long long>(tr.ops),
            static_cast<unsigned long long>(tr.races),
            static_cast<unsigned long long>(tr.dataRaces),
            static_cast<unsigned long long>(tr.partitions),
            static_cast<unsigned long long>(tr.firstPartitions),
            static_cast<unsigned long long>(tr.reportedRaces),
            marks.c_str());
    }

    out += "\n";
    out += strformat(
        "totals: %s events, %s ops, %llu race(s) [%llu data], "
        "%llu partition(s), %llu FIRST partition(s), %llu race(s) "
        "reported\n",
        withCommas(t.events).c_str(), withCommas(t.ops).c_str(),
        static_cast<unsigned long long>(t.races),
        static_cast<unsigned long long>(t.dataRaces),
        static_cast<unsigned long long>(t.partitions),
        static_cast<unsigned long long>(t.firstPartitions),
        static_cast<unsigned long long>(t.reportedRaces));
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

namespace {

const char *
boolName(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
batchReportJson(const BatchResult &batch)
{
    const BatchTotals t = computeTotals(batch);
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"wmrace-batch-report\",\n";
    out += "  \"version\": 1,\n";
    out += "  \"corpus\": {\n";
    out += strformat("    \"source\": \"%s\",\n",
                     jsonEscape(batch.corpus.source).c_str());
    out += strformat("    \"from_manifest\": %s,\n",
                     boolName(batch.corpus.fromManifest));
    out += strformat("    \"traces\": %zu\n", batch.traces.size());
    out += "  },\n";
    out += "  \"summary\": {\n";
    out += strformat("    \"analyzed\": %zu,\n", t.analyzed);
    out += strformat("    \"failed\": %zu,\n", t.failed);
    out += strformat("    \"skipped\": %zu,\n", t.skipped);
    out += strformat("    \"salvaged\": %zu,\n", t.salvaged);
    out += strformat(
        "    \"unresolved_pairings\": %llu,\n",
        static_cast<unsigned long long>(t.unresolvedPairings));
    out += strformat(
        "    \"dropped_data_records\": %llu,\n",
        static_cast<unsigned long long>(t.droppedDataRecords));
    out += strformat("    \"traces_with_data_races\": %zu,\n",
                     t.tracesWithDataRaces);
    out += strformat("    \"traces_fully_sc\": %zu,\n",
                     t.tracesFullySc);
    out += strformat("    \"events\": %llu,\n",
                     static_cast<unsigned long long>(t.events));
    out += strformat("    \"ops\": %llu,\n",
                     static_cast<unsigned long long>(t.ops));
    out += strformat("    \"races\": %llu,\n",
                     static_cast<unsigned long long>(t.races));
    out += strformat("    \"data_races\": %llu,\n",
                     static_cast<unsigned long long>(t.dataRaces));
    out += strformat("    \"partitions\": %llu,\n",
                     static_cast<unsigned long long>(t.partitions));
    out += strformat(
        "    \"first_partitions\": %llu,\n",
        static_cast<unsigned long long>(t.firstPartitions));
    out += strformat(
        "    \"reported_races\": %llu\n",
        static_cast<unsigned long long>(t.reportedRaces));
    out += "  },\n";
    out += "  \"traces\": [\n";
    for (std::size_t i = 0; i < batch.traces.size(); ++i) {
        const auto &tr = batch.traces[i];
        out += "    {\n";
        out += strformat("      \"path\": \"%s\",\n",
                         jsonEscape(tr.path).c_str());
        out += strformat("      \"status\": \"%s\"",
                         traceRunStatusName(tr.status));
        if (tr.status != TraceRunStatus::Ok) {
            out += strformat(",\n      \"error\": \"%s\"\n",
                             jsonEscape(tr.error).c_str());
        } else {
            out += ",\n";
            out += strformat(
                "      \"bytes\": %llu,\n",
                static_cast<unsigned long long>(tr.fileBytes));
            out += strformat(
                "      \"events\": %llu,\n",
                static_cast<unsigned long long>(tr.events));
            out += strformat(
                "      \"sync_events\": %llu,\n",
                static_cast<unsigned long long>(tr.syncEvents));
            out += strformat(
                "      \"ops\": %llu,\n",
                static_cast<unsigned long long>(tr.ops));
            out += strformat(
                "      \"races\": %llu,\n",
                static_cast<unsigned long long>(tr.races));
            out += strformat(
                "      \"data_races\": %llu,\n",
                static_cast<unsigned long long>(tr.dataRaces));
            out += strformat(
                "      \"partitions\": %llu,\n",
                static_cast<unsigned long long>(tr.partitions));
            out += strformat(
                "      \"first_partitions\": %llu,\n",
                static_cast<unsigned long long>(
                    tr.firstPartitions));
            out += strformat(
                "      \"reported_races\": %llu,\n",
                static_cast<unsigned long long>(tr.reportedRaces));
            out += strformat("      \"any_data_race\": %s,\n",
                             boolName(tr.anyDataRace));
            if (tr.salvaged || tr.droppedDataRecords > 0) {
                out += strformat("      \"salvaged\": %s,\n",
                                 boolName(tr.salvaged));
                out += strformat(
                    "      \"unresolved_pairings\": %llu,\n",
                    static_cast<unsigned long long>(
                        tr.unresolvedPairings));
                out += strformat(
                    "      \"dropped_data_records\": %llu,\n",
                    static_cast<unsigned long long>(
                        tr.droppedDataRecords));
            }
            out += strformat("      \"whole_execution_sc\": %s\n",
                             boolName(tr.wholeExecutionSc));
        }
        out += i + 1 < batch.traces.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace wmr
