/**
 * @file
 * The batch analysis engine: run the full Section-4 post-mortem
 * method (hb1 graph -> G' -> partitions -> first partitions) over a
 * whole corpus of trace files on a pool of worker threads.
 *
 * Guarantees:
 *  - GRACEFUL DEGRADATION: a corrupt, truncated or unreadable trace
 *    becomes a per-trace failure with its reason; the batch keeps
 *    going (unless --fail-fast was requested).
 *  - DETERMINISM: per-trace results land in corpus order regardless
 *    of worker count or scheduling, so the aggregated report is
 *    byte-identical for --jobs 1 and --jobs N.  (Timing lives in
 *    BatchMetrics, which is nondeterministic by nature and kept out
 *    of the report.)
 *  - RESUMABILITY: with a checkpoint journal (BatchOptions::
 *    checkpointPath) a run killed halfway resumes without
 *    re-analyzing completed traces, and the resumed report is
 *    byte-identical to an uninterrupted run's.
 *
 * The analysis entry point analyzeTrace() is reentrant — it keeps all
 * state inside the DetectionResult being built and touches no global
 * mutable data — so workers need no locking around it; the pipeline's
 * only shared state is the work queue and the result slots (disjoint
 * per trace).
 */

#ifndef WMR_PIPELINE_BATCH_RUNNER_HH
#define WMR_PIPELINE_BATCH_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "detect/analysis.hh"
#include "engines/family.hh"
#include "pipeline/metrics.hh"
#include "pipeline/trace_corpus.hh"

namespace wmr {

/** Outcome class of one corpus trace. */
enum class TraceRunStatus : std::uint8_t {
    Ok,          ///< analyzed successfully
    IoError,     ///< file missing/unreadable
    FormatError, ///< file bytes are not a well-formed trace
    Skipped,     ///< not analyzed (--fail-fast after a failure)
};

/** @return a stable lowercase name for @p status. */
const char *traceRunStatusName(TraceRunStatus status);

/** Per-trace result: either a failure reason or summary counts. */
struct TraceRunResult
{
    std::string path;
    TraceRunStatus status = TraceRunStatus::Ok;

    /** Failure reason (status != Ok). */
    std::string error;

    // --- Summary of the analysis (status == Ok) -----------------
    std::uint64_t fileBytes = 0;
    std::uint64_t events = 0;
    std::uint64_t syncEvents = 0;
    std::uint64_t ops = 0;
    std::uint64_t races = 0;
    std::uint64_t dataRaces = 0;
    std::uint64_t partitions = 0;
    std::uint64_t firstPartitions = 0;
    std::uint64_t reportedRaces = 0;
    bool anyDataRace = false;
    bool wholeExecutionSc = false;

    // --- Provenance (segmented "WMRSEG01" traces only) ----------
    /** The trace was a damaged/truncated segmented file and only
     *  the valid checksummed prefix was analyzed. */
    bool salvaged = false;

    /** Acquire events whose paired release was lost with the
     *  dropped tail (so1 edges missing => races may be missed). */
    std::uint64_t unresolvedPairings = 0;

    /** Data records the recorder's Drop overflow policy lost. */
    std::uint64_t droppedDataRecords = 0;

    bool ok() const { return status == TraceRunStatus::Ok; }
    bool
    failed() const
    {
        return status == TraceRunStatus::IoError ||
               status == TraceRunStatus::FormatError;
    }
};

/** Knobs of one batch run. */
struct BatchOptions
{
    /**
     * Total worker-thread budget; 0 = hardware concurrency.  One
     * worker analyzes each trace; when the corpus has fewer traces
     * than the budget, the leftover becomes intra-trace analysis
     * threads (AnalysisOptions::threads, unless set explicitly).
     */
    unsigned jobs = 0;

    /** Stop dispatching new traces after the first failure. */
    bool failFast = false;

    /**
     * Recover the valid prefix of damaged segmented traces instead
     * of failing them (the per-trace analogue of
     * `wmrace check --salvage`).  A salvage that recovers nothing is
     * still a failure, so poison files land in the quarantine.
     */
    bool salvage = false;

    /**
     * Analyze segmented traces with the bounded-memory streaming
     * engine (src/stream/) instead of materializing them.  Results
     * are identical; per-trace memory is O(window) instead of
     * O(trace), so corpora of huge traces fit.  EVENT-format traces
     * cannot stream and keep the whole-trace path.
     */
    bool stream = false;

    /** Streaming GC window, in segments (see StreamOptions). */
    std::size_t streamWindow = 4;

    /**
     * Append-only resume journal ("" = disabled): completed traces
     * found in it are prefilled, not re-analyzed, and every newly
     * completed trace is journaled as it finishes — so a batch run
     * killed halfway resumes where it stopped.  See checkpoint.hh.
     */
    std::string checkpointPath;

    /** Detector options applied to every trace. */
    AnalysisOptions analysis;

    /**
     * Detector-engine selection (`batch --engine`): empty keeps the
     * canonical hb1 path; otherwise every trace runs the engine
     * family (engines/family.hh) and the per-trace counts come from
     * fillFromEngineFamily().  Chain engines only (hb1/shb/wcp);
     * incompatible with stream (wcp needs whole-trace state).
     */
    std::vector<engines::EngineKind> engineKinds;
};

/** Everything one batch run produced. */
struct BatchResult
{
    /** The corpus that was analyzed (order = report order). */
    CorpusScan corpus;

    /** Per-trace outcomes, in corpus order. */
    std::vector<TraceRunResult> traces;

    /** Timing/shape metrics (nondeterministic; not in the report). */
    BatchMetrics metrics;

    /** @return whether any analyzed trace had a data race. */
    bool anyDataRace() const;

    /** @return number of traces that failed to load/parse. */
    std::size_t numFailed() const;
};

/**
 * Analyze every trace of @p corpus per @p opts.  The corpus must be
 * ok(); pass the result of scanCorpus() or a hand-built file list.
 */
BatchResult runBatch(const CorpusScan &corpus,
                     const BatchOptions &opts = {});

/**
 * Fill @p out's summary counts from a detector-family run — the
 * `--engine` twin of the analyzeTrace() copy.  races/dataRaces come
 * from the weakest chain engine that ran (the superset under the
 * containment chain, so "races" reads as "everything any selected
 * engine predicts"); the partition fields come from hb1 when it ran
 * and stay 0 otherwise; anyDataRace is the family OR.  Shared with
 * the serve subsystem so a served `--engine` meta block equals a
 * local batch's field for field.
 */
void fillFromEngineFamily(const engines::EngineFamilyResult &fam,
                          TraceRunResult &out);

} // namespace wmr

#endif // WMR_PIPELINE_BATCH_RUNNER_HH
