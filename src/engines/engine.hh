/**
 * @file
 * The pluggable detector-engine interface.
 *
 * A DetectorEngine consumes the Section-4.1 event stream — the
 * events of one ExecutionTrace, fed once, in event-id order — and
 * produces an EngineVerdict: the set of event pairs the engine
 * predicts as races plus the subset its reporting policy surfaces.
 * The family (family.hh) runs several engines over ONE pass of the
 * stream and cross-checks their verdicts:
 *
 *   hb1   the paper's post-mortem method (Def. 2.2 happens-before,
 *         Sec. 4.2 first-partition reporting), wrapped behind the
 *         interface; its verdict is the canonical baseline.
 *   shb   single-pass vector-clock detection over the same hb1
 *         order, keeping per-variable last-write clocks; sound
 *         BEYOND the first race (reports every hb1-unordered
 *         conflicting pair, with per-variable first-race
 *         attribution), unlike hb1's first-partition policy.
 *   wcp   weak-causal precedence adapted to the event model: a
 *         paired release→acquire edge is honored only when the two
 *         adjacent critical regions conflict on data, so the order
 *         is weaker than hb1 and the engine *predicts* races other
 *         feasible interleavings exhibit.
 *   vc/epoch/lockset
 *         the on-the-fly op-level detectors (src/onthefly) driven
 *         from the event stream through an operation-synthesizing
 *         adapter; approximations outside the containment chain.
 *
 * The construction guarantees reported(hb1) ⊆ races(shb) ⊆
 * races(wcp): shb enumerates the full hb1-unordered set (a superset
 * of the first partitions) and wcp's edge set is a subset of hb1's,
 * so its clocks order no pair hb1 leaves unordered.  The
 * differential harness (tests/test_detector_diff.cc) and the
 * brute-force oracles (tests/test_race_oracle.cc) verify the
 * implementations against that containment chain.  See
 * docs/DETECTORS.md.
 */

#ifndef WMR_ENGINES_ENGINE_HH
#define WMR_ENGINES_ENGINE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "trace/event.hh"

namespace wmr::engines {

/** The selectable engines. */
enum class EngineKind : std::uint8_t {
    Hb1,
    Shb,
    Wcp,
    Vc,      ///< on-the-fly vector-clock detector (op-level)
    Epoch,   ///< on-the-fly epoch detector (op-level)
    Lockset, ///< on-the-fly lockset detector (op-level)
};

/** @return the stable lowercase name of @p kind. */
const char *engineName(EngineKind kind);

/**
 * Parse an `--engine` argument: one engine name, or "all" for the
 * containment family {hb1, shb, wcp}.  @return std::nullopt on an
 * unknown name (callers turn that into a typed error, never a
 * crash).
 */
std::optional<std::vector<EngineKind>>
parseEngineSelection(std::string_view name);

/** @return the names parseEngineSelection accepts, for messages. */
const char *engineSelectionHelp();

struct EngineRace;

/**
 * Per-variable first-race attribution over a CANONICAL race list
 * (sorted by (a, b)): for each address, the race containing it whose
 * later endpoint comes earliest in the execution (minimal (b, a)) —
 * the chronologically first completed race on that variable.  Output
 * is (addr, race index), ascending by addr.  Shared by ShbEngine and
 * the `check --stream --engine shb` path so both derive identical
 * attribution from the same race set.
 */
std::vector<std::pair<Addr, std::uint32_t>>
firstRacePerVariable(const std::vector<EngineRace> &races);

/** One race prediction: an event pair and its conflict addresses
 *  (same canonical form as detect/race.hh: a < b, addrs sorted and
 *  deduplicated). */
struct EngineRace
{
    EventId a = kNoEvent;
    EventId b = kNoEvent;
    std::vector<Addr> addrs;
    bool isDataRace = true;
};

/** Shape facts of the stream an engine is about to consume. */
struct EngineTraceInfo
{
    ProcId procs = 0;
    Addr memWords = 0;
    std::size_t numEvents = 0;
    std::uint32_t numSyncEvents = 0;
    std::uint64_t totalOps = 0;
    OpId firstStaleRead = kNoOp;
};

/** Everything one engine concluded about the stream. */
struct EngineVerdict
{
    std::string engine;

    /** One-line semantics note (printed in the verdict block). */
    std::string semantics;

    /** All races the engine predicts, canonical order (a, b). */
    std::vector<EngineRace> races;

    std::size_t numDataRaces = 0;
    bool anyDataRace = false;

    /** Indices into races the engine's policy reports (hb1: the
     *  first-partition subset; shb/wcp: everything). */
    std::vector<std::uint32_t> reported;

    // hb1 extras (partition structure of the canonical method).
    bool hasPartitions = false;
    std::size_t partitions = 0;
    std::size_t firstPartitions = 0;

    // shb extras: per-variable first race, (addr, race index),
    // ascending by addr.
    std::vector<std::pair<Addr, std::uint32_t>> firstRacePerVar;

    // Op-level adapter engines: no event pairs, just counts.
    bool opLevel = false;
    std::uint64_t opRacesReported = 0;
    std::uint64_t opRacesDistinct = 0;
};

/**
 * One engine.  Lifecycle: begin() once, feed() each event in
 * event-id order exactly once, finish() once.
 */
class DetectorEngine
{
  public:
    virtual ~DetectorEngine() = default;

    virtual const char *name() const = 0;

    virtual void begin(const EngineTraceInfo &info) { (void)info; }

    /** Consume one event of the stream. */
    virtual void feed(const Event &ev) = 0;

    /** Close the stream and produce the verdict. */
    virtual EngineVerdict finish() = 0;
};

} // namespace wmr::engines

#endif // WMR_ENGINES_ENGINE_HH
