# Empty dependencies file for test_prog.
# This may be replaced when dependencies are built.
