file(REMOVE_RECURSE
  "CMakeFiles/test_onthefly.dir/test_onthefly.cc.o"
  "CMakeFiles/test_onthefly.dir/test_onthefly.cc.o.d"
  "test_onthefly"
  "test_onthefly.pdb"
  "test_onthefly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onthefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
