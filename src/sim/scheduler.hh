/**
 * @file
 * Schedulers deciding which processor steps next.
 *
 * Data-race outcomes depend on the interleaving, so the executor
 * delegates the choice to a pluggable, seeded scheduler.  Three
 * strategies cover the needs of tests and benches:
 *
 *  - Random:      uniformly random among runnable processors; fair in
 *                 expectation, the default for property sweeps.
 *  - RoundRobin:  fixed quantum per processor; deterministic baseline.
 *  - Scripted:    replays an explicit processor sequence, falling back
 *                 to round-robin when the script runs out — used to
 *                 reproduce the exact interleavings of the paper's
 *                 figures.
 */

#ifndef WMR_SIM_SCHEDULER_HH
#define WMR_SIM_SCHEDULER_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace wmr {

/** Picks the next processor to execute one instruction. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Choose one of @p runnable (non-empty, ascending proc ids).
     * @param rng the executor's RNG, shared for reproducibility.
     */
    virtual ProcId pick(const std::vector<ProcId> &runnable,
                        Rng &rng) = 0;
};

/** Uniformly random fair scheduler. */
class RandomScheduler : public Scheduler
{
  public:
    ProcId pick(const std::vector<ProcId> &runnable, Rng &rng) override;
};

/** Round-robin with a fixed instruction quantum. */
class RoundRobinScheduler : public Scheduler
{
  public:
    explicit RoundRobinScheduler(std::uint32_t quantum = 1);
    ProcId pick(const std::vector<ProcId> &runnable, Rng &rng) override;

  private:
    std::uint32_t quantum_;
    std::uint32_t used_ = 0;
    ProcId current_ = 0;
    bool active_ = false;
};

/** Replays an explicit processor id sequence. */
class ScriptedScheduler : public Scheduler
{
  public:
    explicit ScriptedScheduler(std::vector<ProcId> script);
    ProcId pick(const std::vector<ProcId> &runnable, Rng &rng) override;

    /** @return how many script entries have been consumed. */
    std::size_t consumed() const { return pos_; }

  private:
    std::vector<ProcId> script_;
    std::size_t pos_ = 0;
    RoundRobinScheduler fallback_;
};

} // namespace wmr

#endif // WMR_SIM_SCHEDULER_HH
