/**
 * @file
 * Tests of the ASCII timeline renderer.
 */

#include <gtest/gtest.h>

#include "trace/timeline.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(Timeline, RendersColumnsPerProcessor)
{
    const auto s = stageFigure1aViolation();
    const auto trace = buildTrace(s.result, {.keepMemberOps = true});
    const auto text = renderTimeline(trace, &s.program, &s.result);
    EXPECT_NE(text.find("P1"), std::string::npos);
    EXPECT_NE(text.find("P2"), std::string::npos);
    EXPECT_NE(text.find("write(x,1)"), std::string::npos);
    // P2's stale read of x is starred.
    EXPECT_NE(text.find("read(x,0)*"), std::string::npos);
}

TEST(Timeline, MarksPrefixBoundaryOnStaleExecutions)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto trace = buildTrace(s.result, {.keepMemberOps = true});
    const auto text = renderTimeline(trace, &s.program, &s.result);
    EXPECT_NE(text.find("end of value-exact prefix"),
              std::string::npos);
    EXPECT_NE(text.find("Rel(S,0)"), std::string::npos);
}

TEST(Timeline, NoBoundaryOnCleanExecutions)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 2;
    const auto res = runProgram(figure1b(), opts);
    const auto trace = buildTrace(res, {.keepMemberOps = true});
    const auto text = renderTimeline(trace, nullptr, &res);
    EXPECT_EQ(text.find("end of value-exact prefix"),
              std::string::npos);
    EXPECT_NE(text.find("Acq"), std::string::npos);
}

TEST(Timeline, EventSummaryModeWithoutOps)
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    const auto trace = buildTrace(s.result);
    const auto text = renderTimeline(trace, &s.program);
    EXPECT_NE(text.find("comp("), std::string::npos);
}

TEST(Timeline, CapsOpsPerEvent)
{
    const auto s = stageFigure2bExecution({.regionSize = 12,
                                           .staleOffset = 4});
    const auto trace = buildTrace(s.result, {.keepMemberOps = true});
    TimelineOptions opts;
    opts.opsPerEvent = 2;
    const auto text =
        renderTimeline(trace, &s.program, &s.result, opts);
    EXPECT_NE(text.find("more ops"), std::string::npos);
}

} // namespace
} // namespace wmr
