/**
 * @file
 * CRC-32 (the IEEE 802.3 / zlib polynomial, reflected form) used by
 * the segmented trace container (src/trace/segmented_io.hh) to
 * checksum each spilled segment.
 *
 * The incremental API exists so a frame's checksum can be computed
 * over several buffers without concatenating them — the spill writer
 * checksums its fixed header and its growing payload separately, and
 * the crash-flush path (a fatal-signal handler) needs a computation
 * that allocates nothing: the lookup table is built at compile time.
 */

#ifndef WMR_COMMON_CRC32_HH
#define WMR_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace wmr {

/** @return the initial running value for crc32Update(). */
inline constexpr std::uint32_t
crc32Init()
{
    return 0xffffffffu;
}

/** Fold @p n bytes at @p data into running value @p crc. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t n);

/** @return the finished checksum of running value @p crc. */
inline constexpr std::uint32_t
crc32Final(std::uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

/** One-shot convenience: checksum of @p n bytes at @p data. */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    return crc32Final(crc32Update(crc32Init(), data, n));
}

} // namespace wmr

#endif // WMR_COMMON_CRC32_HH
