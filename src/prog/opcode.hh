/**
 * @file
 * Opcodes of the wmrace register-machine program IR.
 *
 * The IR is deliberately tiny but expressive enough for every program
 * shape in the paper: plain data loads/stores (with register-indexed
 * addressing, needed for Figure 2's "work on region addr..addr+100"),
 * the Test&Set / Unset instructions the paper uses for critical
 * sections, explicit acquire/release operations for RCsc-style
 * programs, fences, and enough arithmetic and control flow to write
 * spin loops and data-dependent address computation.
 *
 * The sync/data distinction follows Section 2.1: an operation is a
 * synchronization operation iff the hardware recognizes it as such,
 * i.e. iff it was issued by one of the sync opcodes below.
 */

#ifndef WMR_PROG_OPCODE_HH
#define WMR_PROG_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace wmr {

/** Instruction opcodes. */
enum class Opcode : std::uint8_t {
    Nop,

    // Register arithmetic: dst = f(a, b) or f(a, imm).
    MovI,       ///< dst = imm
    Mov,        ///< dst = r[a]
    Add,        ///< dst = r[a] + r[b]
    AddI,       ///< dst = r[a] + imm
    Sub,        ///< dst = r[a] - r[b]
    Mul,        ///< dst = r[a] * r[b]
    CmpEq,      ///< dst = (r[a] == r[b])
    CmpNe,      ///< dst = (r[a] != r[b])
    CmpLt,      ///< dst = (r[a] < r[b])
    CmpEqI,     ///< dst = (r[a] == imm)
    CmpLtI,     ///< dst = (r[a] < imm)

    // Data memory operations (address = addr + r[a] when indexed).
    Load,       ///< dst = mem[ea]          (data read)
    Store,      ///< mem[ea] = r[b]         (data write)
    StoreI,     ///< mem[ea] = imm          (data write)

    // Synchronization memory operations.
    TestAndSet, ///< dst = mem[ea]; mem[ea] = 1  (acquire read + sync
                ///<                              write; write is NOT a
                ///<                              release, per Sec. 2.1)
    Unset,      ///< mem[ea] = 0            (release write)
    SyncLoad,   ///< dst = mem[ea]          (acquire read)
    SyncStore,  ///< mem[ea] = r[b]         (release write)
    SyncStoreI, ///< mem[ea] = imm          (release write)

    Fence,      ///< full fence (mfence): drain and stall
    FenceSS,    ///< store-store fence (sfence): order stores across
                ///< it without stalling; no-op on SC/TSO

    // Control flow.
    Branch,     ///< if (r[a] != 0) goto target
    BranchZ,    ///< if (r[a] == 0) goto target
    Jump,       ///< goto target
    Halt,       ///< stop this thread
};

/** @return the mnemonic for @p op. */
std::string_view opcodeName(Opcode op);

/** @return whether @p op reads or writes simulated shared memory. */
constexpr bool
opcodeAccessesMemory(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::StoreI:
      case Opcode::TestAndSet:
      case Opcode::Unset:
      case Opcode::SyncLoad:
      case Opcode::SyncStore:
      case Opcode::SyncStoreI:
        return true;
      default:
        return false;
    }
}

/** @return whether @p op is hardware-recognized synchronization. */
constexpr bool
opcodeIsSync(Opcode op)
{
    switch (op) {
      case Opcode::TestAndSet:
      case Opcode::Unset:
      case Opcode::SyncLoad:
      case Opcode::SyncStore:
      case Opcode::SyncStoreI:
        return true;
      default:
        return false;
    }
}

/** @return whether @p op is a control transfer. */
constexpr bool
opcodeIsBranch(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::BranchZ ||
           op == Opcode::Jump;
}

} // namespace wmr

#endif // WMR_PROG_OPCODE_HH
