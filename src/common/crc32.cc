#include "common/crc32.hh"

#include <array>

namespace wmr {

namespace {

/** The reflected IEEE 802.3 polynomial. */
constexpr std::uint32_t kPoly = 0xedb88320u;

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i)
        crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc;
}

} // namespace wmr
