/**
 * @file
 * A fixed-size pool of worker threads, plus the data-parallel loop
 * helpers the analysis engine is built on.
 *
 * WorkerPool is a thin RAII wrapper over std::thread: construction
 * spawns N workers running the same body (which typically loops
 * popping a WorkQueue or processing a static partition), join() waits
 * for all of them.  The body receives its worker index for per-worker
 * scratch state; everything shared must be owned by the caller and
 * synchronized there.
 *
 * parallelFor() statically partitions an index range across a pool —
 * the caller's body must write only its own disjoint slice (or only
 * thread-local state), which is what makes the parallel analysis
 * passes deterministic: every value computed is a pure function of
 * the input range, never of thread scheduling.
 */

#ifndef WMR_COMMON_WORKER_POOL_HH
#define WMR_COMMON_WORKER_POOL_HH

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace wmr {

class WorkerPool
{
  public:
    /** Spawn @p workers threads, each running body(workerIndex). */
    WorkerPool(unsigned workers,
               const std::function<void(unsigned)> &body)
    {
        threads_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads_.emplace_back(body, w);
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Wait for every worker to finish (idempotent). */
    void
    join()
    {
        for (auto &t : threads_) {
            if (t.joinable())
                t.join();
        }
    }

    ~WorkerPool() { join(); }

  private:
    std::vector<std::thread> threads_;
};

/** @return @p threads with 0 resolved to hardware concurrency. */
inline unsigned
resolveThreads(unsigned threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * The static block partition of [0, n): worker @p w of @p workers
 * owns [first, last).  Blocks differ in size by at most one element
 * and depend only on (n, workers, w) — never on scheduling.
 */
inline std::pair<std::size_t, std::size_t>
workerSlice(std::size_t n, unsigned workers, unsigned w)
{
    const std::size_t base = n / workers;
    const std::size_t extra = n % workers;
    const std::size_t first =
        w * base + (w < extra ? w : extra);
    const std::size_t last = first + base + (w < extra ? 1 : 0);
    return {first, last};
}

/**
 * Run body(i) for every i in [0, n) on up to @p threads workers,
 * each owning one contiguous statically-assigned block.  With
 * threads <= 1 (or a trivial range) the loop runs inline on the
 * caller's thread — same iteration order, no spawn cost.
 */
template <typename Body>
void
parallelFor(unsigned threads, std::size_t n, Body &&body)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    const unsigned workers = static_cast<unsigned>(
        n < threads ? n : threads);
    WorkerPool pool(workers, [&](unsigned w) {
        const auto [first, last] = workerSlice(n, workers, w);
        for (std::size_t i = first; i < last; ++i)
            body(i);
    });
    pool.join();
}

} // namespace wmr

#endif // WMR_COMMON_WORKER_POOL_HH
