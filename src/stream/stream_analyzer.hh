/**
 * @file
 * Streaming bounded-memory Section-4 analysis for unbounded traces.
 *
 * The whole-trace pipeline (detect/analysis.hh) materializes every
 * event and the full hb1 graph before the first race is reported, so
 * memory grows linearly with trace length.  StreamAnalyzer consumes
 * WMRSEG01 segments as they are sealed — from a finished file or a
 * live recording — and keeps only a *window* of events resident:
 *
 *  - Vector clocks per processor maintain hb1 incrementally: po
 *    advances a processor's own component, and a sync event with a
 *    release→acquire pairing joins the paired release's clock
 *    snapshot (the so1 edge of Def. 2.2).  Because every hb1 edge
 *    points forward in file order, a new event can never precede an
 *    already-seen one, so the race test is one-directional: history
 *    entry (p, i) races a new event e iff C_e[p] < i.
 *
 *  - A watermark GC retires fully-hb1-ordered prefixes: W[p] = the
 *    minimum of every live processor's clock component for p.  Once
 *    an event's epoch falls at or under the watermark, every future
 *    event is provably ordered after it — it can never race again
 *    and leaves the per-address history; its clock snapshot and word
 *    sets are freed.  Resident state is O(window), not O(trace).
 *
 *  - Event ids (the stable_sort-by-firstOp numbering of the
 *    whole-trace reader) are assigned by a frontier min-heap keyed
 *    (firstOp, file ordinal): an event's rank is final as soon as no
 *    processor can still produce a smaller key.
 *
 *  - Racy events are pinned (report-scale, not trace-scale).  At end
 *    of stream a *summary graph* over just the racy events — hb1
 *    edges answered by the retained clock snapshots, race edges in
 *    both directions — has exactly the SCCs and reachability of G'
 *    restricted to racy nodes, which is all partitioning (Sec. 4.2)
 *    ever looks at.  Partition labels, first flags, SCP
 *    classification and the rendered report are byte-identical to
 *    analyzeTrace() + formatReport() on the same file; the
 *    differential suite (tests/test_stream.cc) proves it across the
 *    golden corpus and large synthetics.
 *
 * See docs/STREAMING.md for the invariants and their proofs.
 */

#ifndef WMR_STREAM_STREAM_ANALYZER_HH
#define WMR_STREAM_STREAM_ANALYZER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/report_model.hh"
#include "hb/vector_clock.hh"
#include "trace/segmented_io.hh"

namespace wmr {

/** Periodic progress snapshot (one per closed window). */
struct StreamProgress
{
    std::uint64_t segments = 0;
    std::uint64_t events = 0;
    std::uint64_t racesSoFar = 0;
    std::uint64_t eventsResident = 0;

    /** Max epochs any processor is ahead of the watermark. */
    std::uint64_t watermarkLag = 0;
    std::uint64_t windowsRetired = 0;
};

/** Options of a streaming analysis. */
struct StreamOptions
{
    /**
     * Strict wire semantics: fail (with the same messages the strict
     * whole-trace reader raises) on damage, missing FIN, shape
     * violations or unresolvable pairings.  Off = tolerant/salvage
     * semantics: recover what verified and account for the rest.
     */
    bool strict = true;

    /** Must match RaceFinderOptions::includeSyncSyncRaces. */
    bool includeSyncSyncRaces = false;

    /** Run the watermark GC every N ingested segments. */
    std::size_t windowSegments = 4;

    /** Invoked after every closed window (progress reporting). */
    std::function<void(const StreamProgress &)> onWindow;
};

/** Everything a finished streaming analysis produced. */
struct StreamResult
{
    bool ok = false;
    std::string error;

    /** Render with renderReport() — byte-identical to formatReport()
     *  of the whole-trace analysis of the same file. */
    ReportModel report;

    /** Scan + rebuild accounting, identical fields to the salvage
     *  reader's (formatTraceProvenance() renders the same bytes). */
    SalvageInfo salvage;

    /**
     * Whether the streaming result is guaranteed equal to the
     * whole-trace result.  False only on inputs no wmrace writer
     * produces (forward pairing ordinals, processors born after
     * unrelated state retired, out-of-order op ranges); the
     * stream.unsafe_proc_birth / stream.order_violations counters
     * say why.
     */
    bool exact = true;

    // Aggregate counts (what batch reporting consumes).
    std::uint64_t events = 0;
    std::uint64_t syncEvents = 0;
    std::uint64_t ops = 0;
    std::uint64_t races = 0;
    std::uint64_t dataRaces = 0;
    std::uint64_t partitions = 0;
    std::uint64_t firstPartitions = 0;
    std::uint64_t reportedRaces = 0;
    bool anyDataRace = false;
    bool wholeExecutionSc = false;

    // Stream-side metrics.
    std::uint64_t segments = 0;
    std::uint64_t peakResident = 0;
    std::uint64_t windowsRetired = 0;
};

/**
 * The incremental engine.  Feed decoded segments in file order via
 * addSegment() (e.g. from a SegmentTailReader), then finish() once
 * with the scan outcome.
 */
class StreamAnalyzer
{
  public:
    explicit StreamAnalyzer(StreamOptions opts = {});
    ~StreamAnalyzer();

    StreamAnalyzer(const StreamAnalyzer &) = delete;
    StreamAnalyzer &operator=(const StreamAnalyzer &) = delete;

    /**
     * Ingest one decoded DATA segment.  @return false when the
     * stream just failed under strict semantics (error() explains;
     * further calls are no-ops).
     */
    bool addSegment(const SegTailSegment &seg);

    /**
     * Close the stream and compute the final result.  @p finSeen /
     * @p fin carry the FIN outcome, @p scanSalvage the frame-scan
     * accounting (both straight from SegmentTailReader after
     * finalize()).
     */
    StreamResult finish(bool finSeen, const SegShape &fin,
                        const SalvageInfo &scanSalvage);

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    /**
     * Flip strictness mid-stream.  A live recording (`record
     * --live`) cannot know until the child exits whether the trace
     * deserves the strict reader (clean exit) or salvage tolerance
     * (abnormal exit); strict violations are remembered either way
     * and judged at finish().
     */
    void setStrict(bool strict) { opts_.strict = strict; }

    /** Events currently resident (live window + pinned racy). */
    std::uint64_t eventsResident() const { return live_.size(); }

    std::uint64_t racesSoFar() const { return races_.size(); }

  private:
    struct LiveEvent
    {
        std::uint64_t ordinal = 0;
        EventId finalId = kNoEvent;
        ProcId proc = 0;
        std::uint32_t epoch = 0; // 1-based index in its processor
        EventKind kind = EventKind::Computation;
        OpId firstOp = kNoOp;
        OpId lastOp = kNoOp;
        std::uint32_t opCount = 0;
        MemOp syncOp;

        /** First four words of each set (all a report line shows). */
        std::vector<Addr> reads4;
        std::vector<Addr> writes4;

        /** Addresses this event occupies in hist_, so retirement
         *  prunes exactly those lists instead of sweeping the whole
         *  map (freed at retirement). */
        std::vector<Addr> histAddrs;

        VectorClock clock;
        bool racy = false;
        bool popped = false;  // finalId assigned
        bool retired = false; // left the race history
    };

    struct ProcState
    {
        VectorClock clock;
        std::uint32_t epochs = 0;
        OpId maxLastOp = 0;
        std::uint64_t retiredEpochs = 0; // retire fence

        /** Unretired events, epoch order. */
        std::deque<LiveEvent *> window;
    };

    struct AddrHistory
    {
        std::vector<LiveEvent *> writers;
        std::vector<LiveEvent *> readers;
    };

    /** One discovered race, by file ordinals (ids come later). */
    struct StreamRace
    {
        std::uint64_t ordA = 0; // the earlier (history) event
        std::uint64_t ordB = 0;
        std::vector<Addr> addrs;
        bool isData = true;
    };

    void ingest(const SegFileEvent &fe);
    void popIdFrontier(bool flushAll);
    void gcWindow(bool final);
    void updateGauges();
    bool streamFail(const std::string &message);

    ProcState &procAt(ProcId p);

    StreamOptions opts_;
    bool failed_ = false;
    bool finished_ = false;
    std::string error_;

    /** First strict pairing violation, deferred to finish() so the
     *  error precedence (scan < shape < pairing) matches the
     *  whole-trace reader. */
    std::string pairingError_;
    bool exact_ = true;

    std::uint64_t nextOrdinal_ = 0;
    std::uint64_t segments_ = 0;
    std::uint64_t eventsTotal_ = 0;
    std::uint64_t syncEvents_ = 0;
    std::uint64_t opsSeen_ = 0;
    std::uint64_t droppedSoFar_ = 0;
    ProcId needProcs_ = 0; // max proc+1 over events
    Addr needWords_ = 0;   // max word+1 over events
    std::uint64_t unresolvedPairings_ = 0;
    std::uint64_t windowsRetired_ = 0;
    std::uint64_t peakResident_ = 0;
    std::uint64_t watermarkLag_ = 0;
    OpId maxPoppedFirstOp_ = 0;

    /** kind-by-file-ordinal (1 bit/event): pairing targets must be
     *  sync events even after the target retired.  The only
     *  trace-length structure the engine keeps — ~0.1% of the file
     *  size, vs. the whole-trace reader's full event materialization. */
    std::vector<bool> syncByOrdinal_;

    std::unordered_map<std::uint64_t, std::unique_ptr<LiveEvent>>
        live_;
    std::vector<ProcState> procs_;
    std::unordered_map<Addr, AddrHistory> hist_;

    /** Id frontier: min-heap of (firstOp, ordinal). */
    std::priority_queue<std::pair<OpId, std::uint64_t>,
                        std::vector<std::pair<OpId, std::uint64_t>>,
                        std::greater<>>
        idHeap_;
    EventId nextId_ = 0;

    std::vector<StreamRace> races_;
};

/**
 * Stream-analyze @p path, polling for appended data while
 * @p producerAlive returns true (pass nullptr for a file that is
 * complete on disk).  StreamOptions::strict selects between the
 * strict reader's semantics and `--salvage`-style tolerance.
 */
StreamResult
streamAnalyzeFollow(const std::string &path, const StreamOptions &opts,
                    const std::function<bool()> &producerAlive,
                    unsigned pollMs = 20);

/** Stream-analyze a file that is complete on disk. */
StreamResult streamAnalyzeFile(const std::string &path,
                               const StreamOptions &opts);

} // namespace wmr

#endif // WMR_STREAM_STREAM_ANALYZER_HH
