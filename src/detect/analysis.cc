#include "detect/analysis.hh"

#include <chrono>
#include <sstream>

#include "common/worker_pool.hh"

namespace wmr {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

} // namespace

DetectionResult::DetectionResult(ExecutionTrace trace,
                                 const AnalysisOptions &opts,
                                 const std::vector<MemOp> *ops)
    : trace_(std::move(trace))
{
    const unsigned threads = resolveThreads(opts.threads);
    stats_.threads = threads;
    stats_.events = trace_.events().size();
    const auto totalStart = Clock::now();

    auto stageStart = Clock::now();
    hb_ = std::make_unique<HbGraph>(trace_);
    stats_.graphBuildSeconds = secondsSince(stageStart);

    stageStart = Clock::now();
    reach_ = std::make_unique<ReachabilityIndex>(*hb_, trace_, threads);
    stats_.reachabilitySeconds = secondsSince(stageStart);
    stats_.hbReach = reach_->buildStats();
    stats_.hbComponents = reach_->scc().numComponents;

    stageStart = Clock::now();
    races_ =
        findRaces(trace_, *reach_, opts.finder, threads, &stats_.finder);
    stats_.raceFindSeconds = secondsSince(stageStart);

    stageStart = Clock::now();
    aug_ = std::make_unique<AugmentedGraph>(*hb_, races_, trace_,
                                            threads);
    stats_.augmentSeconds = secondsSince(stageStart);
    stats_.augReach = aug_->reach().buildStats();
    stats_.augComponents = aug_->reach().scc().numComponents;

    stageStart = Clock::now();
    parts_ = partitionRaces(races_, *aug_);
    stats_.partitionSeconds = secondsSince(stageStart);

    stageStart = Clock::now();
    scp_ = analyzeScp(trace_, races_, ops);
    stats_.scpSeconds = secondsSince(stageStart);

    stats_.totalSeconds = secondsSince(totalStart);
}

bool
DetectionResult::anyDataRace() const
{
    return numDataRaces() > 0;
}

std::size_t
DetectionResult::numDataRaces() const
{
    std::size_t n = 0;
    for (const auto &r : races_) {
        if (r.isDataRace)
            ++n;
    }
    return n;
}

DetectionResult
analyzeTrace(ExecutionTrace trace, const AnalysisOptions &opts)
{
    return DetectionResult(std::move(trace), opts, nullptr);
}

DetectionResult
analyzeExecution(const ExecutionResult &res, const AnalysisOptions &opts)
{
    ExecutionTrace trace = buildTrace(res, opts.traceOpts);
    return DetectionResult(std::move(trace), opts, &res.ops);
}

std::string
formatAnalysisStats(const AnalysisStats &s)
{
    std::ostringstream os;
    os << "analysis stats (" << s.threads
       << (s.threads == 1 ? " thread)\n" : " threads)\n");
    os << "  events             " << s.events << "\n";
    os << "  hb1 components     " << s.hbComponents << "\n";
    os << "  G' components      " << s.augComponents << "\n";
    os << std::fixed;
    os.precision(6);
    const auto stage = [&os](const char *name, double seconds) {
        os << "  " << name << seconds << " s\n";
    };
    stage("graph build        ", s.graphBuildSeconds);
    stage("reachability       ", s.reachabilitySeconds);
    os << "    scc              " << s.hbReach.sccSeconds << " s, clocks "
       << s.hbReach.clockSeconds << " s ("
       << (s.hbReach.parallelClocks ? "parallel, " : "serial, ")
       << s.hbReach.levels << " levels)\n";
    stage("race finding       ", s.raceFindSeconds);
    os << "    shards " << s.finder.shards << ", addrs "
       << s.finder.indexedAddrs << ", candidates "
       << s.finder.candidatePairs << ", memo hits "
       << s.finder.memoHits << ", oracle queries "
       << s.finder.reachQueries << ", ordered "
       << s.finder.orderedPairs << "\n";
    stage("augment (G')       ", s.augmentSeconds);
    os << "    scc              " << s.augReach.sccSeconds << " s, clocks "
       << s.augReach.clockSeconds << " s ("
       << (s.augReach.parallelClocks ? "parallel, " : "serial, ")
       << s.augReach.levels << " levels)\n";
    stage("partitioning       ", s.partitionSeconds);
    stage("scp classification ", s.scpSeconds);
    stage("total              ", s.totalSeconds);
    return os.str();
}

} // namespace wmr
