# Empty dependencies file for bench_fig3_partitions.
# This may be replaced when dependencies are built.
