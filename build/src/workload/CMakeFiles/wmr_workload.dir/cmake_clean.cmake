file(REMOVE_RECURSE
  "CMakeFiles/wmr_workload.dir/patterns.cc.o"
  "CMakeFiles/wmr_workload.dir/patterns.cc.o.d"
  "CMakeFiles/wmr_workload.dir/random_gen.cc.o"
  "CMakeFiles/wmr_workload.dir/random_gen.cc.o.d"
  "CMakeFiles/wmr_workload.dir/scenarios.cc.o"
  "CMakeFiles/wmr_workload.dir/scenarios.cc.o.d"
  "libwmr_workload.a"
  "libwmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
