# Empty dependencies file for bench_fig2_queue.
# This may be replaced when dependencies are built.
