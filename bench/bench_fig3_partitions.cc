/**
 * @file
 * Reproduction of Figure 3: the augmented happens-before-1 graph G',
 * its strongly connected components, the partition partial order P,
 * and the first / non-first split.
 *
 * Beyond the figure's own execution (delegated to bench_fig2_queue),
 * this bench characterizes the partition machinery on synthetic race
 * topologies where ground truth is known by construction:
 *  - CHAIN(d): race_1 affects race_2 affects ... affects race_d
 *    -> d partitions, exactly 1 first;
 *  - RING(k): k races that mutually affect one another
 *    -> 1 partition holding all k races, first.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "prog/builder.hh"
#include "sim/executor.hh"
#include "workload/scenarios.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/** d chained races: the relay pattern. */
Program
chainProgram(std::uint32_t d)
{
    // Addresses: a_i at i; dummy sync words after them.
    const Addr dummyBase = d + 2;
    ProgramBuilder pb;
    ThreadBuilder p0;
    p0.storei(0, 1).halt();
    pb.thread(p0);
    for (std::uint32_t i = 1; i <= d; ++i) {
        ThreadBuilder t;
        t.load(1, i - 1)                  // read a_{i-1}: race i
         .unset(dummyBase + i)            // split events, no pairing
         .storei(i, 1)                    // write a_i
         .halt();
        pb.init(dummyBase + i, 1);
        pb.thread(t);
    }
    ThreadBuilder last;
    last.load(1, d).halt();               // read a_d: race d+1... no:
    // the final read creates race d+1; keep d races by only reading
    // when d >= 1 (the write of a_d is raced by this read).
    pb.thread(last);
    return pb.build();
}

/** k mutually affecting races: the ring pattern. */
Program
ringProgram(std::uint32_t k)
{
    const Addr dummyBase = k + 1;
    ProgramBuilder pb;
    for (std::uint32_t i = 0; i < k; ++i) {
        ThreadBuilder t;
        t.storei(i, 1)                    // write a_i
         .unset(dummyBase + i)
         .load(1, (i + 1) % k)            // read a_{i+1}
         .halt();
        pb.init(dummyBase + i, 1);
        pb.thread(t);
    }
    return pb.build();
}

DetectionResult
analyzeOf(const Program &p)
{
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.seed = 1;
    return analyzeExecution(runProgram(p, opts));
}

void
reproduce()
{
    section("Figure 3 on the staged Figure 2(b) execution");
    {
        const auto s = stageFigure2bExecution();
        const auto det = analyzeExecution(s.result);
        const auto &scc = det.augmented().reach().scc();
        std::printf("  G' nodes: %zu, SCCs: %u, partitions: %zu, "
                    "first: %zu\n",
                    det.trace().events().size(), scc.numComponents,
                    det.partitions().partitions.size(),
                    det.partitions().firstPartitions.size());
        for (const auto &part : det.partitions().partitions) {
            std::printf("  partition(component %u): %zu race(s), "
                        "%s\n",
                        part.component, part.races.size(),
                        part.first ? "FIRST -> report"
                                   : "non-first -> suppress");
        }
    }

    section("CHAIN(d): affected races are ordered after their cause");
    std::printf("  %-6s %8s %12s %12s %10s\n", "d", "races",
                "partitions", "first", "OK?");
    for (const std::uint32_t d : {1u, 2u, 4u, 8u, 16u}) {
        const auto det = analyzeOf(chainProgram(d));
        const std::size_t expect = d + 1; // d relay races + final read
        const bool ok =
            det.races().size() == expect &&
            det.partitions().partitions.size() == expect &&
            det.partitions().firstPartitions.size() == 1;
        std::printf("  %-6u %8zu %12zu %12zu %10s\n", d,
                    det.races().size(),
                    det.partitions().partitions.size(),
                    det.partitions().firstPartitions.size(),
                    ok ? "yes" : "UNEXPECTED");
    }
    note("exactly one first partition regardless of chain depth: "
         "the root cause.");

    section("RING(k): mutually affecting races share one partition");
    std::printf("  %-6s %8s %12s %12s %10s\n", "k", "races",
                "partitions", "first", "OK?");
    for (const std::uint32_t k : {2u, 3u, 5u, 9u, 17u}) {
        const auto det = analyzeOf(ringProgram(k));
        const bool ok = det.races().size() == k &&
                        det.partitions().partitions.size() == 1 &&
                        det.partitions().firstPartitions.size() == 1;
        std::printf("  %-6u %8zu %12zu %12zu %10s\n", k,
                    det.races().size(),
                    det.partitions().partitions.size(),
                    det.partitions().firstPartitions.size(),
                    ok ? "yes" : "UNEXPECTED");
    }
    note("a cycle of mutual affection collapses into one reported "
         "group (Sec. 4.2).");
}

void
BM_PartitionChain(benchmark::State &state)
{
    const auto d = static_cast<std::uint32_t>(state.range(0));
    ExecOptions opts;
    opts.model = ModelKind::SC;
    const auto res = runProgram(chainProgram(d), opts);
    for (auto _ : state) {
        auto det = analyzeExecution(res);
        benchmark::DoNotOptimize(
            det.partitions().firstPartitions.size());
    }
}
BENCHMARK(BM_PartitionChain)->Arg(8)->Arg(32)->Arg(128);

void
BM_PartitionRing(benchmark::State &state)
{
    const auto k = static_cast<std::uint32_t>(state.range(0));
    ExecOptions opts;
    opts.model = ModelKind::SC;
    const auto res = runProgram(ringProgram(k), opts);
    for (auto _ : state) {
        auto det = analyzeExecution(res);
        benchmark::DoNotOptimize(
            det.partitions().firstPartitions.size());
    }
}
BENCHMARK(BM_PartitionRing)->Arg(8)->Arg(32)->Arg(128);

} // namespace

WMR_BENCH_MAIN(reproduce)
