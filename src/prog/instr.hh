/**
 * @file
 * A single IR instruction and its field conventions.
 */

#ifndef WMR_PROG_INSTR_HH
#define WMR_PROG_INSTR_HH

#include <string>

#include "common/types.hh"
#include "prog/opcode.hh"

namespace wmr {

/**
 * One instruction of the register-machine IR.
 *
 * Field usage by opcode family:
 *  - arithmetic: dst, a, b / imm as documented per opcode;
 *  - memory ops: addr is the base word address; when indexed is true
 *    the effective address is addr + r[a]; Store/SyncStore take the
 *    stored value from r[b], StoreI/SyncStoreI from imm;
 *  - branches: a is the tested register, target the destination pc.
 *
 * note is an optional source-level annotation used by reporters
 * ("Enqueue(addr)", "QEmpty := False", ...).
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    RegId dst = 0;
    RegId a = 0;
    RegId b = 0;
    bool indexed = false;
    Addr addr = 0;
    Value imm = 0;
    std::uint32_t target = 0;
    std::string note;
};

/** Render @p instr as assembly text (without the pc column). */
std::string disassemble(const Instr &instr);

} // namespace wmr

#endif // WMR_PROG_INSTR_HH
