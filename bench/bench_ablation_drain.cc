/**
 * @file
 * Ablation: drain aggressiveness (how weak is the hardware?).
 *
 * drainLaziness is the probability a pending store (or invalidation)
 * survives each background tick: 0.0 approximates an eager machine
 * that completes writes almost immediately; 1.0 holds everything
 * until a synchronization point forces it.  The paper's guarantees
 * must be INDEPENDENT of this knob (Condition 3.4 holds at every
 * setting); what changes is how often weak behavior becomes visible —
 * stale-read frequency — and thus how exercised the SCP machinery is.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

void
reproduce()
{
    const double knobs[] = {0.0, 0.5, 0.9, 0.99, 1.0};

    section("stale-read exposure vs drain laziness (40 racy "
            "programs, WO)");
    std::printf("  %-10s %14s %14s %16s %12s\n", "laziness",
                "stale reads", "divergent ops", "uncovered races",
                "verdict");
    for (const double lz : knobs) {
        std::uint64_t stale = 0, divergent = 0;
        std::size_t uncovered = 0;
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            const Program p = randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            opts.drainLaziness = lz;
            const auto res = runProgram(p, opts);
            stale += res.staleReads;
            for (const auto &op : res.ops)
                divergent += op.divergent;
            const auto det = analyzeExecution(res);
            uncovered += checkCondition34(det.races(), det.scp(),
                                          det.augmented())
                             .size();
        }
        std::printf("  %-10.2f %14llu %14llu %16zu %12s\n", lz,
                    static_cast<unsigned long long>(stale),
                    static_cast<unsigned long long>(divergent),
                    uncovered, uncovered == 0 ? "HOLDS" : "FAILS");
    }
    note("lazier hardware exposes more weak behavior; Condition 3.4 "
         "holds at every");
    note("setting — the guarantee does not depend on how aggressive "
         "the buffers are.");

    section("race-free programs: SC-equivalence at every setting");
    std::printf("  %-10s %14s %10s\n", "laziness", "stale reads",
                "races");
    for (const double lz : knobs) {
        std::uint64_t stale = 0;
        std::size_t races = 0;
        for (std::uint64_t seed = 0; seed < 20; ++seed) {
            const Program p = randomRaceFreeProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            opts.drainLaziness = lz;
            const auto res = runProgram(p, opts);
            stale += res.staleReads;
            races += analyzeExecution(res).numDataRaces();
        }
        std::printf("  %-10.2f %14llu %10zu\n", lz,
                    static_cast<unsigned long long>(stale), races);
    }

    section("performance: sync-drain cost vs laziness (locked "
            "counter)");
    std::printf("  %-10s %14s\n", "laziness", "avg cycles");
    const Program p = lockedCounter(4, 8);
    for (const double lz : knobs) {
        Tick total = 0;
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            opts.drainLaziness = lz;
            total += runProgram(p, opts).totalCycles;
        }
        std::printf("  %-10.2f %14llu\n", lz,
                    static_cast<unsigned long long>(total / 8));
    }
    note("eager draining shifts write completion off the sync "
         "critical path, so");
    note("lazy buffers pay more at each Unset — the classic "
         "latency/ordering trade.");
}

void
BM_DrainLaziness(benchmark::State &state)
{
    const double lz = static_cast<double>(state.range(0)) / 100.0;
    const Program p = lockedCounter(4, 8);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = ++seed;
        opts.drainLaziness = lz;
        benchmark::DoNotOptimize(runProgram(p, opts).totalCycles);
    }
}
BENCHMARK(BM_DrainLaziness)->Arg(0)->Arg(50)->Arg(100)
    ->ArgName("laziness%");

} // namespace

WMR_BENCH_MAIN(reproduce)
