file(REMOVE_RECURSE
  "CMakeFiles/wmr_detect.dir/analysis.cc.o"
  "CMakeFiles/wmr_detect.dir/analysis.cc.o.d"
  "CMakeFiles/wmr_detect.dir/augmented_graph.cc.o"
  "CMakeFiles/wmr_detect.dir/augmented_graph.cc.o.d"
  "CMakeFiles/wmr_detect.dir/dot_export.cc.o"
  "CMakeFiles/wmr_detect.dir/dot_export.cc.o.d"
  "CMakeFiles/wmr_detect.dir/partition.cc.o"
  "CMakeFiles/wmr_detect.dir/partition.cc.o.d"
  "CMakeFiles/wmr_detect.dir/race_finder.cc.o"
  "CMakeFiles/wmr_detect.dir/race_finder.cc.o.d"
  "CMakeFiles/wmr_detect.dir/report.cc.o"
  "CMakeFiles/wmr_detect.dir/report.cc.o.d"
  "CMakeFiles/wmr_detect.dir/scp.cc.o"
  "CMakeFiles/wmr_detect.dir/scp.cc.o.d"
  "libwmr_detect.a"
  "libwmr_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
