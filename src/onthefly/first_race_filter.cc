#include "onthefly/first_race_filter.hh"

namespace wmr {

FirstRaceFilter::FirstRaceFilter(ProcId nprocs, Addr words,
                                 const VcDetectorOptions &opts)
    : det_(nprocs, words, opts), procAffected_(nprocs, false)
{
}

void
FirstRaceFilter::onOp(const MemOp &op)
{
    // hb1 propagation of the affected flag BEFORE the op's own
    // classification effects:
    //  - so1: release publishes, paired acquire joins.
    if (op.sync && op.kind == OpKind::Write && op.release)
        publishedAffected_[op.id] = procAffected_[op.proc];
    if (op.sync && op.kind == OpKind::Read && op.acquire &&
        op.observedWrite != kNoOp) {
        const auto it = publishedAffected_.find(op.observedWrite);
        if (it != publishedAffected_.end() && it->second)
            procAffected_[op.proc] = true;
    }

    det_.onOp(op);

    // Classify any races the underlying detector just reported: a
    // race is first iff neither endpoint's processor was already
    // affected (po stickiness supplies Def. 3.3(2); the endpoints
    // themselves supply Def. 3.3(1)).
    const auto &races = det_.races();
    for (; seenRaces_ < races.size(); ++seenRaces_) {
        const OtfRace &r = races[seenRaces_];
        const bool affected =
            procAffected_[r.proc1] || procAffected_[r.proc2];
        classified_.push_back({r, !affected});
        procAffected_[r.proc1] = true;
        procAffected_[r.proc2] = true;
    }
}

std::set<OtfRace>
FirstRaceFilter::firstRaces() const
{
    std::set<OtfRace> out;
    for (auto cr : classified_) {
        if (!cr.first)
            continue;
        cr.race.atOp = kNoOp;
        cr.race.ts1 = cr.race.ts2 = 0;
        if (cr.race.proc2 < cr.race.proc1 ||
            (cr.race.proc2 == cr.race.proc1 &&
             cr.race.pc2 < cr.race.pc1)) {
            std::swap(cr.race.proc1, cr.race.proc2);
            std::swap(cr.race.pc1, cr.race.pc2);
        }
        out.insert(cr.race);
    }
    return out;
}

} // namespace wmr
