/**
 * @file
 * Unit tests of the common substrate: bitsets, RNG, strings.
 */

#include <gtest/gtest.h>

#include "common/dense_bitset.hh"
#include "common/rng.hh"
#include "common/string_util.hh"

namespace wmr {
namespace {

TEST(DenseBitset, StartsEmpty)
{
    DenseBitset bs(128);
    EXPECT_EQ(bs.size(), 128u);
    EXPECT_TRUE(bs.empty());
    EXPECT_EQ(bs.count(), 0u);
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_FALSE(bs.test(i));
}

TEST(DenseBitset, SetTestReset)
{
    DenseBitset bs(100);
    bs.set(0);
    bs.set(63);
    bs.set(64);
    bs.set(99);
    EXPECT_TRUE(bs.test(0));
    EXPECT_TRUE(bs.test(63));
    EXPECT_TRUE(bs.test(64));
    EXPECT_TRUE(bs.test(99));
    EXPECT_FALSE(bs.test(1));
    EXPECT_EQ(bs.count(), 4u);
    bs.reset(63);
    EXPECT_FALSE(bs.test(63));
    EXPECT_EQ(bs.count(), 3u);
}

TEST(DenseBitset, SetGrowsUniverse)
{
    DenseBitset bs(4);
    bs.set(200);
    EXPECT_GE(bs.size(), 201u);
    EXPECT_TRUE(bs.test(200));
}

TEST(DenseBitset, OutOfRangeQueriesAreFalse)
{
    DenseBitset bs(10);
    EXPECT_FALSE(bs.test(1000));
    bs.reset(1000); // no-op, no crash
    EXPECT_EQ(bs.size(), 10u);
}

TEST(DenseBitset, UnionIntersect)
{
    DenseBitset a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(2);
    b.set(65);
    EXPECT_TRUE(a.intersects(b));
    DenseBitset c = a;
    c |= b;
    EXPECT_EQ(c.count(), 3u);
    c &= b;
    EXPECT_EQ(c.count(), 2u);
    EXPECT_TRUE(c.test(2));
    EXPECT_TRUE(c.test(65));
}

TEST(DenseBitset, DisjointDoNotIntersect)
{
    DenseBitset a(130), b(130);
    a.set(5);
    a.set(129);
    b.set(6);
    b.set(128);
    EXPECT_FALSE(a.intersects(b));
}

TEST(DenseBitset, IntersectsDifferentSizes)
{
    DenseBitset a(10), b(500);
    a.set(3);
    b.set(3);
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a));
    b.reset(3);
    b.set(400);
    EXPECT_FALSE(a.intersects(b));
}

TEST(DenseBitset, ForEachVisitsAscending)
{
    DenseBitset bs(300);
    const std::vector<std::uint32_t> want{0, 63, 64, 127, 255, 299};
    for (const auto i : want)
        bs.set(i);
    EXPECT_EQ(bs.toVector(), want);
}

TEST(DenseBitset, EqualityIgnoresUniverseSize)
{
    DenseBitset a(64), b(256);
    a.set(7);
    b.set(7);
    EXPECT_TRUE(a == b);
    b.set(200);
    EXPECT_FALSE(a == b);
}

TEST(DenseBitset, RoundTripWords)
{
    DenseBitset a(130);
    a.set(0);
    a.set(129);
    const DenseBitset b = DenseBitset::fromWords(a.words(), 130);
    EXPECT_TRUE(a == b);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowIsBounded)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_GT(hits, 2500);
    EXPECT_LT(hits, 3500);
}

TEST(StringUtil, Split)
{
    const auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
}

TEST(StringUtil, SplitWhitespace)
{
    const auto v = splitWhitespace("  foo\t bar\nbaz  ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "foo");
    EXPECT_EQ(v[1], "bar");
    EXPECT_EQ(v[2], "baz");
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("ab"), "ab");
}

TEST(StringUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(StringUtil, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

} // namespace
} // namespace wmr
