/**
 * @file
 * Race partitions and the partial order P of Section 4.2.
 *
 * Two races belong to the same partition iff their events lie in the
 * same strongly connected component of G'.  Part1 P Part2 iff a G'
 * path leads from an event of Part1 to an event of Part2 (Def. 4.1).
 * A partition is FIRST if no other partition containing a data race
 * precedes it — Theorem 4.1: there are first partitions with data
 * races iff the execution exhibited data races; Theorem 4.2: every
 * first partition holds at least one race belonging to an SCP.
 */

#ifndef WMR_DETECT_PARTITION_HH
#define WMR_DETECT_PARTITION_HH

#include <vector>

#include "detect/augmented_graph.hh"
#include "detect/race.hh"

namespace wmr {

/** One partition: the races of one racy SCC of G'. */
struct RacePartition
{
    /** G'-SCC id backing this partition (engine-internal numbering,
     *  only meaningful against the producing AugmentedGraph). */
    std::uint32_t component = 0;

    /**
     * Canonical component name: the smallest event id among the
     * partition's race endpoints.  Unlike the raw SCC id — an
     * artifact of the traversal order — this label is intrinsic to
     * the execution, so alternative engines (e.g. the streaming
     * analyzer) reproduce it exactly.  Reports print this label and
     * partitions are ordered by it.
     */
    std::uint32_t label = 0;

    /** Indices into the race vector. */
    std::vector<RaceId> races;

    /** Whether this partition holds at least one DATA race. */
    bool hasDataRace = false;

    /** First per Section 4.2's partial order. */
    bool first = false;
};

/** The full partition structure of one analysis. */
struct RacePartitions
{
    /** All partitions, ordered by canonical label. */
    std::vector<RacePartition> partitions;

    /** partitionOf[r] = index into partitions for race r. */
    std::vector<std::uint32_t> partitionOf;

    /** Indices of first partitions containing data races. */
    std::vector<std::uint32_t> firstPartitions;

    /** @return races of all first partitions (the reportable set). */
    std::vector<RaceId>
    reportableRaces() const
    {
        std::vector<RaceId> out;
        for (const auto pi : firstPartitions) {
            for (const auto r : partitions[pi].races)
                out.push_back(r);
        }
        return out;
    }
};

/**
 * Partition @p races by the SCCs of @p aug and identify the first
 * partitions (Sec. 4.2).
 */
RacePartitions partitionRaces(const std::vector<DataRace> &races,
                              const AugmentedGraph &aug);

} // namespace wmr

#endif // WMR_DETECT_PARTITION_HH
