
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/analysis.cc" "src/detect/CMakeFiles/wmr_detect.dir/analysis.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/analysis.cc.o.d"
  "/root/repo/src/detect/augmented_graph.cc" "src/detect/CMakeFiles/wmr_detect.dir/augmented_graph.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/augmented_graph.cc.o.d"
  "/root/repo/src/detect/dot_export.cc" "src/detect/CMakeFiles/wmr_detect.dir/dot_export.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/dot_export.cc.o.d"
  "/root/repo/src/detect/partition.cc" "src/detect/CMakeFiles/wmr_detect.dir/partition.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/partition.cc.o.d"
  "/root/repo/src/detect/race_finder.cc" "src/detect/CMakeFiles/wmr_detect.dir/race_finder.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/race_finder.cc.o.d"
  "/root/repo/src/detect/report.cc" "src/detect/CMakeFiles/wmr_detect.dir/report.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/report.cc.o.d"
  "/root/repo/src/detect/scp.cc" "src/detect/CMakeFiles/wmr_detect.dir/scp.cc.o" "gcc" "src/detect/CMakeFiles/wmr_detect.dir/scp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hb/CMakeFiles/wmr_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wmr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
