#include "engines/shb_engine.hh"

#include <algorithm>

#include "obs/obs.hh"

namespace wmr::engines {

void
ShbEngine::begin(const EngineTraceInfo &info)
{
    procs_ = info.procs;
    clock_.assign(procs_, VectorClock(procs_));
    epochs_.assign(procs_, 0);
}

void
ShbEngine::feed(const Event &ev)
{
    static obs::Counter events = obs::counter("engine.shb.events");
    static obs::Counter joins = obs::counter("engine.shb.joins");
    events.inc();
    ++eventsSeen_;

    const ProcId p = ev.proc;
    if (p >= procs_) { // defensive vs. malformed shape info
        procs_ = p + 1;
        clock_.resize(procs_);
        epochs_.resize(procs_, 0);
    }

    const std::uint64_t epoch = ++epochs_[p];
    VectorClock &c = clock_[p];
    c.set(p, epoch);

    const bool isSync = ev.kind == EventKind::Sync;
    if (isSync && ev.pairedRelease != kNoEvent) {
        const auto it = syncSnap_.find(ev.pairedRelease);
        if (it != syncSnap_.end()) {
            c.join(it->second);
            joins.inc();
        }
    }

    detail::eventAccesses(ev, writes_, reads_);
    detail::testAndRecord(hist_, ev.id, p, epoch, isSync, c,
                          writes_, reads_, table_);

    // Last-write clocks: carried per variable (NOT joined into
    // readers — see the header comment).
    for (const Addr a : writes_)
        lastWrite_[a] = c;

    if (isSync)
        syncSnap_.emplace(ev.id, c);
}

const char *
ShbEngine::semanticsLine()
{
    return "hb1-order vector clocks, per-variable last-write "
           "clocks; sound beyond the first race";
}

EngineVerdict
ShbEngine::finish()
{
    static obs::Counter racesCtr = obs::counter("engine.shb.races");

    EngineVerdict v;
    v.engine = name();
    v.semantics = semanticsLine();
    v.races = table_.canonical();
    racesCtr.add(v.races.size());

    for (std::uint32_t i = 0; i < v.races.size(); ++i) {
        if (v.races[i].isDataRace)
            ++v.numDataRaces;
        v.reported.push_back(i); // SHB reports everything
    }
    v.anyDataRace = v.numDataRaces != 0;
    v.firstRacePerVar = firstRacePerVariable(v.races);
    return v;
}

} // namespace wmr::engines
