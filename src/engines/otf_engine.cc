#include "engines/otf_engine.hh"

#include "obs/obs.hh"
#include "onthefly/epoch_detector.hh"
#include "onthefly/lockset_detector.hh"
#include "onthefly/vc_detector.hh"

namespace wmr::engines {

const char *
OtfEngine::name() const
{
    switch (kind_) {
    case OtfKind::Vc:
        return "vc";
    case OtfKind::Epoch:
        return "epoch";
    case OtfKind::Lockset:
        return "lockset";
    }
    return "otf";
}

void
OtfEngine::begin(const EngineTraceInfo &info)
{
    const ProcId procs = info.procs ? info.procs : 1;
    switch (kind_) {
    case OtfKind::Vc:
        det_ = std::make_unique<VcDetector>(procs, info.memWords);
        break;
    case OtfKind::Epoch:
        det_ = std::make_unique<EpochDetector>(procs,
                                               info.memWords);
        break;
    case OtfKind::Lockset:
        det_ = std::make_unique<LocksetDetector>(procs,
                                                 info.memWords);
        break;
    }
}

void
OtfEngine::feed(const Event &ev)
{
    static obs::Counter synthOps =
        obs::counter("engine.otf.synth_ops");
    if (!det_)
        return;

    if (ev.kind == EventKind::Sync) {
        det_->onOp(ev.syncOp);
        synthOps.inc();
        return;
    }

    // Re-synthesize one representative op per accessed word.  The
    // op ids stay inside the event's [firstOp, lastOp] range so the
    // detectors' attribution remains roughly chronological.
    MemOp op;
    op.proc = ev.proc;
    op.sync = false;
    op.acquire = false;
    op.release = false;
    op.id = ev.firstOp;
    ev.readSet.forEach([&](std::size_t a) {
        op.kind = OpKind::Read;
        op.addr = static_cast<Addr>(a);
        op.pc = static_cast<std::uint32_t>(a);
        det_->onOp(op);
        synthOps.inc();
    });
    op.id = ev.lastOp;
    ev.writeSet.forEach([&](std::size_t a) {
        op.kind = OpKind::Write;
        op.addr = static_cast<Addr>(a);
        op.pc = static_cast<std::uint32_t>(a);
        det_->onOp(op);
        synthOps.inc();
    });
}

EngineVerdict
OtfEngine::finish()
{
    EngineVerdict v;
    v.engine = name();
    switch (kind_) {
    case OtfKind::Vc:
        v.semantics = "on-the-fly vector clocks (op-level, "
                      "last-access metadata); approximation";
        break;
    case OtfKind::Epoch:
        v.semantics = "on-the-fly FastTrack epochs (op-level, "
                      "adaptive); approximation";
        break;
    case OtfKind::Lockset:
        v.semantics = "on-the-fly Eraser lockset discipline "
                      "(op-level); approximation";
        break;
    }
    v.opLevel = true;
    if (det_) {
        v.opRacesReported = det_->races().size();
        v.opRacesDistinct = det_->distinctRaces().size();
        v.anyDataRace = v.opRacesReported != 0;
        v.numDataRaces = v.opRacesDistinct;
    }
    return v;
}

} // namespace wmr::engines
