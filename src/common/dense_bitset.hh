/**
 * @file
 * Dynamically sized bitset used for READ/WRITE sets and reachability.
 *
 * The paper's Section 4.1 proposes recording the shared variables a
 * computation event touches as bit-vectors rather than tracing every
 * memory operation.  DenseBitset is that bit-vector: a flat array of
 * 64-bit words with the set operations race detection needs —
 * membership, union, and fast intersection tests.
 */

#ifndef WMR_COMMON_DENSE_BITSET_HH
#define WMR_COMMON_DENSE_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wmr {

/** Flat bit-vector with set-algebra helpers. */
class DenseBitset
{
  public:
    /** Construct an empty set over a universe of @p nbits elements. */
    explicit DenseBitset(std::size_t nbits = 0);

    /** @return number of addressable bits (the universe size). */
    std::size_t size() const { return nbits_; }

    /** Grow the universe to at least @p nbits, preserving contents. */
    void resize(std::size_t nbits);

    /** Set bit @p i (grows the universe if needed). */
    void set(std::size_t i);

    /** Clear bit @p i (no-op when out of range). */
    void reset(std::size_t i);

    /** @return whether bit @p i is set (false when out of range). */
    bool test(std::size_t i) const;

    /** Clear every bit, keeping the universe size. */
    void clear();

    /** @return number of set bits. */
    std::size_t count() const;

    /** @return whether no bit is set. */
    bool empty() const;

    /** In-place union with @p other. */
    DenseBitset &operator|=(const DenseBitset &other);

    /** In-place intersection with @p other. */
    DenseBitset &operator&=(const DenseBitset &other);

    /** @return whether this set and @p other share any element. */
    bool intersects(const DenseBitset &other) const;

    /** @return indices of all set bits, ascending. */
    std::vector<std::uint32_t> toVector() const;

    /**
     * Visit every set bit in ascending order.
     * @param fn callable taking the bit index as std::size_t.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(w * 64 + static_cast<std::size_t>(b));
                bits &= bits - 1;
            }
        }
    }

    bool operator==(const DenseBitset &other) const;

    /** Serialized word storage, for trace file I/O. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Rebuild from serialized words over a universe of @p nbits. */
    static DenseBitset fromWords(std::vector<std::uint64_t> words,
                                 std::size_t nbits);

  private:
    std::size_t nbits_;
    std::vector<std::uint64_t> words_;
};

} // namespace wmr

#endif // WMR_COMMON_DENSE_BITSET_HH
