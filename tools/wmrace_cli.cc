/**
 * @file
 * wmrace — the command-line driver.
 *
 *   wmrace run <prog.wm> [options]     simulate + detect + report
 *   wmrace check <trace.bin> [options] post-mortem analysis of a trace
 *   wmrace batch <dir|manifest> [opts] analyze a whole trace corpus
 *   wmrace record [opts] <bin> [args]  run an annotated program,
 *                                      record + analyze its trace
 *   wmrace explore <prog.wm> [options] exhaustive SC model checking
 *   wmrace disasm <prog.wm>            print the assembled program
 *   wmrace static <prog.wm>            compile-time lockset analysis
 *   wmrace models                      list memory models/realizations
 *
 * Options of `run`:
 *   --model SC|WO|RCsc|DRF0|DRF1   memory model      (default WO)
 *   --realization buffer|invalidate hardware flavor  (default buffer)
 *   --seed N                       scheduler/drain seed (default 1)
 *   --laziness X                   drain laziness 0..1  (default 0.5)
 *   --trace FILE                   write the event trace file
 *   --dot FILE                     write the G' graph as DOT
 *   --events                       include per-event detail in report
 *   --stats                        print execution statistics
 *   --timeline                     print the per-processor timeline
 *   --onthefly                     also run the on-the-fly detector
 *
 * Options of `check`: --dot FILE, --events.
 * Options of `explore`: --max-execs N (default 100000).
 *
 * Options of `batch` (see docs/BATCH.md):
 *   --jobs N       worker threads, N >= 1 (default: hardware
 *                  concurrency); anything else is rejected (exit 2)
 *   --json FILE    write the aggregated JSON report
 *   --metrics FILE write run metrics as JSON (timing, queue depth)
 *   --fail-fast    stop dispatching after the first failed trace
 *   --summary      omit the per-trace lines of the text report
 *
 * Options of `record` (see docs/RUNTIME.md; they must precede the
 * child binary — everything after it belongs to the child):
 *   --out FILE     trace file (default: <binary-basename>.trace)
 *   --no-check     just record; skip the post-mortem analysis
 * The child is launched with WMR_RT_TRACE set, so a program
 * annotated with rt/annotate.hh records itself and flushes at exit.
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "detect/analysis.hh"
#include "detect/dot_export.hh"
#include "detect/report.hh"
#include "sim/exec_stats.hh"
#include "mc/explorer.hh"
#include "onthefly/first_race_filter.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "prog/assembler.hh"
#include "staticdet/static_analyzer.hh"
#include "trace/timeline.hh"
#include "trace/trace_io.hh"

namespace {

using namespace wmr;

/** Minimal flag parser: --key value / --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                if (i + 1 < argc && !looksLikeFlag(argv[i + 1])) {
                    kv_[key] = argv[++i];
                } else {
                    kv_[key] = "";
                }
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    bool has(const std::string &key) const { return kv_.count(key); }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        const auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    /**
     * @return whether @p s is a flag rather than a value.  Values
     * beginning with '-' are legal when they look numeric ("-5",
     * "-0.5", "-.5"), so `--seed -5` parses as seed = -5 instead of
     * eating "-5" as an (unknown) flag.  A bare "-" is a value too
     * (conventional stdin placeholder).
     */
    static bool
    looksLikeFlag(const char *s)
    {
        if (s[0] != '-' || s[1] == '\0')
            return false;
        if (std::isdigit(static_cast<unsigned char>(s[1])) ||
            s[1] == '.') {
            return false; // negative number
        }
        return true;
    }

    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

ModelKind
parseModel(const std::string &name)
{
    for (const auto kind : kAllModels) {
        if (name == modelName(kind))
            return kind;
    }
    fatal("unknown memory model '%s' (try SC, WO, RCsc, DRF0, DRF1)",
          name.c_str());
}

Realization
parseRealization(const std::string &name)
{
    if (name == "buffer" || name == "store-buffer")
        return Realization::StoreBuffer;
    if (name == "invalidate")
        return Realization::Invalidate;
    fatal("unknown realization '%s' (try buffer, invalidate)",
          name.c_str());
}

int
cmdRun(const Args &args)
{
    if (args.positional().empty())
        fatal("run: missing program file");
    const Program prog = assembleFile(args.positional()[0]);

    ExecOptions opts;
    opts.model = parseModel(args.get("model", "WO"));
    opts.realization =
        parseRealization(args.get("realization", "buffer"));
    opts.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr,
                              10);
    opts.drainLaziness =
        std::strtod(args.get("laziness", "0.5").c_str(), nullptr);

    FirstRaceFilter otf(prog.numProcs(), prog.memWords());
    if (args.has("onthefly"))
        opts.sink = &otf;

    const ExecutionResult res = runProgram(prog, opts);
    std::printf("model %s (%s), seed %llu: %llu instructions, %zu "
                "memory ops, %llu cycles%s\n",
                std::string(modelName(opts.model)).c_str(),
                std::string(realizationName(opts.realization))
                    .c_str(),
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(res.steps),
                res.ops.size(),
                static_cast<unsigned long long>(res.totalCycles),
                res.completed ? "" : "  [TRUNCATED]");

    if (args.has("trace")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        const auto bytes =
            writeTraceFile(trace, args.get("trace"));
        std::printf("wrote %zu events (%zu bytes) to %s\n",
                    trace.events().size(), bytes,
                    args.get("trace").c_str());
    }

    if (args.has("stats")) {
        std::printf("%s",
                    formatStats(summarizeExecution(res), &prog)
                        .c_str());
    }

    if (args.has("timeline")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        std::printf("%s",
                    renderTimeline(trace, &prog, &res).c_str());
    }

    const DetectionResult det = analyzeExecution(res);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, &prog, ropts).c_str());

    if (args.has("onthefly")) {
        std::printf("\non-the-fly: %zu race report(s), %zu distinct, "
                    "%zu classified first\n",
                    otf.detector().races().size(),
                    otf.detector().distinctRaces().size(),
                    otf.firstRaces().size());
    }

    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"), &prog);
        std::printf("wrote DOT graph to %s  (render: dot -Tsvg %s)\n",
                    args.get("dot").c_str(), args.get("dot").c_str());
    }
    return det.anyDataRace() ? 1 : 0;
}

int
cmdCheck(const Args &args)
{
    if (args.positional().empty())
        fatal("check: missing trace file");
    const ExecutionTrace trace =
        readTraceFile(args.positional()[0]);
    const DetectionResult det = analyzeTrace(trace);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, nullptr, ropts).c_str());
    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"));
        std::printf("wrote DOT graph to %s\n",
                    args.get("dot").c_str());
    }
    return det.anyDataRace() ? 1 : 0;
}

int
cmdBatch(const Args &args)
{
    if (args.positional().empty())
        fatal("batch: missing corpus directory or manifest file");
    const CorpusScan corpus = scanCorpus(args.positional()[0]);
    if (!corpus.ok())
        fatal("%s", corpus.error.c_str());

    BatchOptions opts;
    if (args.has("jobs")) {
        // Validate strictly: a mistyped --jobs must not silently
        // become "hardware concurrency" (0) or a huge unsigned.
        const std::string v = args.get("jobs");
        char *end = nullptr;
        errno = 0;
        const long long n =
            v.empty() ? -1 : std::strtoll(v.c_str(), &end, 10);
        if (v.empty() || *end != '\0' || errno == ERANGE || n < 1 ||
            n > 4096) {
            std::fprintf(stderr,
                         "batch: invalid --jobs '%s': expected an "
                         "integer between 1 and 4096\n",
                         v.c_str());
            return 2;
        }
        opts.jobs = static_cast<unsigned>(n);
    }
    opts.failFast = args.has("fail-fast");

    const BatchResult batch = runBatch(corpus, opts);

    BatchReportOptions ropts;
    ropts.showPerTrace = !args.has("summary");
    std::printf("%s", formatBatchReport(batch, ropts).c_str());

    if (args.has("json")) {
        const std::string path = args.get("json");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open JSON report file '%s'", path.c_str());
        out << batchReportJson(batch);
        if (!out)
            fatal("short write to JSON report file '%s'",
                  path.c_str());
    }

    // Metrics are nondeterministic (timing); they go to stderr and
    // the optional --metrics file so stdout and --json stay
    // byte-identical across --jobs values.
    std::fprintf(stderr, "%s",
                 formatMetrics(batch.metrics).c_str());
    if (args.has("metrics")) {
        const std::string path = args.get("metrics");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open metrics file '%s'", path.c_str());
        out << metricsJson(batch.metrics);
    }

    if (opts.failFast && batch.numFailed() > 0)
        return 2;
    return batch.anyDataRace() ? 1 : 0;
}

/**
 * `wmrace record [--out FILE] [--no-check] <binary> [args...]`:
 * launch an annotated program with WMR_RT_TRACE set so its runtime
 * tracer (src/rt) records an EVENT trace, then analyze the trace
 * with the regular post-mortem pipeline.
 */
int
cmdRecord(int argc, char **argv)
{
    std::string out;
    bool check = true;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (a == "--no-check") {
            check = false;
        } else if (a.rfind("--", 0) == 0) {
            fatal("record: unknown option '%s' (options go before "
                  "the child binary)", a.c_str());
        } else {
            break; // the child binary
        }
    }
    if (i >= argc)
        fatal("record: missing child binary to run");
    const std::string child = argv[i];
    if (out.empty()) {
        const auto slash = child.find_last_of('/');
        out = (slash == std::string::npos
                   ? child
                   : child.substr(slash + 1)) +
              ".trace";
    }

    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("record: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::setenv("WMR_RT_TRACE", out.c_str(), 1);
        ::execvp(child.c_str(), argv + i);
        std::fprintf(stderr, "record: cannot exec '%s': %s\n",
                     child.c_str(), std::strerror(errno));
        std::_Exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0)
        fatal("record: waitpid failed: %s", std::strerror(errno));
    if (WIFSIGNALED(status)) {
        fatal("record: '%s' died on signal %d", child.c_str(),
              WTERMSIG(status));
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        fatal("record: '%s' exited with status %d (trace may be "
              "missing or partial)", child.c_str(),
              WEXITSTATUS(status));
    }
    std::printf("recorded '%s' -> %s\n", child.c_str(),
                out.c_str());
    if (!check)
        return 0;

    const ExecutionTrace trace = readTraceFile(out);
    const DetectionResult det = analyzeTrace(trace);
    std::printf("%s", formatReport(det, nullptr, {}).c_str());
    return det.anyDataRace() ? 1 : 0;
}

int
cmdExplore(const Args &args)
{
    if (args.positional().empty())
        fatal("explore: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    McLimits limits;
    limits.maxExecutions = std::strtoull(
        args.get("max-execs", "100000").c_str(), nullptr, 10);
    const auto truth = exploreScExecutions(prog, limits);
    std::printf("explored %llu sequentially consistent execution(s)%s"
                "%s\n",
                static_cast<unsigned long long>(truth.executions),
                truth.exhaustive ? " (exhaustive)" : " (bounded)",
                truth.truncated
                    ? (" [" + std::to_string(truth.truncated) +
                       " truncated paths]")
                          .c_str()
                    : "");
    if (truth.anyDataRace) {
        std::printf("program HAS data races on SC; %zu static race "
                    "pair(s):\n",
                    truth.races.size());
        for (const auto &r : truth.races) {
            std::printf("  P%u:pc%u  <->  P%u:pc%u\n", r.x.proc,
                        r.x.pc, r.y.proc, r.y.pc);
        }
        return 1;
    }
    std::printf("no data races in any explored SC execution%s\n",
                truth.exhaustive
                    ? ": the program is data-race-free; all weak "
                      "models guarantee it sequential consistency"
                    : " (bounded exploration: not a proof)");
    return 0;
}

int
cmdStatic(const Args &args)
{
    if (args.positional().empty())
        fatal("static: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    StaticOptions opts;
    if (args.has("first-data-addr")) {
        opts.firstDataAddr = static_cast<Addr>(std::strtoul(
            args.get("first-data-addr").c_str(), nullptr, 10));
    }
    const auto analysis = analyzeStatically(prog, opts);
    std::printf("%s", formatStaticReport(analysis, &prog).c_str());
    return analysis.clean() ? 0 : 1;
}

int
cmdDisasm(const Args &args)
{
    if (args.positional().empty())
        fatal("disasm: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    std::printf("%s", prog.disassembleAll().c_str());
    return 0;
}

int
cmdModels()
{
    std::printf("memory models:\n");
    std::printf("  SC    sequential consistency (every op stalls to "
                "completion)\n");
    std::printf("  WO    weak ordering [Dubois/Scheurich/Briggs 86]\n");
    std::printf("  RCsc  release consistency w/ SC sync ops "
                "[Gharachorloo+ 90]\n");
    std::printf("  DRF0  data-race-free-0 [Adve/Hill 90] (pipelined "
                "drains)\n");
    std::printf("  DRF1  data-race-free-1 [Adve/Hill 91] (release/"
                "acquire + pipelined)\n");
    std::printf("realizations:\n");
    std::printf("  buffer       per-processor unordered store "
                "buffers (delayed visibility)\n");
    std::printf("  invalidate   invalidation queues (delayed death "
                "of stale copies)\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: wmrace <command> [args]\n"
        "  run <prog.wm>      simulate on a weak model and detect "
        "races\n"
        "  check <trace.bin>  post-mortem analysis of a trace file\n"
        "  batch <dir|manifest>  analyze a whole trace corpus "
        "(multi-threaded)\n"
        "  record <bin> [args]  run an annotated program, record + "
        "analyze its trace\n"
        "  explore <prog.wm>  exhaustive SC model checking\n"
        "  static <prog.wm>   compile-time lockset analysis\n"
        "  disasm <prog.wm>   print the assembled program\n"
        "  models             describe the memory models\n"
        "see the header of tools/wmrace_cli.cc for all options\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "batch")
        return cmdBatch(args);
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "static")
        return cmdStatic(args);
    if (cmd == "disasm")
        return cmdDisasm(args);
    if (cmd == "models")
        return cmdModels();
    usage();
    return 2;
}
