#include "engines/engine.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace wmr::engines {

const char *
engineName(EngineKind kind)
{
    switch (kind) {
    case EngineKind::Hb1:
        return "hb1";
    case EngineKind::Shb:
        return "shb";
    case EngineKind::Wcp:
        return "wcp";
    case EngineKind::Vc:
        return "vc";
    case EngineKind::Epoch:
        return "epoch";
    case EngineKind::Lockset:
        return "lockset";
    }
    return "?";
}

std::optional<std::vector<EngineKind>>
parseEngineSelection(std::string_view name)
{
    if (name == "all")
        return std::vector<EngineKind>{
            EngineKind::Hb1, EngineKind::Shb, EngineKind::Wcp};
    if (name == "hb1")
        return std::vector<EngineKind>{EngineKind::Hb1};
    if (name == "shb")
        return std::vector<EngineKind>{EngineKind::Shb};
    if (name == "wcp")
        return std::vector<EngineKind>{EngineKind::Wcp};
    if (name == "vc")
        return std::vector<EngineKind>{EngineKind::Vc};
    if (name == "epoch")
        return std::vector<EngineKind>{EngineKind::Epoch};
    if (name == "lockset")
        return std::vector<EngineKind>{EngineKind::Lockset};
    return std::nullopt;
}

const char *
engineSelectionHelp()
{
    return "hb1|shb|wcp|vc|epoch|lockset|all";
}

std::vector<std::pair<Addr, std::uint32_t>>
firstRacePerVariable(const std::vector<EngineRace> &races)
{
    std::unordered_map<Addr, std::uint32_t> first;
    for (std::uint32_t i = 0; i < races.size(); ++i) {
        const EngineRace &r = races[i];
        for (const Addr a : r.addrs) {
            const auto [it, fresh] = first.emplace(a, i);
            if (fresh)
                continue;
            const EngineRace &cur = races[it->second];
            if (std::make_pair(r.b, r.a) <
                std::make_pair(cur.b, cur.a))
                it->second = i;
        }
    }
    std::vector<std::pair<Addr, std::uint32_t>> out(first.begin(),
                                                    first.end());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace wmr::engines
