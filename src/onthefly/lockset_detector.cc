#include "onthefly/lockset_detector.hh"

#include <algorithm>

namespace wmr {

LocksetDetector::LocksetDetector(ProcId nprocs, Addr words)
    : held_(nprocs), words_(words), reportedWord_(words, false)
{
    stats_.metadataBytes =
        static_cast<std::uint64_t>(words) * sizeof(WordInfo);
}

LocksetDetector::WordInfo &
LocksetDetector::word(Addr addr)
{
    if (addr >= words_.size()) {
        words_.resize(addr + 1);
        reportedWord_.resize(addr + 1, false);
    }
    return words_[addr];
}

LocksetDetector::WordState
LocksetDetector::state(Addr addr) const
{
    return addr < words_.size() ? words_[addr].state
                                : WordState::Virgin;
}

const std::set<Addr> &
LocksetDetector::candidates(Addr addr) const
{
    static const std::set<Addr> empty;
    return addr < words_.size() ? words_[addr].candidates : empty;
}

void
LocksetDetector::refine(WordInfo &w, const MemOp &op, bool check)
{
    ++stats_.epochChecks;
    if (!w.candidatesInitialized) {
        w.candidates = held_[op.proc];
        w.candidatesInitialized = true;
    } else {
        std::set<Addr> inter;
        std::set_intersection(
            w.candidates.begin(), w.candidates.end(),
            held_[op.proc].begin(), held_[op.proc].end(),
            std::inserter(inter, inter.begin()));
        w.candidates = std::move(inter);
    }
    if (check && w.candidates.empty() &&
        !reportedWord_[op.addr]) {
        reportedWord_[op.addr] = true;
        report({w.lastProc, w.lastPc, op.proc, op.pc, op.addr,
                op.id});
    }
}

void
LocksetDetector::onOp(const MemOp &op)
{
    ++stats_.opsProcessed;

    if (op.sync) {
        // Lock tracking: successful Test&Set acquires, Unset
        // releases.  (Flag sync via SyncLoad/SyncStore is invisible
        // to the lockset discipline — deliberately.)
        if (op.acquire && op.kind == OpKind::Read && op.value == 0)
            held_[op.proc].insert(op.addr);
        if (op.release && op.kind == OpKind::Write)
            held_[op.proc].erase(op.addr);
        return;
    }

    WordInfo &w = word(op.addr);
    switch (w.state) {
      case WordState::Virgin:
        w.state = WordState::Exclusive;
        w.owner = op.proc;
        refine(w, op, /*check=*/false); // initialize candidates
        break;
      case WordState::Exclusive:
        if (op.proc == w.owner) {
            refine(w, op, /*check=*/false);
            break;
        }
        if (op.kind == OpKind::Read) {
            w.state = WordState::Shared;
            refine(w, op, /*check=*/false);
        } else {
            w.state = WordState::SharedModified;
            refine(w, op, /*check=*/true);
        }
        break;
      case WordState::Shared:
        if (op.kind == OpKind::Write) {
            w.state = WordState::SharedModified;
            refine(w, op, /*check=*/true);
        } else {
            refine(w, op, /*check=*/false);
        }
        break;
      case WordState::SharedModified:
        refine(w, op, /*check=*/true);
        break;
    }
    w.lastProc = op.proc;
    w.lastPc = op.pc;
}

} // namespace wmr
