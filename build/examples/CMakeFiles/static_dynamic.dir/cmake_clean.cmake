file(REMOVE_RECURSE
  "CMakeFiles/static_dynamic.dir/static_dynamic.cpp.o"
  "CMakeFiles/static_dynamic.dir/static_dynamic.cpp.o.d"
  "static_dynamic"
  "static_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
