/**
 * @file
 * Corpus discovery for the batch pipeline.
 *
 * A corpus is named either by a DIRECTORY (every regular file with a
 * trace extension, recursively, in sorted path order) or by a
 * MANIFEST file (one trace path per line, '#' comments and blank
 * lines ignored, relative paths resolved against the manifest's
 * directory, listed order preserved).  The resulting file order is
 * deterministic — it is the order of the aggregated report, no matter
 * how many worker threads analyze the corpus.
 */

#ifndef WMR_PIPELINE_TRACE_CORPUS_HH
#define WMR_PIPELINE_TRACE_CORPUS_HH

#include <string>
#include <vector>

namespace wmr {

/** A discovered corpus: an ordered list of trace-file paths. */
struct CorpusScan
{
    /** The directory or manifest the scan started from. */
    std::string source;

    /** Trace-file paths in deterministic (report) order. */
    std::vector<std::string> files;

    /** Non-empty when the scan itself failed. */
    std::string error;

    /** Whether the corpus came from a manifest file. */
    bool fromManifest = false;

    bool ok() const { return error.empty(); }
};

/**
 * @return whether @p path has one of the corpus trace extensions
 * (.trace, .bin, .wmtrc).
 */
bool hasTraceExtension(const std::string &path);

/**
 * Discover the corpus named by @p dirOrManifest (see file comment).
 * Never aborts: problems (missing path, unreadable manifest, empty
 * corpus) come back in CorpusScan::error.
 */
CorpusScan scanCorpus(const std::string &dirOrManifest);

} // namespace wmr

#endif // WMR_PIPELINE_TRACE_CORPUS_HH
