# Empty dependencies file for wmr_common.
# This may be replaced when dependencies are built.
