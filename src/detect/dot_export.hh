/**
 * @file
 * Graphviz (DOT) export of the analysis graphs.
 *
 * Renders what the paper draws by hand: the happens-before-1 graph
 * with processor columns (Figures 1-2), augmented with doubly
 * directed race edges and the first / non-first partition distinction
 * (Figure 3), plus SCP membership shading.
 *
 *   dot -Tsvg graph.dot -o graph.svg
 */

#ifndef WMR_DETECT_DOT_EXPORT_HH
#define WMR_DETECT_DOT_EXPORT_HH

#include <string>

#include "detect/analysis.hh"
#include "prog/program.hh"

namespace wmr {

/** What to draw. */
struct DotOptions
{
    /** Draw the doubly directed race edges (Figure 3 view). */
    bool showRaceEdges = true;

    /** Shade events by SCP membership. */
    bool shadeScp = true;

    /** Group events into per-processor columns. */
    bool processorColumns = true;
};

/** Render @p result as a DOT digraph. */
std::string toDot(const DetectionResult &result,
                  const Program *prog = nullptr,
                  const DotOptions &opts = {});

/** Render to a .dot file; fatal() on I/O error. */
void writeDotFile(const DetectionResult &result,
                  const std::string &path,
                  const Program *prog = nullptr,
                  const DotOptions &opts = {});

} // namespace wmr

#endif // WMR_DETECT_DOT_EXPORT_HH
