/**
 * @file
 * Adapter driving the on-the-fly op-level detectors (src/onthefly)
 * from the Section-4.1 event stream.
 *
 * The on-the-fly detectors consume a per-operation stream (OpSink);
 * the event trace only keeps per-event READ/WRITE sets.  The
 * adapter re-synthesizes a representative operation sequence — the
 * sync operation itself for sync events, one read/write per set
 * word for computation events — so the detectors plug into the same
 * DetectorEngine family.  Their verdicts are op-level
 * approximations (bounded history, last-access metadata) and sit
 * OUTSIDE the hb1 ⊆ shb ⊆ wcp containment chain; the family report
 * labels them as such.
 */

#ifndef WMR_ENGINES_OTF_ENGINE_HH
#define WMR_ENGINES_OTF_ENGINE_HH

#include <memory>

#include "engines/engine.hh"
#include "onthefly/onthefly.hh"

namespace wmr::engines {

/** Which op-level detector the adapter drives. */
enum class OtfKind : std::uint8_t { Vc, Epoch, Lockset };

/** Event-stream adapter around one OnTheFlyDetector. */
class OtfEngine : public DetectorEngine
{
  public:
    explicit OtfEngine(OtfKind kind)
        : kind_(kind)
    {
    }

    const char *name() const override;

    void begin(const EngineTraceInfo &info) override;
    void feed(const Event &ev) override;
    EngineVerdict finish() override;

  private:
    OtfKind kind_;
    std::unique_ptr<OnTheFlyDetector> det_;
};

} // namespace wmr::engines

#endif // WMR_ENGINES_OTF_ENGINE_HH
