#include "hb/hb_graph.hh"

namespace wmr {

HbGraph::HbGraph(const ExecutionTrace &trace)
{
    adj_.assign(trace.events().size(), {});

    // po edges: consecutive events of each processor.  Transitivity
    // is recovered by reachability, so the chain suffices.
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        const auto &seq = trace.procEvents(p);
        for (std::size_t i = 1; i < seq.size(); ++i) {
            adj_[seq[i - 1]].push_back(seq[i]);
            edges_.push_back(
                {seq[i - 1], seq[i], HbEdgeKind::ProgramOrder});
        }
    }

    // so1 edges: paired release → acquire (Def. 2.2).
    for (const auto &ev : trace.events()) {
        if (ev.kind == EventKind::Sync &&
            ev.pairedRelease != kNoEvent) {
            adj_[ev.pairedRelease].push_back(ev.id);
            edges_.push_back(
                {ev.pairedRelease, ev.id, HbEdgeKind::SyncOrder});
            ++numSyncEdges_;
        }
    }
}

} // namespace wmr
