# Empty compiler generated dependencies file for wmr_sim.
# This may be replaced when dependencies are built.
