/**
 * @file
 * Property tests: the paper's conditions and theorems checked
 * empirically over seeded program families.
 *
 *  - Condition 3.4(1): executions of data-race-free programs on every
 *    weak model are sequentially consistent.
 *  - Theorem 4.1: first partitions with data races exist iff data
 *    races occurred.
 *  - Theorem 4.2: every first partition contains a race that also
 *    occurs in a sequentially consistent execution — checked two
 *    ways: against the constructive SCP witness Eseq, and against
 *    exhaustive SC enumeration (for lock-free programs).
 *  - Reporting only first partitions never reports MORE than the
 *    naive method (and the naive set contains the reported set).
 *  - EngineFamily.*: the detector-family containment chain
 *    reported(hb1) ⊆ races(shb) == races(hb1) ⊆ races(wcp) holds
 *    with zero violations over a seeded generator sweep, and the
 *    rendered family report is byte-identical at --jobs 1/2/8 and
 *    with observability on or off.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "engines/family.hh"
#include "mc/explorer.hh"
#include "mc/scp_witness.hh"
#include "obs/obs.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"
#include "workload/synthetic_trace.hh"

namespace wmr {
namespace {

/** Small lock-free racy programs: exhaustively enumerable. */
Program
tinyRacyProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 2;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 3;
    cfg.dataWords = 3;
    cfg.numLocks = 1;
    cfg.unlockedProb = 1.0; // never lock: no spins, pure data ops
    return randomProgram(cfg);
}

/** Small lockful race-free programs. */
Program
tinyRaceFreeProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 2;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 2;
    cfg.dataWords = 2;
    cfg.numLocks = 1;
    cfg.unlockedProb = 0.0;
    return randomProgram(cfg);
}

TEST(Condition341, RaceFreeProgramsStayScOnWeakModels)
{
    // Ground truth by construction AND verified by the explorer; then
    // every weak execution must be SC and report nothing.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const Program p = tinyRaceFreeProgram(seed);
        const auto truth =
            exploreScExecutions(p, {.maxExecutions = 5'000});
        EXPECT_FALSE(truth.anyDataRace) << "seed " << seed;

        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1}) {
            for (std::uint64_t es = 0; es < 10; ++es) {
                ExecOptions opts;
                opts.model = kind;
                opts.seed = es;
                opts.drainLaziness = 0.9;
                const auto res = runProgram(p, opts);
                ASSERT_TRUE(res.completed);
                EXPECT_EQ(res.staleReads, 0u)
                    << modelName(kind) << " prog " << seed << " seed "
                    << es;
                const auto det = analyzeExecution(res);
                EXPECT_FALSE(det.anyDataRace());
                EXPECT_TRUE(det.scp().wholeExecutionSc);
            }
        }
    }
}

TEST(Theorem41, FirstPartitionsIffDataRaces)
{
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = (seed % 3 == 0)
                              ? randomRaceFreeProgram(seed)
                              : randomRacyProgram(seed);
        for (const auto kind : {ModelKind::SC, ModelKind::WO,
                                ModelKind::RCsc}) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed * 7 + 1;
            opts.drainLaziness = 0.8;
            const auto det = analyzeExecution(runProgram(p, opts));
            EXPECT_EQ(det.anyDataRace(),
                      !det.partitions().firstPartitions.empty())
                << modelName(kind) << " seed " << seed;
        }
    }
}

TEST(Theorem42, FirstPartitionsHoldScpRaces)
{
    // Every first partition contains at least one race classified
    // (possibly) in the SCP.
    int checked = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto det = analyzeExecution(runProgram(p, opts));
        for (const auto pi : det.partitions().firstPartitions) {
            bool anyScp = false;
            for (const auto r :
                 det.partitions().partitions[pi].races) {
                anyScp |= det.scp().raceMaybeInScp[r];
            }
            EXPECT_TRUE(anyScp) << "seed " << seed;
            ++checked;
        }
    }
    EXPECT_GT(checked, 20); // the sweep exercised real partitions
}

TEST(Theorem42, FirstPartitionRacesAreScFeasible)
{
    // The strong form, via exhaustive SC enumeration: each first
    // partition of a weak execution holds a race whose static pair
    // occurs in SOME sequentially consistent execution.
    int partitionsChecked = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = tinyRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);

        const auto truth =
            exploreScExecutions(p, {.maxExecutions = 20'000});
        ASSERT_TRUE(truth.exhaustive) << "seed " << seed;

        for (const auto pi : det.partitions().firstPartitions) {
            bool feasible = false;
            for (const auto r :
                 det.partitions().partitions[pi].races) {
                for (const auto &pair :
                     staticPairsOfRace(det, r, res.ops)) {
                    feasible |= truth.races.count(pair) > 0;
                }
            }
            EXPECT_TRUE(feasible) << "seed " << seed;
            ++partitionsChecked;
        }
    }
    EXPECT_GT(partitionsChecked, 10);
}

TEST(Theorem42, WitnessEseqConfirmsScpRaces)
{
    // Constructive check: a race flagged raceInScp has a static pair
    // among the races of the witness SC execution Eseq.
    int confirmed = 0, scpRaces = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = tinyRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);
        if (!det.anyDataRace())
            continue;
        const auto w = buildScpWitness(p, res);
        ASSERT_TRUE(w.prefixMatched) << "seed " << seed;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (!det.scp().raceInScp[r])
                continue;
            ++scpRaces;
            for (const auto &pair :
                 staticPairsOfRace(det, r, res.ops)) {
                if (w.eseqRaces.count(pair)) {
                    ++confirmed;
                    break;
                }
            }
        }
    }
    ASSERT_GT(scpRaces, 5);
    // Lock-free straight-line programs: the witness reproduces every
    // SCP race (no control divergence can hide operations).
    EXPECT_EQ(confirmed, scpRaces);
}

TEST(Condition34, HoldsAcrossModelsAndWorkloads)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1}) {
            const Program p = randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed + 100;
            opts.drainLaziness = 0.95;
            const auto det = analyzeExecution(runProgram(p, opts));
            const auto bad = checkCondition34(
                det.races(), det.scp(), det.augmented());
            EXPECT_TRUE(bad.empty())
                << modelName(kind) << " seed " << seed;
        }
    }
}

TEST(Reporting, FirstPartitionSetIsSubsetOfNaiveSet)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        const auto det = analyzeExecution(runProgram(p, opts));
        const auto reported = det.reportedRaces();
        EXPECT_LE(reported.size(), det.races().size());
        for (const auto r : reported)
            EXPECT_LT(r, det.races().size());
    }
}

TEST(Reporting, AnalysisIsDeterministic)
{
    const Program p = randomRacyProgram(5);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 9;
    const auto res = runProgram(p, opts);
    const auto a = analyzeExecution(res);
    const auto b = analyzeExecution(res);
    ASSERT_EQ(a.races().size(), b.races().size());
    for (std::size_t i = 0; i < a.races().size(); ++i) {
        EXPECT_EQ(a.races()[i].a, b.races()[i].a);
        EXPECT_EQ(a.races()[i].b, b.races()[i].b);
        EXPECT_EQ(a.races()[i].addrs, b.races()[i].addrs);
    }
    EXPECT_EQ(a.partitions().firstPartitions,
              b.partitions().firstPartitions);
}

engines::EngineFamilyResult
runFamilyAll(const ExecutionTrace &trace, unsigned threads)
{
    const auto kinds = engines::parseEngineSelection("all");
    EXPECT_TRUE(kinds.has_value());
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = threads;
    return engines::runEngineFamily(trace, fopts);
}

TEST(EngineFamily, ContainmentHoldsOverGeneratorSweep)
{
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        ExecutionTrace trace;
        if (seed % 2 == 0) {
            SyntheticTraceOptions opts;
            opts.procs = 2 + static_cast<ProcId>(seed % 4);
            opts.eventsPerProc = 40;
            opts.syncFraction = 0.25;
            opts.hotFraction = 0.5;
            opts.seed = seed;
            trace = makeSyntheticTrace(opts);
        } else {
            const Program p = seed % 4 == 1
                                  ? randomRacyProgram(seed)
                                  : randomRaceFreeProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            trace = buildTrace(runProgram(p, opts),
                               {.keepMemberOps = true});
        }
        const engines::EngineFamilyResult fam =
            runFamilyAll(trace, 1);
        EXPECT_TRUE(fam.containment.checkedReportedInShb) << seed;
        EXPECT_TRUE(fam.containment.checkedShbMatchesHb1) << seed;
        EXPECT_TRUE(fam.containment.checkedShbInWcp) << seed;
        EXPECT_EQ(fam.containment.violations, 0u) << seed;
    }
}

TEST(EngineFamily, ReportIsDeterministicAcrossJobsAndObs)
{
    SyntheticTraceOptions opts;
    opts.procs = 4;
    opts.eventsPerProc = 80;
    opts.syncFraction = 0.3;
    opts.hotFraction = 0.6;
    opts.seed = 77;
    const ExecutionTrace trace = makeSyntheticTrace(opts);

    const std::string base =
        engines::formatFamilyReport(runFamilyAll(trace, 1));
    for (const unsigned threads : {2u, 8u}) {
        EXPECT_EQ(engines::formatFamilyReport(
                      runFamilyAll(trace, threads)),
                  base)
            << "threads=" << threads;
    }

    // The observability layer is instrumented into the engines'
    // hot paths; toggling it must not perturb one output byte.
    obs::setEnabled(false);
    const std::string obsOff =
        engines::formatFamilyReport(runFamilyAll(trace, 2));
    obs::setEnabled(true);
    EXPECT_EQ(obsOff, base);
}

} // namespace
} // namespace wmr
