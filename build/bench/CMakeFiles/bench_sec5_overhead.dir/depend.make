# Empty dependencies file for bench_sec5_overhead.
# This may be replaced when dependencies are built.
