#include "engines/wcp_engine.hh"

#include "obs/obs.hh"

namespace wmr::engines {

void
WcpEngine::begin(const EngineTraceInfo &info)
{
    procs_ = info.procs;
    proc_.assign(procs_, {});
    for (auto &p : proc_)
        p.clock = VectorClock(procs_);
}

bool
WcpEngine::conflicts(const ReleaseSnap &rel,
                     const std::vector<Addr> &writes,
                     const std::vector<Addr> &reads) const
{
    for (const Addr a : writes) {
        if (rel.writes.count(a) || rel.reads.count(a))
            return true;
    }
    for (const Addr a : reads) {
        if (rel.writes.count(a))
            return true;
    }
    return false;
}

void
WcpEngine::feed(const Event &ev)
{
    static obs::Counter events = obs::counter("engine.wcp.events");
    static obs::Counter taken =
        obs::counter("engine.wcp.joins_taken");
    static obs::Counter skipped =
        obs::counter("engine.wcp.joins_expired");
    events.inc();

    const ProcId p = ev.proc;
    if (p >= procs_) {
        procs_ = p + 1;
        proc_.resize(procs_);
    }
    ProcState &ps = proc_[p];
    const std::uint64_t epoch = ++ps.epoch;
    ps.clock.set(p, epoch);

    const bool isSync = ev.kind == EventKind::Sync;
    detail::eventAccesses(ev, writes_, reads_);

    if (!isSync && ps.pending &&
        conflicts(*ps.pendingRel, writes_, reads_)) {
        // WCP rule (a): the releaser's region conflicts with this
        // region access, so the release precedes it.
        ps.clock.join(ps.pendingRel->clock);
        ps.pending = false;
        taken.inc();
    }

    detail::testAndRecord(hist_, ev.id, p, epoch, isSync, ps.clock,
                          writes_, reads_, table_);

    if (isSync) {
        // The region ends here: publish this sync event's snapshot
        // (clock + the data footprint of the closed region), expire
        // any unconsumed pending join, then arm the pairing's join
        // for the region that starts now.
        ReleaseSnap snap;
        snap.clock = ps.clock;
        snap.reads = ps.regionReads;
        snap.writes = ps.regionWrites;
        syncSnap_.emplace(ev.id, std::move(snap));

        if (ps.pending) {
            ps.pending = false;
            skipped.inc();
        }
        if (ev.pairedRelease != kNoEvent) {
            const auto it = syncSnap_.find(ev.pairedRelease);
            if (it != syncSnap_.end()) {
                ps.pending = true;
                ps.pendingRel = &it->second;
            }
        }
        ps.regionReads.clear();
        ps.regionWrites.clear();
    } else {
        for (const Addr a : writes_)
            ps.regionWrites.insert(a);
        for (const Addr a : reads_)
            ps.regionReads.insert(a);
    }
}

EngineVerdict
WcpEngine::finish()
{
    static obs::Counter racesCtr = obs::counter("engine.wcp.races");

    EngineVerdict v;
    v.engine = name();
    v.semantics = "weak-causal precedence: release-join only over "
                  "conflicting critical regions (predictive)";
    v.races = table_.canonical();
    racesCtr.add(v.races.size());

    for (std::uint32_t i = 0; i < v.races.size(); ++i) {
        if (v.races[i].isDataRace)
            ++v.numDataRaces;
        v.reported.push_back(i);
    }
    v.anyDataRace = v.numDataRaces != 0;
    return v;
}

} // namespace wmr::engines
