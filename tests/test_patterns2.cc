/**
 * @file
 * Tests of the second batch of workload patterns: ticket lock,
 * double-checked initialization, invariant pair.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "sim/scheduler.hh"
#include "workload/patterns.hh"

namespace wmr {
namespace {

TEST(TicketLock, CorrectAndRaceFreeOnAllModels)
{
    const Program p = ticketLock(3, 2);
    for (const auto kind : kAllModels) {
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(p, opts);
            ASSERT_TRUE(res.completed)
                << modelName(kind) << " seed " << seed;
            EXPECT_EQ(res.memAt(3), 6); // 3 procs x 2 rounds
            EXPECT_EQ(res.staleReads, 0u);
            EXPECT_FALSE(analyzeExecution(res).anyDataRace());
        }
    }
}

TEST(TicketLock, TicketsAreUnique)
{
    const auto res = runProgram(ticketLock(4, 1),
                                {.model = ModelKind::WO, .seed = 3});
    ASSERT_TRUE(res.completed);
    // nextTicket dispensed 4 tickets; nowServing ends at 4.
    EXPECT_EQ(res.memAt(1), 4);
    EXPECT_EQ(res.memAt(2), 4);
}

TEST(DoubleCheckedInit, FixedVariantIsRaceFree)
{
    const Program p = doubleCheckedInit(2, /*fixed=*/true);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_FALSE(analyzeExecution(res).anyDataRace())
            << "seed " << seed;
        EXPECT_EQ(res.staleReads, 0u);
        // Every reader observed the initialized payload.
        EXPECT_EQ(res.memAt(3), 42);
        EXPECT_EQ(res.memAt(4), 42);
    }
}

TEST(DoubleCheckedInit, BrokenVariantRaces)
{
    const Program p = doubleCheckedInit(2, /*fixed=*/false);
    bool raced = false;
    for (std::uint64_t seed = 0; seed < 20 && !raced; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        raced = analyzeExecution(runProgram(p, opts)).anyDataRace();
    }
    EXPECT_TRUE(raced);
}

TEST(DoubleCheckedInit, BrokenVariantCanTearOnWeak)
{
    // The classic DCL failure, staged: the flag's store drains before
    // the payload's; reader P1 fast-paths on flag==1 and reads the
    // uninitialized payload.
    const Program p = doubleCheckedInit(2, /*fixed=*/false);
    // P0 (initializer): tas, bnz, load flag, bnz, store payload,
    // store flag  (6 picks); then the flag store drains; then P1:
    // load flag, bnz, load payload (fast), store out.
    ScriptedScheduler sched({0, 0, 0, 0, 0, 0, 1, 1, 1, 1});
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.drainLaziness = 1.0;
    opts.scheduler = &sched;
    opts.drainScript = {{.afterPick = 6, .proc = 0, .addr = 1}};
    const auto res = runProgram(p, opts);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.memAt(3), 0); // reader 0 (proc 1) saw payload==0
    EXPECT_GT(res.staleReads, 0u);
    // And the detector flags the broken publication as racing.
    EXPECT_TRUE(analyzeExecution(res).anyDataRace());
}

TEST(InvariantPair, LockedReadersSeeConsistentPairs)
{
    const Program p = invariantPair(2, 3);
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::DRF1;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(3), 0) << "seed " << seed; // a-b == 0
        EXPECT_EQ(res.memAt(4), 0) << "seed " << seed;
        EXPECT_FALSE(analyzeExecution(res).anyDataRace());
    }
}

TEST(InvariantPair, RacyReadersCanSeeTornPair)
{
    const Program p = invariantPair(2, 4, /*racy=*/true);
    bool torn = false, raced = false;
    for (std::uint64_t seed = 0; seed < 200 && !(torn && raced);
         ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.7;
        const auto res = runProgram(p, opts);
        if (!res.completed)
            continue;
        torn |= res.memAt(3) != 0 || res.memAt(4) != 0;
        raced |= analyzeExecution(res).anyDataRace();
    }
    EXPECT_TRUE(raced);
    EXPECT_TRUE(torn);
}

} // namespace
} // namespace wmr
