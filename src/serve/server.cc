#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/hash64.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "common/string_util.hh"
#include "common/worker_pool.hh"
#include "detect/analysis.hh"
#include "detect/report.hh"
#include "engines/family.hh"
#include "obs/obs.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/checkpoint.hh"
#include "serve/io_util.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"

namespace fs = std::filesystem;

namespace wmr::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Everything one upload's analysis produced. */
struct UploadOutcome
{
    bool ok = false;
    std::string error;
    TraceRunResult rr; ///< journal + meta source
    std::string report;
};

/**
 * The serve twin of the batch pipeline's analyzeOneTrace(): parse
 * (either container, optionally salvaging) and analyze an in-memory
 * upload.  The report is provenance + formatReport with default
 * options — EXACTLY what `wmrace check` (no --events) prints, which
 * is the byte-identity contract the golden replay diffs.  A nonzero
 * @p engineWire (validated by readRequest) switches to the detector
 * family: the report becomes provenance + the family report, byte-
 * identical to local `wmrace check --engine NAME`.
 */
UploadOutcome
analyzeUpload(const std::vector<std::uint8_t> &bytes, bool salvage,
              unsigned threads,
              std::uint32_t engineWire = kWireEngineDefault)
{
    UploadOutcome out;
    out.rr.fileBytes = bytes.size();

    ExecutionTrace trace;
    bool segmented = false;
    SalvageInfo salvageInfo;
    {
        obs::Span parseSpan("serve.parse");
        if (looksSegmented(bytes.data(), bytes.size())) {
            segmented = true;
            auto seg = salvage ? trySalvageTrace(bytes)
                               : tryReadSegmentedTrace(bytes);
            if (seg.ok() && seg.salvage.salvaged &&
                seg.trace.events().empty()) {
                seg.status = TraceIoStatus::FormatError;
                seg.error = "salvage recovered no events (" +
                            seg.salvage.summary() + ")";
            }
            if (!seg.ok()) {
                out.rr.status =
                    seg.status == TraceIoStatus::IoError
                        ? TraceRunStatus::IoError
                        : TraceRunStatus::FormatError;
                out.rr.error = seg.error;
                out.error = seg.error;
                return out;
            }
            out.rr.salvaged = seg.salvage.salvaged;
            out.rr.unresolvedPairings =
                seg.salvage.unresolvedPairings;
            out.rr.droppedDataRecords =
                seg.salvage.droppedDataRecords;
            salvageInfo = seg.salvage;
            trace = std::move(seg.trace);
        } else {
            auto parsed = tryDeserializeTrace(bytes);
            if (!parsed.ok()) {
                out.rr.status =
                    parsed.status == TraceIoStatus::IoError
                        ? TraceRunStatus::IoError
                        : TraceRunStatus::FormatError;
                out.rr.error = parsed.error;
                out.error = parsed.error;
                return out;
            }
            trace = std::move(parsed.trace);
        }
    }

    obs::Span analyzeSpan("serve.analyze");
    // engineWireName is null for 0/default AND for out-of-range ids
    // (possible only via a mangled spool file name — live requests
    // are validated by readRequest); both take the canonical path.
    if (const char *name = engineWireName(engineWire)) {
        const auto kinds = engines::parseEngineSelection(name);
        wmr_assert(kinds.has_value());
        engines::EngineFamilyOptions fopts;
        fopts.kinds = *kinds;
        fopts.threads = threads;
        const engines::EngineFamilyResult fam =
            engines::runEngineFamily(trace, fopts);
        out.rr.status = TraceRunStatus::Ok;
        fillFromEngineFamily(fam, out.rr);
        out.report = formatTraceProvenance(segmented, salvageInfo) +
                     engines::formatFamilyReport(fam);
        out.ok = true;
        return out;
    }
    AnalysisOptions aopts;
    aopts.threads = threads;
    const DetectionResult det = analyzeTrace(std::move(trace), aopts);

    out.rr.status = TraceRunStatus::Ok;
    out.rr.events = det.trace().events().size();
    out.rr.syncEvents = det.trace().numSyncEvents();
    out.rr.ops = det.trace().totalOps();
    out.rr.races = det.races().size();
    out.rr.dataRaces = det.numDataRaces();
    out.rr.partitions = det.partitions().partitions.size();
    out.rr.firstPartitions = det.partitions().firstPartitions.size();
    out.rr.reportedRaces = det.reportedRaces().size();
    out.rr.anyDataRace = det.anyDataRace();
    out.rr.wholeExecutionSc = det.scp().wholeExecutionSc;

    out.report = formatTraceProvenance(segmented, salvageInfo) +
                 formatReport(det);
    out.ok = true;
    return out;
}

/** Copy a completed run into the wire meta block. */
ResponseMeta
metaFromRunResult(const TraceRunResult &rr, std::uint64_t hash)
{
    ResponseMeta m;
    m.fileBytes = rr.fileBytes;
    m.events = rr.events;
    m.syncEvents = rr.syncEvents;
    m.ops = rr.ops;
    m.races = rr.races;
    m.dataRaces = rr.dataRaces;
    m.partitions = rr.partitions;
    m.firstPartitions = rr.firstPartitions;
    m.reportedRaces = rr.reportedRaces;
    m.anyDataRace = rr.anyDataRace;
    m.wholeExecutionSc = rr.wholeExecutionSc;
    m.salvaged = rr.salvaged;
    m.unresolvedPairings = rr.unresolvedPairings;
    m.droppedDataRecords = rr.droppedDataRecords;
    m.contentHash = hash;
    m.error = rr.error;
    return m;
}

std::uint32_t
responseFlagsFor(const TraceRunResult &rr)
{
    return (rr.anyDataRace ? kRespAnyDataRace : 0u) |
           (rr.salvaged ? kRespSalvaged : 0u);
}

/** Bucketed request latency counters (a cheap fixed histogram the
 *  obs snapshot exports; percentiles are read off the buckets). */
void
recordLatency(std::uint64_t ns)
{
    static obs::Counter count = obs::counter("serve.latency.count");
    static obs::Counter total =
        obs::counter("serve.latency.total_ns");
    static obs::Counter le1 = obs::counter("serve.latency.le_1ms");
    static obs::Counter le10 = obs::counter("serve.latency.le_10ms");
    static obs::Counter le100 =
        obs::counter("serve.latency.le_100ms");
    static obs::Counter le1s = obs::counter("serve.latency.le_1s");
    static obs::Counter le10s =
        obs::counter("serve.latency.le_10s");
    static obs::Counter inf = obs::counter("serve.latency.inf");
    count.inc();
    total.add(ns);
    const double ms = static_cast<double>(ns) / 1e6;
    if (ms <= 1.0)
        le1.inc();
    else if (ms <= 10.0)
        le10.inc();
    else if (ms <= 100.0)
        le100.inc();
    else if (ms <= 1000.0)
        le1s.inc();
    else if (ms <= 10000.0)
        le10s.inc();
    else
        inf.inc();
}

/** Parse the flags field back out of a spool file name
 *  ("h<16hex>-s<bytes>-f<flags>.req"); 0 when unparseable. */
std::uint32_t
flagsFromSpoolName(const std::string &name)
{
    const std::size_t f = name.rfind("-f");
    if (f == std::string::npos)
        return 0;
    return static_cast<std::uint32_t>(
        std::strtoul(name.c_str() + f + 2, nullptr, 10));
}

} // namespace

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheBytes, opts_.cacheDir),
      queue_(opts_.maxQueue)
{
    const unsigned jobs = resolveThreads(opts_.jobs);
    workerCount_ = opts_.workers != 0 ? opts_.workers
                                      : std::min(jobs, 4u);
    if (workerCount_ == 0)
        workerCount_ = 1;
    // Carve the global budget across concurrent analyses: W workers
    // at J/W threads each never oversubscribe the --jobs cores.
    analysisThreads_ = std::max(1u, jobs / workerCount_);
}

Server::~Server()
{
    if (started_) {
        beginShutdown();
        waitDrained();
    }
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
}

bool
Server::bindListener()
{
    if (opts_.tcpPort >= 0) {
        listenFd_ = ::socket(AF_INET,
                             SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0) {
            error_ = std::string("socket: ") +
                     std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcpPort));
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            error_ = strformat("bind tcp:127.0.0.1:%d: %s",
                               opts_.tcpPort,
                               std::strerror(errno));
            ::close(listenFd_);
            listenFd_ = -1;
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr), &len);
        boundTcpPort_ = ntohs(addr.sin_port);
    } else {
        if (opts_.socketPath.empty()) {
            error_ = "serve: no socket path and no TCP port";
            return false;
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
            error_ = strformat(
                "socket path '%s' exceeds the unix-domain limit "
                "of %zu bytes",
                opts_.socketPath.c_str(),
                sizeof(addr.sun_path) - 1);
            return false;
        }
        std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                    opts_.socketPath.size() + 1);
        ::unlink(opts_.socketPath.c_str());
        listenFd_ = ::socket(AF_UNIX,
                             SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0) {
            error_ = std::string("socket: ") +
                     std::strerror(errno);
            return false;
        }
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            error_ = strformat("bind %s: %s",
                               opts_.socketPath.c_str(),
                               std::strerror(errno));
            ::close(listenFd_);
            listenFd_ = -1;
            return false;
        }
    }
    if (::listen(listenFd_, 64) != 0) {
        error_ = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    return true;
}

bool
Server::recoverSpool()
{
    if (opts_.spoolDir.empty())
        return true;
    std::error_code ec;
    fs::create_directories(opts_.spoolDir, ec);
    if (ec) {
        error_ = strformat("spool dir %s: %s",
                           opts_.spoolDir.c_str(),
                           ec.message().c_str());
        return false;
    }
    const std::string journalPath =
        opts_.spoolDir + "/journal.wmrck";

    // What the previous incarnation finished: journaled spool paths
    // are complete (response may have been lost, but the analysis
    // was not); anything else on disk was admitted but cut short.
    const CheckpointLoad done = loadCheckpoint(journalPath);
    std::unordered_set<std::string> finished;
    for (const TraceRunResult &e : done.entries)
        finished.insert(e.path);

    const unsigned bootThreads = resolveThreads(opts_.jobs);
    for (const fs::directory_entry &de :
         fs::directory_iterator(opts_.spoolDir, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string path = de.path().string();
        if (de.path().extension() != ".req")
            continue;
        if (finished.count(path) != 0) {
            fs::remove(de.path(), ec);
            continue;
        }
        std::vector<std::uint8_t> bytes;
        if (!readWholeFile(path, bytes)) {
            warn("serve: cannot read spooled request %s",
                 path.c_str());
            continue;
        }
        const std::uint32_t flags =
            flagsFromSpoolName(de.path().filename().string());
        // Never trust the name for the content address: rehash.
        UploadOutcome out = analyzeUpload(
            bytes, (flags & kReqSalvage) != 0, bootThreads,
            requestEngineWire(flags));
        if (out.ok) {
            CacheKey key{contentHash64(bytes.data(), bytes.size()),
                         bytes.size(), cacheRelevantFlags(flags)};
            CachedResult value;
            value.meta = metaFromRunResult(out.rr, key.hash);
            value.respFlags = responseFlagsFor(out.rr);
            value.report = out.report;
            cache_.put(key, value);
        }
        recovered_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.recovered").inc();
        fs::remove(de.path(), ec);
    }

    // The spool is empty again: restart the journal from scratch so
    // it tracks only this incarnation's in-flight work.
    fs::remove(journalPath, ec);
    journal_ = std::make_unique<CheckpointWriter>();
    if (!journal_->open(journalPath)) {
        error_ = journal_->lastError();
        return false;
    }
    return true;
}

bool
Server::start()
{
    if (::pipe(wakePipe_) != 0) {
        error_ = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (!recoverSpool())
        return false;
    if (!bindListener())
        return false;
    for (unsigned i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return true;
}

void
Server::waitDrained()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    started_ = false;
}

bool
Server::run()
{
    if (!start())
        return false;
    waitDrained();
    return true;
}

void
Server::beginShutdown()
{
    // Async-signal-safe: one write on the pre-opened self-pipe.
    const char byte = 1;
    if (wakePipe_[1] >= 0)
        (void)!::write(wakePipe_[1], &byte, 1);
}

std::string
Server::boundAddress() const
{
    if (opts_.tcpPort >= 0)
        return strformat("tcp:127.0.0.1:%d", boundTcpPort_);
    return opts_.socketPath;
}

ServeStats
Server::stats() const
{
    ServeStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.analyses = analyses_.load(std::memory_order_relaxed);
    s.overloaded = overloaded_.load(std::memory_order_relaxed);
    s.badRequests = badRequests_.load(std::memory_order_relaxed);
    s.drainRejected =
        drainRejected_.load(std::memory_order_relaxed);
    s.recovered = recovered_.load(std::memory_order_relaxed);
    s.queueDepth = queue_.depth();
    s.inflightBytes =
        inflightBytes_.load(std::memory_order_relaxed);
    return s;
}

std::string
Server::statusJson() const
{
    const ServeStats s = stats();
    const CacheStats c = cache_.stats();
    std::string out = "{\"schema\": \"wmrace-serve-status\"";
    out += strformat(", \"address\": \"%s\"",
                     boundAddress().c_str());
    out += strformat(", \"draining\": %s",
                     draining_.load() ? "true" : "false");
    out += strformat(", \"workers\": %u", workerCount_);
    out += strformat(", \"analysis_threads\": %u",
                     analysisThreads_);
    out += strformat(", \"max_queue\": %zu", opts_.maxQueue);
    out += strformat(", \"queue_depth\": %llu",
                     static_cast<unsigned long long>(s.queueDepth));
    out += strformat(
        ", \"inflight_bytes\": %llu",
        static_cast<unsigned long long>(s.inflightBytes));
    out += strformat(", \"requests\": %llu",
                     static_cast<unsigned long long>(s.requests));
    out += strformat(", \"analyses\": %llu",
                     static_cast<unsigned long long>(s.analyses));
    out += strformat(", \"overloaded\": %llu",
                     static_cast<unsigned long long>(s.overloaded));
    out += strformat(
        ", \"bad_requests\": %llu",
        static_cast<unsigned long long>(s.badRequests));
    out += strformat(
        ", \"drain_rejected\": %llu",
        static_cast<unsigned long long>(s.drainRejected));
    out += strformat(", \"recovered\": %llu",
                     static_cast<unsigned long long>(s.recovered));
    out += strformat(
        ", \"cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"disk_hits\": %llu, \"insertions\": %llu, "
        "\"evictions\": %llu, \"entries\": %llu, "
        "\"bytes\": %llu, \"byte_budget\": %llu}",
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.diskHits),
        static_cast<unsigned long long>(c.insertions),
        static_cast<unsigned long long>(c.evictions),
        static_cast<unsigned long long>(c.entries),
        static_cast<unsigned long long>(c.bytes),
        static_cast<unsigned long long>(c.byteBudget));
    out += "}";
    return out;
}

void
Server::respondAndClose(int fd, const Response &resp)
{
    const std::vector<std::uint8_t> frame =
        encodeResponseFrame(resp);
    // Fault injection: a truncated response — half the frame, then
    // close.  The CLIENT must turn this into a typed transport
    // error (readResponse sees EOF mid-frame), never a hang or a
    // partial report passed off as complete.
    if (fault::at("serve.resp.truncate")) {
        (void)writeAll(fd, frame.data(), frame.size() / 2);
        ::close(fd);
        return;
    }
    (void)writeAll(fd, frame.data(), frame.size());
    ::close(fd);
}

std::string
Server::spoolRequest(const Job &job)
{
    if (opts_.spoolDir.empty() ||
        (job.reqFlags & kReqNoCache) != 0)
        return "";
    const std::string path =
        opts_.spoolDir + "/" +
        strformat("h%s-s%llu-f%u.req",
                  hash64Hex(job.key.hash).c_str(),
                  static_cast<unsigned long long>(job.key.bytes),
                  job.key.flags);
    // A spool-dir write failure (real or injected ENOSPC) is a
    // counted degradation, not an error: the request is still
    // analyzed and answered, it just loses crash-recovery coverage.
    AtomicWriteStatus st = AtomicWriteStatus::Ok;
    if (fault::at("serve.spool.enospc")) {
        obs::counter("serve.disk.enospc").inc();
        st = AtomicWriteStatus::NoSpace;
    } else {
        st = writeFileAtomicStatus(path, job.body);
    }
    if (st != AtomicWriteStatus::Ok) {
        obs::counter("serve.spool.degraded").inc();
        if (st != AtomicWriteStatus::NoSpace)
            warn("serve: cannot spool request to %s", path.c_str());
        return "";
    }
    return path;
}

void
Server::handleAnalyze(int fd, Request &req)
{
    Response resp;
    if (draining_.load(std::memory_order_relaxed)) {
        drainRejected_.fetch_add(1, std::memory_order_relaxed);
        resp.status = RespStatus::Draining;
        resp.retryAfterMs = opts_.retryAfterMs;
        resp.meta.error = "server is draining";
        respondAndClose(fd, resp);
        return;
    }

    Job job;
    job.fd = fd;
    job.reqFlags = req.flags;
    job.body = std::move(req.body);
    job.key = CacheKey{
        contentHash64(job.body.data(), job.body.size()),
        job.body.size(), cacheRelevantFlags(req.flags)};

    // Cache-hit fast path, answered straight from the accept loop:
    // no queueing, no worker, no analysis spans — the acceptance
    // test for "served from cache" keys off exactly that.
    if ((req.flags & kReqNoCache) == 0) {
        CachedResult hit;
        if (cache_.get(job.key, hit)) {
            obs::counter("serve.cache.hit").inc();
            resp.status = RespStatus::Ok;
            resp.flags = hit.respFlags | kRespCacheHit;
            resp.meta = hit.meta;
            resp.report = hit.report;
            respondAndClose(fd, resp);
            return;
        }
        obs::counter("serve.cache.miss").inc();
    }

    // Admission control: a request that does not fit the queue or
    // the in-flight byte budget is refused NOW, with a retry hint —
    // never queued unboundedly, never blocking the accept loop.
    const std::uint64_t bytes = job.body.size();
    // Charge the in-flight budget BEFORE the push: the worker that
    // pops the job subtracts, and charging first keeps the counter
    // from transiently underflowing past the budget check.
    const std::uint64_t charged =
        inflightBytes_.fetch_add(bytes,
                                 std::memory_order_relaxed) +
        bytes;
    const bool fitsBytes = charged <= opts_.maxInflightBytes;
    bool admitted = false;
    if (fitsBytes) {
        job.spoolPath = spoolRequest(job);
        const std::string spooled = job.spoolPath;
        admitted = queue_.tryPush(std::move(job));
        if (!admitted && !spooled.empty())
            ::unlink(spooled.c_str());
    }
    if (!admitted) {
        inflightBytes_.fetch_sub(bytes,
                                 std::memory_order_relaxed);
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.overloaded").inc();
        resp.status = RespStatus::Overloaded;
        resp.retryAfterMs = opts_.retryAfterMs;
        resp.meta.error =
            fitsBytes ? "request queue is full"
                      : "in-flight byte budget is exhausted";
        respondAndClose(fd, resp);
        return;
    }
    obs::gauge("serve.inflight.bytes")
        .set(inflightBytes_.load(std::memory_order_relaxed));
    obs::gauge("serve.queue.depth").max(queue_.depth());
}

void
Server::handleConnection(int fd)
{
    if (opts_.ioTimeoutSec > 0) {
        timeval tv{};
        tv.tv_sec = opts_.ioTimeoutSec;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    Request req;
    std::string err;
    // The io timeout doubles as the TOTAL per-request read deadline
    // (x4 for a margin over per-recv stalls): a slow-loris client
    // that keeps each recv() just under SO_RCVTIMEO still cannot
    // hold the accept loop past the deadline.
    const std::uint32_t deadlineMs =
        opts_.ioTimeoutSec > 0
            ? static_cast<std::uint32_t>(opts_.ioTimeoutSec) * 4000u
            : 0;
    const FrameReadStatus rs =
        readRequest(fd, opts_.maxRequestBytes, req, err, deadlineMs);
    if (rs == FrameReadStatus::Eof ||
        rs == FrameReadStatus::IoError) {
        if (errno == ETIMEDOUT || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            obs::counter("serve.read_timeout").inc();
        ::close(fd);
        return;
    }
    // Fault injection: drop the connection after a full request —
    // the client sees a reset mid-frame and must surface a typed
    // transport error, never a hang.
    if (fault::at("serve.conn.reset")) {
        ::close(fd);
        return;
    }
    if (rs == FrameReadStatus::Malformed ||
        rs == FrameReadStatus::TooLarge) {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.bad_request").inc();
        Response resp;
        resp.status = RespStatus::BadRequest;
        resp.meta.error = err;
        respondAndClose(fd, resp);
        return;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.requests").inc();

    switch (req.command) {
      case Command::Status: {
        Response resp;
        resp.status = RespStatus::Ok;
        resp.report = statusJson();
        respondAndClose(fd, resp);
        return;
      }
      case Command::Shutdown: {
        Response resp;
        resp.status = RespStatus::Ok;
        respondAndClose(fd, resp);
        beginShutdown();
        return;
      }
      case Command::Analyze:
        handleAnalyze(fd, req);
        return;
    }
    ::close(fd);
}

void
Server::acceptLoop()
{
    obs::setThreadName("serve.accept");
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents & POLLIN)
            draining_.store(true, std::memory_order_relaxed);
        if (fds[0].revents & POLLIN) {
            const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                     SOCK_CLOEXEC);
            if (fd >= 0) {
                // Fault injection: accept "failure" — the accepted
                // connection is dropped on the floor (as an fd-
                // exhausted server would).  The loop must keep
                // serving; the client sees a reset and retries.
                if (fault::at("serve.accept.fail")) {
                    ::close(fd);
                    continue;
                }
                handleConnection(fd);
            } else if (errno != EINTR && errno != ECONNABORTED) {
                warn("serve: accept: %s", std::strerror(errno));
            }
        }
        if (draining_.load(std::memory_order_relaxed))
            break;
    }
    ::close(listenFd_);
    listenFd_ = -1;
    if (opts_.tcpPort < 0 && !opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    // No new work can arrive: let the workers drain what is queued
    // (every admitted request is still analyzed and answered) and
    // then exit their pop loops.
    queue_.close();
}

void
Server::serveJob(Job &job, unsigned analysisThreads)
{
    const Clock::time_point start = Clock::now();
    obs::Span reqSpan("serve.request");
    reqSpan.annotate(hash64Hex(job.key.hash));

    if (opts_.testAnalysisGate)
        opts_.testAnalysisGate();

    analyses_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.analyses").inc();

    const bool salvage = (job.reqFlags & kReqSalvage) != 0;
    UploadOutcome out =
        analyzeUpload(job.body, salvage, analysisThreads,
                      requestEngineWire(job.reqFlags));

    Response resp;
    if (out.ok) {
        resp.status = RespStatus::Ok;
        resp.flags = responseFlagsFor(out.rr);
        resp.meta = metaFromRunResult(out.rr, job.key.hash);
        resp.report = std::move(out.report);
        if ((job.reqFlags & kReqNoCache) == 0) {
            CachedResult value;
            value.meta = resp.meta;
            value.respFlags = resp.flags;
            value.report = resp.report;
            cache_.put(job.key, value);
        }
    } else {
        resp.status = RespStatus::BadRequest;
        resp.meta = metaFromRunResult(out.rr, job.key.hash);
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.bad_request").inc();
    }

    // Journal BEFORE unlinking the spool entry: a crash between the
    // two re-analyzes at worst one already-finished request.  A
    // failed append degrades the same way: the spool entry is still
    // unlinked (the response IS being sent), we merely lose the
    // crash-dedup for this one request — counted, not fatal.
    if (!job.spoolPath.empty() && journal_) {
        out.rr.path = job.spoolPath;
        if (!journal_->append(out.rr))
            obs::counter("serve.journal.degraded").inc();
        ::unlink(job.spoolPath.c_str());
    }

    inflightBytes_.fetch_sub(job.body.size(),
                             std::memory_order_relaxed);
    obs::gauge("serve.inflight.bytes")
        .set(inflightBytes_.load(std::memory_order_relaxed));

    respondAndClose(job.fd, resp);
    recordLatency(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count()));
}

void
Server::workerLoop(unsigned index)
{
    obs::setThreadName(strformat("serve.worker.%u", index));
    Job job;
    while (queue_.pop(job))
        serveJob(job, analysisThreads_);
}

} // namespace wmr::serve
