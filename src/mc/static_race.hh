/**
 * @file
 * Static (source-level) identity of races, for cross-execution
 * comparison.
 *
 * A dynamic race is a pair of dynamic events; different executions
 * produce different dynamic races.  To ask "does this race also occur
 * in some sequentially consistent execution?" (the SCP question) we
 * compare races by their STATIC identity: the unordered pair of
 * (processor, pc) sites of the conflicting operations.
 */

#ifndef WMR_MC_STATIC_RACE_HH
#define WMR_MC_STATIC_RACE_HH

#include <compare>
#include <set>

#include "common/types.hh"
#include "detect/analysis.hh"

namespace wmr {

/** A static operation site. */
struct StaticOpRef
{
    ProcId proc = 0;
    std::uint32_t pc = 0;

    auto operator<=>(const StaticOpRef &) const = default;
};

/** An unordered static race pair (x ≤ y canonically). */
struct StaticRace
{
    StaticOpRef x;
    StaticOpRef y;

    auto operator<=>(const StaticRace &) const = default;

    /** Canonicalize so the smaller site comes first. */
    static StaticRace
    make(StaticOpRef a, StaticOpRef b)
    {
        if (b < a)
            return {b, a};
        return {a, b};
    }
};

/** Set of static races. */
using StaticRaceSet = std::set<StaticRace>;

/**
 * @return the static pairs of conflicting lower-level operations
 * represented by dynamic race @p r of @p result (requires member
 * operations in the trace and the original @p ops stream).
 */
StaticRaceSet staticPairsOfRace(const DetectionResult &result, RaceId r,
                                const std::vector<MemOp> &ops);

/** @return union of staticPairsOfRace over @p raceIds. */
StaticRaceSet staticPairsOfRaces(const DetectionResult &result,
                                 const std::vector<RaceId> &raceIds,
                                 const std::vector<MemOp> &ops);

} // namespace wmr

#endif // WMR_MC_STATIC_RACE_HH
