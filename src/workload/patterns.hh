/**
 * @file
 * The program pattern library: the paper's figures as executable
 * programs, plus the classic sharing patterns the evaluation sweeps
 * over.
 *
 * Address-layout conventions of each pattern are documented on the
 * factory; every pattern names its shared variables so reports read
 * like the paper's figures.
 */

#ifndef WMR_WORKLOAD_PATTERNS_HH
#define WMR_WORKLOAD_PATTERNS_HH

#include "prog/program.hh"

namespace wmr {

/**
 * Figure 1(a): two processors, conflicting data accesses, NO
 * synchronization — the canonical racy execution.
 *
 *   P1: Write(x); Write(y)        P2: Read(y); Read(x)
 */
Program figure1a();

/**
 * Figure 1(b): same data accesses ordered by an Unset/Test&Set pair —
 * data-race-free.
 *
 *   P1: Write(x); Write(y); Unset(s)
 *   P2: while (Test&Set(s)) ; Read(y); Read(x)
 *
 * s starts locked (1) so P2's acquire always pairs with P1's Unset.
 */
Program figure1b();

/** Parameters of the Figure 2 work-queue fragment. */
struct QueueParams
{
    /** Region length ("0..100" in the paper). */
    std::uint32_t regionSize = 100;

    /** Initial (stale) queue content — the paper's 37. */
    std::uint32_t staleOffset = 37;

    /**
     * Include the Test&Set critical sections the programmer forgot.
     * false reproduces the buggy fragment of Figure 2(a); true gives
     * the corrected, data-race-free program.
     */
    bool withTestAndSet = false;
};

/**
 * Figure 2(a): the work-queue fragment with the missing Test&Set.
 *
 *   P1 enqueues region offset `regionSize` and clears QEmpty;
 *   P2 polls QEmpty, dequeues, and works region [addr, addr+size);
 *   P3 independently works region [0, size).
 *
 * On a weak system, P1's write of QEmpty can become visible before
 * its write of Q; P2 then dequeues the stale offset (37) and its
 * region overlaps P3's — the non-sequentially-consistent data races
 * of Figure 2(b).
 *
 * Layout: Q=0, QEmpty=1, S=2, region words start at 3.
 */
Program figure2Queue(const QueueParams &params = {});

/**
 * Message passing: P0 writes `slots` data words then signals; P1
 * waits for the signal and reads them.  @p racy replaces the
 * release/acquire flag protocol with plain data accesses.
 */
Program messagePassing(std::uint32_t slots = 4, bool racy = false);

/**
 * @p procs processors each add @p increments to a shared counter
 * under a Test&Set lock.  @p racy skips the lock entirely.
 */
Program lockedCounter(ProcId procs = 4, std::uint32_t increments = 8,
                      bool racy = false);

/**
 * Producer/consumer over a @p slots-deep single-producer queue with
 * a release/acquire head index.  @p racy demotes the head index
 * updates to data operations.
 */
Program producerConsumer(std::uint32_t items = 8,
                         std::uint32_t slots = 4, bool racy = false);

/**
 * Two-phase computation: every processor writes its own stripe of an
 * array, all meet at a flag barrier, then every processor reads the
 * whole array.  Race-free; exercises many-proc sync chains.
 */
Program barrierStripes(ProcId procs = 4, std::uint32_t stripe = 4);

/**
 * Dekker-style mutual exclusion implemented with DATA flag accesses
 * only (no hardware-recognized sync): intentionally full of data
 * races, and on weak systems the mutual exclusion actually breaks.
 * Both processors enter, bump a shared counter, and leave.
 */
Program dekkerDataFlags();

/**
 * Ticket lock built from one Test&Set-protected dispenser plus a
 * release/acquire now-serving counter; @p procs processors each
 * increment a shared counter @p rounds times under it.  Race-free;
 * exercises mixed Test&Set + flag synchronization.
 */
Program ticketLock(ProcId procs = 3, std::uint32_t rounds = 2);

/**
 * Double-checked initialization: readers test an init flag with a
 * DATA read before taking the lock.  The classic broken idiom:
 * @p fixed=false uses a plain data flag (racy — readers can observe
 * the flag before the payload); @p fixed=true publishes the flag
 * with a release and re-reads it with an acquire (race-free).
 * Layout: lock=0, flag=1, payload=2; each reader stores the payload
 * it observed at address 3+reader.
 */
Program doubleCheckedInit(ProcId readers = 2, bool fixed = false);

/**
 * One writer updates two words under a lock; @p readers readers read
 * both under the same lock (race-free) or, with @p racy, without it
 * (torn reads possible).  The "invariant pair" pattern.
 */
Program invariantPair(ProcId readers = 2, std::uint32_t updates = 4,
                      bool racy = false);

} // namespace wmr

#endif // WMR_WORKLOAD_PATTERNS_HH
