/**
 * @file
 * Scalability of the post-mortem pipeline (supports Section 5's
 * claim that analysis cost is comparable to the accurate SC-system
 * techniques [NeM90, NeM91]): time per stage — tracing, hb1 graph,
 * reachability index (SCC + clocks), race enumeration, augmented
 * graph + partitions — as the execution grows from ~1k to ~100k
 * operations.
 */

#include "bench_util.hh"

#include <chrono>

#include "detect/analysis.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

Program
bigProgram(std::uint32_t blocks)
{
    RandomProgConfig cfg;
    cfg.seed = 9;
    cfg.procs = 8;
    cfg.blocksPerProc = blocks;
    cfg.opsPerBlock = 10;
    cfg.dataWords = 256;
    cfg.numLocks = 16;
    cfg.unlockedProb = 0.02;
    return randomProgram(cfg);
}

ExecutionResult
execOf(std::uint32_t blocks)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 9;
    opts.maxSteps = 10'000'000;
    return runProgram(bigProgram(blocks), opts);
}

void
reproduce()
{
    section("pipeline scaling (one-shot wall-clock per stage)");
    std::printf("  %-10s %10s %10s %10s %12s %12s %12s\n", "ops",
                "events", "races", "parts", "trace ms", "detect ms",
                "total ms");
    for (const std::uint32_t blocks : {4u, 16u, 64u, 256u}) {
        const auto res = execOf(blocks);
        const auto t0 = std::chrono::steady_clock::now();
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        const auto t1 = std::chrono::steady_clock::now();
        const auto det = analyzeTrace(trace);
        const auto t2 = std::chrono::steady_clock::now();
        const auto ms = [](auto a, auto b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        std::printf("  %-10zu %10zu %10zu %10zu %12.2f %12.2f "
                    "%12.2f\n",
                    res.ops.size(), trace.events().size(),
                    det.races().size(),
                    det.partitions().partitions.size(), ms(t0, t1),
                    ms(t1, t2), ms(t0, t2));
    }
    note("near-linear in events: per-address candidate generation + "
         "SCC condensation");
    note("+ O(components x procs) reachability clocks.");
}

void
BM_FullPipeline(benchmark::State &state)
{
    const auto res = execOf(static_cast<std::uint32_t>(
        state.range(0)));
    for (auto _ : state) {
        auto det = analyzeExecution(res);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_FullPipeline)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_TraceBuild(benchmark::State &state)
{
    const auto res = execOf(static_cast<std::uint32_t>(
        state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(buildTrace(res).events().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_TraceBuild)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_Simulation(benchmark::State &state)
{
    const Program p = bigProgram(static_cast<std::uint32_t>(
        state.range(0)));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = ++seed;
        opts.maxSteps = 10'000'000;
        benchmark::DoNotOptimize(runProgram(p, opts).ops.size());
    }
}
BENCHMARK(BM_Simulation)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

WMR_BENCH_MAIN(reproduce)
