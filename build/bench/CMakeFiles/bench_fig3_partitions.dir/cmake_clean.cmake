file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_partitions.dir/bench_fig3_partitions.cc.o"
  "CMakeFiles/bench_fig3_partitions.dir/bench_fig3_partitions.cc.o.d"
  "bench_fig3_partitions"
  "bench_fig3_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
