# Empty dependencies file for wmr_pipeline.
# This may be replaced when dependencies are built.
