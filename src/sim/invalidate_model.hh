/**
 * @file
 * Invalidation-protocol realization of the SC and weak memory models.
 *
 * The store-buffer model (store_buffer_model.hh) delays the
 * VISIBILITY of writes; this model delays the DEATH of stale copies —
 * the other classic way 1991-era weak hardware reordered memory
 * (Dubois/Scheurich/Briggs' "memory access buffering" is argued in
 * terms of pending invalidations).  Having two structurally different
 * realizations lets the test suite check that Condition 3.4 is a
 * property of the CLASS of implementations (Theorem 3.5), not an
 * artifact of one simulator design.
 *
 * Mechanics (write-through, invalidate-based):
 *  - memory always holds the latest written value;
 *  - a data write updates memory and QUEUES an invalidation into
 *    every other processor's inbox; the writer caches the line;
 *  - a data read hits the local cache if a copy exists — possibly a
 *    STALE copy whose invalidation is still sitting in the inbox —
 *    otherwise fetches from memory and caches the line;
 *  - background ticks apply random inbox entries (drainLaziness
 *    semantics match the store-buffer model);
 *  - EVERY acquire flushes the processor's whole inbox before
 *    reading, on every weak model — that is what restores sequential
 *    consistency across paired synchronization; models with
 *    drainOnAllSync (WO, DRF0, TSO, PSO) additionally flush on
 *    non-acquire sync operations (sync writes);
 *  - under SC invalidations apply instantly, so reads are always
 *    fresh.
 *
 * A key observable difference from the store-buffer model: a
 * processor can only read stale data it had CACHED before the
 * conflicting write, so the Figure 1(a)/2(b) violations require a
 * warm-up read — see stageInvalidateFigure1a in workload/scenarios.
 */

#ifndef WMR_SIM_INVALIDATE_MODEL_HH
#define WMR_SIM_INVALIDATE_MODEL_HH

#include <unordered_map>
#include <vector>

#include "sim/store_buffer_model.hh"

namespace wmr {

/** Invalidation-queue based memory model (all seven kinds). */
class InvalidateModel : public MemoryModel
{
  public:
    InvalidateModel(ModelPolicy policy, ProcId procs, Addr words,
                    const CostParams &cost, double drainLaziness);

    ModelKind kind() const override { return policy_.kind; }

    ReadResult readData(ProcId proc, Addr addr) override;
    WriteResult writeData(ProcId proc, Addr addr, Value value,
                          OpId id) override;
    ReadResult readSync(ProcId proc, Addr addr, bool acquire) override;
    WriteResult writeSync(ProcId proc, Addr addr, Value value, OpId id,
                          bool release) override;
    Tick fence(ProcId proc) override;
    Tick fenceStoreStore(ProcId proc) override;
    void tick(Rng &rng) override;
    void drainAll() override;
    void drainAddr(ProcId proc, Addr addr) override;
    std::size_t pendingStores(ProcId proc) const override;
    Value globalValue(Addr addr) const override;
    const std::vector<OpId> &visibilityOrder() const override
    {
        return visibility_;
    }

  private:
    /** One cached copy of a word. */
    struct Line
    {
        Value value = 0;
        OpId writer = kNoOp;
    };

    void ensureAddr(Addr addr);

    /** Queue invalidations of @p addr to every processor but @p from. */
    void broadcastInval(ProcId from, Addr addr);

    /** Apply every pending invalidation of @p proc's inbox. */
    std::size_t flushInbox(ProcId proc);

    /** Cost of applying @p n invalidations at a sync point. */
    Tick flushCost(std::size_t n) const;

    ModelPolicy policy_;
    CostParams cost_;
    double drainLaziness_;

    std::vector<Value> memory_;
    std::vector<OpId> lastWriter_;

    // Issue-order SC witness (same role as in the buffer model).
    std::vector<OpId> shadowWriter_;

    std::vector<std::unordered_map<Addr, Line>> caches_;
    std::vector<std::vector<Addr>> inbox_;

    /** Witnessed coherence order: write-through memory makes every
     *  write visible at issue, so this is the write issue order. */
    std::vector<OpId> visibility_;
};

} // namespace wmr

#endif // WMR_SIM_INVALIDATE_MODEL_HH
