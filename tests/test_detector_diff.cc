/**
 * @file
 * The detector-family differential harness — the acceptance suite
 * of the pluggable-engine refactor (src/engines/).
 *
 * Every trace class the project can produce is pushed through the
 * full containment chain {hb1, shb, wcp} in one stream pass and the
 * family's pairwise verdict-containment checks must come back with
 * ZERO violations:
 *
 *   reported(hb1) ⊆ races(shb) == races(hb1) ⊆ races(wcp)
 *
 * Trace classes covered:
 *
 *  - DetectorDiff.GoldenCorpus*:     every committed golden trace
 *    (EVENT and segmented containers, incl. the damaged fixture via
 *    salvage), plus byte-identity of the hb1 engine's canonical
 *    report against the stock whole-trace pipeline;
 *  - DetectorDiff.FigurePrograms*:   the paper's figure programs ×
 *    all five memory models × seeds, with the SHB first-race vs hb1
 *    first-partition cross-check;
 *  - DetectorDiff.WorkloadSynthetics*: generator shapes (race-free,
 *    sparse, dense-hot) with report byte-identity across --jobs;
 *  - DetectorDiff.SalvagedTruncated*: truncation points across a
 *    segmented trace, each salvaged prefix re-verified;
 *  - DetectorDiff.CrossValidation*:  the shb clock engine's race
 *    set against the independent reachability-index pipeline;
 *  - DetectorDiff.OpLevelAdapters*:  the vc/epoch/lockset adapters
 *    run from the same stream — deterministic, flagged opLevel,
 *    and the vc adapter flags a hand-built W-W race.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "engines/family.hh"
#include "sim/executor.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/synthetic_trace.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

/** Run the full containment chain over @p trace. */
engines::EngineFamilyResult
runChain(const ExecutionTrace &trace, unsigned threads = 1)
{
    const auto kinds = engines::parseEngineSelection("all");
    EXPECT_TRUE(kinds.has_value());
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = threads;
    return engines::runEngineFamily(trace, fopts);
}

/** The harness' core assertion: the chain ran, every pairwise
 *  containment check passed, zero violations. */
void
expectChainClean(const engines::EngineFamilyResult &fam,
                 const std::string &what)
{
    ASSERT_EQ(fam.verdicts.size(), 3u) << what;
    EXPECT_TRUE(fam.containment.checkedReportedInShb) << what;
    EXPECT_TRUE(fam.containment.checkedShbMatchesHb1) << what;
    EXPECT_TRUE(fam.containment.checkedShbInWcp) << what;
    EXPECT_TRUE(fam.containment.reportedInShb) << what;
    EXPECT_TRUE(fam.containment.shbMatchesHb1) << what;
    EXPECT_TRUE(fam.containment.shbInWcp) << what;
    EXPECT_EQ(fam.containment.violations, 0u) << what;
    for (const std::string &note : fam.containment.notes)
        ADD_FAILURE() << what << ": " << note;

    // The family's aggregate verdict is the OR of its members.
    bool any = false;
    for (const auto &v : fam.verdicts)
        any = any || v.anyDataRace;
    EXPECT_EQ(fam.anyDataRace, any) << what;

    // The agreement JSON always carries the zero-violation tail.
    const std::string json = engines::familyAgreementJson(fam);
    EXPECT_NE(json.find("\"schema\":\"wmrace-engine-agreement\""),
              std::string::npos)
        << what;
    EXPECT_NE(json.find("\"violations\":0"), std::string::npos)
        << what << ": " << json;
}

/** SHB first-race vs hb1 first-partition cross-check: hb1's
 *  REPORTED races are a subset of shb's race set, so on every
 *  variable an hb1-reported race touches, shb's per-variable first
 *  race completes no later than that reported race. */
void
expectShbFirstRacesCoverHb1Reported(
    const engines::EngineFamilyResult &fam, const std::string &what)
{
    const engines::EngineVerdict *hb1 = fam.verdict("hb1");
    const engines::EngineVerdict *shb = fam.verdict("shb");
    ASSERT_NE(hb1, nullptr) << what;
    ASSERT_NE(shb, nullptr) << what;

    const auto firstOn =
        [&](Addr a) -> const engines::EngineRace * {
        for (const auto &[addr, idx] : shb->firstRacePerVar) {
            if (addr == a)
                return &shb->races[idx];
        }
        return nullptr;
    };

    for (const std::uint32_t i : hb1->reported) {
        const engines::EngineRace &r = hb1->races[i];
        for (const Addr a : r.addrs) {
            const engines::EngineRace *first = firstOn(a);
            ASSERT_NE(first, nullptr)
                << what << ": hb1 reports a race on word " << a
                << " but shb attributes no first race to it";
            EXPECT_LE(std::make_pair(first->b, first->a),
                      std::make_pair(r.b, r.a))
                << what << ": shb first race on word " << a
                << " completes after an hb1-reported race";
        }
    }
}

/** Full per-trace check: chain clean + first-race coverage. */
void
checkTrace(const ExecutionTrace &trace, const std::string &what)
{
    const engines::EngineFamilyResult fam = runChain(trace);
    expectChainClean(fam, what);
    expectShbFirstRacesCoverHb1Reported(fam, what);
}

// ---------------------------------------------------------------
// GoldenCorpus
// ---------------------------------------------------------------

/** Load every committed golden trace (salvaging the damaged one),
 *  as (name, trace) pairs. */
std::vector<std::pair<std::string, ExecutionTrace>>
goldenTraces()
{
    std::vector<std::pair<std::string, ExecutionTrace>> out;
    const fs::path dir = WMR_GOLDEN_DIR;
    EXPECT_TRUE(fs::is_directory(dir)) << dir;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".trace")
            continue;
        const std::string name = entry.path().filename().string();
        const auto bytes = readFileBytes(entry.path().string());
        EXPECT_FALSE(bytes.empty()) << name;
        const bool damaged =
            name.find("damaged") != std::string::npos;
        if (looksSegmented(bytes.data(), bytes.size())) {
            auto res = damaged ? trySalvageTrace(bytes)
                               : tryReadSegmentedTrace(bytes);
            EXPECT_TRUE(res.ok()) << name << ": " << res.error;
            if (res.ok())
                out.emplace_back(name, std::move(res.trace));
        } else {
            auto res = tryDeserializeTrace(bytes);
            EXPECT_TRUE(res.ok()) << name << ": " << res.error;
            if (res.ok())
                out.emplace_back(name, std::move(res.trace));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &x, const auto &y) {
                  return x.first < y.first;
              });
    return out;
}

TEST(DetectorDiff, GoldenCorpusChainClean)
{
    const auto traces = goldenTraces();
    EXPECT_GE(traces.size(), 10u);
    for (const auto &[name, trace] : traces)
        checkTrace(trace, name);
}

TEST(DetectorDiff, GoldenCorpusHb1ReportIsCanonical)
{
    // The hb1 engine wraps the stock pipeline; the report it renders
    // through the family must be the BYTE-identical `wmrace check`
    // report of the same trace.
    for (const auto &[name, trace] : goldenTraces()) {
        const engines::EngineFamilyResult fam = runChain(trace);
        AnalysisOptions aopts;
        aopts.threads = 1;
        const DetectionResult det = analyzeTrace(trace, aopts);
        EXPECT_EQ(fam.hb1CanonicalReport, formatReport(det))
            << name;
    }
}

// ---------------------------------------------------------------
// FigurePrograms
// ---------------------------------------------------------------

TEST(DetectorDiff, FigureProgramsAcrossModelsAndSeeds)
{
    const std::pair<const char *, Program> programs[] = {
        {"figure1a", figure1a()},
        {"figure1b", figure1b()},
        {"figure2Queue", figure2Queue()},
        {"messagePassingRacy", messagePassing(4, true)},
        {"dekkerDataFlags", dekkerDataFlags()},
    };
    for (const auto &[label, prog] : programs) {
        for (const ModelKind model : kAllModels) {
            for (const std::uint64_t seed : {1ull, 7ull}) {
                ExecOptions opts;
                opts.model = model;
                opts.seed = seed;
                const ExecutionTrace trace =
                    buildTrace(runProgram(prog, opts),
                               {.keepMemberOps = true});
                checkTrace(trace,
                           std::string(label) + "/" +
                               std::string(modelName(model)) +
                               "/s" + std::to_string(seed));
            }
        }
    }
}

// ---------------------------------------------------------------
// WorkloadSynthetics
// ---------------------------------------------------------------

TEST(DetectorDiff, WorkloadSyntheticsAcrossJobs)
{
    SyntheticTraceOptions shapes[3];
    shapes[0].procs = 2; // sparse
    shapes[0].eventsPerProc = 80;
    shapes[0].hotFraction = 0.0;
    shapes[0].seed = 5;
    shapes[1].procs = 4; // dense-hot
    shapes[1].eventsPerProc = 120;
    shapes[1].hotFraction = 0.7;
    shapes[1].seed = 6;
    shapes[2].procs = 6; // sync-heavy
    shapes[2].eventsPerProc = 60;
    shapes[2].syncFraction = 0.5;
    shapes[2].seed = 7;

    for (const auto &opts : shapes) {
        const ExecutionTrace trace = makeSyntheticTrace(opts);
        const std::string what =
            "synthetic s" + std::to_string(opts.seed);
        checkTrace(trace, what);

        // Verdicts — and the rendered report, byte for byte — are
        // identical at every worker count (`--jobs` determinism).
        const engines::EngineFamilyResult base = runChain(trace, 1);
        const std::string baseReport =
            engines::formatFamilyReport(base);
        for (const unsigned threads : {2u, 8u}) {
            const engines::EngineFamilyResult fam =
                runChain(trace, threads);
            EXPECT_EQ(engines::formatFamilyReport(fam), baseReport)
                << what << " at threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------
// SalvagedTruncated
// ---------------------------------------------------------------

TEST(DetectorDiff, SalvagedTruncatedTracesStayContained)
{
    SyntheticTraceOptions opts;
    opts.procs = 3;
    opts.eventsPerProc = 100;
    opts.syncFraction = 0.3;
    opts.hotFraction = 0.5;
    opts.seed = 42;
    const ExecutionTrace full = makeSyntheticTrace(opts);
    const std::vector<std::uint8_t> bytes =
        serializeSegmentedTrace(full, 16);

    // Salvage prefixes cut at several points across the file; every
    // recovered prefix must satisfy the chain like a born-complete
    // trace.
    std::size_t salvaged = 0;
    for (const double frac : {0.35, 0.6, 0.85}) {
        const std::size_t cut =
            static_cast<std::size_t>(bytes.size() * frac);
        const std::vector<std::uint8_t> cutBytes(
            bytes.begin(),
            bytes.begin() + static_cast<std::ptrdiff_t>(cut));
        auto res = trySalvageTrace(cutBytes);
        if (!res.ok() || res.trace.events().empty())
            continue;
        checkTrace(res.trace,
                   "salvaged@" + std::to_string(cut) + "B");
        ++salvaged;
    }
    EXPECT_GE(salvaged, 2u);
}

// ---------------------------------------------------------------
// CrossValidation
// ---------------------------------------------------------------

TEST(DetectorDiff, ShbMatchesReachabilityPipeline)
{
    // Independent-implementation cross-validation: the shb clock
    // engine's race set must equal findRaces() over the
    // reachability index — different algorithm, same answer.
    for (std::uint64_t seed = 50; seed < 58; ++seed) {
        SyntheticTraceOptions opts;
        opts.procs = 3;
        opts.eventsPerProc = 50;
        opts.hotFraction = 0.6;
        opts.seed = seed;
        const ExecutionTrace trace = makeSyntheticTrace(opts);
        const engines::EngineFamilyResult fam = runChain(trace);
        const engines::EngineVerdict *shb = fam.verdict("shb");
        ASSERT_NE(shb, nullptr);

        const DetectionResult det = analyzeTrace(trace);
        const auto &want = det.races();
        ASSERT_EQ(shb->races.size(), want.size()) << seed;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(shb->races[i].a, want[i].a) << seed;
            EXPECT_EQ(shb->races[i].b, want[i].b) << seed;
            EXPECT_EQ(shb->races[i].addrs, want[i].addrs) << seed;
        }
    }
}

// ---------------------------------------------------------------
// OpLevelAdapters
// ---------------------------------------------------------------

/** Two unsynchronized writers of word 0 — the smallest W-W race. */
ExecutionTrace
tinyWwRaceTrace()
{
    ExecutionTrace trace;
    trace.setShape(2, 4);
    trace.setTotalOps(2);
    trace.setFirstStaleRead(kNoOp);
    for (ProcId p = 0; p < 2; ++p) {
        Event ev;
        ev.kind = EventKind::Computation;
        ev.proc = p;
        ev.firstOp = ev.lastOp = p;
        ev.opCount = 1;
        ev.writeSet.resize(4);
        ev.writeSet.set(0);
        trace.addEvent(ev);
    }
    return trace;
}

engines::EngineVerdict
runAdapter(const ExecutionTrace &trace, const char *name)
{
    const auto kinds = engines::parseEngineSelection(name);
    EXPECT_TRUE(kinds.has_value()) << name;
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    const engines::EngineFamilyResult fam =
        engines::runEngineFamily(trace, fopts);
    EXPECT_EQ(fam.verdicts.size(), 1u) << name;
    return fam.verdicts.front();
}

TEST(DetectorDiff, OpLevelAdaptersRunAndStayDeterministic)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 7;
    const ExecutionTrace trace =
        buildTrace(runProgram(figure1a(), opts),
                   {.keepMemberOps = true});

    for (const char *name : {"vc", "epoch", "lockset"}) {
        const engines::EngineVerdict first =
            runAdapter(trace, name);
        EXPECT_TRUE(first.opLevel) << name;
        EXPECT_TRUE(first.races.empty())
            << name << ": op-level adapters report counts, "
                       "not event pairs";
        const engines::EngineVerdict again =
            runAdapter(trace, name);
        EXPECT_EQ(first.opRacesReported, again.opRacesReported)
            << name;
        EXPECT_EQ(first.opRacesDistinct, again.opRacesDistinct)
            << name;
        EXPECT_EQ(first.anyDataRace, again.anyDataRace) << name;
    }
}

TEST(DetectorDiff, VcAdapterFlagsPlainWwRace)
{
    const ExecutionTrace trace = tinyWwRaceTrace();
    const engines::EngineVerdict vc = runAdapter(trace, "vc");
    EXPECT_TRUE(vc.anyDataRace);
    EXPECT_GE(vc.opRacesDistinct, 1u);

    // ... and the chain engines agree on the same two events.
    const engines::EngineFamilyResult fam = runChain(trace);
    expectChainClean(fam, "tiny-ww");
    const engines::EngineVerdict *shb = fam.verdict("shb");
    ASSERT_NE(shb, nullptr);
    ASSERT_EQ(shb->races.size(), 1u);
    EXPECT_EQ(shb->races[0].a, 0u);
    EXPECT_EQ(shb->races[0].b, 1u);
    EXPECT_EQ(shb->races[0].addrs, std::vector<Addr>{0});
}

} // namespace
} // namespace wmr
