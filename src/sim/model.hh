/**
 * @file
 * Memory-model interface and the catalog of implemented models.
 *
 * The five models of the paper — plus two hardware-flavored ones —
 * are realized as policies over a per-processor pending-store buffer
 * (see store_buffer_model.hh):
 *
 *  - SC:   no buffering; every operation stalls to global completion.
 *  - WO:   data stores buffer (unordered drain); EVERY sync operation
 *          drains the issuing processor's buffer and stalls
 *          serially (Dubois/Scheurich/Briggs conditions).
 *  - RCsc: only RELEASE operations drain; acquires do not wait for
 *          prior data stores (Gharachorloo et al. conditions).
 *  - DRF0: same ordering rules as WO (DRF0 does not distinguish
 *          acquire from release) but with a pipelined drain cost —
 *          a more aggressive implementation of the same contract.
 *  - DRF1: same ordering rules as RCsc with the pipelined drain cost.
 *  - TSO:  x86-style total store order: a strictly FIFO buffer, so
 *          only W->R reordering is visible (reads bypass and forward
 *          from the buffer); sync (atomic) operations flush, like
 *          x86 locked instructions.
 *  - PSO:  SPARC-style partial store order: per-location FIFO only,
 *          so W->W reordering is also visible; the store-store fence
 *          (sfence) restores write order, and sync operations flush.
 *
 * All weak models violate SC only when a stale value becomes
 * observable through a data race, which is exactly the mechanism
 * behind Theorem 3.5; tests verify Condition 3.4 holds.
 *
 * Every model additionally records the WITNESSED COHERENCE ORDER:
 * the sequence of write OpIds in the order they became globally
 * visible.  Restricted to one address this is the execution's co
 * relation — the raw material for the dynamic robustness check
 * (detect/robustness.hh), which decides whether the observed
 * execution has an SC-equivalent at all.
 */

#ifndef WMR_SIM_MODEL_HH
#define WMR_SIM_MODEL_HH

#include <memory>
#include <string_view>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/mem_op.hh"

namespace wmr {

/** The memory models the simulator implements. */
enum class ModelKind : std::uint8_t { SC, WO, RCsc, DRF0, DRF1, TSO, PSO };

/** @return human-readable model name. */
std::string_view modelName(ModelKind kind);

/** All models — the paper's five in paper order, then the
 *  hardware-flavored pair — for parameterized tests/benches. */
inline constexpr ModelKind kAllModels[] = {
    ModelKind::SC, ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
    ModelKind::DRF1, ModelKind::TSO, ModelKind::PSO,
};

/** Latency parameters of the simulated memory system (in cycles). */
struct CostParams
{
    Tick readLatency = 4;       ///< read from the global memory
    Tick writeLatency = 20;     ///< globally completing one write
    Tick bufferInsert = 1;      ///< retiring a store into the buffer
    Tick drainPipelined = 4;    ///< per-store drain cost when pipelined
    Tick syncAccess = 8;        ///< atomic access for sync operations
};

/** Result of a read issued to a memory model. */
struct ReadResult
{
    Value value = 0;
    OpId observedWrite = kNoOp; ///< writer of the value (kNoOp=initial)
    bool stale = false;         ///< diverges from issue-order witness
    Tick cost = 0;              ///< cycles the issuing proc stalls
};

/** Result of a write issued to a memory model. */
struct WriteResult
{
    Tick cost = 0;              ///< cycles the issuing proc stalls
};

/**
 * A memory consistency model implementation.
 *
 * The executor issues operations one at a time (so the issue order is
 * itself a legal SC interleaving); the model decides what value each
 * read returns, when stores become globally visible, and how many
 * cycles each operation stalls its processor.
 */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /** @return which model this is. */
    virtual ModelKind kind() const = 0;

    /** Issue a data read by @p proc. */
    virtual ReadResult readData(ProcId proc, Addr addr) = 0;

    /** Issue a data write by @p proc; @p id is the MemOp id. */
    virtual WriteResult writeData(ProcId proc, Addr addr, Value value,
                                  OpId id) = 0;

    /**
     * Issue a sync read (@p acquire per Def. 2.1(2)).  The model
     * applies its drain rules before the access.
     */
    virtual ReadResult readSync(ProcId proc, Addr addr, bool acquire) = 0;

    /**
     * Issue a sync write (@p release per Def. 2.1(1)).  The model
     * applies its drain rules before the access.
     */
    virtual WriteResult writeSync(ProcId proc, Addr addr, Value value,
                                  OpId id, bool release) = 0;

    /** Full fence (x86 mfence): drain everything and stall. */
    virtual Tick fence(ProcId proc) = 0;

    /**
     * Store-store fence (x86 sfence / SPARC membar #StoreStore):
     * stores issued before it become globally visible before stores
     * issued after it, WITHOUT stalling for the drain.  A no-op on
     * models whose buffers are already write-ordered (SC, TSO) and
     * on the invalidation realization (write-through memory is
     * always write-ordered).
     */
    virtual Tick fenceStoreStore(ProcId proc) = 0;

    /**
     * Background activity between instructions: drain buffered
     * stores per the drain-aggressiveness policy.
     */
    virtual void tick(Rng &rng) = 0;

    /** Drain every processor's buffer (end of execution). */
    virtual void drainAll() = 0;

    /**
     * Force the oldest pending store of @p proc to @p addr to become
     * globally visible (no-op when none is buffered).  Drives
     * scripted reproductions of specific weak interleavings, e.g.
     * "QEmpty's write becomes visible before Q's" in Figure 2(b).
     */
    virtual void drainAddr(ProcId proc, Addr addr) = 0;

    /** @return number of stores currently buffered by @p proc. */
    virtual std::size_t pendingStores(ProcId proc) const = 0;

    /** @return current globally visible value of @p addr. */
    virtual Value globalValue(Addr addr) const = 0;

    /**
     * Witnessed coherence order: ids of every program write in the
     * order it became globally visible (initial-image writes with
     * the kNoOp id are not recorded).  Restricted to one address
     * this is the co relation of the execution.
     */
    virtual const std::vector<OpId> &visibilityOrder() const = 0;
};

/**
 * Create a memory model.
 *
 * @param kind which consistency model.
 * @param procs number of processors.
 * @param words shared-memory universe size.
 * @param cost latency parameters.
 * @param drainLaziness probability in [0,1] that a drainable store
 *        stays buffered on a given tick; 1.0 keeps stores buffered
 *        until a sync forces a drain (the adversarial setting used to
 *        reproduce Figure 2b), 0.0 drains eagerly (SC-like behavior).
 */
std::unique_ptr<MemoryModel>
makeModel(ModelKind kind, ProcId procs, Addr words,
          const CostParams &cost = {}, double drainLaziness = 0.5);

/**
 * Which hardware realization backs a memory model: write buffering
 * (delayed visibility) or an invalidation protocol (delayed death of
 * stale copies).  Both realize all five ModelKinds; the tests verify
 * Condition 3.4 on both (Theorem 3.5 is about the CLASS of weak
 * implementations).
 */
enum class Realization : std::uint8_t { StoreBuffer, Invalidate };

/** All realizations, for parameterized tests/benches. */
inline constexpr Realization kAllRealizations[] = {
    Realization::StoreBuffer, Realization::Invalidate,
};

/** @return human-readable realization name. */
std::string_view realizationName(Realization realization);

/** Create a model of @p kind over the chosen @p realization. */
std::unique_ptr<MemoryModel>
makeModelOf(Realization realization, ModelKind kind, ProcId procs,
            Addr words, const CostParams &cost = {},
            double drainLaziness = 0.5);

} // namespace wmr

#endif // WMR_SIM_MODEL_HH
