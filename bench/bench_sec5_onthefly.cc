/**
 * @file
 * Section 5's on-the-fly discussion: "existing methods are typically
 * less accurate ... The loss of accuracy is a result of attempts to
 * keep space overhead low by only buffering limited trace
 * information in memory.  As a result, some of the first data races
 * can remain undetected."
 *
 * The tables quantify exactly that on this codebase's detectors:
 * shrinking the release-clock table and dropping per-processor read
 * history lose races that the unbounded detector (and the
 * post-mortem method) report, while memory use falls.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "onthefly/vc_detector.hh"
#include "prog/builder.hh"
#include "sim/scheduler.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/**
 * The eviction-victim pattern: P0 writes x and releases B; P1 later
 * re-releases B (without touching x); P2 publishes @p fillers
 * releases on other locations (flushing the bounded table); P3
 * acquires B — its pairing release is P1's, whose publication a
 * small table has evicted, so the detector falls back to B's
 * conservative location clock, which includes P0's release and
 * (wrongly) orders P0's write of x before P3's read: the TRUE race
 * on x goes missing.  Layout: x=0, B=1, fillers from 2.
 */
Program
evictionVictim(std::uint32_t fillers)
{
    ProgramBuilder pb;
    pb.var("x", 0).var("B", 1, 1);
    ThreadBuilder p0, p1, p2, p3;
    p0.storei(0, 1).unset(1).halt();
    p1.unset(1).halt();
    for (std::uint32_t i = 0; i < fillers; ++i) {
        pb.var("F" + std::to_string(i), 2 + i, 1);
        p2.unset(2 + i);
    }
    p2.halt();
    p3.tas(1, 1).load(2, 0).halt();
    pb.thread(p0).thread(p1).thread(p2).thread(p3);
    return pb.build();
}

/** Run evictionVictim deterministically, return distinct races. */
std::size_t
racesWithBound(std::uint32_t fillers, std::size_t bound)
{
    const Program p = evictionVictim(fillers);
    std::vector<ProcId> script{0, 0, 1};
    for (std::uint32_t i = 0; i < fillers; ++i)
        script.push_back(2);
    script.push_back(3);
    script.push_back(3);
    ScriptedScheduler sched(std::move(script));
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.scheduler = &sched;
    VcDetector det(p.numProcs(), p.memWords(),
                   {.maxPublishedClocks = bound});
    opts.sink = &det;
    runProgram(p, opts);
    return det.distinctRaces().size();
}

Program
contendedProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 4;
    cfg.blocksPerProc = 12;
    cfg.opsPerBlock = 5;
    cfg.dataWords = 12;
    cfg.numLocks = 4;
    cfg.unlockedProb = 0.25;
    return randomProgram(cfg);
}

void
reproduce()
{
    section("bounded release-clock table: the eviction-victim "
            "pattern");
    std::printf("  %-10s", "fillers");
    const std::size_t bounds[] = {0, 64, 8, 2};
    for (const auto b : bounds) {
        const std::string label =
            b == 0 ? "unbounded" : ("bound=" + std::to_string(b));
        std::printf(" %12s", label.c_str());
    }
    std::printf("   (races found; truth = 1)\n");
    for (const std::uint32_t fillers : {0u, 4u, 16u, 64u}) {
        std::printf("  %-10u", fillers);
        for (const auto b : bounds)
            std::printf(" %12zu", racesWithBound(fillers, b));
        std::printf("\n");
    }
    note("once the fillers flush the pairing release out of the "
         "table, the acquire");
    note("falls back to the over-ordering location clock and the "
         "TRUE race on x is");
    note("missed — Section 5's 'some of the first data races can "
         "remain undetected'.");

    section("random contended programs: bounded vs unbounded");
    std::size_t reference = 0;
    std::vector<std::set<OtfRace>> refRaces;
    std::vector<ExecutionResult> execs;
    std::vector<Program> progs;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        progs.push_back(contendedProgram(seed));
        const Program &p = progs.back();
        VcDetector det(p.numProcs(), p.memWords());
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.sink = &det;
        execs.push_back(runProgram(p, opts));
        refRaces.push_back(det.distinctRaces());
        reference += refRaces.back().size();
    }
    std::printf("  %-16s %14s %16s\n", "published clocks",
                "races found", "vs unbounded");
    for (const std::size_t bound : {0ull, 8ull, 1ull}) {
        std::size_t found = 0;
        for (std::size_t i = 0; i < progs.size(); ++i) {
            VcDetector det(progs[i].numProcs(),
                           progs[i].memWords(),
                           {.maxPublishedClocks = bound});
            for (const auto &op : execs[i].ops)
                det.onOp(op);
            for (const auto &r : det.distinctRaces())
                found += refRaces[i].count(r);
        }
        const std::string label =
            bound == 0 ? "unbounded" : std::to_string(bound);
        std::printf("  %-16s %14zu %15.1f%%\n", label.c_str(), found,
                    100.0 * static_cast<double>(found) /
                        static_cast<double>(reference));
    }
    note("lock-handoff workloads tolerate small tables (the needed "
         "publication is");
    note("usually recent); the adversarial pattern above shows the "
         "worst case.");

    section("last-reader-only read history");
    {
        std::size_t full = 0, last = 0;
        for (std::size_t i = 0; i < progs.size(); ++i) {
            VcDetector a(progs[i].numProcs(), progs[i].memWords(),
                         {.trackAllReaders = true});
            VcDetector b(progs[i].numProcs(), progs[i].memWords(),
                         {.trackAllReaders = false});
            for (const auto &op : execs[i].ops) {
                a.onOp(op);
                b.onOp(op);
            }
            full += a.distinctRaces().size();
            last += b.distinctRaces().size();
        }
        std::printf("  all readers tracked: %zu distinct races\n",
                    full);
        std::printf("  last reader only:    %zu distinct races "
                    "(%.1f%%)\n",
                    last,
                    100.0 * static_cast<double>(last) /
                        static_cast<double>(full));
    }

    section("post-mortem comparison (same executions)");
    {
        std::size_t pm = 0, otf = 0;
        for (std::size_t i = 0; i < progs.size(); ++i) {
            pm += analyzeExecution(execs[i]).numDataRaces() > 0;
            otf += !refRaces[i].empty();
        }
        std::printf("  executions with races: post-mortem %zu, "
                    "on-the-fly %zu (of %zu)\n",
                    pm, otf, progs.size());
    }
    note("unbounded on-the-fly and post-mortem agree on existence; "
         "the post-mortem");
    note("method additionally orders partitions and isolates the "
         "first ones.");
}

void
BM_BoundedDetector(benchmark::State &state)
{
    const Program p = contendedProgram(3);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 3;
    const auto res = runProgram(p, opts);
    const auto bound = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        VcDetector det(p.numProcs(), p.memWords(),
                       {.maxPublishedClocks = bound});
        for (const auto &op : res.ops)
            det.onOp(op);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(res.ops.size()));
}
BENCHMARK(BM_BoundedDetector)->Arg(0)->Arg(8)->Arg(1);

} // namespace

WMR_BENCH_MAIN(reproduce)
