/**
 * @file
 * Throughput and latency of the serve subsystem (src/serve): an
 * in-process `wmrace serve` server on a private unix socket, driven
 * by N concurrent clients through the production client code
 * (serve/client.hh) — every request crosses a real socket.
 *
 * Two regimes are measured per client count:
 *
 *  - COLD: every submission is a distinct trace, so every request
 *    pays a full parse + Section-4 analysis (cache misses only);
 *  - CACHED: the same trace set resubmitted, so every request is
 *    answered from the content-addressed result cache — the serving
 *    fast path (accept thread, no analysis, no analysis spans).
 *
 * The reproduction verifies the cached reports byte-identical to the
 * cold ones (the cache-soundness claim), prints requests/s and mean
 * latency for both regimes, and emits a machine-readable JSON block
 * (schema "wmrace-serve-throughput") that tools/bench_baselines.sh
 * commits as a BENCH_*.json baseline.
 *
 * WMR_BENCH_SMOKE=1 shrinks traces and request counts so the binary
 * doubles as a fast CTest smoke entry.
 */

#include "bench_util.hh"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "trace/trace_io.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;
using namespace wmr::serve;
using namespace wmr::benchutil;

using Clock = std::chrono::steady_clock;

/** Distinct serialized traces, one per (seed) request.  Low hot
 *  fraction (the bench_analysis_scaling profile): the goal is
 *  serving cost, not a quadratic race blowup that would inflate
 *  every report to tens of MB and thrash the result cache. */
std::vector<std::uint8_t>
traceBytes(std::uint64_t seed)
{
    SyntheticTraceOptions opts;
    opts.procs = 4;
    opts.eventsPerProc = smokeMode() ? 200u : 2'000u;
    opts.memWords = 4096;
    opts.syncWords = 64;
    opts.hotWords = 16;
    opts.hotFraction = 0.02;
    opts.seed = seed;
    return serializeTrace(makeSyntheticTrace(opts));
}

/** The benched upload set, built once. */
const std::vector<std::vector<std::uint8_t>> &
uploadSet()
{
    static const std::vector<std::vector<std::uint8_t>> set = [] {
        const std::size_t n = smokeMode() ? 8 : 64;
        std::vector<std::vector<std::uint8_t>> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(traceBytes(1000 + i));
        return out;
    }();
    return set;
}

/** One in-process server on a private unix socket. */
struct BenchServer
{
    ServeOptions opts;
    std::unique_ptr<Server> server;
    ServerAddress addr;
    std::string sock;

    BenchServer()
    {
        sock = "/tmp/wmr_bench_serve." +
               std::to_string(::getpid()) + ".sock";
        opts.socketPath = sock;
        opts.jobs = 4;
        opts.maxQueue = 1024;
        opts.cacheBytes = 256ull << 20; // hold the whole upload set
        server = std::make_unique<Server>(opts);
        if (!server->start())
            fatal("bench server failed to start: %s",
                  server->lastError().c_str());
        std::string error;
        if (!parseServerAddress(server->boundAddress(), addr, error))
            fatal("bench server address: %s", error.c_str());
    }

    ~BenchServer()
    {
        server->beginShutdown();
        server->waitDrained();
    }
};

struct RegimeResult
{
    double wallSeconds = 0;
    double requestsPerSec = 0;
    double meanLatencyMs = 0;
};

/**
 * Drive the whole upload set through @p addr with @p clients
 * concurrent submitter threads (each owns a static slice).
 * @return aggregate throughput and mean per-request latency.
 */
RegimeResult
driveClients(const ServerAddress &addr, unsigned clients,
             std::vector<std::string> *reports = nullptr)
{
    const auto &set = uploadSet();
    if (reports)
        reports->assign(set.size(), "");
    std::atomic<std::uint64_t> latencyNs{0};
    std::atomic<bool> failed{false};

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            SubmitOptions sopts;
            sopts.maxAttempts = 64;
            sopts.retryAfterMs = 5;
            for (std::size_t i = c; i < set.size(); i += clients) {
                const auto r0 = Clock::now();
                SubmitResult res =
                    submitTraceBytes(addr, set[i], sopts);
                latencyNs.fetch_add(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(Clock::now() - r0)
                        .count(),
                    std::memory_order_relaxed);
                if (!res.ok || !res.response.ok())
                    failed.store(true, std::memory_order_relaxed);
                else if (reports)
                    (*reports)[i] = std::move(res.response.report);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    RegimeResult out;
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (failed.load())
        fatal("bench submission failed — see server log");
    out.requestsPerSec =
        static_cast<double>(set.size()) / out.wallSeconds;
    out.meanLatencyMs = static_cast<double>(latencyNs.load()) /
                        static_cast<double>(set.size()) / 1e6;
    return out;
}

void
reproduce()
{
    const auto &set = uploadSet();
    std::uint64_t uploadBytes = 0;
    for (const auto &b : set)
        uploadBytes += b.size();
    section("serve throughput (" + std::to_string(set.size()) +
            " uploads, --jobs 4" +
            (smokeMode() ? ", smoke mode)" : ")"));
    note("cold = distinct traces (analysis per request); cached = "
         "same set resubmitted (result-cache fast path).");

    struct Row
    {
        unsigned clients;
        RegimeResult cold;
        RegimeResult cached;
    };
    std::vector<Row> rows;
    bool identical = true;

    std::printf("  %-8s %14s %14s %14s %14s\n", "clients",
                "cold req/s", "cold ms/req", "hit req/s",
                "hit ms/req");
    const std::vector<unsigned> clientCounts =
        smokeMode() ? std::vector<unsigned>{1u, 4u}
                    : std::vector<unsigned>{1u, 2u, 4u, 8u};
    for (const unsigned clients : clientCounts) {
        // A fresh server per row: the cold pass must really be
        // cold, and per-row counters start from zero.
        BenchServer bs;
        std::vector<std::string> coldReports, hitReports;
        const RegimeResult cold =
            driveClients(bs.addr, clients, &coldReports);
        const RegimeResult cached =
            driveClients(bs.addr, clients, &hitReports);

        if (hitReports != coldReports)
            identical = false;
        const CacheStats cs = bs.server->cacheStats();
        if (cs.hits < set.size())
            note("!! expected " + std::to_string(set.size()) +
                 " cache hits, saw " + std::to_string(cs.hits));

        std::printf("  %-8u %14.1f %14.2f %14.1f %14.2f\n", clients,
                    cold.requestsPerSec, cold.meanLatencyMs,
                    cached.requestsPerSec, cached.meanLatencyMs);
        rows.push_back({clients, cold, cached});
    }
    note(identical
             ? "served reports verified byte-identical (cold vs "
               "cached) for every client count."
             : "!! CACHE MISMATCH — cached report differs from cold "
               "analysis.");

    // Machine-readable block for the committed BENCH_*.json
    // baselines (tools/bench_baselines.sh extracts it).
    std::printf("{\n  \"schema\": \"wmrace-serve-throughput\",\n");
    std::printf("  \"uploads\": %zu,\n", set.size());
    std::printf("  \"upload_bytes\": %llu,\n",
                static_cast<unsigned long long>(uploadBytes));
    std::printf("  \"jobs\": 4,\n");
    std::printf("  \"hardware_concurrency\": %u,\n",
                std::thread::hardware_concurrency());
    std::printf("  \"reports_identical\": %s,\n",
                identical ? "true" : "false");
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"clients\": %u, "
            "\"cold_requests_per_second\": %.1f, "
            "\"cold_mean_latency_ms\": %.3f, "
            "\"cachehit_requests_per_second\": %.1f, "
            "\"cachehit_mean_latency_ms\": %.3f}%s\n",
            r.clients, r.cold.requestsPerSec, r.cold.meanLatencyMs,
            r.cached.requestsPerSec, r.cached.meanLatencyMs,
            i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

// --- google-benchmark timings ----------------------------------

/** One submission round trip against a warm cache (the serving
 *  fast path: socket + frame codec + cache lookup, no analysis). */
void
BM_SubmitCacheHit(benchmark::State &state)
{
    static BenchServer bs;
    const std::vector<std::uint8_t> bytes = traceBytes(1);
    (void)submitTraceBytes(bs.addr, bytes); // warm the cache
    for (auto _ : state) {
        SubmitResult res = submitTraceBytes(bs.addr, bytes);
        benchmark::DoNotOptimize(res.response.report.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitCacheHit)->Unit(benchmark::kMicrosecond);

/** A status round trip: the minimal protocol cost (no body, no
 *  cache, no analysis). */
void
BM_StatusRoundTrip(benchmark::State &state)
{
    static BenchServer bs;
    for (auto _ : state) {
        SubmitResult res = queryStatus(bs.addr);
        benchmark::DoNotOptimize(res.response.report.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatusRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace

WMR_BENCH_MAIN(reproduce)
