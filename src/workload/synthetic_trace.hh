/**
 * @file
 * Deterministic synthetic ExecutionTrace generator.
 *
 * The simulator can only produce traces as large as the programs it
 * runs; scaling tests and benchmarks of the ANALYSIS side (candidate
 * enumeration, reachability clocks, partitioning) need traces with
 * hundreds of thousands of events and controllable conflict density.
 * This generator builds such traces directly — per-processor event
 * sequences of computation events (random skewed READ/WRITE sets)
 * interleaved with sync events whose acquires pair with the latest
 * earlier release on their location, exactly the Section-4.1 record
 * the detector consumes.  Equal options (including seed) yield
 * byte-identical traces, so differential tests can hand the same
 * input to every thread count.
 */

#ifndef WMR_WORKLOAD_SYNTHETIC_TRACE_HH
#define WMR_WORKLOAD_SYNTHETIC_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/execution_trace.hh"

namespace wmr {

/** Shape knobs of one synthetic trace. */
struct SyntheticTraceOptions
{
    ProcId procs = 4;
    std::uint32_t eventsPerProc = 1000;

    /** Shared address universe (sync + data words). */
    Addr memWords = 256;

    /** Sync operations target words [0, syncWords). */
    Addr syncWords = 16;

    /** Probability an event is a sync event. */
    double syncFraction = 0.15;

    /** Probability a sync event is an acquire read (else a release
     *  write). */
    double acquireFraction = 0.5;

    /**
     * Probability an acquire pairs with the latest earlier release
     * on its word (creating an so1 edge); unpaired acquires model
     * reads of the initial image.
     */
    double pairFraction = 0.9;

    /**
     * Probability a data access lands in the small "hot" word set
     * (the first few words after the sync range) instead of the
     * whole data range — the knob for cross-processor conflict
     * density, i.e. how many race candidates the trace yields.
     */
    double hotFraction = 0.3;

    /** Hot-set size in words. */
    Addr hotWords = 8;

    /** Max words read / written by one computation event. */
    std::uint32_t maxReads = 4;
    std::uint32_t maxWrites = 2;

    std::uint64_t seed = 1;
};

/**
 * @return a trace with the shape of @p opts.  Pure function of the
 * options: equal options give equal traces.
 */
ExecutionTrace makeSyntheticTrace(const SyntheticTraceOptions &opts = {});

/**
 * Generate the trace of @p opts straight into a segmented file
 * through SegmentSpillWriter, never materializing it: producer
 * memory is O(syncWords + one segment), so traces can exceed RAM.
 * Byte-identical to writeSegmentedTraceFile(makeSyntheticTrace(opts))
 * — same RNG draw order, same framing.  @return bytes written
 * (0 on I/O failure).
 */
std::size_t
writeSyntheticSegmentedTraceFile(const SyntheticTraceOptions &opts,
                                 const std::string &path,
                                 std::size_t eventsPerSegment = 64);

} // namespace wmr

#endif // WMR_WORKLOAD_SYNTHETIC_TRACE_HH
