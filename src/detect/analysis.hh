/**
 * @file
 * The one-call post-mortem analysis pipeline — the public API most
 * users of wmrace want.
 *
 * analyzeTrace() runs the full Section-4 method on a trace:
 * build hb1, enumerate races, build G', partition by SCC, order
 * partitions, identify first partitions, and classify races against
 * the SCP.  analyzeExecution() adds the instrumented-tracing step in
 * front, going straight from a simulated execution.
 */

#ifndef WMR_DETECT_ANALYSIS_HH
#define WMR_DETECT_ANALYSIS_HH

#include <memory>

#include "detect/analysis_stats.hh"
#include "detect/augmented_graph.hh"
#include "detect/partition.hh"
#include "detect/race_finder.hh"
#include "detect/scp.hh"
#include "hb/hb_graph.hh"
#include "hb/reachability.hh"
#include "sim/executor.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Options of the full pipeline. */
struct AnalysisOptions
{
    RaceFinderOptions finder;

    /** Trace-construction options (analyzeExecution only). */
    TraceBuildOptions traceOpts{.keepMemberOps = true, .maxCompRun = 0};

    /**
     * Analysis worker budget (0 = hardware concurrency).  Threads
     * shard the race enumeration and the reachability clock builds;
     * every result — races, partitions, SCP, reports — is
     * byte-identical at every value.
     */
    unsigned threads = 1;
};

/** Everything the post-mortem analysis produced. */
class DetectionResult
{
  public:
    DetectionResult(ExecutionTrace trace, const AnalysisOptions &opts,
                    const std::vector<MemOp> *ops);

    const ExecutionTrace &trace() const { return trace_; }
    const HbGraph &hbGraph() const { return *hb_; }
    const ReachabilityIndex &hbReach() const { return *reach_; }
    const std::vector<DataRace> &races() const { return races_; }
    const AugmentedGraph &augmented() const { return *aug_; }
    const RacePartitions &partitions() const { return parts_; }
    const ScpInfo &scp() const { return scp_; }

    /** @return per-stage timing/counters of this run (not part of
     *  the deterministic analysis output). */
    const AnalysisStats &stats() const { return stats_; }

    /** @return whether any data race was detected (Theorem 4.1 side). */
    bool anyDataRace() const;

    /** @return count of data races (excluding sync-sync races). */
    std::size_t numDataRaces() const;

    /** @return the races the method reports: those of first
     *  partitions (Sec. 4.2's claim: report only first partitions). */
    std::vector<RaceId>
    reportedRaces() const
    {
        return parts_.reportableRaces();
    }

  private:
    ExecutionTrace trace_;
    std::unique_ptr<HbGraph> hb_;
    std::unique_ptr<ReachabilityIndex> reach_;
    std::vector<DataRace> races_;
    std::unique_ptr<AugmentedGraph> aug_;
    RacePartitions parts_;
    ScpInfo scp_;
    AnalysisStats stats_;
};

/** Run the Section-4 method on an existing trace (post-mortem). */
DetectionResult analyzeTrace(ExecutionTrace trace,
                             const AnalysisOptions &opts = {});

/**
 * Trace @p res (Section 4.1 instrumentation) and analyze it.  Member
 * operations are retained by default so SCP classification is exact.
 */
DetectionResult analyzeExecution(const ExecutionResult &res,
                                 const AnalysisOptions &opts = {});

} // namespace wmr

#endif // WMR_DETECT_ANALYSIS_HH
