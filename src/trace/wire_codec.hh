/**
 * @file
 * The shared wire codec of every wmrace on-disk container: varint
 * encoder/decoder plus the MemOp and bitset encodings.
 *
 * Historically these lived as file-local helpers of trace_io.cc; the
 * segmented spill container (segmented_io.hh) reuses them so a MemOp
 * or a bitset is encoded identically no matter which container
 * carries it.  Everything here is header-only and allocation-light;
 * the containers themselves define file layout and error policy.
 *
 * Error policy: decoders throw wire::ParseFailure on malformed input.
 * Container entry points catch it at their boundary and surface a
 * recoverable error — no fatal(), no abort.
 */

#ifndef WMR_TRACE_WIRE_CODEC_HH
#define WMR_TRACE_WIRE_CODEC_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/dense_bitset.hh"
#include "sim/mem_op.hh"

namespace wmr::wire {

/**
 * Internal control-flow exception of the parse paths.  Thrown where
 * legacy code called fatal() and caught at each container's
 * try-deserialize boundary, so malformed input is a recoverable
 * per-file failure.
 */
struct ParseFailure
{
    std::string message;
};

[[noreturn]] inline void
parseFail(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] inline void
parseFail(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw ParseFailure{buf};
}

/** Growable varint encoder. */
class Encoder
{
  public:
    void
    u64(std::uint64_t v)
    {
        while (v >= 0x80) {
            bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        // zigzag
        u64((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
    }

    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), p, p + n);
    }

    const std::uint8_t *data() const { return bytes_.data(); }
    std::size_t size() const { return bytes_.size(); }
    void clear() { bytes_.clear(); }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked varint decoder over a borrowed byte range. */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t n)
        : data_(data), size_(n)
    {
    }

    explicit Decoder(const std::vector<std::uint8_t> &bytes)
        : Decoder(bytes.data(), bytes.size())
    {
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (pos_ >= size_)
                parseFail("trace file truncated at byte %zu", pos_);
            const std::uint8_t b = data_[pos_++];
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                parseFail("trace file: varint overflow at byte %zu",
                          pos_);
        }
    }

    std::int64_t
    i64()
    {
        const std::uint64_t z = u64();
        return static_cast<std::int64_t>(z >> 1) ^
               -static_cast<std::int64_t>(z & 1);
    }

    void
    raw(void *out, std::size_t n)
    {
        if (pos_ + n > size_)
            parseFail("trace file truncated at byte %zu", pos_);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    bool done() const { return pos_ == size_; }

    /** Bytes left — used to sanity-check element counts. */
    std::size_t remaining() const { return size_ - pos_; }

    /** parseFail() unless @p count elements can possibly fit. */
    void
    checkCount(std::uint64_t count, const char *what) const
    {
        if (count > remaining())
            parseFail("trace file: %s count %llu exceeds remaining "
                      "%zu bytes",
                      what, static_cast<unsigned long long>(count),
                      remaining());
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

inline void
encodeBitset(Encoder &enc, const DenseBitset &bs)
{
    // Two encodings: SPARSE (delta-coded set-bit indices; the common
    // case — computation events touch a handful of the shared words)
    // and DENSE (raw words) for heavily populated sets.
    const std::size_t count = bs.count();
    const bool sparse = count * 2 < bs.words().size() * 8;
    enc.u64(bs.size());
    enc.u64(sparse ? 1 : 0);
    if (sparse) {
        enc.u64(count);
        std::uint64_t prev = 0;
        bs.forEach([&](std::size_t i) {
            enc.u64(i - prev);
            prev = i;
        });
    } else {
        enc.u64(bs.words().size());
        for (const auto w : bs.words())
            enc.u64(w);
    }
}

inline DenseBitset
decodeBitset(Decoder &dec)
{
    constexpr std::uint64_t kMaxBits = 1ull << 28; // 32 MiB of bits
    const std::uint64_t nbits = dec.u64();
    if (nbits > kMaxBits)
        parseFail("trace file: bitset universe %llu too large",
                  static_cast<unsigned long long>(nbits));
    const bool sparse = dec.u64() != 0;
    if (sparse) {
        DenseBitset bs(nbits);
        const std::uint64_t count = dec.u64();
        dec.checkCount(count, "sparse bitset");
        std::uint64_t idx = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            idx += dec.u64();
            if (idx >= nbits)
                parseFail("trace file: bitset index %llu out of "
                          "range",
                          static_cast<unsigned long long>(idx));
            bs.set(idx);
        }
        return bs;
    }
    const std::uint64_t nwords = dec.u64();
    dec.checkCount(nwords, "bitset words");
    if (nwords * 64 < nbits)
        parseFail("trace file: bitset words underflow universe");
    std::vector<std::uint64_t> words(nwords);
    for (auto &w : words)
        w = dec.u64();
    return DenseBitset::fromWords(std::move(words), nbits);
}

inline void
encodeMemOp(Encoder &enc, const MemOp &op)
{
    enc.u64(op.id);
    enc.u64(op.proc);
    enc.u64(op.poIndex);
    enc.u64(op.pc);
    enc.u64(op.kind == OpKind::Write ? 1 : 0);
    enc.u64((op.sync ? 1u : 0u) | (op.acquire ? 2u : 0u) |
            (op.release ? 4u : 0u) | (op.stale ? 8u : 0u) |
            (op.divergent ? 16u : 0u) | (op.taintedValue ? 32u : 0u));
    enc.u64(op.addr);
    enc.i64(op.value);
    enc.u64(op.observedWrite);
    enc.u64(op.tick);
}

inline MemOp
decodeMemOp(Decoder &dec)
{
    MemOp op;
    op.id = dec.u64();
    // Bound the narrowing casts: a corrupt record must yield a parse
    // error, not a silently truncated processor id or address.
    const std::uint64_t rawProc = dec.u64();
    if (rawProc > kNoProc)
        parseFail("trace file: op processor %llu too large",
                  static_cast<unsigned long long>(rawProc));
    op.proc = static_cast<ProcId>(rawProc);
    op.poIndex = static_cast<std::uint32_t>(dec.u64());
    op.pc = static_cast<std::uint32_t>(dec.u64());
    op.kind = dec.u64() ? OpKind::Write : OpKind::Read;
    const std::uint64_t flags = dec.u64();
    op.sync = flags & 1;
    op.acquire = flags & 2;
    op.release = flags & 4;
    op.stale = flags & 8;
    op.divergent = flags & 16;
    op.taintedValue = flags & 32;
    const std::uint64_t rawAddr = dec.u64();
    if (rawAddr > (1ull << 28))
        parseFail("trace file: op address %llu too large",
                  static_cast<unsigned long long>(rawAddr));
    op.addr = static_cast<Addr>(rawAddr);
    op.value = dec.i64();
    op.observedWrite = dec.u64();
    op.tick = dec.u64();
    return op;
}

} // namespace wmr::wire

#endif // WMR_TRACE_WIRE_CODEC_HH
