# Empty compiler generated dependencies file for test_invalidate.
# This may be replaced when dependencies are built.
