file(REMOVE_RECURSE
  "CMakeFiles/test_prog.dir/test_prog.cc.o"
  "CMakeFiles/test_prog.dir/test_prog.cc.o.d"
  "test_prog"
  "test_prog.pdb"
  "test_prog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
