/**
 * @file
 * The public annotation API real programs compile against.
 *
 * A program declares what the hardware tracer of Section 4.1 would
 * observe: its shared data accesses and its synchronization
 * operations.  The annotations feed the process-global Tracer
 * (rt/tracer.hh); when no tracer is active they are near-free no-ops
 * (one thread-local load and a branch), so annotated binaries can
 * ship with tracing compiled in.
 *
 * Activation, either:
 *  - programmatically: wmr::rt::startGlobalTracer(config) /
 *    stopGlobalTracer();
 *  - by environment (how `wmrace record` launches children):
 *      WMR_RT_TRACE=<path>    record mode, trace written at exit
 *      WMR_RT_MODE=inline     inline detection instead (stderr
 *                             report at exit)
 *      WMR_RT_RING=<pow2>     per-thread ring capacity
 *      WMR_RT_OVERFLOW=drop|block
 *    The first annotation starts the tracer; an atexit hook stops
 *    it, flushes, and prints a one-line summary.
 *
 * Annotation conventions (see docs/RUNTIME.md for the full story):
 *  - wmr_rt_acquire(m) AFTER locking m, wmr_rt_release(m) BEFORE
 *    unlocking — the real lock then serializes the annotations, and
 *    the recorded per-object sync order matches the real one;
 *  - model thread fork/join as a release in the parent paired with
 *    an acquire in the child (and vice versa for join), or just use
 *    wmr::rt::Thread (rt/thread.hh) which does it for you.
 */

#ifndef WMR_RT_ANNOTATE_HH
#define WMR_RT_ANNOTATE_HH

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/** Register the calling thread with the active tracer (optional:
 *  the first annotation from an unregistered thread auto-registers). */
void wmr_rt_thread_begin(void);

/** Mark the calling thread done; its buffered records still drain. */
void wmr_rt_thread_end(void);

/** Record a read of @p size bytes at @p addr. */
void wmr_rt_read(const void *addr, size_t size);

/** Record a write of @p size bytes at @p addr. */
void wmr_rt_write(const void *addr, size_t size);

/** Record an acquire operation (lock, wait-return) on @p sync. */
void wmr_rt_acquire(const void *sync);

/** Record a release operation (unlock, signal) on @p sync. */
void wmr_rt_release(const void *sync);

#ifdef __cplusplus
} // extern "C"

#include "rt/tracer.hh"

namespace wmr::rt {

/**
 * Install @p cfg as the process-global tracer.  fatal()s if one is
 * already active.  @return the tracer (owned by the library).
 */
Tracer &startGlobalTracer(const TracerConfig &cfg);

/**
 * Stop and tear down the global tracer (flush, join, write the
 * record-mode trace file).  Safe to call when none is active.
 */
void stopGlobalTracer();

/** @return the active global tracer, or nullptr.  Does NOT consult
 *  the environment (the annotation entry points do that once). */
Tracer *globalTracer();

// --- RAII sugar over the C entry points -------------------------

/** Scoped thread registration. */
class ScopedThread
{
  public:
    ScopedThread() { wmr_rt_thread_begin(); }
    ~ScopedThread() { wmr_rt_thread_end(); }
    ScopedThread(const ScopedThread &) = delete;
    ScopedThread &operator=(const ScopedThread &) = delete;
};

/** Scoped critical section: acquire on entry, release on exit.
 *  Construct AFTER locking the real mutex, destroy BEFORE unlocking
 *  (i.e. declare it right after the std::lock_guard). */
class ScopedSync
{
  public:
    explicit ScopedSync(const void *sync) : sync_(sync)
    {
        wmr_rt_acquire(sync_);
    }
    ~ScopedSync() { wmr_rt_release(sync_); }
    ScopedSync(const ScopedSync &) = delete;
    ScopedSync &operator=(const ScopedSync &) = delete;

  private:
    const void *sync_;
};

/** Annotated load: record the read, return the value. */
template <typename T>
inline T
tracedRead(const T &v)
{
    wmr_rt_read(&v, sizeof(T));
    return v;
}

/** Annotated store: record the write, perform it. */
template <typename T, typename U>
inline void
tracedWrite(T &dst, U &&value)
{
    wmr_rt_write(&dst, sizeof(T));
    dst = static_cast<T>(value);
}

} // namespace wmr::rt

#endif // __cplusplus

#endif // WMR_RT_ANNOTATE_HH
