/**
 * @file
 * The streaming engine's differential suite (src/stream/):
 *
 *  - StreamGolden.*: every committed golden-corpus trace, streamed,
 *    renders the byte-identical provenance + report the whole-trace
 *    pipeline prints for the same segmented bytes;
 *  - StreamDifferential.*: seeded synthetics — race-free, sparse and
 *    densely racy — at window sizes {1, 4, 64}, plus truncated /
 *    salvaged inputs and strict-error identity;
 *  - StreamScale.*: a 1,000,000-event synthetic streams with a flat
 *    resident line and identical output at every window size;
 *  - StreamGc.*: watermark retirement actually bounds resident state
 *    (the observable form of "no clock entry survives past its
 *    retirement epoch": retired events leave live_, and analysis
 *    stays byte-correct without them);
 *  - Generator.*: writeSyntheticSegmentedTraceFile() is
 *    byte-identical to serializing makeSyntheticTrace();
 *  - TailReader.*: a half-written frame on a live file is "wait",
 *    not "torn" — and the same bytes as a dead snapshot salvage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "stream/stream_analyzer.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/synthetic_trace.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

std::string
tempPath(const char *tag)
{
    return (fs::temp_directory_path() /
            (std::string(tag) + "." + std::to_string(::getpid()) +
             ".seg"))
        .string();
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes,
               std::size_t count = SIZE_MAX)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(
                  std::min(count, bytes.size())));
    ASSERT_TRUE(out.good()) << path;
}

/** Provenance + report of the whole-trace pipeline on segmented
 *  bytes — exactly what `wmrace check` prints. */
std::string
wholeTraceText(const std::vector<std::uint8_t> &bytes, bool strict)
{
    auto res =
        strict ? tryReadSegmentedTrace(bytes) : trySalvageTrace(bytes);
    EXPECT_TRUE(res.ok()) << res.error;
    if (!res.ok())
        return "";
    std::string text = formatTraceProvenance(true, res.salvage);
    const DetectionResult det = analyzeTrace(std::move(res.trace));
    text += formatReport(det, nullptr, {});
    return text;
}

/** Provenance + report of the streaming engine on the same file. */
std::string
streamedText(const std::string &path, bool strict,
             std::size_t window, StreamResult *resultOut = nullptr)
{
    StreamOptions opts;
    opts.strict = strict;
    opts.windowSegments = window;
    StreamResult sr = streamAnalyzeFile(path, opts);
    EXPECT_TRUE(sr.ok) << sr.error;
    if (resultOut)
        *resultOut = sr;
    if (!sr.ok)
        return "";
    return formatTraceProvenance(true, sr.salvage) +
           renderReport(sr.report, nullptr, {});
}

/** Both engines over the same segmented bytes, byte-compared. */
void
expectEquivalent(const std::vector<std::uint8_t> &bytes, bool strict,
                 std::size_t window, const std::string &what)
{
    const std::string path = tempPath("stream_diff");
    writeFileBytes(path, bytes);
    StreamResult sr;
    const std::string streamed =
        streamedText(path, strict, window, &sr);
    const std::string whole = wholeTraceText(bytes, strict);
    EXPECT_EQ(streamed, whole)
        << what << " (window " << window << ")";
    EXPECT_TRUE(sr.exact) << what;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// StreamGolden: the committed regression corpus.
// ---------------------------------------------------------------

TEST(StreamGolden, MatchesWholeTraceAcrossCorpus)
{
    const fs::path dir = WMR_GOLDEN_DIR;
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::size_t checked = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".trace")
            continue;
        const std::string name = entry.path().filename().string();
        auto bytes = readFileBytes(entry.path().string());
        ASSERT_FALSE(bytes.empty()) << name;
        const bool damaged = name.find("damaged") != std::string::npos;
        if (!looksSegmented(bytes.data(), bytes.size())) {
            // EVENT-container traces cannot stream directly; the
            // differential runs on their segmented serialization
            // (small segments, so even tiny traces window).
            auto parsed = tryDeserializeTrace(bytes);
            ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error;
            bytes = serializeSegmentedTrace(parsed.trace, 8);
        }
        expectEquivalent(bytes, /*strict=*/!damaged,
                         /*window=*/2, name);
        ++checked;
    }
    EXPECT_GE(checked, 10u);
}

// ---------------------------------------------------------------
// StreamDifferential: seeded synthetics and damaged inputs.
// ---------------------------------------------------------------

/** A mostly-synchronized trace with sparse data races. */
SyntheticTraceOptions
sparseOptions()
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc = 4000;
    o.memWords = 2048;
    o.syncWords = 32;
    o.syncFraction = 0.5;
    o.hotFraction = 0.0;
    o.seed = 11;
    return o;
}

/** A conflict-dense trace: thousands of races, one big partition —
 *  the summary-graph path under load. */
SyntheticTraceOptions
denseOptions()
{
    SyntheticTraceOptions o;
    o.procs = 8;
    o.eventsPerProc = 1200;
    o.memWords = 256;
    o.syncWords = 16;
    o.seed = 7;
    return o;
}

/** One whole-trace run, streamed at several window sizes. */
void
expectEquivalentAcrossWindows(const std::vector<std::uint8_t> &bytes,
                              std::initializer_list<unsigned> windows,
                              const std::string &what)
{
    const std::string whole = wholeTraceText(bytes, /*strict=*/true);
    const std::string path = tempPath("stream_windows");
    writeFileBytes(path, bytes);
    for (const std::size_t window : windows) {
        StreamResult sr;
        EXPECT_EQ(streamedText(path, /*strict=*/true, window, &sr),
                  whole)
            << what << " (window " << window << ")";
        EXPECT_TRUE(sr.exact) << what;
    }
    std::remove(path.c_str());
}

TEST(StreamDifferential, SparseSyntheticAcrossWindows)
{
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(sparseOptions()));
    expectEquivalentAcrossWindows(bytes, {1u, 4u, 64u}, "sparse");
}

TEST(StreamDifferential, DenseRacySynthetic)
{
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(denseOptions()));
    expectEquivalentAcrossWindows(bytes, {1u, 4u}, "dense");
}

TEST(StreamDifferential, RaceFreeSingleProc)
{
    SyntheticTraceOptions o;
    o.procs = 1;
    o.eventsPerProc = 3000;
    o.seed = 3;
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(o));
    expectEquivalent(bytes, /*strict=*/true, 4, "single-proc");
}

TEST(StreamDifferential, SalvagedTruncation)
{
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(sparseOptions()));
    // Chop mid-file: inside some segment, so salvage drops a tail.
    for (const double frac : {0.35, 0.71, 0.97}) {
        const auto keep =
            static_cast<std::size_t>(bytes.size() * frac);
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + keep);
        const std::string path = tempPath("stream_cut");
        writeFileBytes(path, cut);
        StreamResult sr;
        const std::string streamed =
            streamedText(path, /*strict=*/false, 4, &sr);
        EXPECT_EQ(streamed, wholeTraceText(cut, /*strict=*/false))
            << "keep=" << keep;
        EXPECT_TRUE(sr.salvage.salvaged);
        std::remove(path.c_str());
    }
}

TEST(StreamDifferential, StrictErrorsMatchWholeTraceReader)
{
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(sparseOptions()));
    for (const double frac : {0.35, 0.97}) {
        const auto keep =
            static_cast<std::size_t>(bytes.size() * frac);
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + keep);
        const auto whole = tryReadSegmentedTrace(cut);
        ASSERT_FALSE(whole.ok());

        const std::string path = tempPath("stream_strict");
        writeFileBytes(path, cut);
        StreamOptions opts; // strict by default
        const StreamResult sr = streamAnalyzeFile(path, opts);
        EXPECT_FALSE(sr.ok);
        EXPECT_EQ(sr.error, whole.error) << "keep=" << keep;
        std::remove(path.c_str());
    }
}

// ---------------------------------------------------------------
// StreamScale: a million events, flat resident line.
// ---------------------------------------------------------------

TEST(StreamScale, MillionEventsFlatAcrossWindows)
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc = 250000; // 1M events total
    o.memWords = 65536;       // word lists, never bitsets: huge
    o.syncWords = 16;         // universes cost the stream nothing
    o.syncFraction = 0.6;
    o.hotFraction = 0.0;
    o.seed = 11;

    const std::string path = tempPath("stream_million");
    ASSERT_GT(writeSyntheticSegmentedTraceFile(o, path), 0u);

    std::string first;
    for (const std::size_t window : {1u, 4u, 64u}) {
        StreamResult sr;
        const std::string text =
            streamedText(path, /*strict=*/true, window, &sr);
        if (first.empty())
            first = text;
        else
            EXPECT_EQ(text, first) << "window " << window;
        EXPECT_TRUE(sr.exact);
        EXPECT_EQ(sr.events, 1000000u);
        EXPECT_GT(sr.windowsRetired, 0u);
        // The point of the subsystem: resident state is a fraction
        // of a percent of the trace, at every window size.
        EXPECT_LT(sr.peakResident, 20000u) << "window " << window;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// StreamGc: watermark retirement bounds resident state.
// ---------------------------------------------------------------

TEST(StreamGc, SingleProcWindowRetiresEverything)
{
    // One processor: every event is po-ordered after the window
    // before it, so each GC retires the whole preceding window.  If
    // any clock entry outlived its retirement epoch, eventsResident
    // could not stay pinned to the window size.
    SyntheticTraceOptions o;
    o.procs = 1;
    o.eventsPerProc = 10000;
    o.seed = 5;
    const std::string path = tempPath("stream_gc1");
    ASSERT_GT(writeSyntheticSegmentedTraceFile(o, path), 0u);

    StreamOptions opts;
    opts.windowSegments = 2;
    std::uint64_t maxResident = 0;
    std::uint64_t lastRetired = 0;
    opts.onWindow = [&](const StreamProgress &p) {
        maxResident = std::max(maxResident, p.eventsResident);
        EXPECT_GE(p.windowsRetired, lastRetired);
        lastRetired = p.windowsRetired;
    };
    const StreamResult sr = streamAnalyzeFile(path, opts);
    ASSERT_TRUE(sr.ok) << sr.error;
    EXPECT_EQ(sr.races, 0u);
    EXPECT_GT(sr.windowsRetired, 0u);
    // 2-segment windows of 64 events + the segment in flight.
    EXPECT_LE(maxResident, 3u * 64u);
    EXPECT_LE(sr.peakResident, 3u * 64u);
    std::remove(path.c_str());
}

TEST(StreamGc, PairedProcsStayBounded)
{
    SyntheticTraceOptions o = sparseOptions();
    o.eventsPerProc = 12000; // 48k events
    const std::string path = tempPath("stream_gc2");
    ASSERT_GT(writeSyntheticSegmentedTraceFile(o, path), 0u);

    StreamOptions opts;
    const StreamResult sr = streamAnalyzeFile(path, opts);
    ASSERT_TRUE(sr.ok) << sr.error;
    EXPECT_GT(sr.windowsRetired, 0u);
    // Residency = hb1-unordered frontier + pinned racy events; both
    // are a small fraction of a well-synchronized trace.
    EXPECT_LT(sr.peakResident, sr.events / 4);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Generator: the bounded-memory producer is byte-identical.
// ---------------------------------------------------------------

TEST(Generator, StreamedFileMatchesWholeTraceSerialization)
{
    std::vector<SyntheticTraceOptions> cases;
    cases.push_back({});
    {
        SyntheticTraceOptions o;
        o.procs = 7;
        o.eventsPerProc = 333;
        o.memWords = 64;
        o.syncWords = 64; // dataBase = 0: sync and data words overlap
        o.seed = 42;
        cases.push_back(o);
    }
    {
        SyntheticTraceOptions o;
        o.procs = 2;
        o.eventsPerProc = 100;
        o.syncFraction = 0.9; // token reuse: many rebinds per word
        o.syncWords = 2;
        o.seed = 9;
        cases.push_back(o);
    }

    for (std::size_t i = 0; i < cases.size(); ++i) {
        const std::string a = tempPath("gen_stream");
        const std::string b = tempPath("gen_whole");
        const std::size_t na =
            writeSyntheticSegmentedTraceFile(cases[i], a);
        const std::size_t nb = writeSegmentedTraceFile(
            makeSyntheticTrace(cases[i]), b);
        ASSERT_GT(na, 0u);
        EXPECT_EQ(na, nb) << "case " << i;
        EXPECT_EQ(readFileBytes(a), readFileBytes(b))
            << "case " << i;
        std::remove(a.c_str());
        std::remove(b.c_str());
    }
}

TEST(Generator, NonDefaultSegmentSizeMatchesToo)
{
    SyntheticTraceOptions o;
    o.procs = 3;
    o.eventsPerProc = 70;
    o.seed = 13;
    const std::string a = tempPath("gen_seg5a");
    const std::string b = tempPath("gen_seg5b");
    ASSERT_GT(writeSyntheticSegmentedTraceFile(o, a, 5), 0u);
    ASSERT_GT(writeSegmentedTraceFile(makeSyntheticTrace(o), b, 5),
              0u);
    EXPECT_EQ(readFileBytes(a), readFileBytes(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

/** Latest-wins token rebinding: reusing one token per sync word must
 *  pair an acquire with the NEWEST release carrying the token. */
TEST(Generator, SpillWriterTokenRebinds)
{
    const std::string path = tempPath("token_rebind");
    SegmentSpillWriter w;
    ASSERT_TRUE(w.open(path));

    const auto sync = [](ProcId p, OpId op, bool release) {
        SegEvent ev;
        ev.kind = EventKind::Sync;
        ev.proc = p;
        ev.firstOp = ev.lastOp = op;
        ev.opCount = 1;
        ev.syncOp.id = op;
        ev.syncOp.proc = p;
        ev.syncOp.sync = true;
        ev.syncOp.addr = 0;
        ev.syncOp.kind = release ? OpKind::Write : OpKind::Read;
        (release ? ev.syncOp.release : ev.syncOp.acquire) = true;
        return ev;
    };

    SegEvent r1 = sync(0, 0, true);
    r1.releaseToken = 77; // ordinal 0
    w.addEvent(r1);
    SegEvent r2 = sync(1, 1, true);
    r2.releaseToken = 77; // same token: rebinds to ordinal 1
    w.addEvent(r2);
    SegEvent a1 = sync(2, 2, false);
    a1.pairedToken = 77;
    w.addEvent(a1);

    SegShape shape;
    shape.procs = 3;
    shape.memWords = 1;
    shape.totalOps = 3;
    ASSERT_TRUE(w.finish(shape));

    const auto res = tryReadSegmentedTrace(readFileBytes(path));
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_EQ(res.trace.events().size(), 3u);
    EXPECT_EQ(res.trace.event(2).pairedRelease, EventId{1});
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// TailReader: live files vs torn writes.
// ---------------------------------------------------------------

TEST(TailReader, MidFrameIsWaitingNotTorn)
{
    SyntheticTraceOptions o;
    o.procs = 2;
    o.eventsPerProc = 100;
    o.seed = 21;
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(o), 16);

    // Frame boundaries: magic, then len-prefixed frames.
    const auto frameEnd = [&](std::size_t begin) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(bytes.at(begin)) |
            static_cast<std::uint32_t>(bytes.at(begin + 1)) << 8 |
            static_cast<std::uint32_t>(bytes.at(begin + 2)) << 16 |
            static_cast<std::uint32_t>(bytes.at(begin + 3)) << 24;
        return begin + 4 + len + 4;
    };
    const std::size_t frame1End = frameEnd(8);
    const std::size_t frame2End = frameEnd(frame1End);
    const std::size_t midFrame2 = frame1End + (frame2End - frame1End) / 2;

    const std::string path = tempPath("tail_midframe");
    writeFileBytes(path, bytes, midFrame2);

    SegmentTailReader tail;
    ASSERT_TRUE(tail.open(path));
    std::vector<SegTailSegment> segs;
    EXPECT_EQ(tail.poll(segs), TailPollStatus::Progress);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].events.size(), 16u);

    // The half-written second frame is a LIVE tail, not damage.
    segs.clear();
    EXPECT_EQ(tail.poll(segs), TailPollStatus::Waiting);
    EXPECT_TRUE(segs.empty());

    // The very same bytes as a dead-file snapshot ARE a torn write:
    // salvage accounts for the dropped tail.
    std::vector<std::uint8_t> snapshot(bytes.begin(),
                                       bytes.begin() + midFrame2);
    const auto salvaged = trySalvageTrace(snapshot);
    ASSERT_TRUE(salvaged.ok()) << salvaged.error;
    EXPECT_TRUE(salvaged.salvage.salvaged);
    EXPECT_GT(salvaged.salvage.bytesDropped, 0u);

    // The writer comes back: append the rest, poll to FIN — a clean
    // complete stream, nothing dropped, nothing salvaged.
    {
        std::ofstream app(path,
                          std::ios::binary | std::ios::app);
        app.write(reinterpret_cast<const char *>(bytes.data()) +
                      midFrame2,
                  static_cast<std::streamsize>(bytes.size() -
                                               midFrame2));
        ASSERT_TRUE(app.good());
    }
    segs.clear();
    TailPollStatus st = tail.poll(segs);
    while (st == TailPollStatus::Progress &&
           st != TailPollStatus::Fin)
        st = tail.poll(segs);
    EXPECT_EQ(st, TailPollStatus::Fin);
    EXPECT_TRUE(tail.finSeen());
    ASSERT_TRUE(tail.finalize(/*strict=*/true)) << tail.error();
    EXPECT_FALSE(tail.salvage().salvaged);
    EXPECT_EQ(tail.salvage().bytesDropped, 0u);
    std::remove(path.c_str());
}

TEST(TailReader, FollowEqualsWholeFileRead)
{
    // streamAnalyzeFollow() with no liveness predicate must behave
    // exactly like the one-shot file read.
    const auto bytes =
        serializeSegmentedTrace(makeSyntheticTrace(denseOptions()));
    const std::string path = tempPath("tail_follow");
    writeFileBytes(path, bytes);

    StreamOptions opts;
    const StreamResult a = streamAnalyzeFile(path, opts);
    const StreamResult b =
        streamAnalyzeFollow(path, opts, [] { return false; }, 1);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(renderReport(a.report, nullptr, {}),
              renderReport(b.report, nullptr, {}));
    EXPECT_EQ(a.races, b.races);
    std::remove(path.c_str());
}

} // namespace
} // namespace wmr
