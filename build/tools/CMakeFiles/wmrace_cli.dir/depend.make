# Empty dependencies file for wmrace_cli.
# This may be replaced when dependencies are built.
