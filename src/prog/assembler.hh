/**
 * @file
 * Text assembler for the wmrace IR.
 *
 * Grammar (line oriented; '#' and ';' begin comments):
 *
 *   .var NAME ADDR [INITIAL]    declare + initialize a named variable
 *   .init ADDR VALUE            initialize an unnamed memory word
 *   .thread                     start the next processor's code
 *   [LABEL:] MNEMONIC OPERANDS  one instruction
 *
 * Operands: registers r0..r15; immediates as signed decimals;
 * effective addresses as [NAME], [ADDR], [NAME+rI] or [ADDR+rI];
 * branch targets as labels.
 *
 * Example (the paper's Figure 1(b), processor P1):
 *
 *   .var x 0
 *   .var y 1
 *   .var s 2
 *   .thread
 *       storei [x], 1
 *       storei [y], 1
 *       unset [s]
 *       halt
 */

#ifndef WMR_PROG_ASSEMBLER_HH
#define WMR_PROG_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "prog/program.hh"

namespace wmr {

/**
 * Assemble @p source into a Program.
 * Calls fatal() with file/line diagnostics on syntax errors.
 */
Program assemble(std::string_view source);

/** Assemble the contents of the file at @p path. */
Program assembleFile(const std::string &path);

} // namespace wmr

#endif // WMR_PROG_ASSEMBLER_HH
