# Empty compiler generated dependencies file for wmr_staticdet.
# This may be replaced when dependencies are built.
