#include "workload/patterns.hh"

#include "prog/builder.hh"

namespace wmr {

Program
figure1a()
{
    ProgramBuilder pb;
    pb.var("x", 0).var("y", 1);

    ThreadBuilder p1;
    p1.storei(0, 1).note("Write(x)")
      .storei(1, 1).note("Write(y)")
      .halt();

    ThreadBuilder p2;
    p2.load(0, 1).note("Read(y)")
      .load(1, 0).note("Read(x)")
      .halt();

    pb.thread(p1).thread(p2);
    return pb.build();
}

Program
figure1b()
{
    ProgramBuilder pb;
    pb.var("x", 0).var("y", 1).var("s", 2, /*initial=*/1);

    ThreadBuilder p1;
    p1.storei(0, 1).note("Write(x)")
      .storei(1, 1).note("Write(y)")
      .unset(2).note("Unset(s)")
      .halt();

    ThreadBuilder p2;
    p2.acquireLock(2, 0)            // while (Test&Set(s)) ;
      .load(1, 1).note("Read(y)")
      .load(2, 0).note("Read(x)")
      .halt();

    pb.thread(p1).thread(p2);
    return pb.build();
}

Program
figure2Queue(const QueueParams &params)
{
    const Addr q = 0, qempty = 1, lock = 2, region = 3;
    const auto n = static_cast<Value>(params.regionSize);

    ProgramBuilder pb;
    pb.var("Q", q, static_cast<Value>(params.staleOffset))
      .var("QEmpty", qempty, 1)
      .var("S", lock, 0);
    // Name a few region words for readable reports.
    pb.var("region0", region, 0);

    // P1: compute addr of region on which P2 should work, enqueue it,
    // clear QEmpty, release S.
    ThreadBuilder p1;
    p1.movi(1, n).note("compute addr of region");
    if (params.withTestAndSet)
        p1.acquireLock(lock, 0);
    p1.store(q, 1).note("Enqueue(addr)")
      .storei(qempty, 0).note("QEmpty := False")
      .unset(lock).note("Unset(S)")
      .halt();

    // P2: poll QEmpty; when work is available dequeue an address and
    // work on region [addr, addr+n).
    ThreadBuilder p2;
    if (params.withTestAndSet)
        p2.acquireLock(lock, 0);
    p2.load(1, qempty).note("if (QEmpty=False) then");
    p2.bnz(1, "no_work");
    p2.load(2, q).note("addr := Dequeue()");
    p2.unset(lock).note("Unset(S)");
    // for (i = addr; i < addr + n; ++i) region[i] += 1
    p2.mov(3, 2)
      .addi(4, 2, n)           // r4 = addr + n (loop bound)
      .label("work2")
      .loadIdx(5, region, 3)
      .addi(5, 5, 1)
      .storeIdx(region, 3, 5).note("work on region addr..addr+n")
      .addi(3, 3, 1)
      .cmplt(6, 3, 4)
      .bnz(6, "work2")
      .jmp("done2");
    p2.label("no_work").nop().note("else ...");
    if (params.withTestAndSet) {
        // The corrected program still releases the lock on this path.
        p2.unset(lock);
    }
    p2.label("done2").halt();

    // P3: independently works region [0, n).
    ThreadBuilder p3;
    p3.movi(3, 0)
      .movi(4, n)
      .label("work3")
      .storeIdx(region, 3, 3).note("work on region 0..n")
      .addi(3, 3, 1)
      .cmplt(6, 3, 4)
      .bnz(6, "work3");
    if (!params.withTestAndSet) {
        // Part of the buggy fragment as depicted in Figure 2(b); the
        // corrected program must not release a lock P3 never held.
        p3.unset(lock).note("Unset(s)");
    }
    p3.halt();

    pb.thread(p1).thread(p2).thread(p3);
    return pb.build();
}

Program
messagePassing(std::uint32_t slots, bool racy)
{
    const Addr flag = 0, data = 1;
    ProgramBuilder pb;
    pb.var("flag", flag, 0);
    pb.var("data0", data, 0);

    ThreadBuilder p0;
    for (std::uint32_t i = 0; i < slots; ++i)
        p0.storei(data + i, static_cast<Value>(100 + i));
    if (racy)
        p0.storei(flag, 1).note("racy flag set (data write)");
    else
        p0.syncstorei(flag, 1).note("release flag");
    p0.halt();

    ThreadBuilder p1;
    p1.label("wait");
    if (racy)
        p1.load(0, flag).note("racy flag poll (data read)");
    else
        p1.syncload(0, flag).note("acquire flag");
    p1.bz(0, "wait");
    for (std::uint32_t i = 0; i < slots; ++i)
        p1.load(static_cast<RegId>(1 + (i % 8)), data + i);
    p1.halt();

    pb.thread(p0).thread(p1);
    return pb.build();
}

Program
lockedCounter(ProcId procs, std::uint32_t increments, bool racy)
{
    const Addr lock = 0, counter = 1;
    ProgramBuilder pb;
    pb.var("lock", lock, 0).var("counter", counter, 0);

    for (ProcId p = 0; p < procs; ++p) {
        ThreadBuilder t;
        t.movi(1, 0)
         .movi(2, static_cast<Value>(increments))
         .label("loop");
        if (!racy)
            t.acquireLock(lock, 0);
        t.load(3, counter)
         .addi(3, 3, 1)
         .store(counter, 3);
        if (!racy)
            t.releaseLock(lock);
        t.addi(1, 1, 1)
         .cmplt(4, 1, 2)
         .bnz(4, "loop")
         .halt();
        pb.thread(t);
    }
    return pb.build();
}

Program
producerConsumer(std::uint32_t items, std::uint32_t slots, bool racy)
{
    // head = items produced so far, tail = items consumed so far
    // (both monotone).  The consumer spins until head > consumed;
    // the producer applies BACK-PRESSURE, waiting until
    // produced - tail < slots before reusing a ring slot — without
    // it the producer's slot reuse races with the consumer's reads.
    const Addr head = 0, tail = 1, ring = 2;
    ProgramBuilder pb;
    pb.var("head", head, 0);
    pb.var("tail", tail, 0);
    pb.var("ring0", ring, 0);

    ThreadBuilder prod;
    prod.movi(1, 0)                         // produced count
        .movi(2, static_cast<Value>(items))
        .label("produce");
    // Back-pressure: wait while produced - tail >= slots.
    prod.label("backpressure");
    if (racy)
        prod.load(6, tail).note("racy tail poll");
    else
        prod.syncload(6, tail).note("acquire tail");
    prod.sub(7, 1, 6)
        .cmplti(4, 7, static_cast<Value>(slots))
        .bz(4, "backpressure");
    // slot = produced % slots, via repeated subtract (no mod op):
    prod.mov(3, 1)
        .label("mod_p")
        .cmplti(4, 3, static_cast<Value>(slots))
        .bnz(4, "slot_ready")
        .addi(3, 3, -static_cast<Value>(slots))
        .jmp("mod_p")
        .label("slot_ready")
        .addi(5, 1, 1000)                   // payload = 1000 + i
        .storeIdx(ring, 3, 5)
        .addi(1, 1, 1);
    if (racy)
        prod.store(head, 1).note("racy head publish");
    else
        prod.syncstore(head, 1).note("release head publish");
    prod.cmplt(4, 1, 2)
        .bnz(4, "produce")
        .halt();

    ThreadBuilder cons;
    cons.movi(1, 0)                         // consumed count
        .movi(2, static_cast<Value>(items))
        .label("consume");
    cons.label("wait");
    if (racy)
        cons.load(3, head).note("racy head poll");
    else
        cons.syncload(3, head).note("acquire head");
    cons.cmplt(4, 1, 3)                     // consumed < head ?
        .bz(4, "wait");
    cons.mov(3, 1)
        .label("mod_c")
        .cmplti(4, 3, static_cast<Value>(slots))
        .bnz(4, "read_ready")
        .addi(3, 3, -static_cast<Value>(slots))
        .jmp("mod_c")
        .label("read_ready")
        .loadIdx(5, ring, 3)
        .addi(1, 1, 1);
    if (racy)
        cons.store(tail, 1).note("racy tail publish");
    else
        cons.syncstore(tail, 1).note("release tail publish");
    cons.cmplt(4, 1, 2)
        .bnz(4, "consume")
        .halt();

    pb.thread(prod).thread(cons);
    return pb.build();
}

Program
barrierStripes(ProcId procs, std::uint32_t stripe)
{
    // Layout: arrive flags [0, procs), go flag at procs, array after.
    const Addr arrive = 0;
    const Addr go = procs;
    const Addr array = procs + 1;

    ProgramBuilder pb;
    pb.var("go", go, 0);
    pb.var("array0", array, 0);

    for (ProcId p = 0; p < procs; ++p) {
        ThreadBuilder t;
        // Phase 1: write own stripe.
        for (std::uint32_t i = 0; i < stripe; ++i) {
            t.storei(array + p * stripe + i,
                     static_cast<Value>(p * 100 + i));
        }
        if (p == 0) {
            // P0 is the barrier master: wait for everyone, then go.
            for (ProcId q = 1; q < procs; ++q) {
                const std::string lbl = "wait" + std::to_string(q);
                t.label(lbl)
                 .syncload(1, arrive + q)
                 .bz(1, lbl);
            }
            t.syncstorei(go, 1).note("barrier release");
        } else {
            t.syncstorei(arrive + p, 1).note("barrier arrive");
            t.label("waitgo")
             .syncload(1, go)
             .bz(1, "waitgo");
        }
        // Phase 2: read the whole array.
        for (ProcId q = 0; q < procs; ++q) {
            for (std::uint32_t i = 0; i < stripe; ++i)
                t.load(2, array + q * stripe + i);
        }
        t.halt();
        pb.thread(t);
    }
    return pb.build();
}

Program
ticketLock(ProcId procs, std::uint32_t rounds)
{
    const Addr disp = 0, nextTicket = 1, nowServing = 2, counter = 3;
    ProgramBuilder pb;
    pb.var("dispenser", disp, 0)
      .var("nextTicket", nextTicket, 0)
      .var("nowServing", nowServing, 0)
      .var("counter", counter, 0);

    for (ProcId p = 0; p < procs; ++p) {
        ThreadBuilder t;
        t.movi(6, 0)
         .movi(7, static_cast<Value>(rounds))
         .label("round");
        // Draw a ticket under the dispenser lock.
        t.acquireLock(disp, 0)
         .load(1, nextTicket).note("my ticket")
         .addi(2, 1, 1)
         .store(nextTicket, 2)
         .releaseLock(disp);
        // Wait to be served (release/acquire on nowServing).
        t.label("wait")
         .syncload(3, nowServing)
         .cmpeq(4, 3, 1)
         .bz(4, "wait");
        // Critical section.
        t.load(5, counter)
         .addi(5, 5, 1)
         .store(counter, 5);
        // Pass the baton.
        t.addi(5, 1, 1)
         .syncstore(nowServing, 5).note("serve next ticket");
        t.addi(6, 6, 1)
         .cmplt(4, 6, 7)
         .bnz(4, "round")
         .halt();
        pb.thread(t);
    }
    return pb.build();
}

Program
doubleCheckedInit(ProcId readers, bool fixed)
{
    const Addr lock = 0, flag = 1, payload = 2, out = 3;
    ProgramBuilder pb;
    pb.var("lock", lock, 0).var("flag", flag, 0)
      .var("payload", payload, 0);

    // Proc 0: the initializer (lock-protected, like a slow-path
    // reader that always initializes).
    ThreadBuilder init;
    init.acquireLock(lock, 0);
    init.load(1, flag).note("check under lock");
    init.bnz(1, "done");
    init.storei(payload, 42).note("initialize payload");
    if (fixed)
        init.syncstorei(flag, 1).note("publish flag (release)");
    else
        init.storei(flag, 1).note("publish flag (DATA write: bug)");
    init.label("done").releaseLock(lock).halt();
    pb.thread(init);

    for (ProcId r = 0; r < readers; ++r) {
        ThreadBuilder t;
        // Fast path: check the flag without the lock.
        if (fixed)
            t.syncload(1, flag).note("fast check (acquire)");
        else
            t.load(1, flag).note("fast check (DATA read: bug)");
        t.bnz(1, "fast");
        // Slow path: take the lock, re-check, initialize if needed.
        t.acquireLock(lock, 0)
         .load(2, flag)
         .bnz(2, "locked_read")
         .storei(payload, 42);
        if (fixed)
            t.syncstorei(flag, 1);
        else
            t.storei(flag, 1);
        t.label("locked_read")
         .load(3, payload)
         .releaseLock(lock)
         .jmp("record");
        t.label("fast").load(3, payload).note("fast-path read");
        t.label("record").store(out + r, 3).halt();
        pb.var("out" + std::to_string(r), out + r, 0);
        pb.thread(t);
    }
    return pb.build();
}

Program
invariantPair(ProcId readers, std::uint32_t updates, bool racy)
{
    const Addr lock = 0, a = 1, b = 2, out = 3;
    ProgramBuilder pb;
    pb.var("lock", lock, 0).var("a", a, 0).var("b", b, 0);

    ThreadBuilder w;
    w.movi(6, 0).movi(7, static_cast<Value>(updates)).label("upd");
    w.acquireLock(lock, 0)
     .load(1, a).addi(1, 1, 1).store(a, 1)
     .load(2, b).addi(2, 2, 1).store(b, 2)
     .releaseLock(lock);
    w.addi(6, 6, 1).cmplt(4, 6, 7).bnz(4, "upd").halt();
    pb.thread(w);

    for (ProcId r = 0; r < readers; ++r) {
        ThreadBuilder t;
        t.movi(6, 0).movi(7, static_cast<Value>(updates))
         .label("rd");
        if (!racy)
            t.acquireLock(lock, 0);
        t.load(1, a).load(2, b);
        if (!racy)
            t.releaseLock(lock);
        t.sub(3, 1, 2).note("invariant: a - b == 0")
         .store(out + r, 3)
         .addi(6, 6, 1).cmplt(4, 6, 7).bnz(4, "rd").halt();
        pb.var("diff" + std::to_string(r), out + r, 0);
        pb.thread(t);
    }
    return pb.build();
}

Program
dekkerDataFlags()
{
    const Addr flag0 = 0, flag1 = 1, count = 2;
    ProgramBuilder pb;
    pb.var("flag0", flag0, 0).var("flag1", flag1, 0)
      .var("count", count, 0);

    const auto enter = [&](ThreadBuilder &t, Addr mine, Addr other) {
        t.storei(mine, 1).note("flag[me] = 1 (data write!)")
         .load(1, other).note("read flag[other] (data read!)")
         .bnz(1, "giveup")
         .load(2, count)
         .addi(2, 2, 1)
         .store(count, 2).note("critical section")
         .label("giveup")
         .storei(mine, 0)
         .halt();
    };

    ThreadBuilder t0, t1;
    enter(t0, flag0, flag1);
    enter(t1, flag1, flag0);
    pb.thread(t0).thread(t1);
    return pb.build();
}

} // namespace wmr
