file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_executions.dir/bench_fig1_executions.cc.o"
  "CMakeFiles/bench_fig1_executions.dir/bench_fig1_executions.cc.o.d"
  "bench_fig1_executions"
  "bench_fig1_executions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
