#!/usr/bin/env bash
# Regenerate the committed BENCH_*.json perf baselines at the repo
# root: run each baseline bench binary's reproduction pass (the
# google-benchmark timing pass is filtered out) and extract its
# trailing machine-readable JSON block.
#
# Usage:
#   tools/bench_baselines.sh BUILD_DIR [--smoke]
#
# --smoke shrinks the workloads (WMR_BENCH_SMOKE=1) — useful to test
# the extraction, NOT for committing baselines.  Baselines are
# host-dependent snapshots: commit them from the same class of
# machine the previous ones came from, or call out the host change.
set -u

die() { echo "bench_baselines: $*" >&2; exit 2; }

[ $# -ge 1 ] || die "usage: bench_baselines.sh BUILD_DIR [--smoke]"
BUILD=$1; shift
[ -d "$BUILD/bench" ] || die "no bench/ under $BUILD — build first"
ROOT=$(cd "$(dirname "$0")/.." && pwd)

SMOKE=0
[ "${1:-}" = "--smoke" ] && SMOKE=1

BENCHES="bench_analysis_scaling bench_batch_throughput \
         bench_detector_family bench_model_matrix \
         bench_obs_overhead bench_serve_throughput \
         bench_stream_memory"

status=0
for bench in $BENCHES; do
    bin="$BUILD/bench/$bench"
    [ -x "$bin" ] || { echo "bench_baselines: skip $bench (not built)" >&2; status=1; continue; }
    out="$ROOT/BENCH_${bench#bench_}.json"
    echo "bench_baselines: running $bench ..." >&2
    log=$(mktemp) || die "mktemp failed"
    if [ $SMOKE -eq 1 ]; then
        WMR_BENCH_SMOKE=1 "$bin" --benchmark_filter=^$ > "$log" 2>/dev/null
    else
        "$bin" --benchmark_filter=^$ > "$log" 2>/dev/null
    fi || { echo "bench_baselines: $bench failed" >&2; rm -f "$log"; status=1; continue; }

    # The JSON block is the only flush-left { ... } in the output.
    awk '/^\{$/{f=1} f{print} /^\}$/{f=0}' "$log" > "$out"
    rm -f "$log"
    if [ ! -s "$out" ]; then
        echo "bench_baselines: $bench printed no JSON block" >&2
        rm -f "$out"
        status=1
        continue
    fi
    echo "bench_baselines: wrote ${out#$ROOT/}" >&2
done
exit $status
