#include "hb/reachability.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wmr {

namespace {

std::vector<ProcId>
procsOf(const ExecutionTrace &trace)
{
    std::vector<ProcId> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.proc;
    return out;
}

std::vector<std::uint32_t>
indicesOf(const ExecutionTrace &trace)
{
    std::vector<std::uint32_t> out(trace.events().size());
    for (const auto &ev : trace.events())
        out[ev.id] = ev.indexInProc;
    return out;
}

} // namespace

ReachabilityIndex::ReachabilityIndex(
    const AdjList &graph, const std::vector<ProcId> &procOf,
    const std::vector<std::uint32_t> &indexInProc, ProcId nprocs)
    : nprocs_(nprocs)
{
    wmr_assert(procOf.size() == graph.size());
    wmr_assert(indexInProc.size() == graph.size());
    build(graph, procOf, indexInProc);
}

ReachabilityIndex::ReachabilityIndex(const HbGraph &graph,
                                     const ExecutionTrace &trace)
    : nprocs_(trace.numProcs())
{
    build(graph.adjacency(), procsOf(trace), indicesOf(trace));
}

std::int64_t &
ReachabilityIndex::hi(std::uint32_t comp, ProcId p)
{
    return hi_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t &
ReachabilityIndex::clock(std::uint32_t comp, ProcId p)
{
    return clock_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t
ReachabilityIndex::hiAt(std::uint32_t comp, ProcId p) const
{
    return hi_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

std::int64_t
ReachabilityIndex::clockAt(std::uint32_t comp, ProcId p) const
{
    return clock_[static_cast<std::size_t>(comp) * nprocs_ + p];
}

void
ReachabilityIndex::build(const AdjList &graph,
                         const std::vector<ProcId> &procOf,
                         const std::vector<std::uint32_t> &indexInProc)
{
    scc_ = stronglyConnectedComponents(graph);
    const std::uint32_t ncomp = scc_.numComponents;
    hi_.assign(static_cast<std::size_t>(ncomp) * nprocs_, -1);
    clock_.assign(static_cast<std::size_t>(ncomp) * nprocs_, -1);

    for (std::uint32_t v = 0; v < graph.size(); ++v) {
        const std::uint32_t c = scc_.componentOf[v];
        auto &h = hi(c, procOf[v]);
        h = std::max(h, static_cast<std::int64_t>(indexInProc[v]));
    }

    // Tarjan numbers components in reverse topological order: every
    // condensation edge c→c' has c > c'.  Descending id order visits
    // predecessors before successors; push clocks forward.
    for (std::uint32_t c = ncomp; c-- > 0;) {
        for (ProcId p = 0; p < nprocs_; ++p) {
            auto &cl = clock(c, p);
            cl = std::max(cl, hiAt(c, p));
        }
        for (const std::uint32_t succ : scc_.condensation[c]) {
            for (ProcId p = 0; p < nprocs_; ++p) {
                auto &cl = clock(succ, p);
                cl = std::max(cl, clockAt(c, p));
            }
        }
    }
}

bool
ReachabilityIndex::componentReaches(std::uint32_t a,
                                    std::uint32_t b) const
{
    if (a == b)
        return true;
    for (ProcId p = 0; p < nprocs_; ++p) {
        const std::int64_t h = hiAt(a, p);
        if (h >= 0 && clockAt(b, p) >= h)
            return true;
    }
    return false;
}

bool
ReachabilityIndex::reaches(EventId a, EventId b) const
{
    return componentReaches(scc_.componentOf[a], scc_.componentOf[b]);
}

bool
ReachabilityIndex::ordered(EventId a, EventId b) const
{
    const std::uint32_t ca = scc_.componentOf[a];
    const std::uint32_t cb = scc_.componentOf[b];
    if (ca == cb)
        return true; // mutual hb1 order inside a cycle
    return componentReaches(ca, cb) || componentReaches(cb, ca);
}

} // namespace wmr
