/**
 * @file
 * Fluent builders for constructing IR programs in C++.
 *
 * ThreadBuilder supports forward label references so spin loops and
 * if/else shapes read naturally:
 *
 *   ThreadBuilder t;
 *   t.label("spin")
 *    .tas(0, lock)
 *    .bnz(0, "spin")          // retry while the old value was 1
 *    .load(1, shared)
 *    .addi(1, 1, 1)
 *    .store(shared, 1)
 *    .unset(lock)
 *    .halt();
 */

#ifndef WMR_PROG_BUILDER_HH
#define WMR_PROG_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace wmr {

/** Builds one thread's instruction stream with label resolution. */
class ThreadBuilder
{
  public:
    /** Bind @p name to the next emitted instruction's pc. */
    ThreadBuilder &label(const std::string &name);

    ThreadBuilder &nop();
    ThreadBuilder &movi(RegId dst, Value imm);
    ThreadBuilder &mov(RegId dst, RegId src);
    ThreadBuilder &add(RegId dst, RegId a, RegId b);
    ThreadBuilder &addi(RegId dst, RegId a, Value imm);
    ThreadBuilder &sub(RegId dst, RegId a, RegId b);
    ThreadBuilder &mul(RegId dst, RegId a, RegId b);
    ThreadBuilder &cmpeq(RegId dst, RegId a, RegId b);
    ThreadBuilder &cmpne(RegId dst, RegId a, RegId b);
    ThreadBuilder &cmplt(RegId dst, RegId a, RegId b);
    ThreadBuilder &cmpeqi(RegId dst, RegId a, Value imm);
    ThreadBuilder &cmplti(RegId dst, RegId a, Value imm);

    ThreadBuilder &load(RegId dst, Addr addr);
    /** dst = mem[base + r[index]] */
    ThreadBuilder &loadIdx(RegId dst, Addr base, RegId index);
    ThreadBuilder &store(Addr addr, RegId src);
    ThreadBuilder &storeIdx(Addr base, RegId index, RegId src);
    ThreadBuilder &storei(Addr addr, Value imm);
    ThreadBuilder &storeiIdx(Addr base, RegId index, Value imm);

    ThreadBuilder &tas(RegId dst, Addr addr);
    ThreadBuilder &unset(Addr addr);
    ThreadBuilder &syncload(RegId dst, Addr addr);
    ThreadBuilder &syncstore(Addr addr, RegId src);
    ThreadBuilder &syncstorei(Addr addr, Value imm);
    ThreadBuilder &fence();
    ThreadBuilder &sfence();

    ThreadBuilder &bnz(RegId reg, const std::string &target);
    ThreadBuilder &bz(RegId reg, const std::string &target);
    ThreadBuilder &jmp(const std::string &target);

    /** Numeric-target variants (used by the assembler for absolute
     *  pcs, e.g. when re-assembling disassembled code). */
    ThreadBuilder &bnzAt(RegId reg, std::uint32_t target);
    ThreadBuilder &bzAt(RegId reg, std::uint32_t target);
    ThreadBuilder &jmpAt(std::uint32_t target);

    ThreadBuilder &halt();

    /** Attach a source-level note to the most recent instruction. */
    ThreadBuilder &note(const std::string &text);

    /**
     * Emit "spin until Test&Set acquires @p lock" using @p scratch
     * as the scratch register (a common idiom in the workloads).
     */
    ThreadBuilder &acquireLock(Addr lock, RegId scratch);

    /** Emit an Unset releasing @p lock. */
    ThreadBuilder &releaseLock(Addr lock);

    /** Resolve labels and return the finished thread. */
    Thread build();

  private:
    Instr &emit(Instr instr);

    struct Fixup
    {
        std::size_t pc;
        std::string label;
    };

    std::vector<Instr> code_;
    std::map<std::string, std::uint32_t> labels_;
    std::vector<Fixup> fixups_;
};

/** Builds a whole program out of ThreadBuilders plus memory setup. */
class ProgramBuilder
{
  public:
    /** Declare a named shared variable at @p addr with initial value. */
    ProgramBuilder &var(const std::string &name, Addr addr,
                        Value initial = 0);

    /** Set an (unnamed) initial memory word. */
    ProgramBuilder &init(Addr addr, Value value);

    /** Add a finished thread. */
    ProgramBuilder &thread(ThreadBuilder &tb);

    /** Validate and return the program. */
    Program build();

  private:
    Program prog_;
};

} // namespace wmr

#endif // WMR_PROG_BUILDER_HH
