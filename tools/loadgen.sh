#!/usr/bin/env bash
# Replay the golden-report corpus against a running wmrace server and
# diff every served report byte for byte against the committed
# .expected.txt files — the serving twin of the golden_* CTest lane.
#
# Usage:
#   tools/loadgen.sh WMRACE_BIN [GOLDEN_DIR] [--server ADDR]
#
# Without --server the script starts its own server on a private unix
# socket (--jobs 4), replays, and shuts it down; with --server it
# replays against yours and leaves it running.  Every trace is
# submitted twice — the second submission must be answered from the
# result cache and still be byte-identical.  Exits nonzero on the
# first mismatch.
set -u

die() { echo "loadgen: $*" >&2; exit 2; }

[ $# -ge 1 ] || die "usage: loadgen.sh WMRACE_BIN [GOLDEN_DIR] [--server ADDR]"
WMRACE=$1; shift
[ -x "$WMRACE" ] || die "not executable: $WMRACE"

GOLDEN="$(dirname "$0")/../tests/data/golden"
ADDR=""
while [ $# -gt 0 ]; do
    case "$1" in
        --server) ADDR=$2; shift 2 ;;
        *) GOLDEN=$1; shift ;;
    esac
done
[ -d "$GOLDEN" ] || die "no golden dir: $GOLDEN"

WORK=$(mktemp -d /tmp/wmrloadgen.XXXXXX) || die "mktemp failed"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        "$WMRACE" submit --server "$ADDR" --shutdown >/dev/null 2>&1
        wait "$SERVER_PID" 2>/dev/null
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

if [ -z "$ADDR" ]; then
    "$WMRACE" serve --socket "$WORK/serve.sock" --jobs 4 \
        > "$WORK/addr.txt" 2> "$WORK/serve.log" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        ADDR=$(cat "$WORK/addr.txt" 2>/dev/null)
        [ -n "$ADDR" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || {
            cat "$WORK/serve.log" >&2
            SERVER_PID=""
            die "server died during startup"
        }
        sleep 0.1
    done
    [ -n "$ADDR" ] || die "server never printed its address"
fi

fail=0
replayed=0
for trace in "$GOLDEN"/*.trace; do
    [ -e "$trace" ] || die "no traces in $GOLDEN"
    base=$(basename "$trace" .trace)
    expected="$GOLDEN/$base.expected.txt"
    [ -f "$expected" ] || die "missing $expected"

    salvage=""
    case "$base" in *damaged*) salvage="--salvage" ;; esac

    for pass in fresh cached; do
        got="$WORK/$base.$pass.out"
        "$WMRACE" submit "$trace" --server "$ADDR" $salvage \
            > "$got" 2> "$WORK/$base.$pass.err"
        status=$?
        # submit exits 1 when the report finds a data race — that is
        # a successful analysis, not a transport failure.
        if [ $status -ne 0 ] && [ $status -ne 1 ]; then
            echo "loadgen: FAIL $base ($pass): submit exited $status" >&2
            cat "$WORK/$base.$pass.err" >&2
            fail=1
            continue
        fi
        if ! cmp -s "$expected" "$got"; then
            echo "loadgen: FAIL $base ($pass): served report differs" >&2
            diff -u "$expected" "$got" | head -40 >&2
            fail=1
        fi
    done
    replayed=$((replayed + 1))
done

[ $fail -eq 0 ] && echo "loadgen: $replayed trace(s) served byte-identical (fresh + cached)"
exit $fail
