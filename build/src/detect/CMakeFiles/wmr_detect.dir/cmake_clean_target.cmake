file(REMOVE_RECURSE
  "libwmr_detect.a"
)
