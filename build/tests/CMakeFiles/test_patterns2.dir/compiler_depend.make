# Empty compiler generated dependencies file for test_patterns2.
# This may be replaced when dependencies are built.
