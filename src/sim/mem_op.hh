/**
 * @file
 * The dynamic memory-operation record every other layer consumes.
 *
 * A MemOp is the paper's "memory operation": a dynamic read or write
 * of one shared word, tagged with whether the hardware recognized it
 * as synchronization and, for sync operations, whether it carries
 * acquire/release semantics (Definition 2.1).  Reads additionally
 * record which write's value they returned — that observation is what
 * lets the tracer derive so1 pairing (Def. 2.2) and lets the SCP
 * analysis pin where the execution stopped being explainable by the
 * issue-order SC witness.
 */

#ifndef WMR_SIM_MEM_OP_HH
#define WMR_SIM_MEM_OP_HH

#include <vector>

#include "common/types.hh"

namespace wmr {

/** Direction of a memory operation. */
enum class OpKind : std::uint8_t { Read, Write };

/** One dynamic memory operation. */
struct MemOp
{
    /** Global issue-order index; doubles as the op's identity. */
    OpId id = kNoOp;

    /** Issuing processor. */
    ProcId proc = kNoProc;

    /** Per-processor program-order index among that proc's MemOps. */
    std::uint32_t poIndex = 0;

    /** Static instruction (pc) that issued the operation. */
    std::uint32_t pc = 0;

    OpKind kind = OpKind::Read;

    /** Hardware-recognized synchronization operation? */
    bool sync = false;

    /** Sync read usable as an acquire (Def. 2.1(2)). */
    bool acquire = false;

    /** Sync write usable as a release (Def. 2.1(1)). */
    bool release = false;

    Addr addr = 0;

    /** Value read or written. */
    Value value = 0;

    /**
     * For reads: id of the write whose value was returned, or kNoOp
     * when the initial memory image supplied the value.
     */
    OpId observedWrite = kNoOp;

    /**
     * For reads: true when the returned value's writer differs from
     * the globally most recent (issue-order) writer of the address —
     * i.e. the read is NOT explained by the issue-order SC witness.
     * The first stale read marks the end of the guaranteed SCP.
     */
    bool stale = false;

    /**
     * The operation would NOT occur (with this identity) in the SC
     * witness execution Eseq: its effective address came through a
     * tainted index register, or its processor already branched on a
     * tainted value (control divergence).  An operation's identity is
     * its program point plus address — values don't count (Sec. 2.1)
     * — so a stale read itself is NOT divergent; only operations
     * whose address/existence depend on stale data are.  Non-
     * divergent operations constitute the op-level SCP.
     */
    bool divergent = false;

    /**
     * For writes: the stored value was influenced by stale data, so
     * although the operation itself occurs in Eseq, it writes a
     * different value there — readers of this write become tainted.
     */
    bool taintedValue = false;

    /** Simulated completion time. */
    Tick tick = 0;

    /** Executor step (instruction index in the global interleaving)
     *  that issued this operation; used for SCP witness replay. */
    std::uint64_t step = 0;
};

/** @return whether @p op is a data (non-sync) operation. */
inline bool
isDataOp(const MemOp &op)
{
    return !op.sync;
}

/** @return whether two operations conflict (Sec. 2.1). */
inline bool
conflict(const MemOp &x, const MemOp &y)
{
    return x.addr == y.addr &&
           (x.kind == OpKind::Write || y.kind == OpKind::Write);
}

} // namespace wmr

#endif // WMR_SIM_MEM_OP_HH
