# Empty compiler generated dependencies file for bench_sec5_weak_speedup.
# This may be replaced when dependencies are built.
