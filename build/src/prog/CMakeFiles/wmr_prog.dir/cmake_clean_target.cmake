file(REMOVE_RECURSE
  "libwmr_prog.a"
)
