/**
 * @file
 * The wmrace serving protocol: length-prefixed binary frames over a
 * stream socket (unix domain by default, loopback TCP optionally).
 *
 * One connection carries ONE request and ONE response — the serving
 * unit is a whole trace analysis (file-sized, not packet-sized), so
 * connection reuse would buy little and cost framing state.  All
 * outer-frame integers are little-endian fixed width; the response
 * meta block uses the shared varint codec (trace/wire_codec.hh).
 *
 *   request  := "WMRQSV01" cmd:u32le flags:u32le bodyLen:u64le body
 *   response := "WMRPSV01" status:u32le flags:u32le
 *               retryAfterMs:u32le metaLen:u64le reportLen:u64le
 *               meta report
 *
 * Commands: Analyze (body = a trace file's bytes, either container),
 * Status (body empty; the report field of the response carries the
 * server status JSON), Shutdown (body empty; asks the server to
 * drain gracefully — the network twin of SIGTERM).
 *
 * The response meta is the machine-readable per-trace summary (the
 * same fields as a batch TraceRunResult), so `wmrace batch --server`
 * can aggregate served analyses without scraping the report text;
 * the report field is byte-identical to local `wmrace check` output,
 * which is what the golden-corpus replay (tools/loadgen.sh) diffs.
 *
 * Admission control is visible on the wire: a saturated server
 * answers Overloaded with a client retry hint instead of queueing
 * unboundedly (see docs/SERVE.md).
 */

#ifndef WMR_SERVE_PROTOCOL_HH
#define WMR_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wmr::serve {

/** What a request asks the server to do. */
enum class Command : std::uint32_t {
    Analyze = 1,  ///< body = trace bytes; response = report
    Status = 2,   ///< response report = server status JSON
    Shutdown = 3, ///< graceful drain (the network SIGTERM)
};

/** Request flag bits. */
constexpr std::uint32_t kReqSalvage = 1u << 0; ///< damaged upload ok
constexpr std::uint32_t kReqNoCache = 1u << 1; ///< bypass the cache

/**
 * Engine selector (request flag bits 8..11): which detector engine
 * family analyzes the upload (docs/DETECTORS.md).  0 keeps the
 * canonical hb1 `wmrace check` path; 1..4 select hb1 / shb / wcp /
 * all and make the response report a detector family report.
 * readRequest() validates the field, so an out-of-range selector is
 * a Malformed frame with a typed error — never an undefined engine.
 */
constexpr std::uint32_t kReqEngineShift = 8;
constexpr std::uint32_t kReqEngineMask = 0xFu << kReqEngineShift;
constexpr std::uint32_t kWireEngineDefault = 0;
constexpr std::uint32_t kWireEngineMax = 4; ///< largest valid id

/** @return the engine selector field of request @p flags. */
constexpr std::uint32_t
requestEngineWire(std::uint32_t flags)
{
    return (flags & kReqEngineMask) >> kReqEngineShift;
}

/** @return the `--engine` name of wire id @p wire (1..4), or
 *  nullptr for 0/default and out-of-range ids. */
const char *engineWireName(std::uint32_t wire);

/** @return the wire id of `--engine` name @p name ("hb1", "shb",
 *  "wcp", "all"), or 0 when unknown (callers reject that). */
std::uint32_t engineWireId(const std::string &name);

/** How the server answered. */
enum class RespStatus : std::uint32_t {
    Ok = 0,
    BadRequest = 1,    ///< malformed frame or unparseable trace
    Overloaded = 2,    ///< admission control rejected; retry later
    Draining = 3,      ///< shutting down; resubmit elsewhere/later
    InternalError = 4, ///< server-side failure
};

/** @return a stable lowercase name for @p status. */
const char *respStatusName(RespStatus status);

/** Response flag bits. */
constexpr std::uint32_t kRespCacheHit = 1u << 0;
constexpr std::uint32_t kRespAnyDataRace = 1u << 1;
constexpr std::uint32_t kRespSalvaged = 1u << 2;

/** One parsed request. */
struct Request
{
    Command command = Command::Analyze;
    std::uint32_t flags = 0;
    std::vector<std::uint8_t> body;
};

/**
 * The machine-readable per-trace summary of an Analyze response —
 * field-for-field what batch keeps in a TraceRunResult, so the batch
 * client rebuilds its aggregate report from serves alone.
 */
struct ResponseMeta
{
    std::uint64_t fileBytes = 0;
    std::uint64_t events = 0;
    std::uint64_t syncEvents = 0;
    std::uint64_t ops = 0;
    std::uint64_t races = 0;
    std::uint64_t dataRaces = 0;
    std::uint64_t partitions = 0;
    std::uint64_t firstPartitions = 0;
    std::uint64_t reportedRaces = 0;
    bool anyDataRace = false;
    bool wholeExecutionSc = false;
    bool salvaged = false;
    std::uint64_t unresolvedPairings = 0;
    std::uint64_t droppedDataRecords = 0;

    /** Content-addressed cache key of the uploaded bytes. */
    std::uint64_t contentHash = 0;

    /** Failure reason (non-Ok statuses). */
    std::string error;
};

/** One parsed response. */
struct Response
{
    RespStatus status = RespStatus::Ok;
    std::uint32_t flags = 0;
    std::uint32_t retryAfterMs = 0;
    ResponseMeta meta;

    /** Analyze: the `wmrace check`-identical report text.
     *  Status: the server status JSON. */
    std::string report;

    bool ok() const { return status == RespStatus::Ok; }
    bool cacheHit() const { return flags & kRespCacheHit; }
};

/** Outcome classes of reading a frame off a socket. */
enum class FrameReadStatus : std::uint8_t {
    Ok,
    Eof,       ///< peer closed before a full frame arrived
    Malformed, ///< bytes are not a protocol frame
    TooLarge,  ///< body exceeds the caller's limit (pre-body check)
    IoError,   ///< read failed / timed out
};

/** Encode @p req as one request frame. */
std::vector<std::uint8_t> encodeRequestFrame(const Request &req);

/** Encode @p resp as one response frame. */
std::vector<std::uint8_t> encodeResponseFrame(const Response &resp);

/**
 * Read one request frame from @p fd (blocking).  @p maxBodyBytes
 * rejects an oversized announced body BEFORE reading it, so a rogue
 * upload costs a header read, not memory.  A nonzero @p deadlineMs
 * bounds the TOTAL transfer time — the per-recv SO_RCVTIMEO bounds
 * each syscall, this bounds their sum, so a slow-loris client
 * trickling bytes can never wedge a worker (IoError/ETIMEDOUT).
 */
FrameReadStatus readRequest(int fd, std::uint64_t maxBodyBytes,
                            Request &out, std::string &error,
                            std::uint32_t deadlineMs = 0);

/** Read one response frame from @p fd (blocking). */
FrameReadStatus readResponse(int fd, Response &out,
                             std::string &error);

/**
 * Decode one complete response frame from a byte buffer — the
 * in-memory twin of readResponse(), used by the result cache's disk
 * tier (which stores responses as frames) and by tests.  @p n must
 * be the exact frame length; trailing bytes are malformed.
 */
bool decodeResponseFrame(const std::uint8_t *data, std::size_t n,
                         Response &out, std::string &error);

/**
 * Write all @p n bytes at @p data to @p fd (send with NOSIGNAL; a
 * dead peer yields false, never SIGPIPE).
 */
bool writeAll(int fd, const void *data, std::size_t n);

/** Render @p resp's meta as a one-line JSON object (the
 *  `wmrace submit --meta` output; schema "wmrace-serve-meta"). */
std::string metaJson(const Response &resp);

} // namespace wmr::serve

#endif // WMR_SERVE_PROTOCOL_HH
