#include "pipeline/trace_corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/string_util.hh"

namespace fs = std::filesystem;

namespace wmr {

bool
hasTraceExtension(const std::string &path)
{
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".trace" || ext == ".bin" || ext == ".wmtrc";
}

namespace {

CorpusScan
scanDirectory(const fs::path &dir)
{
    CorpusScan scan;
    scan.source = dir.string();
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) &&
            hasTraceExtension(it->path().string())) {
            scan.files.push_back(it->path().string());
        }
    }
    if (ec) {
        scan.error = "cannot scan corpus directory '" + dir.string() +
                     "': " + ec.message();
        return scan;
    }
    // Directory iteration order is filesystem-dependent; sorting
    // makes the corpus (and thus the report) order deterministic.
    std::sort(scan.files.begin(), scan.files.end());
    if (scan.files.empty()) {
        scan.error = "corpus directory '" + dir.string() +
                     "' contains no trace files "
                     "(.trace/.bin/.wmtrc)";
    }
    return scan;
}

CorpusScan
scanManifest(const fs::path &manifest)
{
    CorpusScan scan;
    scan.source = manifest.string();
    scan.fromManifest = true;
    std::ifstream in(manifest);
    if (!in) {
        scan.error =
            "cannot open manifest '" + manifest.string() + "'";
        return scan;
    }
    const fs::path base = manifest.parent_path();
    std::string line;
    while (std::getline(in, line)) {
        const std::string entry{trim(line)};
        if (entry.empty() || entry[0] == '#')
            continue;
        fs::path p(entry);
        if (p.is_relative())
            p = base / p;
        scan.files.push_back(p.string());
    }
    if (scan.files.empty()) {
        scan.error = "manifest '" + manifest.string() +
                     "' lists no trace files";
    }
    return scan;
}

} // namespace

CorpusScan
scanCorpus(const std::string &dirOrManifest)
{
    const fs::path path(dirOrManifest);
    std::error_code ec;
    if (fs::is_directory(path, ec))
        return scanDirectory(path);
    if (fs::is_regular_file(path, ec))
        return scanManifest(path);
    CorpusScan scan;
    scan.source = dirOrManifest;
    scan.error = "corpus '" + dirOrManifest +
                 "' is neither a directory nor a manifest file";
    return scan;
}

} // namespace wmr
