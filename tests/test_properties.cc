/**
 * @file
 * Property tests: the paper's conditions and theorems checked
 * empirically over seeded program families.
 *
 *  - Condition 3.4(1): executions of data-race-free programs on every
 *    weak model are sequentially consistent.
 *  - Theorem 4.1: first partitions with data races exist iff data
 *    races occurred.
 *  - Theorem 4.2: every first partition contains a race that also
 *    occurs in a sequentially consistent execution — checked two
 *    ways: against the constructive SCP witness Eseq, and against
 *    exhaustive SC enumeration (for lock-free programs).
 *  - Reporting only first partitions never reports MORE than the
 *    naive method (and the naive set contains the reported set).
 *  - EngineFamily.*: the detector-family containment chain
 *    reported(hb1) ⊆ races(shb) == races(hb1) ⊆ races(wcp) holds
 *    with zero violations over a seeded generator sweep, and the
 *    rendered family report is byte-identical at --jobs 1/2/8 and
 *    with observability on or off.
 *  - TsoPsoContainment.*: TSO behaviors are contained in PSO's —
 *    TSO forbids the message-passing reorder PSO exhibits, and
 *    every sampled TSO outcome of the litmus shapes also occurs
 *    under PSO.
 *  - FenceRestoresSc.*: a fully fenced program is robust on every
 *    model and realization, and sfence alone restores store order
 *    on PSO.
 *  - RobustnessDeterminism.*: the robustness verdict and rendered
 *    report are byte-identical across repeated runs, concurrent
 *    checker threads, and observability on/off.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "detect/analysis.hh"
#include "detect/robustness.hh"
#include "engines/family.hh"
#include "mc/explorer.hh"
#include "mc/scp_witness.hh"
#include "obs/obs.hh"
#include "prog/builder.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"
#include "workload/synthetic_trace.hh"

namespace wmr {
namespace {

/** Small lock-free racy programs: exhaustively enumerable. */
Program
tinyRacyProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 2;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 3;
    cfg.dataWords = 3;
    cfg.numLocks = 1;
    cfg.unlockedProb = 1.0; // never lock: no spins, pure data ops
    return randomProgram(cfg);
}

/** Small lockful race-free programs. */
Program
tinyRaceFreeProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 2;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 2;
    cfg.dataWords = 2;
    cfg.numLocks = 1;
    cfg.unlockedProb = 0.0;
    return randomProgram(cfg);
}

TEST(Condition341, RaceFreeProgramsStayScOnWeakModels)
{
    // Ground truth by construction AND verified by the explorer; then
    // every weak execution must be SC and report nothing.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const Program p = tinyRaceFreeProgram(seed);
        const auto truth =
            exploreScExecutions(p, {.maxExecutions = 5'000});
        EXPECT_FALSE(truth.anyDataRace) << "seed " << seed;

        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1, ModelKind::TSO, ModelKind::PSO}) {
            for (std::uint64_t es = 0; es < 10; ++es) {
                ExecOptions opts;
                opts.model = kind;
                opts.seed = es;
                opts.drainLaziness = 0.9;
                const auto res = runProgram(p, opts);
                ASSERT_TRUE(res.completed);
                EXPECT_EQ(res.staleReads, 0u)
                    << modelName(kind) << " prog " << seed << " seed "
                    << es;
                const auto det = analyzeExecution(res);
                EXPECT_FALSE(det.anyDataRace());
                EXPECT_TRUE(det.scp().wholeExecutionSc);
            }
        }
    }
}

TEST(Theorem41, FirstPartitionsIffDataRaces)
{
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = (seed % 3 == 0)
                              ? randomRaceFreeProgram(seed)
                              : randomRacyProgram(seed);
        for (const auto kind : {ModelKind::SC, ModelKind::WO,
                                ModelKind::RCsc}) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed * 7 + 1;
            opts.drainLaziness = 0.8;
            const auto det = analyzeExecution(runProgram(p, opts));
            EXPECT_EQ(det.anyDataRace(),
                      !det.partitions().firstPartitions.empty())
                << modelName(kind) << " seed " << seed;
        }
    }
}

TEST(Theorem42, FirstPartitionsHoldScpRaces)
{
    // Every first partition contains at least one race classified
    // (possibly) in the SCP.
    int checked = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto det = analyzeExecution(runProgram(p, opts));
        for (const auto pi : det.partitions().firstPartitions) {
            bool anyScp = false;
            for (const auto r :
                 det.partitions().partitions[pi].races) {
                anyScp |= det.scp().raceMaybeInScp[r];
            }
            EXPECT_TRUE(anyScp) << "seed " << seed;
            ++checked;
        }
    }
    EXPECT_GT(checked, 20); // the sweep exercised real partitions
}

TEST(Theorem42, FirstPartitionRacesAreScFeasible)
{
    // The strong form, via exhaustive SC enumeration: each first
    // partition of a weak execution holds a race whose static pair
    // occurs in SOME sequentially consistent execution.
    int partitionsChecked = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = tinyRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);

        const auto truth =
            exploreScExecutions(p, {.maxExecutions = 20'000});
        ASSERT_TRUE(truth.exhaustive) << "seed " << seed;

        for (const auto pi : det.partitions().firstPartitions) {
            bool feasible = false;
            for (const auto r :
                 det.partitions().partitions[pi].races) {
                for (const auto &pair :
                     staticPairsOfRace(det, r, res.ops)) {
                    feasible |= truth.races.count(pair) > 0;
                }
            }
            EXPECT_TRUE(feasible) << "seed " << seed;
            ++partitionsChecked;
        }
    }
    EXPECT_GT(partitionsChecked, 10);
}

TEST(Theorem42, WitnessEseqConfirmsScpRaces)
{
    // Constructive check: a race flagged raceInScp has a static pair
    // among the races of the witness SC execution Eseq.
    int confirmed = 0, scpRaces = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = tinyRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);
        if (!det.anyDataRace())
            continue;
        const auto w = buildScpWitness(p, res);
        ASSERT_TRUE(w.prefixMatched) << "seed " << seed;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (!det.scp().raceInScp[r])
                continue;
            ++scpRaces;
            for (const auto &pair :
                 staticPairsOfRace(det, r, res.ops)) {
                if (w.eseqRaces.count(pair)) {
                    ++confirmed;
                    break;
                }
            }
        }
    }
    ASSERT_GT(scpRaces, 5);
    // Lock-free straight-line programs: the witness reproduces every
    // SCP race (no control divergence can hide operations).
    EXPECT_EQ(confirmed, scpRaces);
}

TEST(Condition34, HoldsAcrossModelsAndWorkloads)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1, ModelKind::TSO, ModelKind::PSO}) {
            const Program p = randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed + 100;
            opts.drainLaziness = 0.95;
            const auto det = analyzeExecution(runProgram(p, opts));
            const auto bad = checkCondition34(
                det.races(), det.scp(), det.augmented());
            EXPECT_TRUE(bad.empty())
                << modelName(kind) << " seed " << seed;
        }
    }
}

TEST(Reporting, FirstPartitionSetIsSubsetOfNaiveSet)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        const auto det = analyzeExecution(runProgram(p, opts));
        const auto reported = det.reportedRaces();
        EXPECT_LE(reported.size(), det.races().size());
        for (const auto r : reported)
            EXPECT_LT(r, det.races().size());
    }
}

TEST(Reporting, AnalysisIsDeterministic)
{
    const Program p = randomRacyProgram(5);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 9;
    const auto res = runProgram(p, opts);
    const auto a = analyzeExecution(res);
    const auto b = analyzeExecution(res);
    ASSERT_EQ(a.races().size(), b.races().size());
    for (std::size_t i = 0; i < a.races().size(); ++i) {
        EXPECT_EQ(a.races()[i].a, b.races()[i].a);
        EXPECT_EQ(a.races()[i].b, b.races()[i].b);
        EXPECT_EQ(a.races()[i].addrs, b.races()[i].addrs);
    }
    EXPECT_EQ(a.partitions().firstPartitions,
              b.partitions().firstPartitions);
}

engines::EngineFamilyResult
runFamilyAll(const ExecutionTrace &trace, unsigned threads)
{
    const auto kinds = engines::parseEngineSelection("all");
    EXPECT_TRUE(kinds.has_value());
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = threads;
    return engines::runEngineFamily(trace, fopts);
}

TEST(EngineFamily, ContainmentHoldsOverGeneratorSweep)
{
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        ExecutionTrace trace;
        if (seed % 2 == 0) {
            SyntheticTraceOptions opts;
            opts.procs = 2 + static_cast<ProcId>(seed % 4);
            opts.eventsPerProc = 40;
            opts.syncFraction = 0.25;
            opts.hotFraction = 0.5;
            opts.seed = seed;
            trace = makeSyntheticTrace(opts);
        } else {
            const Program p = seed % 4 == 1
                                  ? randomRacyProgram(seed)
                                  : randomRaceFreeProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            trace = buildTrace(runProgram(p, opts),
                               {.keepMemberOps = true});
        }
        const engines::EngineFamilyResult fam =
            runFamilyAll(trace, 1);
        EXPECT_TRUE(fam.containment.checkedReportedInShb) << seed;
        EXPECT_TRUE(fam.containment.checkedShbMatchesHb1) << seed;
        EXPECT_TRUE(fam.containment.checkedShbInWcp) << seed;
        EXPECT_EQ(fam.containment.violations, 0u) << seed;
    }
}

TEST(EngineFamily, ReportIsDeterministicAcrossJobsAndObs)
{
    SyntheticTraceOptions opts;
    opts.procs = 4;
    opts.eventsPerProc = 80;
    opts.syncFraction = 0.3;
    opts.hotFraction = 0.6;
    opts.seed = 77;
    const ExecutionTrace trace = makeSyntheticTrace(opts);

    const std::string base =
        engines::formatFamilyReport(runFamilyAll(trace, 1));
    for (const unsigned threads : {2u, 8u}) {
        EXPECT_EQ(engines::formatFamilyReport(
                      runFamilyAll(trace, threads)),
                  base)
            << "threads=" << threads;
    }

    // The observability layer is instrumented into the engines'
    // hot paths; toggling it must not perturb one output byte.
    obs::setEnabled(false);
    const std::string obsOff =
        engines::formatFamilyReport(runFamilyAll(trace, 2));
    obs::setEnabled(true);
    EXPECT_EQ(obsOff, base);
}

// ---------------------------------------------------------------
// TSO/PSO litmus properties and robustness.
// ---------------------------------------------------------------

/** Message passing as raw data ops: P0 writes data then flag, P1
 *  reads flag (r0) then data (r1).  @p withSfence separates P0's
 *  writes with a store-store fence. */
Program
mpLitmus(bool withSfence)
{
    ProgramBuilder pb;
    pb.var("data", 0).var("flag", 1);
    ThreadBuilder writer;
    writer.storei(0, 42);
    if (withSfence)
        writer.sfence();
    writer.storei(1, 1).halt();
    ThreadBuilder reader;
    reader.load(0, 1)  // r0 = flag
        .load(1, 0)    // r1 = data
        .halt();
    pb.thread(writer).thread(reader);
    return pb.build();
}

/** Store buffering (the dekker core): each proc writes its own
 *  variable then reads the other's into r0. */
Program
sbLitmus()
{
    ProgramBuilder pb;
    pb.var("x", 0).var("y", 1);
    ThreadBuilder t0;
    t0.storei(0, 1).load(0, 1).halt(); // r0 = y
    ThreadBuilder t1;
    t1.storei(1, 1).load(0, 0).halt(); // r0 = x
    pb.thread(t0).thread(t1);
    return pb.build();
}

/** Run @p p under the store-buffer realization of @p model. */
ExecutionResult
runLitmus(const Program &p, ModelKind model, std::uint64_t seed,
          double laziness)
{
    ExecOptions opts;
    opts.model = model;
    opts.seed = seed;
    opts.drainLaziness = laziness;
    return runProgram(p, opts);
}

TEST(TsoPsoContainment, TsoForbidsMpReorderPsoExhibitsIt)
{
    // TSO's FIFO buffer preserves W->W order, so a reader that sees
    // flag==1 always sees data==42; PSO's per-location buffers let
    // the flag store drain first, and some seed exhibits it.
    const Program mp = mpLitmus(false);
    std::size_t psoReorders = 0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const auto tso =
            runLitmus(mp, ModelKind::TSO, seed, 0.5);
        ASSERT_TRUE(tso.completed);
        if (tso.finalRegs[1][0] == 1)
            EXPECT_EQ(tso.finalRegs[1][1], 42) << "seed " << seed;

        const auto pso =
            runLitmus(mp, ModelKind::PSO, seed, 0.5);
        ASSERT_TRUE(pso.completed);
        if (pso.finalRegs[1][0] == 1 && pso.finalRegs[1][1] == 0) {
            ++psoReorders;
            // The non-SC outcome must be flagged by the checker.
            EXPECT_FALSE(checkRobustness(pso).robust)
                << "seed " << seed;
        }
    }
    EXPECT_GT(psoReorders, 0u);
}

TEST(TsoPsoContainment, SampledTsoOutcomesOccurUnderPso)
{
    // Outcome-set containment on the litmus shapes: every final
    // register fingerprint TSO produces, PSO produces too (sampled
    // over a wider PSO sweep; the converse fails by the MP test
    // above).  Both exhibit the W->R store-buffering outcome.
    const Program shapes[] = {mpLitmus(false), sbLitmus()};
    for (const Program &p : shapes) {
        std::set<std::string> tsoOutcomes;
        std::set<std::string> psoOutcomes;
        const auto fingerprint = [](const ExecutionResult &res) {
            std::string fp;
            for (const auto &regs : res.finalRegs) {
                for (const Value v : regs)
                    fp += std::to_string(v) + ",";
                fp += ";";
            }
            return fp;
        };
        for (const double laziness : {0.5, 1.0}) {
            for (std::uint64_t seed = 0; seed < 150; ++seed) {
                tsoOutcomes.insert(fingerprint(
                    runLitmus(p, ModelKind::TSO, seed, laziness)));
            }
            for (std::uint64_t seed = 0; seed < 300; ++seed) {
                psoOutcomes.insert(fingerprint(
                    runLitmus(p, ModelKind::PSO, seed, laziness)));
            }
        }
        for (const std::string &fp : tsoOutcomes)
            EXPECT_TRUE(psoOutcomes.count(fp)) << fp;
    }

    // Both models exhibit SB's non-SC outcome r0==r0==0 under fully
    // lazy drains (W->R reordering is common to TSO and PSO).
    for (const ModelKind model : {ModelKind::TSO, ModelKind::PSO}) {
        const auto res = runLitmus(sbLitmus(), model, 0, 1.0);
        EXPECT_EQ(res.finalRegs[0][0], 0) << modelName(model);
        EXPECT_EQ(res.finalRegs[1][0], 0) << modelName(model);
        EXPECT_FALSE(checkRobustness(res).robust)
            << modelName(model);
    }
}

TEST(FenceRestoresSc, FullyFencedProgramsAlwaysRobust)
{
    // A full fence after every memory operation restores SC
    // *equivalence* on every model: each op is globally visible
    // before its proc proceeds, so the commit order is an SC
    // witness and every execution is robust, both realizations,
    // even fully lazy.  (Zero stale reads is NOT implied: a read
    // may still land between a remote write's issue and its
    // fence-drain — the issue order flags it stale, but an SC
    // order simply places the read first.)
    ProgramBuilder pb;
    pb.var("data", 0).var("flag", 1).var("x", 2);
    ThreadBuilder t0;
    t0.storei(0, 42).fence().storei(1, 1).fence().load(0, 2)
        .fence().halt();
    ThreadBuilder t1;
    t1.storei(2, 7).fence().load(0, 1).fence().load(1, 0).fence()
        .halt();
    pb.thread(t0).thread(t1);
    const Program fenced = pb.build();

    for (const ModelKind model : kAllModels) {
        for (const Realization realization : kAllRealizations) {
            for (std::uint64_t seed = 0; seed < 10; ++seed) {
                ExecOptions opts;
                opts.model = model;
                opts.realization = realization;
                opts.seed = seed;
                opts.drainLaziness = 1.0;
                const auto res = runProgram(fenced, opts);
                ASSERT_TRUE(res.completed);
                EXPECT_TRUE(checkRobustness(res).robust)
                    << modelName(model) << " seed " << seed;
            }
        }
    }
}

TEST(FenceRestoresSc, SfenceRestoresStoreOrderOnPso)
{
    // The store-store fence alone is enough for message passing on
    // PSO: with it, no seed exhibits the reorder and every
    // execution is robust; without it the reorder occurs (checked
    // in TsoForbidsMpReorderPsoExhibitsIt).
    const Program mp = mpLitmus(true);
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const auto res = runLitmus(mp, ModelKind::PSO, seed, 0.5);
        ASSERT_TRUE(res.completed);
        if (res.finalRegs[1][0] == 1)
            EXPECT_EQ(res.finalRegs[1][1], 42) << "seed " << seed;
        EXPECT_TRUE(checkRobustness(res).robust) << "seed " << seed;
    }
}

TEST(RobustnessDeterminism, VerdictStableAcrossRunsThreadsAndObs)
{
    ExecOptions opts;
    opts.model = ModelKind::PSO;
    opts.seed = 3;
    opts.drainLaziness = 1.0;
    const auto res = runProgram(dekkerDataFlags(), opts);
    ASSERT_TRUE(res.completed);

    const auto base = checkRobustness(res);
    const std::string baseReport =
        formatRobustnessReport(base, res.ops);
    ASSERT_FALSE(base.robust);

    // Repeated serial runs.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(formatRobustnessReport(checkRobustness(res),
                                         res.ops),
                  baseReport);
    }

    // Concurrent checkers over the same execution.
    std::vector<std::string> reports(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < reports.size(); ++t) {
        threads.emplace_back([&, t] {
            reports[t] = formatRobustnessReport(
                checkRobustness(res), res.ops);
        });
    }
    for (auto &th : threads)
        th.join();
    for (const std::string &r : reports)
        EXPECT_EQ(r, baseReport);

    // Observability toggled off must not perturb one output byte.
    obs::setEnabled(false);
    const std::string obsOff =
        formatRobustnessReport(checkRobustness(res), res.ops);
    obs::setEnabled(true);
    EXPECT_EQ(obsOff, baseReport);
}

} // namespace
} // namespace wmr
