/**
 * @file
 * The complementary workflow the paper endorses: run the STATIC
 * analyzer over the program text first (covers every possible
 * execution, conservative), then confirm or refute its findings with
 * the DYNAMIC detector on weak executions (precise about what
 * actually happened).
 *
 * The subject is the Figure 2 work queue: statically the missing
 * Test&Set shows up as unprotected accesses to Q and QEmpty; the
 * dynamic run shows the bug manifesting and the first partition
 * pinpointing it; after the fix the static report still carries an
 * aliasing warning for the region (an artifact of conservatism) that
 * the dynamic detector refutes execution by execution.
 */

#include <cstdio>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "staticdet/static_analyzer.hh"
#include "workload/scenarios.hh"

int
main()
{
    using namespace wmr;

    std::printf("== step 1: static analysis of the buggy queue ==\n");
    const Program buggy = figure2Queue();
    StaticOptions sopts;
    sopts.firstDataAddr = 3; // Q, QEmpty, S are sync/queue infra
    const auto staticBuggy = analyzeStatically(buggy, sopts);
    std::printf("%s\n",
                formatStaticReport(staticBuggy, &buggy).c_str());

    std::printf("== step 2: dynamic confirmation on a weak "
                "execution ==\n");
    const auto s = stageFigure2bExecution();
    const auto det = analyzeExecution(s.result);
    std::printf("%s\n", formatReport(det, &s.program).c_str());

    std::printf("== step 3: fix and re-check both ways ==\n");
    const Program fixed = figure2Queue(
        {.regionSize = 100, .staleOffset = 37, .withTestAndSet = true});
    const auto staticFixed = analyzeStatically(fixed, sopts);
    std::printf("static: %zu potential race(s) remain%s\n",
                staticFixed.races.size(),
                staticFixed.races.empty()
                    ? ""
                    : " (aliasing conservatism on the region -- "
                      "check dynamically)");
    std::size_t dynamicRaces = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        dynamicRaces += analyzeExecution(runProgram(fixed, opts))
                            .numDataRaces();
    }
    std::printf("dynamic: %zu data races across 20 weak "
                "executions\n",
                dynamicRaces);
    std::printf("\nconclusion: static analysis caught the missing "
                "Test&Set without running\nanything; the dynamic "
                "detector separated the real bug from the region\n"
                "fallout and certified the fix — 'both static and "
                "dynamic techniques in a\ncomplementary fashion' "
                "[EmP88], exactly as the paper recommends.\n");
    return dynamicRaces == 0 ? 0 : 1;
}
