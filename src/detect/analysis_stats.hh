/**
 * @file
 * Per-stage timing and work counters of one analyzeTrace() run.
 *
 * The numbers answer "where did the time go" for a SINGLE trace —
 * graph build, SCC condensation, reachability clocks, candidate
 * enumeration, G' augmentation, partitioning, SCP — which is what the
 * parallel engine tunes.  Timings are nondeterministic by nature, so
 * they are kept strictly OUT of the analysis reports: `wmrace check
 * --stats` prints them to stderr and `wmrace batch` folds them into
 * its metrics channel, leaving stdout/--json byte-identical at every
 * thread count.
 */

#ifndef WMR_DETECT_ANALYSIS_STATS_HH
#define WMR_DETECT_ANALYSIS_STATS_HH

#include <cstdint>
#include <string>

#include "detect/race_finder.hh"
#include "hb/reachability.hh"

namespace wmr {

/** What one analyzeTrace() run did, stage by stage. */
struct AnalysisStats
{
    /** Effective analysis thread budget (after resolving 0). */
    unsigned threads = 1;

    // --- Shape ---------------------------------------------------
    std::uint64_t events = 0;
    std::uint32_t hbComponents = 0;  ///< SCCs of the hb1 graph
    std::uint32_t augComponents = 0; ///< SCCs of G'

    // --- Stage wall-clock seconds --------------------------------
    double graphBuildSeconds = 0;   ///< trace -> hb1 adjacency
    double reachabilitySeconds = 0; ///< hb1 SCC + clock propagation
    double raceFindSeconds = 0;     ///< candidate enumeration
    double augmentSeconds = 0;      ///< G' build + its reachability
    double partitionSeconds = 0;    ///< partitions + first flags
    double scpSeconds = 0;          ///< SCP classification
    double totalSeconds = 0;        ///< whole pipeline

    // --- Sub-stage detail ----------------------------------------
    /** hb1 reachability build breakdown (SCC vs clocks). */
    ReachBuildStats hbReach;

    /** G' reachability build breakdown. */
    ReachBuildStats augReach;

    /** Candidate-enumeration work counters. */
    RaceFinderStats finder;
};

/** Render @p s as a human-readable block (for `check --stats`). */
std::string formatAnalysisStats(const AnalysisStats &s);

} // namespace wmr

#endif // WMR_DETECT_ANALYSIS_STATS_HH
