file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drain.dir/bench_ablation_drain.cc.o"
  "CMakeFiles/bench_ablation_drain.dir/bench_ablation_drain.cc.o.d"
  "bench_ablation_drain"
  "bench_ablation_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
