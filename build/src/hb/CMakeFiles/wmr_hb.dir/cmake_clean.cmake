file(REMOVE_RECURSE
  "CMakeFiles/wmr_hb.dir/hb_graph.cc.o"
  "CMakeFiles/wmr_hb.dir/hb_graph.cc.o.d"
  "CMakeFiles/wmr_hb.dir/reachability.cc.o"
  "CMakeFiles/wmr_hb.dir/reachability.cc.o.d"
  "CMakeFiles/wmr_hb.dir/scc.cc.o"
  "CMakeFiles/wmr_hb.dir/scc.cc.o.d"
  "libwmr_hb.a"
  "libwmr_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
