/**
 * @file
 * wmr::rt::Thread — std::thread with the tracing protocol built in.
 *
 * Thread creation and join are synchronization the happens-before
 * analysis must see, or everything a worker does would look
 * concurrent with the parent.  The wrapper models them the way the
 * paper models all synchronization, as release/acquire pairs on a
 * dedicated sync object per edge:
 *
 *   fork: parent releases forkSync  → child acquires it on entry
 *   join: child releases joinSync   → parent acquires it after join
 *
 * It also brackets the child with thread_begin/thread_end.  All of
 * it is no-op when no tracer is active.
 */

#ifndef WMR_RT_THREAD_HH
#define WMR_RT_THREAD_HH

#include <cstdint>
#include <thread>
#include <utility>

#include "rt/annotate.hh"

namespace wmr::rt {

/** An annotated thread (non-copyable, non-movable: the sync objects
 *  are identified by member address). */
class Thread
{
  public:
    template <typename Fn, typename... Args>
    explicit Thread(Fn &&fn, Args &&...args)
    {
        wmr_rt_release(&forkSync_);
        impl_ = std::thread(
            [this](auto &&f, auto &&...a) {
                wmr_rt_thread_begin();
                wmr_rt_acquire(&forkSync_);
                std::forward<decltype(f)>(f)(
                    std::forward<decltype(a)>(a)...);
                wmr_rt_release(&joinSync_);
                wmr_rt_thread_end();
            },
            std::forward<Fn>(fn), std::forward<Args>(args)...);
    }

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    ~Thread()
    {
        if (impl_.joinable())
            join();
    }

    void
    join()
    {
        impl_.join();
        wmr_rt_acquire(&joinSync_);
    }

    bool joinable() const { return impl_.joinable(); }

  private:
    std::thread impl_;
    // Sync-object identity is the member address; word-sized and
    // word-aligned so the two land in distinct trace granules.
    alignas(8) std::uint64_t forkSync_ = 0;
    alignas(8) std::uint64_t joinSync_ = 0;
};

} // namespace wmr::rt

#endif // WMR_RT_THREAD_HH
