/**
 * @file
 * The observability layer (src/obs): registry semantics and
 * concurrency, span nesting, exporter validity (parsed with the
 * tests' own JSON parser, never regexes), the batch metrics JSON v2
 * schema lock, and the contract that enabling observability cannot
 * change one byte of an analysis report.
 *
 * The ObsE2E suite doubles as the validator of the CLI `--trace-out`
 * CTest entries: it reads the file named by WMR_OBS_E2E_FILE (set by
 * tests/CMakeLists.txt) and skips when run without one.
 */

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "obs/export.hh"
#include "obs/obs.hh"
#include "pipeline/metrics.hh"
#include "workload/synthetic_trace.hh"

#include "json_mini.hh"

using namespace wmr;

namespace {

/** Enable collection for one test, restoring "off" on exit. */
struct ScopedObs
{
    ScopedObs()
    {
        obs::resetForTest();
        obs::setEnabled(true);
    }
    ~ScopedObs() { obs::setEnabled(false); }
};

/** The calling thread's spans from a fresh snapshot (empty if the
 *  thread never recorded). */
std::vector<obs::SpanSample>
mySpans()
{
    // This thread's log is the one whose spans we created last; find
    // it by looking for the test-specific span names instead of
    // guessing tids (other tests' threads may be in the snapshot).
    for (const auto &t : obs::spanSnapshot()) {
        if (!t.spans.empty())
            return t.spans;
    }
    return {};
}

// ---------------------------------------------------------------
// Counter registry.
// ---------------------------------------------------------------

TEST(ObsRegistry, CounterAccumulates)
{
    obs::resetForTest();
    obs::Counter c = obs::counter("test.reg.acc");
    ASSERT_TRUE(c.valid());
    c.add(5);
    c.inc();
    EXPECT_EQ(c.value(), 6u);
}

TEST(ObsRegistry, SameNameSharesOneCell)
{
    obs::resetForTest();
    obs::Counter a = obs::counter("test.reg.shared");
    obs::Counter b = obs::counter("test.reg.shared");
    a.add(3);
    b.add(4);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(b.value(), 7u);
}

TEST(ObsRegistry, GaugeSetAndMax)
{
    obs::resetForTest();
    obs::Counter g = obs::gauge("test.reg.gauge");
    g.set(10);
    g.max(7); // below: no effect
    EXPECT_EQ(g.value(), 10u);
    g.max(42);
    EXPECT_EQ(g.value(), 42u);

    bool seen = false;
    for (const auto &s : obs::counterSnapshot()) {
        if (s.name == "test.reg.gauge") {
            seen = true;
            EXPECT_TRUE(s.isGauge);
            EXPECT_EQ(s.value, 42u);
        }
    }
    EXPECT_TRUE(seen);
}

TEST(ObsRegistry, ConcurrentRegistrationAndIncrementsAreExact)
{
    obs::resetForTest();
    constexpr int kThreads = 8;
    constexpr int kIncrements = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            // Every thread registers the SHARED name (racing the
            // claim CAS) plus its own private one.
            obs::Counter shared =
                obs::counter("test.reg.contended");
            const std::string mine =
                "test.reg.private." + std::to_string(t);
            obs::Counter priv = obs::counter(mine.c_str());
            for (int i = 0; i < kIncrements; ++i) {
                shared.inc();
                priv.inc();
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(obs::counter("test.reg.contended").value(),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    for (int t = 0; t < kThreads; ++t) {
        const std::string mine =
            "test.reg.private." + std::to_string(t);
        EXPECT_EQ(obs::counter(mine.c_str()).value(),
                  static_cast<std::uint64_t>(kIncrements))
            << mine;
    }
}

// ---------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------

TEST(ObsSpans, DisabledRecordsNothing)
{
    obs::resetForTest();
    obs::setEnabled(false);
    {
        obs::Span s("test.span.invisible");
        EXPECT_FALSE(s.recording());
    }
    for (const auto &t : obs::spanSnapshot())
        EXPECT_TRUE(t.spans.empty());
}

TEST(ObsSpans, NestingDepthsAndContainment)
{
    ScopedObs on;
    {
        obs::Span outer("test.span.outer");
        { obs::Span inner1("test.span.inner1"); }
        { obs::Span inner2("test.span.inner2"); }
    }
    const auto spans = mySpans();
    ASSERT_EQ(spans.size(), 3u);

    // Spans are logged at END, so the children precede the parent.
    EXPECT_EQ(spans[0].name, "test.span.inner1");
    EXPECT_EQ(spans[1].name, "test.span.inner2");
    EXPECT_EQ(spans[2].name, "test.span.outer");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[2].depth, 0u);

    // Children are contained in the parent's interval and do not
    // overlap each other.
    const auto &outer = spans[2];
    for (int i = 0; i < 2; ++i) {
        EXPECT_GE(spans[i].startNs, outer.startNs);
        EXPECT_LE(spans[i].startNs + spans[i].durNs,
                  outer.startNs + outer.durNs);
    }
    EXPECT_LE(spans[0].startNs + spans[0].durNs, spans[1].startNs);
}

TEST(ObsSpans, DepthRecoversAfterUnwind)
{
    ScopedObs on;
    {
        obs::Span a("test.span.a");
        { obs::Span b("test.span.b"); }
    }
    { obs::Span c("test.span.c"); }
    const auto spans = mySpans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[2].name, "test.span.c");
    EXPECT_EQ(spans[2].depth, 0u); // not 1: the tree unwound
}

TEST(ObsSpans, AnnotateAttachesDetail)
{
    ScopedObs on;
    {
        obs::Span s("test.span.detail");
        ASSERT_TRUE(s.recording());
        s.annotate("payload \"quoted\"");
    }
    const auto spans = mySpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].detail, "payload \"quoted\"");
}

TEST(ObsSpans, ThreadsKeepSeparateNamedLogs)
{
    ScopedObs on;
    std::thread worker([] {
        obs::setThreadName("test.worker");
        obs::Span s("test.span.on_worker");
    });
    worker.join();
    { obs::Span s("test.span.on_main"); }

    bool sawWorker = false, sawMain = false;
    for (const auto &t : obs::spanSnapshot()) {
        for (const auto &s : t.spans) {
            if (s.name == "test.span.on_worker") {
                sawWorker = true;
                EXPECT_EQ(t.name, "test.worker");
            }
            if (s.name == "test.span.on_main") {
                sawMain = true;
                EXPECT_NE(t.name, "test.worker");
            }
        }
    }
    EXPECT_TRUE(sawWorker);
    EXPECT_TRUE(sawMain);
}

TEST(ObsSpans, StagedSpanFillsSinkEvenWhenDisabled)
{
    obs::resetForTest();
    obs::setEnabled(false);
    double sink = 0.0;
    {
        obs::StagedSpan s("test.staged.off", sink);
    }
    EXPECT_GT(sink, 0.0); // stats structs need timing regardless
    for (const auto &t : obs::spanSnapshot())
        EXPECT_TRUE(t.spans.empty());

    obs::setEnabled(true);
    double sink2 = 0.0;
    {
        obs::StagedSpan s("test.staged.on", sink2);
    }
    obs::setEnabled(false);
    EXPECT_GT(sink2, 0.0);
    const auto spans = mySpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "test.staged.on");
}

// ---------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------

TEST(ObsExport, JsonEscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::jsonEscape(std::string("\x01", 1)), "\\u0001");
    EXPECT_EQ(obs::jsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(ObsExport, ChromeTraceIsValidJsonWithSpansAndCounters)
{
    ScopedObs on;
    obs::setThreadName("test.exporter");
    {
        obs::Span s("test.export.span");
        s.annotate("path \"x\"\n");
    }
    obs::counter("test.export.count").add(12);
    obs::gauge("test.export.gauge").set(5);

    const auto doc = jsonmini::parse(obs::chromeTraceJson());
    ASSERT_TRUE(doc.ok) << doc.error;
    ASSERT_TRUE(doc.value.isObject());
    const auto *events = doc.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool sawSpan = false, sawCounter = false, sawThreadName = false;
    for (const auto &e : events->items) {
        ASSERT_TRUE(e.isObject());
        const auto *ph = e.find("ph");
        const auto *name = e.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(name, nullptr);
        if (ph->str == "X" && name->str == "test.export.span") {
            sawSpan = true;
            EXPECT_TRUE(e.find("ts")->isNumber());
            EXPECT_TRUE(e.find("dur")->isNumber());
            EXPECT_TRUE(e.find("tid")->isNumber());
            const auto *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("detail")->str, "path \"x\"\n");
        }
        if (ph->str == "C" && name->str == "test.export.count")
            sawCounter = true;
        if (ph->str == "M" && name->str == "thread_name" &&
            e.find("args")->find("name")->str == "test.exporter")
            sawThreadName = true;
    }
    EXPECT_TRUE(sawSpan);
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawThreadName);
}

TEST(ObsExport, JsonLinesEveryLineParses)
{
    ScopedObs on;
    {
        obs::Span s("test.export.jsonl");
    }
    obs::counter("test.export.jsonl_count").inc();

    std::istringstream in(obs::jsonLines());
    std::string line;
    std::size_t spans = 0, counters = 0;
    while (std::getline(in, line)) {
        const auto doc = jsonmini::parse(line);
        ASSERT_TRUE(doc.ok) << doc.error << " in line: " << line;
        ASSERT_TRUE(doc.value.isObject());
        const auto *type = doc.value.find("type");
        ASSERT_NE(type, nullptr);
        if (type->str == "span")
            ++spans;
        else if (type->str == "counter" || type->str == "gauge")
            ++counters;
    }
    EXPECT_GE(spans, 1u);
    EXPECT_GE(counters, 1u);
}

// ---------------------------------------------------------------
// Batch metrics JSON: the v2 schema is a stability contract.
// ---------------------------------------------------------------

TEST(MetricsSchema, V2KeySetAndTypesAreLocked)
{
    BatchMetrics m;
    m.jobs = 3;
    m.analysisThreads = 2;
    m.corpusTraces = 7;
    m.analyzed = 5;
    m.failed = 1;
    m.skipped = 1;
    m.resumed = 2;
    m.salvaged = 1;
    m.bytesRead = 12345;
    m.wallSeconds = 0.25;
    m.candidatePairs = 99;
    m.reachQueries = 88;
    m.peakQueueDepth = 4;

    const auto doc = jsonmini::parse(metricsJson(m));
    ASSERT_TRUE(doc.ok) << doc.error;
    ASSERT_TRUE(doc.value.isObject());

    // EXACT top-level key set, in order: additions, removals and
    // renames are all schema breaks and must bump "version".
    const std::vector<std::string> expected = {
        "schema",         "version",
        "jobs",           "analysis_threads",
        "corpus_traces",  "analyzed",
        "failed",         "skipped",
        "resumed",        "salvaged",
        "bytes_read",     "wall_seconds",
        "traces_per_second", "stage_seconds",
        "analysis_stage_seconds", "candidate_pairs",
        "reach_queries",  "peak_queue_depth",
    };
    EXPECT_EQ(doc.value.keys(), expected);

    EXPECT_EQ(doc.value.find("schema")->str, "wmrace-batch-metrics");
    EXPECT_EQ(doc.value.find("version")->number, 2.0);
    for (const auto &[key, val] : doc.value.fields) {
        if (key == "schema")
            continue;
        if (key == "stage_seconds" ||
            key == "analysis_stage_seconds") {
            EXPECT_TRUE(val.isObject()) << key;
            continue;
        }
        EXPECT_TRUE(val.isNumber()) << key;
    }

    const auto *stages = doc.value.find("stage_seconds");
    EXPECT_EQ(stages->keys(),
              (std::vector<std::string>{"read", "parse", "analyze"}));
    const auto *astages = doc.value.find("analysis_stage_seconds");
    EXPECT_EQ(astages->keys(),
              (std::vector<std::string>{"graph_build", "reachability",
                                        "race_find", "augment",
                                        "partition", "scp"}));
    for (const auto &[k, v] : stages->fields)
        EXPECT_TRUE(v.isNumber()) << k;
    for (const auto &[k, v] : astages->fields)
        EXPECT_TRUE(v.isNumber()) << k;

    EXPECT_EQ(doc.value.find("corpus_traces")->number, 7.0);
    EXPECT_EQ(doc.value.find("bytes_read")->number, 12345.0);
}

// ---------------------------------------------------------------
// The determinism contract: observability cannot change a report.
// ---------------------------------------------------------------

TEST(ObsDeterminism, ReportBytesIdenticalOnOffAtEveryThreadCount)
{
    SyntheticTraceOptions topts;
    topts.procs = 4;
    topts.eventsPerProc = 250;
    topts.seed = 17;
    const ExecutionTrace trace = makeSyntheticTrace(topts);

    std::string baseline;
    for (const unsigned threads : {1u, 2u, 4u}) {
        AnalysisOptions aopts;
        aopts.threads = threads;

        obs::resetForTest();
        obs::setEnabled(false);
        const std::string off =
            formatReport(analyzeTrace(trace, aopts), nullptr, {});

        obs::setEnabled(true);
        const std::string on =
            formatReport(analyzeTrace(trace, aopts), nullptr, {});
        obs::setEnabled(false);

        EXPECT_EQ(off, on) << "threads=" << threads;
        if (baseline.empty())
            baseline = off;
        EXPECT_EQ(off, baseline) << "threads=" << threads;
    }
}

// ---------------------------------------------------------------
// E2E validator: drives on files the CLI CTest entries produce.
// ---------------------------------------------------------------

/** The six analysis stages every Chrome trace of a check/batch run
 *  must show (the ISSUE's acceptance criterion). */
const std::set<std::string> kAnalysisStages = {
    "analysis.graph_build", "analysis.reachability",
    "analysis.race_find",   "analysis.augment",
    "analysis.partition",   "analysis.scp",
};

TEST(ObsE2E, TraceOutFileIsValidChromeTraceWithAllStages)
{
    const char *path = std::getenv("WMR_OBS_E2E_FILE");
    if (!path)
        GTEST_SKIP() << "WMR_OBS_E2E_FILE not set (CLI e2e only)";

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "cannot open " << path;
    std::stringstream buf;
    buf << in.rdbuf();

    const auto doc = jsonmini::parse(buf.str());
    ASSERT_TRUE(doc.ok) << doc.error;
    ASSERT_TRUE(doc.value.isObject());
    const auto *events = doc.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items.empty());

    std::set<std::string> spanNames;
    for (const auto &e : events->items) {
        ASSERT_TRUE(e.isObject());
        const auto *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str != "X")
            continue;
        ASSERT_TRUE(e.find("ts")->isNumber());
        ASSERT_TRUE(e.find("dur")->isNumber());
        spanNames.insert(e.find("name")->str);
    }
    for (const auto &stage : kAnalysisStages)
        EXPECT_TRUE(spanNames.count(stage)) << "missing " << stage;

    // Batch runs must additionally show the worker scheduling spans.
    if (std::getenv("WMR_OBS_E2E_REQUIRE_BATCH")) {
        for (const char *name :
             {"batch.worker", "batch.trace", "batch.read",
              "batch.parse", "batch.analyze"})
            EXPECT_TRUE(spanNames.count(name)) << "missing " << name;
    }
}

// ---------------------------------------------------------------
// Registry exhaustion.  KEEP LAST: it deliberately fills the
// process-global 1024-cell table, so any counter a LATER test tried
// to register would come back as a no-op handle.  (Under ctest each
// test is its own process, but the binary must also pass run whole.)
// ---------------------------------------------------------------

TEST(ObsRegistryExhaustion, FullTableDegradesToNoopHandles)
{
    obs::resetForTest();
    const std::uint64_t before = obs::registryOverflows();
    std::vector<obs::Counter> handles;
    for (int i = 0; i < 1200; ++i) {
        const std::string name =
            "test.reg.flood." + std::to_string(i);
        handles.push_back(obs::counter(name.c_str()));
    }
    EXPECT_GT(obs::registryOverflows(), before);

    bool sawNull = false;
    for (auto &h : handles) {
        if (!h.valid()) {
            sawNull = true;
            h.add(7); // must be a safe no-op
            h.set(9);
            h.max(11);
            EXPECT_EQ(h.value(), 0u);
        }
    }
    EXPECT_TRUE(sawNull);
}

} // namespace
