file(REMOVE_RECURSE
  "CMakeFiles/wmr_mc.dir/explorer.cc.o"
  "CMakeFiles/wmr_mc.dir/explorer.cc.o.d"
  "CMakeFiles/wmr_mc.dir/scp_witness.cc.o"
  "CMakeFiles/wmr_mc.dir/scp_witness.cc.o.d"
  "libwmr_mc.a"
  "libwmr_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
