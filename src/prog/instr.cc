#include "prog/instr.hh"

#include "common/logging.hh"
#include "common/string_util.hh"

namespace wmr {

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddI: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpEqI: return "cmpeqi";
      case Opcode::CmpLtI: return "cmplti";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::StoreI: return "storei";
      case Opcode::TestAndSet: return "tas";
      case Opcode::Unset: return "unset";
      case Opcode::SyncLoad: return "syncload";
      case Opcode::SyncStore: return "syncstore";
      case Opcode::SyncStoreI: return "syncstorei";
      case Opcode::Fence: return "fence";
      case Opcode::FenceSS: return "sfence";
      case Opcode::Branch: return "bnz";
      case Opcode::BranchZ: return "bz";
      case Opcode::Jump: return "jmp";
      case Opcode::Halt: return "halt";
    }
    panic("opcodeName: bad opcode %d", static_cast<int>(op));
}

namespace {

std::string
eaText(const Instr &i)
{
    if (i.indexed)
        return strformat("[%u+r%u]", i.addr, i.a);
    return strformat("[%u]", i.addr);
}

} // namespace

std::string
disassemble(const Instr &i)
{
    std::string text;
    switch (i.op) {
      case Opcode::Nop:
        text = "nop";
        break;
      case Opcode::MovI:
        text = strformat("movi r%u, %lld", i.dst,
                         static_cast<long long>(i.imm));
        break;
      case Opcode::Mov:
        text = strformat("mov r%u, r%u", i.dst, i.a);
        break;
      case Opcode::Add:
        text = strformat("add r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::AddI:
        text = strformat("addi r%u, r%u, %lld", i.dst, i.a,
                         static_cast<long long>(i.imm));
        break;
      case Opcode::Sub:
        text = strformat("sub r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::Mul:
        text = strformat("mul r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::CmpEq:
        text = strformat("cmpeq r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::CmpNe:
        text = strformat("cmpne r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::CmpLt:
        text = strformat("cmplt r%u, r%u, r%u", i.dst, i.a, i.b);
        break;
      case Opcode::CmpEqI:
        text = strformat("cmpeqi r%u, r%u, %lld", i.dst, i.a,
                         static_cast<long long>(i.imm));
        break;
      case Opcode::CmpLtI:
        text = strformat("cmplti r%u, r%u, %lld", i.dst, i.a,
                         static_cast<long long>(i.imm));
        break;
      case Opcode::Load:
        text = strformat("load r%u, %s", i.dst, eaText(i).c_str());
        break;
      case Opcode::Store:
        text = strformat("store %s, r%u", eaText(i).c_str(), i.b);
        break;
      case Opcode::StoreI:
        text = strformat("storei %s, %lld", eaText(i).c_str(),
                         static_cast<long long>(i.imm));
        break;
      case Opcode::TestAndSet:
        text = strformat("tas r%u, %s", i.dst, eaText(i).c_str());
        break;
      case Opcode::Unset:
        text = strformat("unset %s", eaText(i).c_str());
        break;
      case Opcode::SyncLoad:
        text = strformat("syncload r%u, %s", i.dst, eaText(i).c_str());
        break;
      case Opcode::SyncStore:
        text = strformat("syncstore %s, r%u", eaText(i).c_str(), i.b);
        break;
      case Opcode::SyncStoreI:
        text = strformat("syncstorei %s, %lld", eaText(i).c_str(),
                         static_cast<long long>(i.imm));
        break;
      case Opcode::Fence:
        text = "fence";
        break;
      case Opcode::FenceSS:
        text = "sfence";
        break;
      case Opcode::Branch:
        text = strformat("bnz r%u, %u", i.a, i.target);
        break;
      case Opcode::BranchZ:
        text = strformat("bz r%u, %u", i.a, i.target);
        break;
      case Opcode::Jump:
        text = strformat("jmp %u", i.target);
        break;
      case Opcode::Halt:
        text = "halt";
        break;
    }
    if (!i.note.empty())
        text += strformat("  ; %s", i.note.c_str());
    return text;
}

} // namespace wmr
