/**
 * @file
 * Tests of the static race analysis: CFG construction, the must-hold
 * lockset dataflow, the analyzer's verdicts on the pattern library,
 * and the soundness property (static report ⊇ dynamic races).
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "mc/static_race.hh"
#include "prog/builder.hh"
#include "staticdet/static_analyzer.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace wmr {
namespace {

TEST(Cfg, StraightLine)
{
    ThreadBuilder t;
    t.movi(1, 1).storei(0, 1).halt();
    const Thread th = t.build();
    const Cfg cfg(th);
    ASSERT_EQ(cfg.size(), 3u);
    EXPECT_EQ(cfg.successors(0), std::vector<std::uint32_t>{1});
    EXPECT_EQ(cfg.successors(1), std::vector<std::uint32_t>{2});
    EXPECT_TRUE(cfg.successors(2).empty()); // halt
    EXPECT_TRUE(cfg.reachable()[2]);
}

TEST(Cfg, BranchHasTwoSuccessors)
{
    ThreadBuilder t;
    t.bz(1, "end").storei(0, 1).label("end").halt();
    const Cfg cfg(t.build());
    const auto &succ = cfg.successors(0);
    ASSERT_EQ(succ.size(), 2u);
    EXPECT_NE(std::find(succ.begin(), succ.end(), 1u), succ.end());
    EXPECT_NE(std::find(succ.begin(), succ.end(), 2u), succ.end());
}

TEST(Cfg, UnreachableCodeDetected)
{
    ThreadBuilder t;
    t.jmp("end").storei(0, 1).label("end").halt();
    const Cfg cfg(t.build());
    EXPECT_TRUE(cfg.reachable()[0]);
    EXPECT_FALSE(cfg.reachable()[1]); // skipped store
    EXPECT_TRUE(cfg.reachable()[2]);
}

TEST(LocksetFlow, SpinLockIdiom)
{
    ThreadBuilder t;
    t.acquireLock(5, 0)        // pcs 0 (tas), 1 (bnz)
     .storei(0, 1)             // pc 2: protected
     .unset(5)                 // pc 3
     .storei(1, 1)             // pc 4: unprotected
     .halt();
    const Thread th = t.build();
    const Cfg cfg(th);
    const auto r = computeLocksets(th, cfg);
    EXPECT_TRUE(r.before[2].count(5));  // held at the store
    EXPECT_TRUE(r.before[3].count(5));  // held at the unset
    EXPECT_FALSE(r.before[4].count(5)); // released after
    EXPECT_TRUE(r.before[0].empty());   // nothing at entry
}

TEST(LocksetFlow, MeetIsIntersection)
{
    // Lock taken on only one branch: must-hold at the join is empty.
    ThreadBuilder t;
    t.bz(1, "skip")
     .acquireLock(5, 0)
     .label("skip")
     .storei(0, 1)
     .halt();
    const Thread th = t.build();
    const auto r = computeLocksets(th, Cfg(th));
    const std::uint32_t store_pc =
        static_cast<std::uint32_t>(th.code.size()) - 2;
    EXPECT_TRUE(r.before[store_pc].empty());
}

TEST(LocksetFlow, NestedLocks)
{
    ThreadBuilder t;
    t.acquireLock(5, 0)
     .acquireLock(6, 0)
     .storei(0, 1)
     .unset(6)
     .storei(1, 1)
     .unset(5)
     .halt();
    const Thread th = t.build();
    const auto r = computeLocksets(th, Cfg(th));
    // pc of first store: after two acquire idioms (2 instrs each).
    EXPECT_EQ(r.before[4].size(), 2u);
    EXPECT_TRUE(r.before[4].count(5));
    EXPECT_TRUE(r.before[4].count(6));
    // second store holds only lock 5.
    EXPECT_EQ(r.before[6].size(), 1u);
    EXPECT_TRUE(r.before[6].count(5));
}

TEST(Analyzer, Figure1aReported)
{
    const auto res = analyzeStatically(figure1a());
    EXPECT_FALSE(res.clean());
    // write x / read x and write y / read y: two exact pairs.
    std::size_t exact = 0;
    for (const auto &r : res.races)
        exact += r.exactAddress;
    EXPECT_EQ(exact, 2u);
}

TEST(Analyzer, Figure1bLockDisciplineOrders)
{
    // Figure 1b synchronizes through Unset/Test&Set on s — which IS
    // the lockset idiom the static analysis understands... but P1
    // never takes the lock before writing, so the discipline is
    // still violated statically: the conservative analysis reports
    // it even though hb1 proves the execution race-free.  This is
    // the classic static false positive.
    const auto res = analyzeStatically(figure1b());
    EXPECT_FALSE(res.clean());
}

TEST(Analyzer, LockedCounterClean)
{
    const auto res = analyzeStatically(lockedCounter(3, 4));
    EXPECT_TRUE(res.clean());
}

TEST(Analyzer, RacyCounterReported)
{
    const auto res =
        analyzeStatically(lockedCounter(2, 2, /*racy=*/true));
    EXPECT_FALSE(res.clean());
}

TEST(Analyzer, SyncSyncPairsNotDataRaces)
{
    // Two Unsets of the same word with no data access: general race
    // only, not reported as a data race.
    ProgramBuilder pb;
    pb.var("s", 0, 1);
    ThreadBuilder a, b;
    a.unset(0).halt();
    b.unset(0).halt();
    pb.thread(a).thread(b);
    const auto res = analyzeStatically(pb.build());
    EXPECT_TRUE(res.clean());
}

TEST(Analyzer, IndexedAccessAliasesDataRegion)
{
    // P0 writes through an index register; P1 reads a fixed data
    // word: potential (aliasing) race.
    ProgramBuilder pb;
    pb.var("lockword", 0, 0);
    ThreadBuilder a, b;
    a.movi(1, 3).storeiIdx(4, 1, 7).halt();
    b.load(1, 6).halt();
    pb.thread(a).thread(b);
    StaticOptions opts;
    opts.firstDataAddr = 4;
    const auto res = analyzeStatically(pb.build(), opts);
    ASSERT_EQ(res.races.size(), 1u);
    EXPECT_FALSE(res.races[0].exactAddress);

    // The lock word below firstDataAddr is NOT aliased.
    ProgramBuilder pb2;
    ThreadBuilder c, d;
    c.movi(1, 3).storeiIdx(4, 1, 7).halt();
    d.load(1, 0).halt(); // reads the lock region only
    pb2.thread(c).thread(d);
    const auto res2 = analyzeStatically(pb2.build(), opts);
    EXPECT_TRUE(res2.clean());
}

TEST(Analyzer, UnreachableRacyCodeIgnored)
{
    ProgramBuilder pb;
    pb.var("x", 0);
    ThreadBuilder a, b;
    a.jmp("end").storei(0, 1).label("end").halt(); // dead store
    b.load(1, 0).halt();
    pb.thread(a).thread(b);
    const auto res = analyzeStatically(pb.build());
    EXPECT_TRUE(res.clean());
}

TEST(Analyzer, ReportMentionsSitesAndLocks)
{
    const Program p = lockedCounter(2, 2, /*racy=*/true);
    const auto res = analyzeStatically(p);
    const auto text = formatStaticReport(res, &p);
    EXPECT_NE(text.find("potential data races"), std::string::npos);
    EXPECT_NE(text.find("counter"), std::string::npos);
    const auto clean = formatStaticReport(
        analyzeStatically(lockedCounter(2, 2)), nullptr);
    EXPECT_NE(clean.find("no potential data races"),
              std::string::npos);
}

TEST(Soundness, StaticReportCoversDynamicRaces)
{
    // Every dynamic race's static (proc,pc) pair must appear among
    // the static analysis's potential races — the "superset of all
    // possible data races" property from Section 1.
    StaticOptions opts;
    opts.firstDataAddr = 2; // random programs: locks at 0..1
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Program p = randomRacyProgram(seed);
        const auto stat = analyzeStatically(p, opts);
        std::set<StaticRace> staticPairs;
        for (const auto &r : stat.races) {
            staticPairs.insert(StaticRace::make(
                {r.a.proc, r.a.pc}, {r.b.proc, r.b.pc}));
        }

        ExecOptions eopts;
        eopts.model = ModelKind::WO;
        eopts.seed = seed;
        const auto res = runProgram(p, eopts);
        const auto det = analyzeExecution(res);
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (!det.races()[r].isDataRace)
                continue;
            for (const auto &pair :
                 staticPairsOfRace(det, r, res.ops)) {
                EXPECT_TRUE(staticPairs.count(pair))
                    << "seed " << seed << ": dynamic race P"
                    << pair.x.proc << ":pc" << pair.x.pc << " / P"
                    << pair.y.proc << ":pc" << pair.y.pc
                    << " missing from the static report";
            }
        }
    }
}

} // namespace
} // namespace wmr
