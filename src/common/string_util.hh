/**
 * @file
 * Small string helpers used by the assembler, reporters and benches.
 */

#ifndef WMR_COMMON_STRING_UTIL_HH
#define WMR_COMMON_STRING_UTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace wmr {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text on arbitrary whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view text, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a count with thousands separators, e.g. 1234567 -> 1,234,567. */
std::string withCommas(std::uint64_t value);

} // namespace wmr

#endif // WMR_COMMON_STRING_UTIL_HH
