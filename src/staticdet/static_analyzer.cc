#include "staticdet/static_analyzer.hh"

#include <algorithm>

#include "common/string_util.hh"

namespace wmr {

namespace {

/** Collect the shared data access sites of one thread. */
std::vector<StaticAccess>
collectAccesses(const Program &prog, ProcId proc,
                const StaticOptions &opts)
{
    const Thread &thread = prog.thread(proc);
    const Cfg cfg(thread);
    const LocksetResult locks = computeLocksets(thread, cfg);

    std::vector<StaticAccess> out;
    for (std::uint32_t pc = 0; pc < thread.code.size(); ++pc) {
        if (!cfg.reachable()[pc])
            continue;
        const Instr &i = thread.code[pc];
        if (!opcodeAccessesMemory(i.op))
            continue;
        StaticAccess acc;
        acc.proc = proc;
        acc.pc = pc;
        acc.isSync = opcodeIsSync(i.op);
        acc.isWrite = i.op == Opcode::Store ||
                      i.op == Opcode::StoreI ||
                      i.op == Opcode::SyncStore ||
                      i.op == Opcode::SyncStoreI ||
                      i.op == Opcode::Unset ||
                      i.op == Opcode::TestAndSet;
        acc.addr = i.addr;
        acc.anyAddr = i.indexed;
        acc.held = locks.before[pc];
        out.push_back(std::move(acc));
        // Test&Set both reads and writes; one site with isWrite=true
        // covers the conflict analysis (a write conflicts with
        // everything a read does, and more).
        (void)opts;
    }
    return out;
}

/** May the two sites touch a common word? */
bool
mayAlias(const StaticAccess &a, const StaticAccess &b,
         const StaticOptions &opts)
{
    if (!a.anyAddr && !b.anyAddr)
        return a.addr == b.addr;
    // An indexed access may touch any data word; it cannot reach the
    // sync infrastructure below firstDataAddr.
    const auto inDataRegion = [&](const StaticAccess &s) {
        return s.anyAddr || s.addr >= opts.firstDataAddr;
    };
    return inDataRegion(a) && inDataRegion(b);
}

bool
disjoint(const LockSet &a, const LockSet &b)
{
    for (const auto l : a) {
        if (b.count(l))
            return false;
    }
    return true;
}

} // namespace

StaticAnalysis
analyzeStatically(const Program &prog, const StaticOptions &opts)
{
    StaticAnalysis res;
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const auto accs = collectAccesses(prog, p, opts);
        res.accesses.insert(res.accesses.end(), accs.begin(),
                            accs.end());
    }

    for (std::size_t i = 0; i < res.accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < res.accesses.size(); ++j) {
            const StaticAccess &a = res.accesses[i];
            const StaticAccess &b = res.accesses[j];
            if (a.proc == b.proc)
                continue;
            if (!a.isWrite && !b.isWrite)
                continue;
            if (a.isSync && b.isSync)
                continue; // sync-sync: not a data race (Def. 2.4)
            if (!mayAlias(a, b, opts))
                continue;
            if (!disjoint(a.held, b.held))
                continue; // a common lock must order them
            PotentialRace r;
            r.a = a;
            r.b = b;
            r.exactAddress = !a.anyAddr && !b.anyAddr;
            res.races.push_back(std::move(r));
        }
    }
    return res;
}

namespace {

std::string
siteText(const StaticAccess &s, const Program *prog)
{
    std::string addr;
    if (s.anyAddr) {
        addr = "[*]";
    } else {
        addr = prog ? prog->addrName(s.addr)
                    : strformat("[%u]", s.addr);
    }
    std::string held = "{";
    bool first = true;
    for (const auto l : s.held) {
        if (!first)
            held += ",";
        held += prog ? prog->addrName(l) : strformat("[%u]", l);
        first = false;
    }
    held += "}";
    return strformat("P%u:pc%u %s%s %s holding %s", s.proc, s.pc,
                     s.isSync ? "sync-" : "",
                     s.isWrite ? "write" : "read", addr.c_str(),
                     held.c_str());
}

} // namespace

std::string
formatStaticReport(const StaticAnalysis &analysis, const Program *prog)
{
    std::string out = "=== wmrace static (compile-time) race "
                      "analysis ===\n";
    out += strformat("access sites: %zu, potential data races: %zu\n",
                     analysis.accesses.size(),
                     analysis.races.size());
    if (analysis.clean()) {
        out += "no potential data races: the lock discipline covers "
               "every conflicting\npair in EVERY execution — the "
               "program is data-race-free and all weak models\n"
               "guarantee it sequential consistency.\n";
        return out;
    }
    for (const auto &r : analysis.races) {
        out += strformat("  %s  <->  %s%s\n",
                         siteText(r.a, prog).c_str(),
                         siteText(r.b, prog).c_str(),
                         r.exactAddress ? ""
                                        : "  (aliasing, may be "
                                          "spurious)");
    }
    out += "note: flag (release/acquire) synchronization is not "
           "modeled statically;\nconfirm with the dynamic detector "
           "(the complementary-use recommendation of\n[EmP88] cited "
           "by the paper).\n";
    return out;
}

} // namespace wmr
