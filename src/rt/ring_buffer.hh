/**
 * @file
 * Single-producer / single-consumer lock-free ring buffer.
 *
 * Each annotated thread owns one ring: the thread is the only
 * producer, the tracer's drain thread the only consumer, so a pair of
 * acquire/release indices suffices — no CAS, no locks, no syscalls on
 * the hot path.  Both sides cache the opposite index to avoid
 * touching the shared cache line on every operation (the classic
 * Lamport queue refinement; see also folly::ProducerConsumerQueue).
 *
 * The consumer additionally gets peek()/popFront() so the drain can
 * inspect a head record and *leave it in place* when it must stall
 * (out-of-order sync record, see tracer.cc).
 */

#ifndef WMR_RT_RING_BUFFER_HH
#define WMR_RT_RING_BUFFER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace wmr::rt {

/** Fixed-capacity lock-free SPSC queue of trivially copyable T. */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity slot count; must be a power of two. */
    explicit SpscRing(std::size_t capacity)
        : mask_(capacity - 1), slots_(capacity)
    {
        wmr_assert(capacity >= 2 &&
                   (capacity & (capacity - 1)) == 0);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Producer side: append @p item.
     * @return false when the ring is full (caller decides whether to
     * spin or drop — the overflow policy lives above this layer).
     */
    bool
    tryPush(const T &item)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        if (tail - headCache_ > mask_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (tail - headCache_ > mask_)
                return false;
        }
        slots_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: @return pointer to the head item, or nullptr
     * when the ring is empty.  The item stays in the ring until
     * popFront().
     */
    const T *
    peek()
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return nullptr;
        }
        return &slots_[head & mask_];
    }

    /** Consumer side: discard the head item (must follow a
     *  successful peek()). */
    void
    popFront()
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        head_.store(head + 1, std::memory_order_release);
    }

    /** Consumer-side convenience: pop into @p out. */
    bool
    tryPop(T &out)
    {
        const T *p = peek();
        if (!p)
            return false;
        out = *p;
        popFront();
        return true;
    }

    /** @return slot count. */
    std::size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (either side may race this). */
    std::size_t
    sizeApprox() const
    {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

  private:
    const std::uint64_t mask_;
    std::vector<T> slots_;

    /** Consumer index + the producer's cached copy of it. */
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::uint64_t headCache_ = 0; // producer-owned

    /** Producer index + the consumer's cached copy of it. */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::uint64_t tailCache_ = 0; // consumer-owned
};

} // namespace wmr::rt

#endif // WMR_RT_RING_BUFFER_HH
