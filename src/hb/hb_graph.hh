/**
 * @file
 * The happens-before-1 graph of Section 4.1.
 *
 * One node per event; edges represent po (consecutive events of a
 * processor) and so1 (paired release → acquire, Def. 2.2).  hb1 is
 * the transitive closure of the edge set (Def. 2.3).  On a weak
 * execution hb1 need not be a partial order, so nothing here assumes
 * acyclicity — reachability queries go through ReachabilityIndex,
 * which condenses SCCs first.
 */

#ifndef WMR_HB_HB_GRAPH_HH
#define WMR_HB_HB_GRAPH_HH

#include "hb/scc.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Kinds of hb1 edges, kept for reporting/visualization. */
enum class HbEdgeKind : std::uint8_t { ProgramOrder, SyncOrder };

/** One labelled hb1 edge. */
struct HbEdge
{
    EventId from;
    EventId to;
    HbEdgeKind kind;
};

/** The hb1 relation as an explicit graph over trace events. */
class HbGraph
{
  public:
    /** Build the hb1 graph of @p trace. */
    explicit HbGraph(const ExecutionTrace &trace);

    /** @return number of nodes (== trace events). */
    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(adj_.size());
    }

    /** @return successor adjacency (po ∪ so1 edges). */
    const AdjList &adjacency() const { return adj_; }

    /** @return all labelled edges. */
    const std::vector<HbEdge> &edges() const { return edges_; }

    /** @return count of so1 edges. */
    std::uint32_t numSyncEdges() const { return numSyncEdges_; }

  private:
    AdjList adj_;
    std::vector<HbEdge> edges_;
    std::uint32_t numSyncEdges_ = 0;
};

} // namespace wmr

#endif // WMR_HB_HB_GRAPH_HH
