/**
 * @file
 * A multithreaded IR program: per-processor instruction sequences,
 * initial memory image, and symbolic names for shared variables.
 */

#ifndef WMR_PROG_PROGRAM_HH
#define WMR_PROG_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "prog/instr.hh"

namespace wmr {

/** Number of general-purpose registers per simulated processor. */
inline constexpr std::size_t kNumRegs = 16;

/** One processor's static instruction stream. */
struct Thread
{
    std::vector<Instr> code;
};

/**
 * A complete program: the paper's "program text plus input data".
 *
 * The input data is the initial shared-memory image; everything else
 * a thread computes is derived from it and from values read out of
 * shared memory.
 */
class Program
{
  public:
    /** Append a thread and return its processor id. */
    ProcId addThread(Thread thread);

    /** @return number of processors the program uses. */
    ProcId numProcs() const
    {
        return static_cast<ProcId>(threads_.size());
    }

    /** @return thread for processor @p proc. */
    const Thread &thread(ProcId proc) const { return threads_.at(proc); }

    /** Set the initial value of shared word @p addr. */
    void setInitial(Addr addr, Value value);

    /** @return initial value of @p addr (0 when never set). */
    Value initial(Addr addr) const;

    /** @return sparse initial-memory image. */
    const std::map<Addr, Value> &initialMemory() const { return init_; }

    /**
     * @return one past the highest address the program can name
     * statically (the shared-variable universe size for bit-vectors).
     * Indexed accesses extend this at simulation time.
     */
    Addr memWords() const { return memWords_; }

    /** Ensure the address universe covers @p addr. */
    void coverAddr(Addr addr);

    /** Bind a symbolic name to an address (for reports/assembly). */
    void nameAddr(const std::string &name, Addr addr);

    /** @return symbolic name of @p addr, or "[addr]" when unnamed. */
    std::string addrName(Addr addr) const;

    /** @return address bound to @p name; fatal() when unknown. */
    Addr addrOf(const std::string &name) const;

    /** @return name→address bindings. */
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    /**
     * Validate structural invariants (branch targets in range,
     * register indices valid); fatal() with a diagnostic on failure.
     */
    void validate() const;

    /** Render the whole program as assembly text. */
    std::string disassembleAll() const;

  private:
    std::vector<Thread> threads_;
    std::map<Addr, Value> init_;
    std::map<std::string, Addr> symbols_;
    std::map<Addr, std::string> addrNames_;
    Addr memWords_ = 0;
};

} // namespace wmr

#endif // WMR_PROG_PROGRAM_HH
