#include "serve/result_cache.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.hh"
#include "common/hash64.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "serve/io_util.hh"

namespace fs = std::filesystem;

namespace wmr::serve {

namespace {

// Disk entry: magic, CRC of the payload, then the payload — which is
// a whole encoded response frame, so the on-disk format shares the
// wire codec instead of inventing a second meta serialization.  A
// torn/corrupt file fails the CRC and is treated as a miss.
constexpr char kDiskMagic[8] = {'W', 'M', 'R', 'R',
                                'E', 'S', '0', '1'};

// Flat per-entry bookkeeping charge (list/map nodes, key, strings'
// headers) added to the payload bytes so thousands of tiny cached
// reports still count against the budget.
constexpr std::uint64_t kEntryOverheadBytes = 256;

} // namespace

std::uint32_t
cacheRelevantFlags(std::uint32_t requestFlags)
{
    // Salvage changes what gets analyzed; the engine selector
    // changes what report the same bytes produce.  Both must be part
    // of the key or a family report could answer an hb1 request.
    return requestFlags & (kReqSalvage | kReqEngineMask);
}

ResultCache::ResultCache(std::uint64_t byteBudget,
                         std::string persistDir)
    : byteBudget_(byteBudget), persistDir_(std::move(persistDir))
{
    stats_.byteBudget = byteBudget_;
    if (!persistDir_.empty()) {
        std::error_code ec;
        fs::create_directories(persistDir_, ec);
        if (ec)
            warn("result cache: cannot create %s: %s",
                 persistDir_.c_str(), ec.message().c_str());
    }
}

std::string
ResultCache::entryFileName(const CacheKey &key)
{
    return strformat("h%s-s%llu-f%u.wmres",
                     hash64Hex(key.hash).c_str(),
                     static_cast<unsigned long long>(key.bytes),
                     key.flags);
}

std::uint64_t
ResultCache::entryCost(const CachedResult &v) const
{
    return kEntryOverheadBytes + v.report.size() +
           v.meta.error.size();
}

void
ResultCache::evictToFitLocked(std::uint64_t need)
{
    while (!lru_.empty() &&
           stats_.bytes + need > byteBudget_) {
        const Entry &cold = lru_.back();
        stats_.bytes -= cold.cost;
        stats_.entries -= 1;
        stats_.evictions += 1;
        index_.erase(cold.key);
        lru_.pop_back();
    }
}

void
ResultCache::insertLocked(const CacheKey &key,
                          const CachedResult &value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        stats_.bytes -= it->second->cost;
        stats_.entries -= 1;
        lru_.erase(it->second);
        index_.erase(it);
    }
    const std::uint64_t cost = entryCost(value);
    if (cost > byteBudget_)
        return; // larger than the whole memory tier
    evictToFitLocked(cost);
    lru_.push_front(Entry{key, value, cost});
    index_.emplace(key, lru_.begin());
    stats_.bytes += cost;
    stats_.entries += 1;
    stats_.insertions += 1;
}

bool
ResultCache::loadFromDiskLocked(const CacheKey &key,
                                CachedResult &out)
{
    if (persistDir_.empty())
        return false;
    const std::string path =
        persistDir_ + "/" + entryFileName(key);
    std::vector<std::uint8_t> bytes;
    if (!readWholeFile(path, bytes))
        return false; // absent — the common case, not an error
    if (bytes.size() < sizeof(kDiskMagic) + 4 ||
        std::memcmp(bytes.data(), kDiskMagic, sizeof(kDiskMagic)) !=
            0) {
        stats_.diskErrors += 1;
        return false;
    }
    const std::uint8_t *crcP = bytes.data() + sizeof(kDiskMagic);
    const std::uint32_t stored =
        static_cast<std::uint32_t>(crcP[0]) |
        (static_cast<std::uint32_t>(crcP[1]) << 8) |
        (static_cast<std::uint32_t>(crcP[2]) << 16) |
        (static_cast<std::uint32_t>(crcP[3]) << 24);
    const std::uint8_t *payload = crcP + 4;
    const std::size_t payloadLen =
        bytes.size() - sizeof(kDiskMagic) - 4;
    if (crc32(payload, payloadLen) != stored) {
        stats_.diskErrors += 1;
        return false; // torn write: never served
    }
    Response resp;
    std::string error;
    if (!decodeResponseFrame(payload, payloadLen, resp, error)) {
        stats_.diskErrors += 1;
        return false;
    }
    out.meta = std::move(resp.meta);
    out.respFlags = resp.flags;
    out.report = std::move(resp.report);
    return true;
}

void
ResultCache::persistToDisk(const CacheKey &key,
                           const CachedResult &value)
{
    if (persistDir_.empty())
        return;
    Response resp;
    resp.status = RespStatus::Ok;
    resp.flags = value.respFlags;
    resp.meta = value.meta;
    resp.report = value.report;
    const std::vector<std::uint8_t> frame =
        encodeResponseFrame(resp);
    std::vector<std::uint8_t> bytes;
    bytes.reserve(sizeof(kDiskMagic) + 4 + frame.size());
    bytes.insert(bytes.end(), kDiskMagic,
                 kDiskMagic + sizeof(kDiskMagic));
    const std::uint32_t crc = crc32(frame.data(), frame.size());
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    // Fault injection: a torn disk-tier write — the entry loses its
    // tail after the CRC was stamped, modelling a lost page behind a
    // completed rename.  The read side's CRC must turn it into a
    // counted miss (stats_.diskErrors), never a served wrong report.
    if (fault::at("serve.cache.torn") && bytes.size() > 16)
        bytes.resize(bytes.size() / 2);
    const std::string path =
        persistDir_ + "/" + entryFileName(key);
    const AtomicWriteStatus st = writeFileAtomicStatus(path, bytes);
    if (st != AtomicWriteStatus::Ok) {
        // Counted, non-fatal: the memory tier still has the entry;
        // only persistence across restarts is lost.
        obs::counter("serve.cache.disk_write_fail").inc();
        if (st != AtomicWriteStatus::NoSpace)
            warn("result cache: cannot persist %s", path.c_str());
    }
}

bool
ResultCache::get(const CacheKey &key, CachedResult &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        out = it->second->value;
        stats_.hits += 1;
        return true;
    }
    CachedResult fromDisk;
    if (loadFromDiskLocked(key, fromDisk)) {
        insertLocked(key, fromDisk);
        out = std::move(fromDisk);
        stats_.hits += 1;
        stats_.diskHits += 1;
        return true;
    }
    stats_.misses += 1;
    return false;
}

void
ResultCache::put(const CacheKey &key, const CachedResult &value)
{
    persistToDisk(key, value);
    std::lock_guard<std::mutex> lock(mu_);
    insertLocked(key, value);
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
ResultCache::dropMemoryForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
}

} // namespace wmr::serve
