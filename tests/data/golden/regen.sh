#!/bin/sh
# Regenerate the golden-report regression corpus IN PLACE — the one
# command referenced by tests/CMakeLists.txt and docs/OBSERVABILITY.md:
#
#   tests/data/golden/regen.sh [path/to/wmrace]
#
# (default tool: build/tools/wmrace relative to the repo root).
# Every trace here is a deterministic artifact: simulator traces are
# a pure function of (program, model, seed), synthetic traces of
# their gen-trace options, so regeneration is byte-stable — rerunning
# this script on an unchanged tree produces an empty git diff.
# Commit BOTH the .trace and .expected.txt files and review the diff
# of the .expected.txt reports like source code: they are the
# detector's contract.
set -eu
cd "$(dirname "$0")"
REPO=../../..
WMRACE=${1:-$REPO/build/tools/wmrace}

# `run` and `check` exit 1 when the input HAS data races — that is a
# valid golden outcome, not an error.
races_ok() {
    if "$@"; then :; else
        rc=$?
        if [ "$rc" -ne 1 ]; then
            echo "regen.sh: $* exited $rc" >&2
            exit "$rc"
        fi
    fi
}

check_to() {
    out=$1
    shift
    races_ok "$WMRACE" check "$@" >"$out"
}

sim() { # name prog model seed
    races_ok "$WMRACE" run "$REPO/programs/$2.wm" --model "$3" \
        --seed "$4" --trace "$1.trace" >/dev/null
    check_to "$1.expected.txt" "$1.trace"
}

# --- simulator traces: the paper's figures + the larger demos ------
sim fig1a_wo_s7 figure1a WO 7        # the Fig.1a race, weak ordering
sim fig1a_rcsc_s4 figure1a RCsc 4    # same program, RCsc hardware
sim fig1b_drf1_s3 figure1b DRF1 3    # properly labeled: race-free
sim dekker_sc_s1 dekker SC 1         # Dekker under SC
sim dekker_wo_s2 dekker WO 2         # Dekker broken by weak order
sim queue_wo_s5 queue_buggy WO 5     # the buggy work-queue
sim tso_fig1a_s7 figure1a TSO 7      # Fig.1a on x86-style TSO
sim tso_dekker_s2 dekker TSO 2       # Dekker on TSO (SB relaxation)
sim pso_fig1b_s3 figure1b PSO 3      # race-free stays clean on PSO
sim pso_queue_s5 queue_buggy PSO 5   # work-queue with split buffers

# --- synthetic traces: analysis-side shapes the programs can't ----
"$WMRACE" gen-trace synth_p2.trace --procs 2 --events 120 \
    --words 96 --seed 21 >/dev/null
check_to synth_p2.expected.txt synth_p2.trace

"$WMRACE" gen-trace synth_hot.trace --procs 4 --events 200 \
    --seed 33 --hot-fraction 0.6 >/dev/null
check_to synth_hot.expected.txt synth_hot.trace

# Segmented container (WMRSEG01), complete.
"$WMRACE" gen-trace synth_seg.trace --segmented --procs 3 \
    --events 150 --seed 8 >/dev/null
check_to synth_seg.expected.txt synth_seg.trace

# Segmented container, truncated mid-file: the salvage fixture.  The
# full file is ~31 KB; keeping the first 9000 bytes drops the tail
# (and the FIN segment), so `check --salvage` recovers a prefix and
# says so in the report header.
"$WMRACE" gen-trace synth_seg_damaged.trace --segmented --procs 3 \
    --events 300 --seed 8 --truncate 9000 >/dev/null
check_to synth_seg_damaged.expected.txt synth_seg_damaged.trace \
    --salvage

# --- detector-family reports: `check --engine all` on every -------
# fixture (per-engine verdict blocks + containment summary), blessed
# as <base>.engines.expected.txt and diffed by golden_engines_*.
for trace in *.trace; do
    base=${trace%.trace}
    extra=
    case $base in
    *damaged*) extra=--salvage ;;
    esac
    check_to "$base.engines.expected.txt" "$trace" \
        --engine all $extra
done

echo "golden corpus regenerated; review: git diff tests/data/golden"
