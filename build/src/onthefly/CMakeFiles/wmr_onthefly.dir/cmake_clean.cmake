file(REMOVE_RECURSE
  "CMakeFiles/wmr_onthefly.dir/epoch_detector.cc.o"
  "CMakeFiles/wmr_onthefly.dir/epoch_detector.cc.o.d"
  "CMakeFiles/wmr_onthefly.dir/first_race_filter.cc.o"
  "CMakeFiles/wmr_onthefly.dir/first_race_filter.cc.o.d"
  "CMakeFiles/wmr_onthefly.dir/lockset_detector.cc.o"
  "CMakeFiles/wmr_onthefly.dir/lockset_detector.cc.o.d"
  "CMakeFiles/wmr_onthefly.dir/vc_detector.cc.o"
  "CMakeFiles/wmr_onthefly.dir/vc_detector.cc.o.d"
  "libwmr_onthefly.a"
  "libwmr_onthefly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_onthefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
