/**
 * @file
 * Run metrics of one batch-pipeline invocation.
 *
 * Everything here is TIMING and SHAPE — wall-clock, throughput,
 * per-stage latency, queue depth.  Metrics are intentionally kept out
 * of the aggregated report (aggregate_report.hh): the report must be
 * byte-identical no matter how many worker threads ran, while metrics
 * vary run to run by nature.  The CLI prints them to stderr (or to a
 * separate JSON file via --metrics).
 */

#ifndef WMR_PIPELINE_METRICS_HH
#define WMR_PIPELINE_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace wmr {

/** Seconds spent in each per-trace stage, summed across workers. */
struct StageSeconds
{
    double read = 0;    ///< file -> bytes
    double parse = 0;   ///< bytes -> ExecutionTrace
    double analyze = 0; ///< ExecutionTrace -> DetectionResult
};

/**
 * The analyze stage broken down into its Section-4 sub-stages,
 * summed across all traces and workers (worker-seconds).
 */
struct AnalysisStageSeconds
{
    double graphBuild = 0;   ///< trace -> hb1 adjacency
    double reachability = 0; ///< hb1 SCC + clock propagation
    double raceFind = 0;     ///< candidate enumeration
    double augment = 0;      ///< G' build + its reachability
    double partition = 0;    ///< partitions + first flags
    double scp = 0;          ///< SCP classification
};

/** Metrics of one runBatch() call. */
struct BatchMetrics
{
    /** Inter-trace worker threads used. */
    unsigned jobs = 0;

    /**
     * Intra-trace analysis threads per worker: when the corpus is
     * smaller than the --jobs budget, the leftover budget is spent
     * inside analyzeTrace() instead of idling.
     */
    unsigned analysisThreads = 1;

    /** Corpus size and per-trace outcome counts. */
    std::size_t corpusTraces = 0;
    std::size_t analyzed = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;

    /** Traces prefilled from the checkpoint journal (a subset of
     *  analyzed/failed that this run did NOT re-analyze). */
    std::size_t resumed = 0;

    /** Damaged segmented traces recovered by salvage. */
    std::size_t salvaged = 0;

    /** Total trace bytes read from disk. */
    std::uint64_t bytesRead = 0;

    /** End-to-end wall-clock of the batch run. */
    double wallSeconds = 0;

    /** Per-stage latency, summed across all workers (CPU-seconds). */
    StageSeconds stageTotal;

    /** The analyze stage broken down by analysis sub-stage. */
    AnalysisStageSeconds analysisStages;

    /** Race-candidate pairs considered across all analyzed traces. */
    std::uint64_t candidatePairs = 0;

    /** hb1 reachability oracle queries across all analyzed traces. */
    std::uint64_t reachQueries = 0;

    /** Deepest producer->worker backlog observed. */
    std::size_t peakQueueDepth = 0;

    /** @return corpus traces finished (ok or failed) per wall second. */
    double
    tracesPerSecond() const
    {
        const auto done = static_cast<double>(analyzed + failed);
        return wallSeconds > 0 ? done / wallSeconds : 0.0;
    }
};

/** Render @p m as the human-readable metrics block. */
std::string formatMetrics(const BatchMetrics &m);

/** Render @p m as a standalone JSON document. */
std::string metricsJson(const BatchMetrics &m);

} // namespace wmr

#endif // WMR_PIPELINE_METRICS_HH
