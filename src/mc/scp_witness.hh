/**
 * @file
 * Constructive SCP witness: build the sequentially consistent
 * execution Eseq whose prefix is a weak execution's SCP.
 *
 * Definition 3.2 requires the SCP to be a prefix of SOME sequentially
 * consistent execution of the program.  Our simulator's SCP ends at
 * the first stale read; every instruction before that point behaved
 * exactly as the issue-order SC interleaving prescribes.  Replaying
 * that interleaving prefix under the SC memory model therefore
 * reproduces the prefix instruction for instruction, and letting the
 * run continue under SC completes it into a real SC execution Eseq.
 *
 * This turns Theorem 4.2 from a claim into something tests check
 * constructively: races the detector labels "in the SCP" must show up
 * (with the same static identity) among the races of Eseq.
 */

#ifndef WMR_MC_SCP_WITNESS_HH
#define WMR_MC_SCP_WITNESS_HH

#include "mc/static_race.hh"
#include "prog/program.hh"
#include "sim/executor.hh"

namespace wmr {

/** Result of constructing and analyzing the witness Eseq. */
struct ScpWitness
{
    /** The SC execution extending the SCP. */
    ExecutionResult eseq;

    /**
     * Whether the replayed prefix matched the weak execution's
     * operations one for one (it must; a mismatch indicates a
     * simulator bug and is surfaced to tests).
     */
    bool prefixMatched = false;

    /** Number of operations of the weak execution's base SCP. */
    OpId prefixOps = 0;

    /** Static data races of Eseq. */
    StaticRaceSet eseqRaces;
};

/**
 * Build Eseq for @p weak (an execution of @p prog recorded with step
 * order).  @p continuationSeed drives the post-prefix scheduling.
 */
ScpWitness buildScpWitness(const Program &prog,
                           const ExecutionResult &weak,
                           std::uint64_t continuationSeed = 7);

} // namespace wmr

#endif // WMR_MC_SCP_WITNESS_HH
