/**
 * @file
 * The segmented, checksummed trace container ("WMRSEG01") — the
 * crash-resilient sibling of the classic single-blob EVENT format.
 *
 * The classic container (trace_io.hh) is written in one shot at the
 * end of a recording, so the executions most worth debugging — the
 * ones that crash or wedge on a race — lose their trace entirely.
 * This container is APPEND-ONLY: the recorder spills sealed events
 * incrementally as framed segments, each protected by a length
 * header and a CRC-32 footer, so whatever prefix reached the disk
 * before a crash is recoverable:
 *
 *   file     := "WMRSEG01" segment*
 *   segment  := len:u32le payload crc:u32le      crc = CRC32(payload)
 *   payload  := 'D' opsSoFar droppedSoFar nevents event*
 *             | 'F' procs memWords firstStaleRead totalOps
 *                   droppedRecords
 *   event    := kind proc firstOp lastOp opCount
 *               sync(kind=1): memop pairing     (pairing = 1 + file
 *                 ordinal of the paired release event, 0 = unpaired)
 *               comp(kind=0): nread wordDelta* nwrite wordDelta*
 *                 (strictly increasing word ids, delta-coded)
 *
 * A final 'F' (FIN) segment marks a clean shutdown and carries the
 * authoritative shape plus the Drop-policy loss count.  Readers:
 *
 *  - tryReadSegmentedTraceFile(): STRICT — every frame must verify
 *    and the FIN must be present (a complete recording);
 *  - trySalvageTraceFile(): TOLERANT — recovers the longest valid
 *    checksummed segment prefix of a truncated/corrupt file and
 *    reports what was lost, so analysis can still run on the prefix.
 *
 * Integration: tryReadTraceFile() (trace_io.hh) sniffs this magic
 * and delegates to the strict reader, so `wmrace check`/`batch`
 * accept both containers transparently; the salvage reader is the
 * abnormal-exit path of `wmrace record` and `wmrace batch`.
 */

#ifndef WMR_TRACE_SEGMENTED_IO_HH
#define WMR_TRACE_SEGMENTED_IO_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace_io.hh"

namespace wmr {

/** @return whether @p n bytes at @p data start with the segmented
 *  container magic. */
bool looksSegmented(const std::uint8_t *data, std::size_t n);

/** What a (possibly partial) segmented read recovered and lost. */
struct SalvageInfo
{
    /** A FIN segment was decoded: the recording shut down cleanly. */
    bool finSeen = false;

    /** The file was incomplete or damaged: no FIN, or a bad tail. */
    bool salvaged = false;

    std::uint64_t segmentsRecovered = 0;

    /** Damaged/undecodable trailing frames (0 when only the FIN is
     *  missing — e.g. the recorder was SIGKILLed between spills). */
    std::uint64_t segmentsDropped = 0;

    /** Bytes of the file discarded after the last valid segment. */
    std::uint64_t bytesDropped = 0;

    std::uint64_t eventsRecovered = 0;
    std::uint64_t opsRecovered = 0;

    /** Acquire events whose paired release fell outside the
     *  recovered prefix (their so1 edge is dropped). */
    std::uint64_t unresolvedPairings = 0;

    /** Data records lost to the recorder's Drop overflow policy, as
     *  of the last recovered segment (FIN value when finSeen). */
    std::uint64_t droppedDataRecords = 0;

    /** Why recovery stopped (empty for a clean, complete file). */
    std::string note;

    /** @return a one-line human summary ("complete" when clean). */
    std::string summary() const;
};

/** Outcome of a segmented read/salvage. */
struct SegTraceReadResult
{
    TraceIoStatus status = TraceIoStatus::Ok;
    ExecutionTrace trace;
    std::string error;
    SalvageInfo salvage;

    bool ok() const { return status == TraceIoStatus::Ok; }
};

/**
 * Render the report header lines stating what an analyzed trace
 * actually is — salvage provenance and recorder-side data loss — so
 * a partial or Drop-mode trace can never masquerade as a complete
 * one.  Empty for a non-segmented or clean, lossless trace.  Both
 * `wmrace check` and the serve subsystem emit EXACTLY this string
 * ahead of the report, which is what keeps a served analysis
 * byte-identical to a local one.
 */
std::string formatTraceProvenance(bool segmented,
                                  const SalvageInfo &salvage);

/**
 * STRICT read of a complete segmented trace: all frames verify, FIN
 * present.  Damage or a missing FIN yields FormatError whose message
 * points at the salvage reader.
 */
SegTraceReadResult
tryReadSegmentedTrace(const std::vector<std::uint8_t> &bytes);
SegTraceReadResult
tryReadSegmentedTraceFile(const std::string &path);

/**
 * TOLERANT read: recover the longest valid checksummed segment
 * prefix.  Only an unreadable file or an unrecognizable header (not
 * even the magic survives) fails; an empty prefix (zero segments)
 * comes back ok() with an empty trace and salvage.salvaged set.
 */
SegTraceReadResult
trySalvageTrace(const std::vector<std::uint8_t> &bytes);
SegTraceReadResult trySalvageTraceFile(const std::string &path);

/**
 * One decoded event in FILE order, exactly as framed on the wire:
 * the pairing field is the ordinal reference (1 + file ordinal of the
 * paired release, 0 = unpaired) — consumers that process segments
 * incrementally (the streaming analyzer) resolve it themselves.
 */
struct SegFileEvent
{
    EventKind kind = EventKind::Computation;
    ProcId proc = 0;
    OpId firstOp = kNoOp;
    OpId lastOp = kNoOp;
    std::uint32_t opCount = 0;
    MemOp syncOp;
    std::uint64_t pairing = 0; // 1 + file ordinal, 0 = unpaired
    std::vector<Addr> readWords;
    std::vector<Addr> writeWords;
};

/** Shape written into the FIN segment. */
struct SegShape
{
    ProcId procs = 0;
    Addr memWords = 0;
    OpId firstStaleRead = kNoOp;
    std::uint64_t totalOps = 0;

    /** Drop-policy data-record losses of the whole recording. */
    std::uint64_t droppedRecords = 0;
};

/** One decoded DATA segment, in file order. */
struct SegTailSegment
{
    /** Running counters the writer embeds in every data segment. */
    std::uint64_t opsSoFar = 0;
    std::uint64_t droppedSoFar = 0;

    std::vector<SegFileEvent> events;
};

/** Outcome of one SegmentTailReader::poll(). */
enum class TailPollStatus : std::uint8_t
{
    /** Decoded at least one new segment. */
    Progress,

    /** No complete new frame yet — the tail is mid-frame or empty.
     *  On a LIVE file this means "more may come", NOT damage: keep
     *  polling (or finalize() once the writer is known dead). */
    Waiting,

    /** The FIN segment was decoded: the recording is complete. */
    Fin,

    /** Unrecoverable damage (bad magic, zero/oversized length,
     *  checksum mismatch on a complete frame, payload that fails to
     *  decode, data after FIN).  No amount of further appending can
     *  heal it; recovery stops at the last good frame. */
    Damaged,
};

/**
 * Tail-follow segment reader: consume a WMRSEG01 file AS IT IS BEING
 * APPENDED, resuming from the offset after the last verified frame.
 *
 * This is the live sibling of trySalvageTraceFile().  The salvage
 * reader sees a snapshot and must treat an incomplete tail as a torn
 * write; the tail reader instead distinguishes the two by liveness:
 * a mid-frame tail is Waiting while the writer may still append, and
 * becomes damage only when finalize() declares the stream over.
 * Damage that appending can never heal — a checksum mismatch on a
 * fully present frame, an impossible length — is reported as Damaged
 * immediately, even live.
 *
 * Usage:
 *   SegmentTailReader tail;
 *   tail.open(path);                 // retry while the file appears
 *   while (...) {
 *       switch (tail.poll(segs)) { ... consume segs ... }
 *   }
 *   tail.finalize(strict);           // writer exited / EOF is final
 *
 * After finalize(), salvage() carries the same accounting a
 * trySalvageTraceFile() of the final file would produce (except
 * unresolvedPairings, which only the event consumer can count), and
 * in strict mode error() carries the same message the strict reader
 * would raise.
 */
class SegmentTailReader
{
  public:
    SegmentTailReader() = default;
    ~SegmentTailReader();

    SegmentTailReader(const SegmentTailReader &) = delete;
    SegmentTailReader &operator=(const SegmentTailReader &) = delete;

    /** Open @p path for following. Fails if it cannot be opened. */
    bool open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Read newly appended bytes and decode every complete frame,
     * appending decoded DATA segments to @p segs.  @return Progress
     * when ≥1 frame (data or FIN) was consumed, otherwise the
     * terminal/waiting status.
     */
    TailPollStatus poll(std::vector<SegTailSegment> &segs);

    /**
     * Declare that no more data will arrive (writer exited, or the
     * file was complete on disk to begin with).  Strict mode fails
     * (error() set, matching tryReadSegmentedTrace messages) on any
     * damage, incomplete tail, or missing FIN; tolerant mode folds
     * the outcome into salvage() exactly as trySalvageTrace would.
     * @return whether the stream is acceptable under @p strict.
     */
    bool finalize(bool strict);

    /** Scan-level salvage accounting (valid after finalize();
     *  unresolvedPairings is left 0 — the consumer owns it). */
    const SalvageInfo &salvage() const { return salvage_; }

    bool finSeen() const { return finSeen_; }

    /** FIN shape (valid when finSeen()). */
    const SegShape &fin() const { return fin_; }

    /** File offset after the last verified frame (resume point). */
    std::uint64_t offset() const { return consumed_; }

    /** Total file bytes observed so far. */
    std::uint64_t bytesSeen() const { return seen_; }

    std::uint64_t segmentsRead() const { return segments_; }
    std::uint64_t eventsRead() const { return events_; }

    const std::string &error() const { return error_; }

  private:
    TailPollStatus fail(std::uint64_t at, const std::string &why);

    int fd_ = -1;
    std::uint64_t consumed_ = 0; // offset after last verified frame
    std::uint64_t seen_ = 0;     // total bytes read from the file

    /** Unconsumed bytes [consumed_, seen_). */
    std::vector<std::uint8_t> buf_;

    bool magicOk_ = false;
    bool finSeen_ = false;
    bool damaged_ = false;
    bool finalized_ = false;
    SegShape fin_;
    std::uint64_t segments_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t ops_ = 0;
    std::uint64_t droppedSoFar_ = 0;
    std::uint64_t damageAt_ = 0;
    std::string damageNote_;
    SalvageInfo salvage_;
    std::string error_;
};

/**
 * One event as the segmented container carries it — word lists
 * instead of universe-sized bitsets, so events can be encoded before
 * the address universe is known (the whole point of spilling).
 */
struct SegEvent
{
    EventKind kind = EventKind::Computation;
    ProcId proc = 0;
    OpId firstOp = kNoOp;
    OpId lastOp = kNoOp;
    std::uint32_t opCount = 0;

    /** Computation payload: touched word ids (need not be sorted or
     *  unique; the encoder canonicalizes). */
    std::vector<Addr> readWords;
    std::vector<Addr> writeWords;

    /** Sync payload. */
    MemOp syncOp;

    /** Sync release: producer-chosen nonzero token later acquires
     *  reference; sync acquire: token of the observed release (0 =
     *  unpaired).  Tokens never reach the wire — the writer resolves
     *  them to file ordinals.  Reusing a token rebinds it to the
     *  newest release carrying it, so a bounded-memory producer can
     *  use one token per sync location instead of one per release. */
    std::uint64_t releaseToken = 0;
    std::uint64_t pairedToken = 0;
};

/**
 * Incremental segment writer over a raw file descriptor.
 *
 * Usage (the recorder's drain thread): open(), then addEvent() as
 * events seal; sealSegment() when pendingBytes() crosses the spill
 * threshold or the drain goes idle; finish() at clean shutdown.
 *
 * crashSeal() is the fatal-signal path: it frames and writes the
 * pending payload and fsyncs using only async-signal-safe syscalls
 * plus arithmetic on memory that is already allocated.  If the drain
 * thread was mid-append when the signal hit, the frame may be torn —
 * the CRC then fails and salvage drops exactly that final segment,
 * which is the contract: best effort, never a lie.
 */
class SegmentSpillWriter
{
  public:
    SegmentSpillWriter() = default;
    ~SegmentSpillWriter();

    SegmentSpillWriter(const SegmentSpillWriter &) = delete;
    SegmentSpillWriter &operator=(const SegmentSpillWriter &) = delete;

    /** Create/truncate @p path and write the magic. */
    bool open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &lastError() const { return error_; }

    /** Running counters embedded in every data segment, so salvage
     *  can report losses up to the recovered prefix. */
    void
    setCounters(std::uint64_t opsEmitted, std::uint64_t dropped)
    {
        ops_ = opsEmitted;
        dropped_ = dropped;
    }

    /** Append one sealed event to the pending segment payload. */
    void addEvent(const SegEvent &ev);

    std::size_t pendingBytes() const;
    std::uint64_t pendingEvents() const { return pendingEvents_; }

    /** Frame and write the pending payload (no-op when empty). */
    bool sealSegment();

    /** Seal the remainder, write the FIN segment, fsync, close. */
    bool finish(const SegShape &shape);

    /** Fatal-signal flush: seal pending + fsync, nothing else. */
    bool crashSeal();

    /**
     * Fault-injection hook (WMR_RT_FAULT=crash-mid-segment): append
     * a deliberately truncated frame — a length header promising more
     * payload than follows — so tests can prove salvage drops exactly
     * the damaged tail.
     */
    void writeTornFrame();

    std::uint64_t segmentsWritten() const { return segments_; }
    std::uint64_t bytesWritten() const { return bytes_; }

  private:
    /** @p faults=false is the crash-handler path: fault::at() takes
     *  locks and must never run in async-signal context. */
    bool writeFrame(const std::uint8_t *hdr, std::size_t hdrLen,
                    const std::uint8_t *body, std::size_t bodyLen,
                    bool fsyncAfter, bool faults = true);
    bool fail(const std::string &why);

    int fd_ = -1;
    std::string error_;

    // Pending DATA payload: the event bytes accumulate here; the
    // 'D'+counters+count header is prepended at seal time.
    std::vector<std::uint8_t> pending_;
    std::uint64_t pendingEvents_ = 0;

    std::uint64_t ops_ = 0;
    std::uint64_t dropped_ = 0;

    // Token -> file ordinal of the newest release carrying it
    // (pairing resolution, latest wins).
    std::unordered_map<std::uint64_t, std::uint64_t> tokenMap_;
    std::uint64_t nextOrdinal_ = 0;

    std::uint64_t segments_ = 0;
    std::uint64_t bytes_ = 0;
};

/**
 * Serialize a whole ExecutionTrace into the segmented container,
 * @p eventsPerSegment events per frame — the test/tooling producer
 * (the recorder spills through SegmentSpillWriter instead).
 */
std::vector<std::uint8_t>
serializeSegmentedTrace(const ExecutionTrace &trace,
                        std::size_t eventsPerSegment = 64);

/** Write @p trace to @p path segmented. @return bytes written. */
std::size_t
writeSegmentedTraceFile(const ExecutionTrace &trace,
                        const std::string &path,
                        std::size_t eventsPerSegment = 64);

} // namespace wmr

#endif // WMR_TRACE_SEGMENTED_IO_HH
