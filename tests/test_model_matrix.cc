/**
 * @file
 * The full matrix: every memory model × both hardware realizations,
 * swept over the pattern library.  One parameterized suite asserting
 * the paper's portable guarantees everywhere:
 *
 *  - data-race-free patterns behave identically to SC (values AND
 *    zero stale reads) — Condition 3.4(1);
 *  - racy patterns never violate Condition 3.4(2);
 *  - detection verdicts are model-independent for the same program
 *    family (races exist on SC iff they exist on weak models);
 *  - the figure programs' hb1 verdicts agree on every cell of the
 *    matrix (racy always reported, DRF never);
 *  - robustness: DRF programs are robust on every cell, zero stale
 *    reads implies robust everywhere, SC executions are always
 *    robust while every weak model exhibits violations on the
 *    dekker shape under fully lazy drains.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "detect/analysis.hh"
#include "detect/robustness.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

using MatrixParam = std::tuple<ModelKind, Realization>;

class ModelMatrix : public ::testing::TestWithParam<MatrixParam>
{
  protected:
    ModelKind model() const { return std::get<0>(GetParam()); }
    Realization realization() const { return std::get<1>(GetParam()); }

    ExecutionResult
    run(const Program &p, std::uint64_t seed,
        double laziness = 0.9) const
    {
        ExecOptions opts;
        opts.model = model();
        opts.realization = realization();
        opts.seed = seed;
        opts.drainLaziness = laziness;
        return runProgram(p, opts);
    }
};

TEST_P(ModelMatrix, TicketLockCorrect)
{
    const Program p = ticketLock(3, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(3), 6);
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, BarrierStripesRaceFree)
{
    const Program p = barrierStripes(3, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.staleReads, 0u);
        EXPECT_FALSE(analyzeExecution(res).anyDataRace());
    }
}

TEST_P(ModelMatrix, FixedDoubleCheckedInitDelivers)
{
    const Program p = doubleCheckedInit(2, /*fixed=*/true);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(3), 42);
        EXPECT_EQ(res.memAt(4), 42);
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, ProducerConsumerDelivers)
{
    const Program p = producerConsumer(4, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.finalRegs[1][1], 4); // all items consumed
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, Condition34OnRacyPrograms)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Program p = randomRacyProgram(seed);
        const auto det = analyzeExecution(run(p, seed + 1, 0.95));
        const auto bad = checkCondition34(det.races(), det.scp(),
                                          det.augmented());
        EXPECT_TRUE(bad.empty()) << "seed " << seed;
    }
}

TEST_P(ModelMatrix, RaceVerdictMatchesScVerdict)
{
    // A program family's race verdict on this (model, realization)
    // agrees with its verdict under SC for race-free programs; racy
    // programs may hide races in a particular schedule, so only the
    // race-free direction is exact.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Program p = randomRaceFreeProgram(seed);
        EXPECT_FALSE(analyzeExecution(run(p, seed)).anyDataRace())
            << "seed " << seed;
    }
}

TEST_P(ModelMatrix, FigureVerdictsAgreeAcrossMatrix)
{
    // hb1 verdicts on the paper's figure programs are a property of
    // the program, not of the memory model the execution ran on:
    // figure 1(a) has no synchronization at all (its conflicting
    // accesses are unordered in every execution), figure 1(b) and
    // the corrected queue are DRF by construction.
    QueueParams fixedQueue;
    fixedQueue.withTestAndSet = true;
    fixedQueue.regionSize = 4;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        EXPECT_TRUE(
            analyzeExecution(run(figure1a(), seed)).anyDataRace())
            << "seed " << seed;
        EXPECT_FALSE(
            analyzeExecution(run(figure1b(), seed)).anyDataRace())
            << "seed " << seed;
        EXPECT_FALSE(analyzeExecution(run(figure2Queue(fixedQueue),
                                          seed))
                         .anyDataRace())
            << "seed " << seed;
    }
}

TEST_P(ModelMatrix, DrfProgramsAlwaysRobust)
{
    // Condition 3.4(1) restated through the robustness lens: every
    // execution of a DRF program has an SC-equivalent, on every
    // model and both realizations, even under fully lazy drains.
    const Program programs[] = {figure1b(), messagePassing(4, false),
                                ticketLock(2, 2)};
    for (const Program &p : programs) {
        for (std::uint64_t seed = 0; seed < 4; ++seed) {
            const auto res = run(p, seed, /*laziness=*/1.0);
            ASSERT_TRUE(res.completed);
            EXPECT_EQ(res.staleReads, 0u);
            EXPECT_TRUE(checkRobustness(res).robust)
                << modelName(model()) << " seed " << seed;
        }
    }
}

TEST_P(ModelMatrix, NoStaleReadsImpliesRobustOnRacyPrograms)
{
    // Containment direction on racy inputs: an execution with zero
    // stale reads is explained by its own issue order, so the
    // robustness check must accept it.  (The converse is false —
    // stale reads do not imply non-robustness.)
    const Program programs[] = {figure1a(), dekkerDataFlags()};
    for (const Program &p : programs) {
        for (std::uint64_t seed = 0; seed < 6; ++seed) {
            const auto res = run(p, seed);
            if (!res.completed || res.staleReads != 0)
                continue;
            EXPECT_TRUE(checkRobustness(res).robust)
                << modelName(model()) << " seed " << seed;
        }
    }
}

/** The verdict's witness cycle must actually close. */
void
expectClosedCycle(const RobustnessResult &verdict)
{
    ASSERT_NE(verdict.violatingOp, kNoOp);
    ASSERT_GE(verdict.cycle.size(), 2u);
    for (std::size_t i = 0; i < verdict.cycle.size(); ++i) {
        EXPECT_EQ(verdict.cycle[i].to,
                  verdict.cycle[(i + 1) % verdict.cycle.size()]
                      .from);
    }
}

TEST(RobustnessMatrix, ScAlwaysRobustEveryWeakModelViolates)
{
    // SC executions are robust by definition (stores apply
    // instantly, so the issue order is the witness), on both
    // realizations, across racy programs.
    const Program racy[] = {figure1a(), dekkerDataFlags()};
    for (const Realization realization : kAllRealizations) {
        for (const Program &p : racy) {
            for (std::uint64_t seed = 0; seed < 10; ++seed) {
                ExecOptions opts;
                opts.model = ModelKind::SC;
                opts.realization = realization;
                opts.seed = seed;
                const auto res = runProgram(p, opts);
                ASSERT_TRUE(res.completed);
                EXPECT_TRUE(checkRobustness(res).robust);
            }
        }
    }

    // Store-buffer realization: the dekker shape under fully lazy
    // drains violates on every weak model (both stores stay
    // buffered, both entrants read the other's flag as 0 — the
    // classic SB non-SC outcome).
    const Program dekker = dekkerDataFlags();
    for (const ModelKind model : kAllModels) {
        if (model == ModelKind::SC)
            continue;
        std::size_t violations = 0;
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            ExecOptions opts;
            opts.model = model;
            opts.seed = seed;
            opts.drainLaziness = 1.0;
            const auto res = runProgram(dekker, opts);
            ASSERT_TRUE(res.completed);
            const auto verdict = checkRobustness(res);
            if (verdict.robust)
                continue;
            ++violations;
            expectClosedCycle(verdict);
        }
        EXPECT_GT(violations, 0u) << modelName(model);
    }

    // Invalidate realization: a fresh cache miss always fetches the
    // current memory image (write-through), so the SB shape cannot
    // relax — staleness needs a warmed cache.  The staged figure
    // 1(a) scenario warms P2's copy of x and must come back
    // non-robust on every weak model.
    for (const ModelKind model : kAllModels) {
        if (model == ModelKind::SC)
            continue;
        const auto s = stageInvalidateFigure1a(model);
        ASSERT_TRUE(s.result.completed);
        const auto verdict = checkRobustness(s.result);
        EXPECT_FALSE(verdict.robust) << modelName(model);
        if (!verdict.robust)
            expectClosedCycle(verdict);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothRealizations, ModelMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllModels),
                       ::testing::ValuesIn(kAllRealizations)),
    [](const auto &info) {
        const auto model = std::get<0>(info.param);
        const auto realization = std::get<1>(info.param);
        return std::string(modelName(model)) + "_" +
               (realization == Realization::StoreBuffer
                    ? "Buffer"
                    : "Invalidate");
    });

} // namespace
} // namespace wmr
