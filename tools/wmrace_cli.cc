/**
 * @file
 * wmrace — the command-line driver.
 *
 *   wmrace run <prog.wm> [options]     simulate + detect + report
 *   wmrace check <trace.bin> [options] post-mortem analysis of a trace
 *   wmrace batch <dir|manifest> [opts] analyze a whole trace corpus
 *   wmrace record [opts] <bin> [args]  run an annotated program,
 *                                      record + analyze its trace
 *   wmrace gen-trace <out> [options]   write a deterministic
 *                                      synthetic trace file
 *   wmrace explore <prog.wm> [options] exhaustive SC model checking
 *   wmrace disasm <prog.wm>            print the assembled program
 *   wmrace static <prog.wm>            compile-time lockset analysis
 *   wmrace models                      list memory models/realizations
 *   wmrace serve [options]             long-lived analysis daemon
 *   wmrace submit <trace> --server A   analyze via a running server
 *
 * Options of `run`:
 *   --model SC|WO|RCsc|DRF0|DRF1|TSO|PSO  memory model (default WO)
 *   --realization buffer|invalidate hardware flavor  (default buffer)
 *   --seed N                       scheduler/drain seed (default 1)
 *   --laziness X                   drain laziness 0..1  (default 0.5)
 *   --robustness                   SC-equivalence verdict first
 *   --trace FILE                   write the event trace file
 *   --dot FILE                     write the G' graph as DOT
 *   --events                       include per-event detail in report
 *   --stats                        print execution statistics
 *   --timeline                     print the per-processor timeline
 *   --onthefly                     also run the on-the-fly detector
 *
 * Options of `check`: --dot FILE, --events, --salvage, --jobs N,
 *   --stats, --stream [--window N] (see below), and
 *   --engine hb1|shb|wcp|vc|epoch|lockset|all: run the selected
 *   detector engine(s) over one pass of the event stream and print
 *   the detector family report with per-engine verdict blocks and
 *   the machine-readable containment/agreement summary
 *   (docs/DETECTORS.md).  Under --stream only `--engine shb` is
 *   supported (its race set is exactly what the streaming engine
 *   enumerates); the others need whole-trace state.
 * Options of `explore`: --max-execs N (default 100000).
 *
 * Options of `batch` (see docs/BATCH.md):
 *   --jobs N       total thread budget, N >= 1 (default: hardware
 *                  concurrency); anything else is rejected (exit 2).
 *                  When the corpus has fewer traces than N, the
 *                  leftover budget parallelizes INSIDE each analysis
 *   --json FILE    write the aggregated JSON report
 *   --metrics FILE write run metrics as JSON (timing, queue depth)
 *   --fail-fast    stop dispatching after the first failed trace
 *   --summary      omit the per-trace lines of the text report
 *   --salvage      analyze the recovered prefix of damaged
 *                  segmented traces instead of failing them
 *   --checkpoint FILE  append-only resume journal: a killed batch
 *                  re-run with the same file skips completed traces
 *   --quarantine FILE  write failed trace paths as a corpus
 *                  manifest (re-feedable to `wmrace batch`)
 *   --stream [--window N]  analyze segmented traces with the
 *                  bounded-memory streaming engine (docs/STREAMING.md);
 *                  identical results, O(window) memory per trace;
 *                  incompatible with --server
 *   --server ADDR  submit every trace to a running `wmrace serve`
 *                  daemon instead of analyzing locally (--jobs then
 *                  bounds concurrent submissions); incompatible with
 *                  --checkpoint and --fail-fast
 *   --engine hb1|shb|wcp|all  analyze every trace with the detector
 *                  family instead of the canonical hb1 pipeline
 *                  (docs/DETECTORS.md); per-trace counts then come
 *                  from the weakest (superset) engine that ran;
 *                  forwarded to the server under --server;
 *                  incompatible with --stream
 *
 * Options of `serve` (see docs/SERVE.md): --socket PATH or
 *   --tcp PORT (0 = kernel-assigned; the bound address is printed
 *   on stdout), --jobs N (global analysis budget), --workers W,
 *   --max-queue N, --max-inflight-mb MB, --max-request-mb MB,
 *   --cache-mb MB, --cache-dir DIR (disk result-cache tier),
 *   --spool-dir DIR (crash-safe request spool + journal),
 *   --retry-after-ms MS, --io-timeout-sec S.  SIGTERM/SIGINT drain
 *   gracefully.
 *
 * Options of `submit`: --server ADDR (unix socket path or
 *   tcp:HOST:PORT), --salvage, --no-cache, --meta (print the
 *   machine-readable response meta line), --attempts N (retries on
 *   overload), --engine hb1|shb|wcp|all (server-side detector
 *   family analysis; the printed report is byte-identical to local
 *   `wmrace check --engine`), --status, --shutdown.  Exit codes
 *   mirror `check`: 1 = data race, 2 = bad request, 3 = rejected.
 *
 * Options of `record` (see docs/RUNTIME.md; they must precede the
 * child binary — everything after it belongs to the child):
 *   --out FILE     trace file (default: <binary-basename>.trace)
 *   --no-check     just record; skip the post-mortem analysis
 *   --timeout SEC  kill the child after SEC seconds (classified as
 *                  timed-out; the partial trace is salvaged)
 *   --retries N    re-run an abnormally terminated child up to N
 *                  extra times with backoff before salvaging
 *   --live         analyze the trace WHILE the child runs: a
 *                  follower thread streams sealed segments into the
 *                  bounded-memory engine (docs/STREAMING.md), so the
 *                  report lands moments after exit and the trace
 *                  never has to fit in memory; incompatible with
 *                  --retries and --no-check
 * The child is launched with WMR_RT_TRACE set, so a program
 * annotated with rt/annotate.hh records itself; crash-resilient
 * segmented spilling is on by default (WMR_RT_SPILL to tune), so a
 * crashed or killed child still leaves a salvageable trace, which
 * `record` analyzes instead of fataling.
 *
 * Options of `check`: --dot FILE, --events, --salvage (recover the
 * longest valid prefix of a damaged segmented trace), --jobs N
 * (analysis threads; the report is byte-identical at every N),
 * --stats (per-stage timing to stderr), and --stream [--window N]:
 * analyze a segmented trace with the bounded-memory streaming
 * engine (src/stream/, docs/STREAMING.md) — the report is
 * byte-identical to the whole-trace path, memory is O(window)
 * instead of O(trace), so traces larger than RAM check fine.
 * --stream composes with --salvage and --stats but not with the
 * whole-trace-only --events/--dot/--jobs.
 *
 * Options of `gen-trace` (see SyntheticTraceOptions): --procs N,
 *   --events N (per processor), --words N, --sync-words N, --seed N,
 *   --sync-fraction X, --hot-fraction X, --segmented (WMRSEG01
 *   container; generated straight through the segment spill writer,
 *   so writer memory stays bounded at any --events), --truncate N
 *   (keep only the first N bytes — a damaged-file fixture for
 *   --salvage testing).
 *
 * `check`, `batch` and `record` also take `--trace-out FILE`: write
 * a Chrome trace_event JSON timeline of the run (spans + counters;
 * see docs/OBSERVABILITY.md) — purely additive, reports stay
 * byte-identical.  The WMR_OBS environment variable provides the
 * same without CLI support (WMR_OBS=1 | chrome:FILE | jsonl:FILE).
 */

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/worker_pool.hh"
#include "detect/analysis.hh"
#include "detect/dot_export.hh"
#include "detect/report.hh"
#include "detect/robustness.hh"
#include "engines/family.hh"
#include "engines/shb_engine.hh"
#include "obs/export.hh"
#include "obs/obs.hh"
#include "sim/exec_stats.hh"
#include "mc/explorer.hh"
#include "onthefly/first_race_filter.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/checkpoint.hh"
#include "prog/assembler.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "staticdet/static_analyzer.hh"
#include "stream/stream_analyzer.hh"
#include "trace/segmented_io.hh"
#include "trace/timeline.hh"
#include "trace/trace_io.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;

/** Minimal flag parser: --key value / --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                if (i + 1 < argc && !looksLikeFlag(argv[i + 1])) {
                    kv_[key] = argv[++i];
                } else {
                    kv_[key] = "";
                }
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    bool has(const std::string &key) const { return kv_.count(key); }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        const auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    /**
     * @return whether @p s is a flag rather than a value.  Values
     * beginning with '-' are legal when they look numeric ("-5",
     * "-0.5", "-.5"), so `--seed -5` parses as seed = -5 instead of
     * eating "-5" as an (unknown) flag.  A bare "-" is a value too
     * (conventional stdin placeholder).
     */
    static bool
    looksLikeFlag(const char *s)
    {
        if (s[0] != '-' || s[1] == '\0')
            return false;
        if (std::isdigit(static_cast<unsigned char>(s[1])) ||
            s[1] == '.') {
            return false; // negative number
        }
        return true;
    }

    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

/**
 * Parse a strict `--jobs` value into @p jobs (untouched when the
 * flag is absent).  A mistyped --jobs must not silently become
 * "hardware concurrency" (0) or a huge unsigned, so anything but an
 * integer in [1, 4096] prints an error and returns false.
 */
bool
parseJobs(const Args &args, const char *cmd, unsigned &jobs)
{
    if (!args.has("jobs"))
        return true;
    const std::string v = args.get("jobs");
    char *end = nullptr;
    errno = 0;
    const long long n =
        v.empty() ? -1 : std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0' || errno == ERANGE || n < 1 ||
        n > 4096) {
        std::fprintf(stderr,
                     "%s: invalid --jobs '%s': expected an integer "
                     "between 1 and 4096\n",
                     cmd, v.c_str());
        return false;
    }
    jobs = static_cast<unsigned>(n);
    return true;
}

/**
 * Parse a strict `--window` value (segments per streaming GC window)
 * into @p window.  Same philosophy as parseJobs: a typo must not
 * silently become some other window size.
 */
bool
parseWindow(const Args &args, const char *cmd, std::size_t &window)
{
    if (!args.has("window"))
        return true;
    const std::string v = args.get("window");
    char *end = nullptr;
    errno = 0;
    const long long n =
        v.empty() ? -1 : std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0' || errno == ERANGE || n < 1 ||
        n > 1000000) {
        std::fprintf(stderr,
                     "%s: invalid --window '%s': expected an integer "
                     "between 1 and 1000000\n",
                     cmd, v.c_str());
        return false;
    }
    window = static_cast<std::size_t>(n);
    return true;
}

/**
 * Parse a strict `--engine` value into @p kinds (left empty when the
 * flag is absent).  Same philosophy as parseJobs: an unknown engine
 * name is a typed error (the caller exits 2), never a crash or a
 * silent fallback to hb1.
 */
bool
parseEngine(const Args &args, const char *cmd,
            std::optional<std::vector<engines::EngineKind>> &kinds)
{
    if (!args.has("engine"))
        return true;
    const std::string v = args.get("engine");
    auto parsed = engines::parseEngineSelection(v);
    if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "%s: unknown --engine '%s': expected %s\n", cmd,
                     v.c_str(), engines::engineSelectionHelp());
        return false;
    }
    kinds = std::move(parsed);
    return true;
}

/**
 * `--trace-out FILE`: turn span/counter collection on for the whole
 * command and write a Chrome trace_event JSON file (loadable in
 * perfetto / chrome://tracing) when the command finishes.  Purely
 * additive: stdout and every report stay byte-identical.
 */
class TraceOut
{
  public:
    explicit TraceOut(const Args &args) : path_(args.get("trace-out"))
    {
        if (args.has("trace-out") && path_.empty())
            fatal("--trace-out needs a file path");
        if (!path_.empty())
            obs::setEnabled(true);
    }

    explicit TraceOut(std::string path) : path_(std::move(path))
    {
        if (!path_.empty())
            obs::setEnabled(true);
    }

    ~TraceOut()
    {
        if (path_.empty())
            return;
        if (!obs::writeChromeTrace(path_)) {
            std::fprintf(stderr,
                         "cannot write Chrome trace to '%s'\n",
                         path_.c_str());
        } else {
            std::fprintf(stderr, "wrote Chrome trace to %s  (open "
                                 "in ui.perfetto.dev)\n",
                         path_.c_str());
        }
    }

  private:
    std::string path_;
};

/**
 * Parse a strict `--model` value into @p model (untouched when the
 * flag is absent; the caller's default stands).  Same philosophy as
 * parseJobs/parseEngine: an unknown model name is a typed error
 * listing every valid model (the caller exits 2), never a silent
 * fallback.  Matching is case-insensitive ("tso" == "TSO").
 */
bool
parseModel(const Args &args, const char *cmd, ModelKind &model)
{
    if (!args.has("model"))
        return true;
    const std::string v = args.get("model");
    const auto matches = [&](std::string_view name) {
        if (v.size() != name.size())
            return false;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(v[i])) !=
                std::tolower(static_cast<unsigned char>(name[i])))
                return false;
        }
        return true;
    };
    for (const auto kind : kAllModels) {
        if (matches(modelName(kind))) {
            model = kind;
            return true;
        }
    }
    std::string valid;
    for (const auto kind : kAllModels) {
        if (!valid.empty())
            valid += ", ";
        valid += modelName(kind);
    }
    std::fprintf(stderr,
                 "%s: unknown --model '%s': expected one of %s\n",
                 cmd, v.c_str(), valid.c_str());
    return false;
}

Realization
parseRealization(const std::string &name)
{
    if (name == "buffer" || name == "store-buffer")
        return Realization::StoreBuffer;
    if (name == "invalidate")
        return Realization::Invalidate;
    fatal("unknown realization '%s' (try buffer, invalidate)",
          name.c_str());
}

int
cmdRun(const Args &args)
{
    if (args.positional().empty())
        fatal("run: missing program file");
    const Program prog = assembleFile(args.positional()[0]);

    ExecOptions opts;
    if (!parseModel(args, "run", opts.model))
        return 2;
    opts.realization =
        parseRealization(args.get("realization", "buffer"));
    opts.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr,
                              10);
    opts.drainLaziness =
        std::strtod(args.get("laziness", "0.5").c_str(), nullptr);

    FirstRaceFilter otf(prog.numProcs(), prog.memWords());
    if (args.has("onthefly"))
        opts.sink = &otf;

    const ExecutionResult res = runProgram(prog, opts);
    std::printf("model %s (%s), seed %llu: %llu instructions, %zu "
                "memory ops, %llu cycles%s\n",
                std::string(modelName(opts.model)).c_str(),
                std::string(realizationName(opts.realization))
                    .c_str(),
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(res.steps),
                res.ops.size(),
                static_cast<unsigned long long>(res.totalCycles),
                res.completed ? "" : "  [TRUNCATED]");

    if (args.has("trace")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        const auto bytes =
            writeTraceFile(trace, args.get("trace"));
        std::printf("wrote %zu events (%zu bytes) to %s\n",
                    trace.events().size(), bytes,
                    args.get("trace").c_str());
    }

    if (args.has("stats")) {
        std::printf("%s",
                    formatStats(summarizeExecution(res), &prog)
                        .c_str());
    }

    if (args.has("timeline")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        std::printf("%s",
                    renderTimeline(trace, &prog, &res).c_str());
    }

    if (args.has("robustness")) {
        const RobustnessResult rob = checkRobustness(res);
        std::printf("%s",
                    formatRobustnessReport(rob, res.ops).c_str());
    }

    const DetectionResult det = analyzeExecution(res);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, &prog, ropts).c_str());

    if (args.has("onthefly")) {
        std::printf("\non-the-fly: %zu race report(s), %zu distinct, "
                    "%zu classified first\n",
                    otf.detector().races().size(),
                    otf.detector().distinctRaces().size(),
                    otf.firstRaces().size());
    }

    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"), &prog);
        std::printf("wrote DOT graph to %s  (render: dot -Tsvg %s)\n",
                    args.get("dot").c_str(), args.get("dot").c_str());
    }
    return det.anyDataRace() ? 1 : 0;
}

/** @return whether the file at @p path starts with the segmented
 *  trace magic (false on unreadable files too). */
bool
fileLooksSegmented(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::uint8_t head[8] = {};
    if (!in.read(reinterpret_cast<char *>(head), sizeof(head)))
        return false;
    return looksSegmented(head, sizeof(head));
}

/** A trace loaded for analysis plus its provenance. */
struct LoadedTrace
{
    bool ok = false;
    ExecutionTrace trace;
    std::string error;
    bool segmented = false;
    SalvageInfo salvage;
};

/**
 * Load @p path whichever container it uses.  @p allowSalvage makes
 * a damaged/incomplete segmented file recover its longest valid
 * prefix instead of failing.
 */
LoadedTrace
loadRecordedTrace(const std::string &path, bool allowSalvage)
{
    LoadedTrace out;
    if (fileLooksSegmented(path)) {
        out.segmented = true;
        auto res = allowSalvage ? trySalvageTraceFile(path)
                                : tryReadSegmentedTraceFile(path);
        out.ok = res.ok();
        out.trace = std::move(res.trace);
        out.error = std::move(res.error);
        out.salvage = std::move(res.salvage);
        return out;
    }
    auto res = tryReadTraceFile(path);
    out.ok = res.ok();
    out.trace = std::move(res.trace);
    out.error = std::move(res.error);
    return out;
}

/**
 * The report header lines stating what the analyzed trace actually
 * is: salvage provenance and recorder-side data loss, so a partial
 * or Drop-mode trace can never masquerade as a complete one.  The
 * rendering lives in formatTraceProvenance() (segmented_io.hh),
 * shared with the serve subsystem so a served report stays
 * byte-identical to a local one.
 */
void
printTraceProvenance(const LoadedTrace &lt)
{
    std::printf("%s",
                formatTraceProvenance(lt.segmented, lt.salvage)
                    .c_str());
}

/**
 * `wmrace check --stream`: the bounded-memory engine (src/stream/).
 * Stdout — provenance, report, exit code — is byte-identical to the
 * whole-trace path on the same file; only the memory profile
 * differs.  The whole-trace-only extras (--events, --dot, --jobs)
 * need the materialized event list / hb graph and are rejected.
 */
/**
 * Synthesize the SHB verdict block from a finished streaming
 * analysis.  SHB's race set equals the full hb1-unordered set — the
 * exact set the streaming engine enumerates — so `check --stream
 * --engine shb` prints byte-identically to the whole-trace
 * `check --engine shb` on the same file.  wcp (lock-region history)
 * and hb1 (partition structure) need whole-trace state the
 * bounded-memory window retires, so they stay whole-trace-only.
 */
engines::EngineFamilyResult
shbFamilyFromStream(const StreamResult &sr)
{
    engines::EngineFamilyResult fam;
    fam.info.numEvents = sr.events;
    fam.info.numSyncEvents =
        static_cast<std::uint32_t>(sr.syncEvents);
    fam.info.totalOps = sr.ops;

    engines::EngineVerdict v;
    v.engine = "shb";
    v.semantics = engines::ShbEngine::semanticsLine();
    v.races.reserve(sr.report.races.size());
    for (const ReportRaceModel &r : sr.report.races) {
        engines::EngineRace er;
        er.a = r.a.id;
        er.b = r.b.id;
        er.addrs = r.addrs;
        er.isDataRace = r.isDataRace;
        v.races.push_back(std::move(er));
    }
    for (std::uint32_t i = 0; i < v.races.size(); ++i) {
        if (v.races[i].isDataRace)
            ++v.numDataRaces;
        v.reported.push_back(i);
    }
    v.anyDataRace = v.numDataRaces != 0;
    v.firstRacePerVar = engines::firstRacePerVariable(v.races);

    fam.anyDataRace = v.anyDataRace;
    fam.verdicts.push_back(std::move(v));
    return fam;
}

int
cmdCheckStream(const Args &args)
{
    if (args.has("events") || args.has("dot") || args.has("jobs"))
        fatal("check: --stream keeps no whole-trace state; --events, "
              "--dot and --jobs do not apply");
    std::optional<std::vector<engines::EngineKind>> engineKinds;
    if (!parseEngine(args, "check", engineKinds))
        return 2;
    if (engineKinds.has_value() &&
        (engineKinds->size() != 1 ||
         engineKinds->front() != engines::EngineKind::Shb))
        fatal("check: --stream supports --engine shb only (the "
              "other engines need whole-trace state the "
              "bounded-memory window retires; run without --stream)");
    const std::string &path = args.positional()[0];
    if (!fileLooksSegmented(path))
        fatal("check: --stream requires a segmented trace "
              "(WMRSEG01); re-record with the segmented writer or "
              "run without --stream");
    StreamOptions sopts;
    sopts.strict = !args.has("salvage");
    if (!parseWindow(args, "check", sopts.windowSegments))
        return 2;
    const StreamResult sr = streamAnalyzeFile(path, sopts);
    if (!sr.ok)
        fatal("%s%s", sr.error.c_str(),
              !args.has("salvage")
                  ? "  (re-run with --salvage to recover the valid "
                    "prefix)"
                  : "");
    std::printf("%s",
                formatTraceProvenance(true, sr.salvage).c_str());
    if (engineKinds.has_value()) {
        // Same data-race set, so the exit code below still applies.
        std::printf("%s", engines::formatFamilyReport(
                              shbFamilyFromStream(sr))
                              .c_str());
    } else {
        std::printf("%s",
                    renderReport(sr.report, nullptr, ReportOptions{})
                        .c_str());
    }
    if (args.has("stats"))
        std::fprintf(
            stderr,
            "stream: %llu segments, peak resident %llu events, "
            "%llu windows retired\n",
            static_cast<unsigned long long>(sr.segments),
            static_cast<unsigned long long>(sr.peakResident),
            static_cast<unsigned long long>(sr.windowsRetired));
    return sr.anyDataRace ? 1 : 0;
}

int
cmdCheck(const Args &args)
{
    if (args.positional().empty())
        fatal("check: missing trace file");
    const TraceOut traceOut(args);
    if (args.has("stream"))
        return cmdCheckStream(args);
    const LoadedTrace lt = loadRecordedTrace(args.positional()[0],
                                             args.has("salvage"));
    if (!lt.ok)
        fatal("%s%s", lt.error.c_str(),
              lt.segmented && !args.has("salvage")
                  ? "  (re-run with --salvage to recover the valid "
                    "prefix)"
                  : "");
    printTraceProvenance(lt);
    AnalysisOptions aopts;
    if (!parseJobs(args, "check", aopts.threads))
        return 2;
    std::optional<std::vector<engines::EngineKind>> engineKinds;
    if (!parseEngine(args, "check", engineKinds))
        return 2;
    if (engineKinds.has_value()) {
        if (args.has("events") || args.has("dot"))
            fatal("check: --engine prints the detector family "
                  "report; --events and --dot apply only to the "
                  "default hb1 path");
        engines::EngineFamilyOptions fopts;
        fopts.kinds = *engineKinds;
        fopts.threads = aopts.threads;
        const engines::EngineFamilyResult fam =
            engines::runEngineFamily(lt.trace, fopts);
        std::printf("%s",
                    engines::formatFamilyReport(fam).c_str());
        return fam.anyDataRace ? 1 : 0;
    }
    const DetectionResult det = analyzeTrace(lt.trace, aopts);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, nullptr, ropts).c_str());
    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"));
        std::printf("wrote DOT graph to %s\n",
                    args.get("dot").c_str());
    }
    // Timing is nondeterministic by nature: --stats goes to stderr
    // so stdout stays byte-identical at every --jobs value.
    if (args.has("stats"))
        std::fprintf(stderr, "%s",
                     formatAnalysisStats(det.stats()).c_str());
    return det.anyDataRace() ? 1 : 0;
}

/**
 * `wmrace batch --server ADDR`: ship every corpus trace to a running
 * `wmrace serve` daemon instead of analyzing locally, and rebuild
 * the per-trace results from the returned meta blocks — the
 * aggregate report comes out byte-identical to a local batch because
 * the meta carries every field the report renders.  --jobs bounds
 * the CONCURRENT SUBMISSIONS here (the server owns the analysis
 * thread budget); an Overloaded answer is retried with the server's
 * backoff hint, so a flooded server throttles the client instead of
 * failing the batch.
 */
BatchResult
runBatchOverServer(const CorpusScan &corpus,
                   const serve::ServerAddress &addr, unsigned jobs,
                   bool salvage, const std::string &engine)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();

    BatchResult batch;
    batch.corpus = corpus;
    batch.traces.resize(corpus.files.size());

    serve::SubmitOptions sopts;
    sopts.salvage = salvage;
    sopts.engine = engine;
    sopts.maxAttempts = 16;

    const unsigned lanes = resolveThreads(jobs);
    parallelFor(lanes, corpus.files.size(), [&](std::size_t i) {
        const std::string &path = corpus.files[i];
        TraceRunResult &rr = batch.traces[i];
        rr.path = path;
        const serve::SubmitResult sub =
            serve::submitTraceFile(addr, path, sopts);
        if (!sub.ok) {
            rr.status = TraceRunStatus::IoError;
            rr.error = sub.error;
            return;
        }
        const serve::Response &resp = sub.response;
        const serve::ResponseMeta &m = resp.meta;
        if (!resp.ok()) {
            rr.status =
                resp.status == serve::RespStatus::BadRequest
                    ? TraceRunStatus::FormatError
                    : TraceRunStatus::IoError;
            rr.error = m.error.empty()
                           ? std::string("server answered ") +
                                 serve::respStatusName(resp.status)
                           : m.error;
            return;
        }
        rr.status = TraceRunStatus::Ok;
        rr.fileBytes = m.fileBytes;
        rr.events = m.events;
        rr.syncEvents = m.syncEvents;
        rr.ops = m.ops;
        rr.races = m.races;
        rr.dataRaces = m.dataRaces;
        rr.partitions = m.partitions;
        rr.firstPartitions = m.firstPartitions;
        rr.reportedRaces = m.reportedRaces;
        rr.anyDataRace = m.anyDataRace;
        rr.wholeExecutionSc = m.wholeExecutionSc;
        rr.salvaged = m.salvaged;
        rr.unresolvedPairings = m.unresolvedPairings;
        rr.droppedDataRecords = m.droppedDataRecords;
    });

    BatchMetrics &met = batch.metrics;
    met.jobs = lanes;
    met.corpusTraces = corpus.files.size();
    for (const TraceRunResult &rr : batch.traces) {
        if (rr.ok()) {
            met.analyzed += 1;
            met.bytesRead += rr.fileBytes;
            if (rr.salvaged)
                met.salvaged += 1;
        } else {
            met.failed += 1;
        }
    }
    met.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return batch;
}

int
cmdBatch(const Args &args)
{
    if (args.positional().empty())
        fatal("batch: missing corpus directory or manifest file");
    const TraceOut traceOut(args);
    const CorpusScan corpus = scanCorpus(args.positional()[0]);
    if (!corpus.ok())
        fatal("%s", corpus.error.c_str());

    BatchOptions opts;
    if (!parseJobs(args, "batch", opts.jobs))
        return 2;
    opts.failFast = args.has("fail-fast");
    opts.salvage = args.has("salvage");
    opts.stream = args.has("stream");
    if (!parseWindow(args, "batch", opts.streamWindow))
        return 2;
    if (args.has("stream") && args.has("server"))
        fatal("batch: --stream does not combine with --server (the "
              "server analyzes with its own engine)");
    std::optional<std::vector<engines::EngineKind>> engineKinds;
    if (!parseEngine(args, "batch", engineKinds))
        return 2;
    if (engineKinds.has_value()) {
        if (args.has("stream"))
            fatal("batch: --engine does not combine with --stream "
                  "(only shb is stream-derivable; use `wmrace check "
                  "--stream --engine shb` per trace)");
        for (const engines::EngineKind k : *engineKinds) {
            if (k != engines::EngineKind::Hb1 &&
                k != engines::EngineKind::Shb &&
                k != engines::EngineKind::Wcp)
                fatal("batch: --engine supports the containment "
                      "chain only (hb1|shb|wcp|all); the op-level "
                      "adapters are `check`-only");
        }
        opts.engineKinds = *engineKinds;
    }
    if (args.has("checkpoint")) {
        opts.checkpointPath = args.get("checkpoint");
        if (opts.checkpointPath.empty())
            fatal("batch: --checkpoint needs a file path");
    }

    BatchResult remoteBatch;
    if (args.has("server")) {
        if (args.has("checkpoint"))
            fatal("batch: --checkpoint does not combine with "
                  "--server (the server's --spool-dir is the "
                  "crash-safety mechanism there)");
        if (args.has("fail-fast"))
            fatal("batch: --fail-fast does not combine with "
                  "--server (submissions run concurrently)");
        serve::ServerAddress addr;
        std::string err;
        if (!serve::parseServerAddress(args.get("server"), addr,
                                       err))
            fatal("batch: %s", err.c_str());
        remoteBatch = runBatchOverServer(corpus, addr, opts.jobs,
                                         opts.salvage,
                                         args.get("engine"));
    }
    const BatchResult batch = args.has("server")
                                  ? std::move(remoteBatch)
                                  : runBatch(corpus, opts);

    BatchReportOptions ropts;
    ropts.showPerTrace = !args.has("summary");
    std::printf("%s", formatBatchReport(batch, ropts).c_str());

    if (args.has("json")) {
        const std::string path = args.get("json");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open JSON report file '%s'", path.c_str());
        out << batchReportJson(batch);
        if (!out)
            fatal("short write to JSON report file '%s'",
                  path.c_str());
    }

    if (args.has("quarantine")) {
        const std::string path = args.get("quarantine");
        if (path.empty())
            fatal("batch: --quarantine needs a file path");
        const std::string manifest = quarantineManifest(batch);
        if (manifest.empty()) {
            // Nothing failed: do not leave a stale quarantine
            // around from an earlier, worse run.
            std::remove(path.c_str());
        } else {
            std::ofstream out(path, std::ios::trunc);
            if (!out)
                fatal("cannot open quarantine file '%s'",
                      path.c_str());
            out << manifest;
            if (!out)
                fatal("short write to quarantine file '%s'",
                      path.c_str());
            std::fprintf(stderr,
                         "batch: %zu failed trace(s) listed in "
                         "quarantine manifest %s\n",
                         batch.numFailed(), path.c_str());
        }
    }

    // Metrics are nondeterministic (timing); they go to stderr and
    // the optional --metrics file so stdout and --json stay
    // byte-identical across --jobs values.
    std::fprintf(stderr, "%s",
                 formatMetrics(batch.metrics).c_str());
    if (args.has("metrics")) {
        const std::string path = args.get("metrics");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open metrics file '%s'", path.c_str());
        out << metricsJson(batch.metrics);
    }

    if (opts.failFast && batch.numFailed() > 0)
        return 2;
    return batch.anyDataRace() ? 1 : 0;
}

/** How a supervised recording child ended. */
struct ChildOutcome
{
    enum class Kind : std::uint8_t {
        Clean,    ///< exit 0
        Nonzero,  ///< nonzero exit status
        Signaled, ///< killed by a signal (its own crash)
        TimedOut, ///< exceeded --timeout; we SIGKILLed it
    };
    Kind kind = Kind::Clean;
    int code = 0; ///< exit status or signal number

    bool abnormal() const { return kind != Kind::Clean; }

    std::string
    describe(const std::string &child) const
    {
        char buf[256];
        switch (kind) {
          case Kind::Clean:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' exited cleanly",
                          child.c_str());
            break;
          case Kind::Nonzero:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' exited with status %d",
                          child.c_str(), code);
            break;
          case Kind::Signaled:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' died on signal %d (%s)",
                          child.c_str(), code,
                          ::strsignal(code));
            break;
          case Kind::TimedOut:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' timed out after %ds; killed",
                          child.c_str(), code);
            break;
        }
        return buf;
    }
};

/**
 * Run the recording child once: fork, point its tracer at @p out,
 * exec, and supervise.  With @p timeoutSec > 0 a child still running
 * after the deadline is SIGKILLed and classified TimedOut (its
 * incrementally spilled trace survives for salvage).
 */
ChildOutcome
runRecordChild(const std::string &child, char **childArgv,
               const std::string &out, int timeoutSec)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("record: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::setenv("WMR_RT_TRACE", out.c_str(), 1);
        ::execvp(child.c_str(), childArgv);
        std::fprintf(stderr, "record: cannot exec '%s': %s\n",
                     child.c_str(), std::strerror(errno));
        std::_Exit(127);
    }

    int status = 0;
    bool timedOut = false;
    if (timeoutSec > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(timeoutSec);
        while (true) {
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid)
                break;
            if (r < 0 && errno != EINTR)
                fatal("record: waitpid failed: %s",
                      std::strerror(errno));
            if (std::chrono::steady_clock::now() >= deadline) {
                ::kill(pid, SIGKILL);
                if (::waitpid(pid, &status, 0) < 0)
                    fatal("record: waitpid failed: %s",
                          std::strerror(errno));
                timedOut = true;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    } else if (::waitpid(pid, &status, 0) < 0) {
        fatal("record: waitpid failed: %s", std::strerror(errno));
    }

    ChildOutcome oc;
    if (timedOut) {
        oc.kind = ChildOutcome::Kind::TimedOut;
        oc.code = timeoutSec;
    } else if (WIFSIGNALED(status)) {
        oc.kind = ChildOutcome::Kind::Signaled;
        oc.code = WTERMSIG(status);
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        oc.kind = ChildOutcome::Kind::Nonzero;
        oc.code = WEXITSTATUS(status);
    }
    return oc;
}

/**
 * `wmrace record [opts] <binary> [args...]`: launch an annotated
 * program with WMR_RT_TRACE set so its runtime tracer (src/rt)
 * records an EVENT trace, then analyze the trace with the regular
 * post-mortem pipeline.  An abnormally terminated child is retried
 * (--retries) and its partial trace salvaged — never a fatal().
 */
int
cmdRecord(int argc, char **argv)
{
    std::string out;
    std::string traceOutPath;
    bool check = true;
    bool live = false;
    int timeoutSec = 0;
    int retries = 0;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (a == "--trace-out" && i + 1 < argc) {
            traceOutPath = argv[++i];
        } else if (a == "--no-check") {
            check = false;
        } else if (a == "--live") {
            live = true;
        } else if (a == "--timeout" && i + 1 < argc) {
            timeoutSec =
                static_cast<int>(std::strtol(argv[++i], nullptr, 10));
            if (timeoutSec < 1)
                fatal("record: invalid --timeout '%s' (want a "
                      "positive number of seconds)", argv[i]);
        } else if (a == "--retries" && i + 1 < argc) {
            retries =
                static_cast<int>(std::strtol(argv[++i], nullptr, 10));
            if (retries < 0 || retries > 100)
                fatal("record: invalid --retries '%s' (want 0..100)",
                      argv[i]);
        } else if (a.rfind("--", 0) == 0) {
            fatal("record: unknown option '%s' (options go before "
                  "the child binary)", a.c_str());
        } else {
            break; // the child binary
        }
    }
    if (i >= argc)
        fatal("record: missing child binary to run");
    if (live && retries > 0)
        fatal("record: --live cannot retry — the live analyzer has "
              "already consumed the first attempt's trace; drop "
              "--retries");
    if (live && !check)
        fatal("record: --live IS the check; drop --no-check or "
              "--live");
    const TraceOut traceOut(traceOutPath);
    const std::string child = argv[i];
    if (out.empty()) {
        const auto slash = child.find_last_of('/');
        out = (slash == std::string::npos
                   ? child
                   : child.substr(slash + 1)) +
              ".trace";
    }

    // --live: a feeder thread tails the spill file and streams
    // segments into the analyzer while the child runs.  It only
    // FEEDS — finalize()/finish() wait for the child outcome, which
    // decides the strictness of the read (clean exit = strict,
    // abnormal = salvage tolerance), exactly like the non-live read
    // below.
    std::unique_ptr<SegmentTailReader> tail;
    std::unique_ptr<StreamAnalyzer> liveAn;
    std::atomic<bool> childAlive{true};
    std::thread feeder;
    if (live) {
        // Never follow a stale file from a previous recording: the
        // child recreates it, but possibly after the first poll.
        ::unlink(out.c_str());
        tail = std::make_unique<SegmentTailReader>();
        liveAn = std::make_unique<StreamAnalyzer>(StreamOptions{});
        feeder = std::thread([&] {
            const auto nap = [] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            };
            while (!tail->open(out)) {
                if (!childAlive.load()) {
                    if (!tail->open(out))
                        return;
                    break;
                }
                nap();
            }
            std::vector<SegTailSegment> segs;
            for (;;) {
                // Sample liveness BEFORE polling: anything written
                // before the child died reaches this or a later
                // poll.
                const bool wasAlive = childAlive.load();
                segs.clear();
                const TailPollStatus st = tail->poll(segs);
                for (const SegTailSegment &seg : segs)
                    liveAn->addSegment(seg);
                if (st == TailPollStatus::Fin ||
                    st == TailPollStatus::Damaged)
                    return;
                if (st == TailPollStatus::Waiting) {
                    if (!wasAlive)
                        return;
                    nap();
                }
            }
        });
    }

    ChildOutcome oc;
    for (int attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff for flaky children: 200ms, 400ms,
            // 800ms, ... capped at 5s.
            const auto backoff = std::min<std::int64_t>(
                200ll << (attempt - 1), 5000);
            std::fprintf(stderr,
                         "record: retrying (%d/%d) after %lldms\n",
                         attempt, retries,
                         static_cast<long long>(backoff));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        }
        oc = runRecordChild(child, argv + i, out, timeoutSec);
        std::printf("record: %s\n", oc.describe(child).c_str());
        if (!oc.abnormal())
            break;
    }

    std::printf("recorded '%s' -> %s\n", child.c_str(), out.c_str());

    if (live) {
        childAlive.store(false);
        feeder.join();
        const bool strict = !oc.abnormal();
        if (!tail->isOpen()) {
            std::fprintf(stderr,
                         "record: no analyzable trace: %s\n",
                         tail->error().empty()
                             ? "the child never created the trace "
                               "file"
                             : tail->error().c_str());
            return 3;
        }
        if (!tail->finalize(strict)) {
            std::fprintf(stderr,
                         "record: no analyzable trace: %s\n",
                         tail->error().c_str());
            return 3;
        }
        liveAn->setStrict(strict);
        const StreamResult sr = liveAn->finish(
            tail->finSeen(), tail->fin(), tail->salvage());
        if (!sr.ok) {
            std::fprintf(stderr,
                         "record: no analyzable trace: %s\n",
                         sr.error.c_str());
            return 3;
        }
        std::printf("%s",
                    formatTraceProvenance(true, sr.salvage).c_str());
        std::printf("%s",
                    renderReport(sr.report, nullptr, ReportOptions{})
                        .c_str());
        return sr.anyDataRace ? 1 : 0;
    }

    if (!check) {
        // --no-check keeps whatever trace the child left, even after
        // an abnormal exit; 0 only when the recording is complete.
        std::ifstream probe(out, std::ios::binary);
        return !probe ? 3 : (oc.abnormal() ? 3 : 0);
    }

    // Strict read after a clean exit; salvage after an abnormal one
    // (the spill file has no FIN segment — that is expected, not an
    // error).
    const LoadedTrace lt = loadRecordedTrace(out, oc.abnormal());
    if (!lt.ok) {
        std::fprintf(stderr,
                     "record: no analyzable trace: %s\n",
                     lt.error.c_str());
        return 3;
    }
    printTraceProvenance(lt);
    const DetectionResult det = analyzeTrace(lt.trace);
    std::printf("%s", formatReport(det, nullptr, {}).c_str());
    return det.anyDataRace() ? 1 : 0;
}

/**
 * `wmrace gen-trace <out> [opts]`: write a deterministic synthetic
 * trace file — the reproducible source of the golden-report corpus
 * (tests/data/golden/regen.sh).  Equal options give byte-identical
 * files.  --segmented emits the WMRSEG01 container; --truncate N
 * keeps only the first N bytes, crafting a damaged file for salvage
 * fixtures.
 */
int
cmdGenTrace(const Args &args)
{
    if (args.positional().empty())
        fatal("gen-trace: missing output file");
    const std::string path = args.positional()[0];

    SyntheticTraceOptions opts;
    opts.procs = static_cast<ProcId>(
        std::strtoul(args.get("procs", "4").c_str(), nullptr, 10));
    opts.eventsPerProc = static_cast<std::uint32_t>(std::strtoul(
        args.get("events", "1000").c_str(), nullptr, 10));
    opts.memWords = static_cast<Addr>(
        std::strtoul(args.get("words", "256").c_str(), nullptr, 10));
    opts.syncWords = static_cast<Addr>(std::strtoul(
        args.get("sync-words", "16").c_str(), nullptr, 10));
    opts.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr,
                              10);
    if (args.has("sync-fraction"))
        opts.syncFraction =
            std::strtod(args.get("sync-fraction").c_str(), nullptr);
    if (args.has("hot-fraction"))
        opts.hotFraction =
            std::strtod(args.get("hot-fraction").c_str(), nullptr);
    if (opts.procs == 0 || opts.eventsPerProc == 0 ||
        opts.memWords == 0)
        fatal("gen-trace: --procs, --events and --words must be "
              "positive");

    // Segmented output streams through the spill writer — writer
    // memory stays O(segment), so --events can exceed RAM.  The file
    // is byte-identical to serializing makeSyntheticTrace().  The
    // EVENT container needs the whole trace up front and keeps the
    // materializing path.
    std::size_t bytes = 0;
    std::size_t numEvents = 0;
    if (args.has("segmented")) {
        bytes = writeSyntheticSegmentedTraceFile(opts, path);
        if (bytes == 0)
            fatal("gen-trace: cannot write '%s'", path.c_str());
        numEvents = static_cast<std::size_t>(opts.procs) *
                    opts.eventsPerProc;
    } else {
        const ExecutionTrace trace = makeSyntheticTrace(opts);
        bytes = writeTraceFile(trace, path);
        numEvents = trace.events().size();
    }

    std::size_t kept = bytes;
    if (args.has("truncate")) {
        const auto want = std::strtoull(
            args.get("truncate").c_str(), nullptr, 10);
        if (want == 0 || want >= bytes)
            fatal("gen-trace: --truncate must be in (0, %zu)",
                  bytes);
        if (::truncate(path.c_str(),
                       static_cast<off_t>(want)) != 0)
            fatal("gen-trace: truncate '%s' failed: %s",
                  path.c_str(), std::strerror(errno));
        kept = static_cast<std::size_t>(want);
    }
    std::printf("wrote %zu events (%zu bytes%s) to %s\n",
                numEvents, kept,
                kept != bytes ? ", truncated" : "", path.c_str());
    return 0;
}

int
cmdExplore(const Args &args)
{
    if (args.positional().empty())
        fatal("explore: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    McLimits limits;
    limits.maxExecutions = std::strtoull(
        args.get("max-execs", "100000").c_str(), nullptr, 10);
    const auto truth = exploreScExecutions(prog, limits);
    std::printf("explored %llu sequentially consistent execution(s)%s"
                "%s\n",
                static_cast<unsigned long long>(truth.executions),
                truth.exhaustive ? " (exhaustive)" : " (bounded)",
                truth.truncated
                    ? (" [" + std::to_string(truth.truncated) +
                       " truncated paths]")
                          .c_str()
                    : "");
    if (truth.anyDataRace) {
        std::printf("program HAS data races on SC; %zu static race "
                    "pair(s):\n",
                    truth.races.size());
        for (const auto &r : truth.races) {
            std::printf("  P%u:pc%u  <->  P%u:pc%u\n", r.x.proc,
                        r.x.pc, r.y.proc, r.y.pc);
        }
        return 1;
    }
    std::printf("no data races in any explored SC execution%s\n",
                truth.exhaustive
                    ? ": the program is data-race-free; all weak "
                      "models guarantee it sequential consistency"
                    : " (bounded exploration: not a proof)");
    return 0;
}

int
cmdStatic(const Args &args)
{
    if (args.positional().empty())
        fatal("static: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    StaticOptions opts;
    if (args.has("first-data-addr")) {
        opts.firstDataAddr = static_cast<Addr>(std::strtoul(
            args.get("first-data-addr").c_str(), nullptr, 10));
    }
    const auto analysis = analyzeStatically(prog, opts);
    std::printf("%s", formatStaticReport(analysis, &prog).c_str());
    return analysis.clean() ? 0 : 1;
}

int
cmdDisasm(const Args &args)
{
    if (args.positional().empty())
        fatal("disasm: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    std::printf("%s", prog.disassembleAll().c_str());
    return 0;
}

int
cmdModels()
{
    std::printf("memory models:\n");
    std::printf("  SC    sequential consistency (every op stalls to "
                "completion)\n");
    std::printf("  WO    weak ordering [Dubois/Scheurich/Briggs 86]\n");
    std::printf("  RCsc  release consistency w/ SC sync ops "
                "[Gharachorloo+ 90]\n");
    std::printf("  DRF0  data-race-free-0 [Adve/Hill 90] (pipelined "
                "drains)\n");
    std::printf("  DRF1  data-race-free-1 [Adve/Hill 91] (release/"
                "acquire + pipelined)\n");
    std::printf("  TSO   total store order (x86-style FIFO buffer; "
                "only W->R reordering)\n");
    std::printf("  PSO   partial store order (SPARC-style "
                "per-location FIFO; W->W too)\n");
    std::printf("fences:\n");
    std::printf("  fence   full fence (mfence): drain everything "
                "and stall\n");
    std::printf("  sfence  store-store fence: order stores across "
                "it without stalling\n");
    std::printf("realizations:\n");
    std::printf("  buffer       per-processor unordered store "
                "buffers (delayed visibility)\n");
    std::printf("  invalidate   invalidation queues (delayed death "
                "of stale copies)\n");
    return 0;
}

/**
 * Parse a strict nonnegative integer option into @p out (untouched
 * when absent).  @return false after printing an error, mirroring
 * parseJobs(): a mistyped size must never silently become 0.
 */
bool
parseUintOpt(const Args &args, const char *cmd, const char *key,
             unsigned long long maxValue, unsigned long long &out)
{
    if (!args.has(key))
        return true;
    const std::string v = args.get(key);
    char *end = nullptr;
    errno = 0;
    const unsigned long long n =
        v.empty() ? 0 : std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0' || errno == ERANGE ||
        n > maxValue) {
        std::fprintf(stderr,
                     "%s: invalid --%s '%s': expected an integer "
                     "between 0 and %llu\n",
                     cmd, key, v.c_str(), maxValue);
        return false;
    }
    out = n;
    return true;
}

/** The serving daemon a SIGTERM/SIGINT handler must reach.  One
 *  server per process; beginShutdown() is async-signal-safe. */
serve::Server *gServeInstance = nullptr;

void
serveSignalHandler(int)
{
    if (gServeInstance != nullptr)
        gServeInstance->beginShutdown();
}

/**
 * `wmrace serve`: run the long-lived analysis service
 * (docs/SERVE.md).  Listens on --socket PATH (unix domain) or
 * --tcp PORT (loopback; 0 = kernel-assigned), prints the bound
 * address on stdout once ready, and serves until SIGTERM/SIGINT or
 * a client Shutdown request — then drains queued analyses and
 * exits 0.
 */
int
cmdServe(const Args &args)
{
    const TraceOut traceOut(args);
    serve::ServeOptions sopts;
    sopts.socketPath = args.get("socket");
    if (args.has("tcp")) {
        unsigned long long port = 0;
        if (!parseUintOpt(args, "serve", "tcp", 65535, port))
            return 2;
        sopts.tcpPort = static_cast<int>(port);
    }
    if (sopts.socketPath.empty() && sopts.tcpPort < 0)
        fatal("serve: listen address required: --socket PATH or "
              "--tcp PORT (0 = kernel-assigned)");
    if (!parseJobs(args, "serve", sopts.jobs))
        return 2;

    unsigned long long v = 0;
    if (!parseUintOpt(args, "serve", "workers", 4096, v))
        return 2;
    sopts.workers = static_cast<unsigned>(v);
    v = sopts.maxQueue;
    if (!parseUintOpt(args, "serve", "max-queue", 1u << 20, v))
        return 2;
    if (v == 0) {
        std::fprintf(stderr, "serve: --max-queue must be >= 1 (the "
                             "queue bound is the admission "
                             "control)\n");
        return 2;
    }
    sopts.maxQueue = static_cast<std::size_t>(v);
    v = sopts.maxInflightBytes >> 20;
    if (!parseUintOpt(args, "serve", "max-inflight-mb", 1u << 20,
                      v))
        return 2;
    sopts.maxInflightBytes = v << 20;
    v = sopts.maxRequestBytes >> 20;
    if (!parseUintOpt(args, "serve", "max-request-mb", 1u << 20, v))
        return 2;
    sopts.maxRequestBytes = v << 20;
    v = sopts.cacheBytes >> 20;
    if (!parseUintOpt(args, "serve", "cache-mb", 1u << 20, v))
        return 2;
    sopts.cacheBytes = v << 20;
    v = sopts.retryAfterMs;
    if (!parseUintOpt(args, "serve", "retry-after-ms", 3600000, v))
        return 2;
    sopts.retryAfterMs = static_cast<std::uint32_t>(v);
    v = sopts.ioTimeoutSec;
    if (!parseUintOpt(args, "serve", "io-timeout-sec", 86400, v))
        return 2;
    sopts.ioTimeoutSec = static_cast<unsigned>(v);
    sopts.cacheDir = args.get("cache-dir");
    sopts.spoolDir = args.get("spool-dir");

    serve::Server server(sopts);
    gServeInstance = &server;
    std::signal(SIGTERM, serveSignalHandler);
    std::signal(SIGINT, serveSignalHandler);

    if (!server.start())
        fatal("serve: %s", server.lastError().c_str());

    // The bound address goes to STDOUT (scripts read it — with
    // --tcp 0 the port is kernel-assigned); status chatter goes to
    // stderr like every other command.
    std::printf("%s\n", server.boundAddress().c_str());
    std::fflush(stdout);
    const serve::ServeStats boot = server.stats();
    std::fprintf(stderr,
                 "wmrace serve: listening on %s  (%llu spooled "
                 "request(s) recovered)\n",
                 server.boundAddress().c_str(),
                 static_cast<unsigned long long>(boot.recovered));

    server.waitDrained();
    gServeInstance = nullptr;
    const serve::ServeStats s = server.stats();
    std::fprintf(
        stderr,
        "wmrace serve: drained  (%llu request(s), %llu "
        "analysis(es), %llu overload rejection(s))\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.analyses),
        static_cast<unsigned long long>(s.overloaded));
    return 0;
}

/**
 * `wmrace submit`: one client round trip against a running
 * `wmrace serve` daemon.
 *
 *   wmrace submit <trace> --server ADDR [--salvage] [--no-cache]
 *                 [--meta] [--attempts N]
 *   wmrace submit --server ADDR --status | --shutdown
 *
 * The printed report is byte-identical to local `wmrace check`
 * output, and the exit code matches too (1 = data race found).
 * --meta prints the one-line machine-readable summary instead.
 */
int
cmdSubmit(const Args &args)
{
    const std::string addrText = args.get("server");
    if (addrText.empty())
        fatal("submit: --server ADDR required (a unix socket path "
              "or tcp:HOST:PORT)");
    serve::ServerAddress addr;
    std::string err;
    if (!serve::parseServerAddress(addrText, addr, err))
        fatal("submit: %s", err.c_str());

    if (args.has("status")) {
        const serve::SubmitResult r = serve::queryStatus(addr);
        if (!r.ok)
            fatal("submit: %s", r.error.c_str());
        std::printf("%s\n", r.response.report.c_str());
        return 0;
    }
    if (args.has("shutdown")) {
        const serve::SubmitResult r = serve::requestShutdown(addr);
        if (!r.ok)
            fatal("submit: %s", r.error.c_str());
        std::fprintf(stderr, "submit: server is draining\n");
        return 0;
    }

    if (args.positional().empty())
        fatal("submit: missing trace file");
    serve::SubmitOptions sopts;
    sopts.salvage = args.has("salvage");
    sopts.noCache = args.has("no-cache");
    if (args.has("engine")) {
        sopts.engine = args.get("engine");
        if (serve::engineWireId(sopts.engine) == 0) {
            std::fprintf(stderr,
                         "submit: unknown --engine '%s': expected "
                         "hb1|shb|wcp|all\n",
                         sopts.engine.c_str());
            return 2;
        }
    }
    unsigned long long attempts = sopts.maxAttempts;
    if (!parseUintOpt(args, "submit", "attempts", 1000, attempts))
        return 2;
    if (attempts == 0) {
        std::fprintf(stderr,
                     "submit: --attempts must be >= 1\n");
        return 2;
    }
    sopts.maxAttempts = static_cast<unsigned>(attempts);

    const serve::SubmitResult r = serve::submitTraceFile(
        addr, args.positional()[0], sopts);
    if (!r.ok)
        fatal("submit: %s", r.error.c_str());
    const serve::Response &resp = r.response;
    if (!resp.ok()) {
        std::fprintf(stderr, "submit: server answered %s: %s\n",
                     serve::respStatusName(resp.status),
                     resp.meta.error.c_str());
        // Capacity rejections exit 3 (retryable), bad uploads 2.
        return resp.status == serve::RespStatus::Overloaded ||
                       resp.status == serve::RespStatus::Draining
                   ? 3
                   : 2;
    }
    if (args.has("meta"))
        std::printf("%s\n", serve::metaJson(resp).c_str());
    else
        std::printf("%s", resp.report.c_str());
    return resp.meta.anyDataRace ? 1 : 0;
}

void
usage()
{
    std::printf(
        "usage: wmrace <command> [args]\n"
        "  run <prog.wm>      simulate on a weak model and detect "
        "races\n"
        "                     (--model SC|WO|RCsc|DRF0|DRF1|TSO|PSO;"
        "\n"
        "                     --robustness: check the execution has "
        "an SC-equivalent)\n"
        "  check <trace.bin>  post-mortem analysis of a trace file\n"
        "                     (--stream: bounded-memory streaming "
        "engine;\n"
        "                     --engine hb1|shb|wcp|all: detector "
        "family report)\n"
        "  batch <dir|manifest>  analyze a whole trace corpus "
        "(multi-threaded,\n"
        "                     or remotely via --server ADDR)\n"
        "  serve              run the long-lived analysis service "
        "(unix socket or TCP)\n"
        "  submit <trace>     analyze one trace on a running "
        "server\n"
        "  record <bin> [args]  run an annotated program, record + "
        "analyze its trace\n"
        "  gen-trace <out>    write a deterministic synthetic trace "
        "file\n"
        "  explore <prog.wm>  exhaustive SC model checking\n"
        "  static <prog.wm>   compile-time lockset analysis\n"
        "  disasm <prog.wm>   print the assembled program\n"
        "  models             describe the memory models\n"
        "see the header of tools/wmrace_cli.cc for all options\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "batch")
        return cmdBatch(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "submit")
        return cmdSubmit(args);
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "gen-trace")
        return cmdGenTrace(args);
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "static")
        return cmdStatic(args);
    if (cmd == "disasm")
        return cmdDisasm(args);
    if (cmd == "models")
        return cmdModels();
    usage();
    return 2;
}
