#include "hb/scc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wmr {

SccResult
stronglyConnectedComponents(const AdjList &graph)
{
    const std::uint32_t n = static_cast<std::uint32_t>(graph.size());
    constexpr std::uint32_t kUnvisited = UINT32_MAX;

    SccResult res;
    res.componentOf.assign(n, kUnvisited);

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<std::uint32_t> stack;
    std::uint32_t nextIndex = 0;

    // Iterative Tarjan: frame = (node, next-edge cursor).
    struct Frame
    {
        std::uint32_t v;
        std::uint32_t edge;
    };
    std::vector<Frame> call;

    for (std::uint32_t root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        call.push_back({root, 0});
        while (!call.empty()) {
            Frame &f = call.back();
            const std::uint32_t v = f.v;
            if (f.edge == 0) {
                index[v] = lowlink[v] = nextIndex++;
                stack.push_back(v);
                onStack[v] = true;
            }
            bool descended = false;
            while (f.edge < graph[v].size()) {
                const std::uint32_t w = graph[v][f.edge++];
                if (index[w] == kUnvisited) {
                    call.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    lowlink[v] = std::min(lowlink[v], index[w]);
            }
            if (descended)
                continue;
            // v finished: pop an SCC if v is a root.
            if (lowlink[v] == index[v]) {
                const std::uint32_t comp = res.numComponents++;
                res.members.emplace_back();
                while (true) {
                    const std::uint32_t w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    res.componentOf[w] = comp;
                    res.members[comp].push_back(w);
                    if (w == v)
                        break;
                }
            }
            call.pop_back();
            if (!call.empty()) {
                Frame &parent = call.back();
                lowlink[parent.v] =
                    std::min(lowlink[parent.v], lowlink[v]);
            }
        }
    }

    // Build the deduplicated condensation DAG.
    res.condensation.assign(res.numComponents, {});
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t cv = res.componentOf[v];
        for (const std::uint32_t w : graph[v]) {
            const std::uint32_t cw = res.componentOf[w];
            if (cv != cw)
                res.condensation[cv].push_back(cw);
        }
    }
    for (auto &succ : res.condensation) {
        std::sort(succ.begin(), succ.end());
        succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    }
    return res;
}

} // namespace wmr
