/**
 * @file
 * Eraser-style dynamic lockset detector — the third on-the-fly
 * baseline.
 *
 * Where the clock detectors track the hb1 relation exactly, the
 * lockset approach checks a DISCIPLINE: every shared word must be
 * consistently protected by at least one lock.  Per word, a
 * candidate lockset starts as "all locks" and is intersected with
 * the accessor's currently-held locks on every access; when it
 * empties, a violation is reported.  The classic state machine
 * avoids noise from initialization:
 *
 *   Virgin -> Exclusive (first accessor owns it)
 *          -> Shared (second processor reads)     [no check]
 *          -> SharedModified (any later write)    [check lockset]
 *
 * Compared with hb1-based detection on this codebase's workloads:
 *  - lock-disciplined programs: verdicts agree;
 *  - flag-synchronized (release/acquire) programs: the lockset
 *    method reports FALSE positives, because a flag handoff is
 *    ordering without any lock — the classic Eraser limitation, and
 *    a live demonstration of why the paper's hb1 formulation
 *    (Def. 2.3) uses pairing rather than lock ownership.
 *
 * Lock tracking: a successful Test&Set (acquire read returning 0) of
 * word L adds L to the processor's held set; Unset of L removes it.
 */

#ifndef WMR_ONTHEFLY_LOCKSET_DETECTOR_HH
#define WMR_ONTHEFLY_LOCKSET_DETECTOR_HH

#include <set>
#include <vector>

#include "onthefly/onthefly.hh"

namespace wmr {

/** Eraser-style lockset discipline checker. */
class LocksetDetector : public OnTheFlyDetector
{
  public:
    LocksetDetector(ProcId nprocs, Addr words);

    void onOp(const MemOp &op) override;

    /** Eraser's per-word states. */
    enum class WordState : std::uint8_t {
        Virgin,
        Exclusive,
        Shared,
        SharedModified,
    };

    /** @return the state of @p addr (for tests). */
    WordState state(Addr addr) const;

    /** @return the candidate lockset of @p addr (for tests). */
    const std::set<Addr> &candidates(Addr addr) const;

  private:
    struct WordInfo
    {
        WordState state = WordState::Virgin;
        ProcId owner = kNoProc;
        std::set<Addr> candidates;
        bool candidatesInitialized = false;
        ProcId lastProc = kNoProc;   ///< for violation attribution
        std::uint32_t lastPc = 0;
    };

    WordInfo &word(Addr addr);
    void refine(WordInfo &w, const MemOp &op, bool check);

    std::vector<std::set<Addr>> held_; ///< locks held per processor
    std::vector<WordInfo> words_;
    std::vector<bool> reportedWord_;   ///< one report per word
};

} // namespace wmr

#endif // WMR_ONTHEFLY_LOCKSET_DETECTOR_HH
