#include "prog/builder.hh"

#include "common/logging.hh"

namespace wmr {

Instr &
ThreadBuilder::emit(Instr instr)
{
    code_.push_back(std::move(instr));
    return code_.back();
}

ThreadBuilder &
ThreadBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("duplicate label '%s'", name.c_str());
    labels_[name] = static_cast<std::uint32_t>(code_.size());
    return *this;
}

ThreadBuilder &
ThreadBuilder::nop()
{
    emit({.op = Opcode::Nop});
    return *this;
}

ThreadBuilder &
ThreadBuilder::movi(RegId dst, Value imm)
{
    emit({.op = Opcode::MovI, .dst = dst, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::mov(RegId dst, RegId src)
{
    emit({.op = Opcode::Mov, .dst = dst, .a = src});
    return *this;
}

ThreadBuilder &
ThreadBuilder::add(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::Add, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::addi(RegId dst, RegId a, Value imm)
{
    emit({.op = Opcode::AddI, .dst = dst, .a = a, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::sub(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::Sub, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::mul(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::Mul, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::cmpeq(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::CmpEq, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::cmpne(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::CmpNe, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::cmplt(RegId dst, RegId a, RegId b)
{
    emit({.op = Opcode::CmpLt, .dst = dst, .a = a, .b = b});
    return *this;
}

ThreadBuilder &
ThreadBuilder::cmpeqi(RegId dst, RegId a, Value imm)
{
    emit({.op = Opcode::CmpEqI, .dst = dst, .a = a, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::cmplti(RegId dst, RegId a, Value imm)
{
    emit({.op = Opcode::CmpLtI, .dst = dst, .a = a, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::load(RegId dst, Addr addr)
{
    emit({.op = Opcode::Load, .dst = dst, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::loadIdx(RegId dst, Addr base, RegId index)
{
    emit({.op = Opcode::Load, .dst = dst, .a = index, .indexed = true,
          .addr = base});
    return *this;
}

ThreadBuilder &
ThreadBuilder::store(Addr addr, RegId src)
{
    emit({.op = Opcode::Store, .b = src, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::storeIdx(Addr base, RegId index, RegId src)
{
    emit({.op = Opcode::Store, .a = index, .b = src, .indexed = true,
          .addr = base});
    return *this;
}

ThreadBuilder &
ThreadBuilder::storei(Addr addr, Value imm)
{
    emit({.op = Opcode::StoreI, .addr = addr, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::storeiIdx(Addr base, RegId index, Value imm)
{
    emit({.op = Opcode::StoreI, .a = index, .indexed = true, .addr = base,
          .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::tas(RegId dst, Addr addr)
{
    emit({.op = Opcode::TestAndSet, .dst = dst, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::unset(Addr addr)
{
    emit({.op = Opcode::Unset, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::syncload(RegId dst, Addr addr)
{
    emit({.op = Opcode::SyncLoad, .dst = dst, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::syncstore(Addr addr, RegId src)
{
    emit({.op = Opcode::SyncStore, .b = src, .addr = addr});
    return *this;
}

ThreadBuilder &
ThreadBuilder::syncstorei(Addr addr, Value imm)
{
    emit({.op = Opcode::SyncStoreI, .addr = addr, .imm = imm});
    return *this;
}

ThreadBuilder &
ThreadBuilder::fence()
{
    emit({.op = Opcode::Fence});
    return *this;
}

ThreadBuilder &
ThreadBuilder::sfence()
{
    emit({.op = Opcode::FenceSS});
    return *this;
}

ThreadBuilder &
ThreadBuilder::bnz(RegId reg, const std::string &target)
{
    emit({.op = Opcode::Branch, .a = reg});
    fixups_.push_back({code_.size() - 1, target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::bz(RegId reg, const std::string &target)
{
    emit({.op = Opcode::BranchZ, .a = reg});
    fixups_.push_back({code_.size() - 1, target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::jmp(const std::string &target)
{
    emit({.op = Opcode::Jump});
    fixups_.push_back({code_.size() - 1, target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::bnzAt(RegId reg, std::uint32_t target)
{
    emit({.op = Opcode::Branch, .a = reg, .target = target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::bzAt(RegId reg, std::uint32_t target)
{
    emit({.op = Opcode::BranchZ, .a = reg, .target = target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::jmpAt(std::uint32_t target)
{
    emit({.op = Opcode::Jump, .target = target});
    return *this;
}

ThreadBuilder &
ThreadBuilder::halt()
{
    emit({.op = Opcode::Halt});
    return *this;
}

ThreadBuilder &
ThreadBuilder::note(const std::string &text)
{
    wmr_assert(!code_.empty());
    code_.back().note = text;
    return *this;
}

ThreadBuilder &
ThreadBuilder::acquireLock(Addr lock, RegId scratch)
{
    // spin: tas scratch, lock; bnz scratch, spin
    const std::string lbl =
        "__acq" + std::to_string(code_.size());
    label(lbl);
    tas(scratch, lock);
    bnz(scratch, lbl);
    return *this;
}

ThreadBuilder &
ThreadBuilder::releaseLock(Addr lock)
{
    return unset(lock);
}

Thread
ThreadBuilder::build()
{
    for (const auto &fix : fixups_) {
        const auto it = labels_.find(fix.label);
        if (it == labels_.end())
            fatal("unresolved label '%s'", fix.label.c_str());
        code_[fix.pc].target = it->second;
    }
    fixups_.clear();
    Thread t;
    t.code = code_;
    return t;
}

ProgramBuilder &
ProgramBuilder::var(const std::string &name, Addr addr, Value initial)
{
    prog_.nameAddr(name, addr);
    prog_.setInitial(addr, initial);
    return *this;
}

ProgramBuilder &
ProgramBuilder::init(Addr addr, Value value)
{
    prog_.setInitial(addr, value);
    return *this;
}

ProgramBuilder &
ProgramBuilder::thread(ThreadBuilder &tb)
{
    prog_.addThread(tb.build());
    return *this;
}

Program
ProgramBuilder::build()
{
    prog_.validate();
    return prog_;
}

} // namespace wmr
