file(REMOVE_RECURSE
  "CMakeFiles/wmr_staticdet.dir/cfg.cc.o"
  "CMakeFiles/wmr_staticdet.dir/cfg.cc.o.d"
  "CMakeFiles/wmr_staticdet.dir/lockset_dataflow.cc.o"
  "CMakeFiles/wmr_staticdet.dir/lockset_dataflow.cc.o.d"
  "CMakeFiles/wmr_staticdet.dir/static_analyzer.cc.o"
  "CMakeFiles/wmr_staticdet.dir/static_analyzer.cc.o.d"
  "libwmr_staticdet.a"
  "libwmr_staticdet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_staticdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
