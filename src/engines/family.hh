/**
 * @file
 * The detector family: run several engines over ONE pass of the
 * Section-4.1 event stream, cross-check their verdicts, and render
 * the per-engine report with a machine-readable agreement summary.
 *
 * The containment chain reported(hb1) ⊆ races(shb) ⊆ races(wcp)
 * holds by construction (see engine.hh); the family VERIFIES it on
 * every run and reports violations — a violation means an engine
 * implementation bug, and the differential harness fails on any.
 */

#ifndef WMR_ENGINES_FAMILY_HH
#define WMR_ENGINES_FAMILY_HH

#include <memory>
#include <string>
#include <vector>

#include "engines/engine.hh"
#include "trace/execution_trace.hh"

namespace wmr::engines {

/** Options of one family run. */
struct EngineFamilyOptions
{
    /** Engines to run, in canonical order. */
    std::vector<EngineKind> kinds;

    /** Analysis worker budget of the hb1 engine (0 = hardware
     *  concurrency).  Verdicts are identical at every value. */
    unsigned threads = 1;
};

/** Outcome of the pairwise containment checks. */
struct ContainmentSummary
{
    /** Whether the full hb1+shb+wcp chain ran (else fields below
     *  only cover the pairs that did). */
    bool checkedReportedInShb = false;
    bool checkedShbMatchesHb1 = false;
    bool checkedShbInWcp = false;

    bool reportedInShb = true; ///< reported(hb1) ⊆ races(shb)
    bool shbMatchesHb1 = true; ///< races(shb) == races(hb1) exactly
    bool shbInWcp = true;      ///< races(shb) ⊆ races(wcp)

    /** Total containment/agreement violations (0 on a correct
     *  build; any nonzero fails the differential harness). */
    std::size_t violations = 0;

    /** First few violations, for the report (deterministic). */
    std::vector<std::string> notes;
};

/** Everything one family run produced. */
struct EngineFamilyResult
{
    EngineTraceInfo info;
    std::vector<EngineVerdict> verdicts;
    ContainmentSummary containment;

    /** Whether any selected engine reported a data race (drives the
     *  CLI exit code, like DetectionResult::anyDataRace). */
    bool anyDataRace = false;

    /** hb1's canonical `wmrace check` report (only when hb1 ran). */
    std::string hb1CanonicalReport;

    const EngineVerdict *verdict(const char *name) const;
};

/** Instantiate one engine. */
std::unique_ptr<DetectorEngine> makeEngine(EngineKind kind,
                                           unsigned threads);

/** Run the selected engines over @p trace in one stream pass. */
EngineFamilyResult runEngineFamily(const ExecutionTrace &trace,
                                   const EngineFamilyOptions &opts);

/**
 * Render the family report: the shared header, one verdict block
 * per engine, and (when at least two chain engines ran) the
 * containment block with the one-line JSON agreement summary
 * (schema "wmrace-engine-agreement").  Byte-stable: the golden
 * corpus diffs this output.
 */
std::string formatFamilyReport(const EngineFamilyResult &r);

/** The JSON agreement line alone (also embedded in the report). */
std::string familyAgreementJson(const EngineFamilyResult &r);

} // namespace wmr::engines

#endif // WMR_ENGINES_FAMILY_HH
