/**
 * @file
 * Client side of the serve protocol: connect, submit, interrogate.
 *
 * Used by `wmrace submit` (one trace, print the report), by
 * `wmrace batch --server ADDR` (ship every corpus trace to a server
 * and rebuild the aggregate report from the returned meta blocks),
 * and by the serve tests.  Addresses are either a unix-socket path
 * or "tcp:HOST:PORT" — the same strings `wmrace serve` prints as its
 * bound address.
 *
 * submitTrace*() understands the server's admission control: an
 * Overloaded (or Draining) response with a retry hint is retried
 * with that backoff up to the caller's attempt budget, so a client
 * pointed at a saturated server degrades to waiting instead of
 * failing — but always finitely.
 */

#ifndef WMR_SERVE_CLIENT_HH
#define WMR_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace wmr::serve {

/** A parsed server address. */
struct ServerAddress
{
    bool tcp = false;
    std::string socketPath; ///< unix transport
    std::string host;       ///< tcp transport
    int port = 0;

    /** The canonical string form (what the server prints). */
    std::string str() const;
};

/** Parse @p text ("path" or "tcp:host:port") into @p out.
 *  @return false with @p error set on a malformed address. */
bool parseServerAddress(const std::string &text, ServerAddress &out,
                        std::string &error);

/** Connect to @p addr. @return the socket fd, or -1 with @p error
 *  set. */
int connectToServer(const ServerAddress &addr, std::string &error);

/** Knobs for submitTrace*(). */
struct SubmitOptions
{
    bool salvage = false; ///< ask the server to salvage damage
    bool noCache = false; ///< bypass the server's result cache

    /** Detector-engine selection ("hb1", "shb", "wcp", "all");
     *  empty = the server's canonical hb1 path.  An unknown name
     *  fails the submission client-side (typed error, no frame
     *  sent).  See docs/DETECTORS.md. */
    std::string engine;

    /** Total attempts when the server answers Overloaded/Draining
     *  (1 = no retry).  Each retry sleeps the server's retry hint
     *  (or retryAfterMs when the hint is 0). */
    unsigned maxAttempts = 4;
    std::uint32_t retryAfterMs = 250;
};

/** Outcome of one submission (after retries). */
struct SubmitResult
{
    bool ok = false;      ///< transport + protocol succeeded
    std::string error;    ///< transport/protocol failure reason
    Response response;    ///< valid when ok
};

/** Submit @p bytes as one Analyze request to @p addr. */
SubmitResult submitTraceBytes(const ServerAddress &addr,
                              const std::vector<std::uint8_t> &bytes,
                              const SubmitOptions &opts = {});

/** Read @p path and submit its bytes. */
SubmitResult submitTraceFile(const ServerAddress &addr,
                             const std::string &path,
                             const SubmitOptions &opts = {});

/** Fetch the server's status JSON. */
SubmitResult queryStatus(const ServerAddress &addr);

/** Ask the server to drain and exit (the network SIGTERM). */
SubmitResult requestShutdown(const ServerAddress &addr);

} // namespace wmr::serve

#endif // WMR_SERVE_CLIENT_HH
