#include "sim/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wmr {

ProcId
RandomScheduler::pick(const std::vector<ProcId> &runnable, Rng &rng)
{
    wmr_assert(!runnable.empty());
    return runnable[rng.below(runnable.size())];
}

RoundRobinScheduler::RoundRobinScheduler(std::uint32_t quantum)
    : quantum_(quantum == 0 ? 1 : quantum)
{
}

ProcId
RoundRobinScheduler::pick(const std::vector<ProcId> &runnable, Rng &rng)
{
    (void)rng;
    wmr_assert(!runnable.empty());
    const bool current_runnable =
        active_ && std::find(runnable.begin(), runnable.end(),
                             current_) != runnable.end();
    if (current_runnable && used_ < quantum_) {
        ++used_;
        return current_;
    }
    // Advance to the next runnable processor after current_.
    ProcId next = runnable.front();
    if (active_) {
        for (const ProcId p : runnable) {
            if (p > current_) {
                next = p;
                break;
            }
        }
    }
    current_ = next;
    active_ = true;
    used_ = 1;
    return current_;
}

ScriptedScheduler::ScriptedScheduler(std::vector<ProcId> script)
    : script_(std::move(script))
{
}

ProcId
ScriptedScheduler::pick(const std::vector<ProcId> &runnable, Rng &rng)
{
    wmr_assert(!runnable.empty());
    while (pos_ < script_.size()) {
        const ProcId want = script_[pos_];
        if (std::find(runnable.begin(), runnable.end(), want) !=
            runnable.end()) {
            ++pos_;
            return want;
        }
        // The scripted processor already halted or is blocked; skip
        // the entry rather than deadlocking the run.
        ++pos_;
    }
    return fallback_.pick(runnable, rng);
}

} // namespace wmr
